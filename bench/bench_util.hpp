// Shared helpers for the figure-regeneration benches.
#pragma once

#include <cstring>
#include <string>

#include "common/csv.hpp"
#include "sched/schedulers.hpp"
#include "sim/engine.hpp"
#include "sim/platform_presets.hpp"

namespace mp::bench {

inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return true;
  return false;
}

/// --full on the command line switches from the quick default configuration
/// to the paper-scale sweep.
inline bool full_mode(int argc, char** argv) { return has_flag(argc, argv, "--full"); }

inline SchedulerFactory factory(const std::string& name) {
  return [name](SchedContext ctx) { return make_scheduler_by_name(name, std::move(ctx)); };
}

/// Mean GPU idle fraction over the GPU memory nodes of a result.
inline double gpu_idle(const Platform& p, const SimResult& r) {
  double idle = 0.0;
  std::size_t count = 0;
  for (std::size_t m = 1; m < p.num_nodes(); ++m) {
    idle += r.idle_per_node[m];
    ++count;
  }
  return count ? idle / static_cast<double>(count) : 0.0;
}

}  // namespace mp::bench
