// Regenerates Fig. 6: TBFMM execution time on Intel-V100 and AMD-A100 while
// varying the number of GPU streams, comparing MultiPrio, Dmdas and
// HeteroPrio (no user priorities). Paper: MultiPrio achieves the shortest
// makespan on both platforms.
#include <cstdio>

#include "apps/fmm/dag_builder.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace mp;
  using namespace mp::fmm;
  using namespace mp::bench;
  const bool full = full_mode(argc, argv);

  // Paper: 10^6 particles, tree height 6. Quick mode scales down.
  const std::size_t n = full ? 1000000 : 200000;
  const std::size_t height = full ? 6 : 5;
  const std::size_t group_size = 128;

  auto parts = clustered_sphere(n, 2024);
  Octree tree(std::move(parts), {height, group_size, /*allocate=*/false});
  TaskGraph graph;
  const FmmBuildStats stats = build_fmm(graph, tree);
  std::printf("Fig. 6 — TBFMM (%zu particles, height %zu, %zu tasks)%s\n\n", n, height,
              stats.total(), full ? "" : " [quick; pass --full for paper scale]");

  // Two model regimes: "calibrated" hands every scheduler exact δ(t,a)
  // (the best case for Dmdas's push-time commitment + prefetch);
  // "cold models" starts uncalibrated with 10% execution noise — the
  // regime where late binding pays off (see EXPERIMENTS.md).
  struct Regime {
    const char* label;
    SimConfig cfg;
  };
  std::vector<Regime> regimes(2);
  regimes[0].label = "calibrated models";
  regimes[1].label = "cold models";
  regimes[1].cfg.calibrated = false;
  regimes[1].cfg.noise_sigma = 0.1;

  for (const Regime& regime : regimes) {
    std::printf("=== %s ===\n\n", regime.label);
    for (const std::size_t streams : {1u, 2u, 4u}) {
      for (auto make_preset : {intel_v100, amd_a100}) {
        const PlatformPreset preset = make_preset(streams);
        Table t({"scheduler", "time (ms)", "CPU idle", "GPU idle"});
        double best = 1e30;
        std::string best_name;
        for (const char* sched : {"multiprio", "dmdas", "heteroprio"}) {
          SimEngine engine(graph, preset.platform, preset.perf, regime.cfg);
          const SimResult r = engine.run(factory(sched));
          t.add_row({sched, fmt_double(r.makespan * 1e3, 1),
                     fmt_percent(r.idle_per_node[0]),
                     fmt_percent(gpu_idle(preset.platform, r))});
          if (r.makespan < best) {
            best = r.makespan;
            best_name = sched;
          }
        }
        std::printf("%s, %zu stream(s)/GPU — fastest: %s\n%s\n", preset.name.c_str(),
                    streams, best_name.c_str(), t.to_ascii().c_str());
      }
    }
  }
  return 0;
}
