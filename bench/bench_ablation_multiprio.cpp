// Ablation study of MultiPrio's design choices (DESIGN.md §6): eviction,
// locality window, NOD tiebreaker, best_remaining_work normalization, and a
// sweep of the locality hyper-parameters n and ε (paper defaults n = 10,
// ε = 0.8). Run on a dense Cholesky (regular) and an FMM (irregular) DAG.
#include <cstdio>

#include "apps/dense/dense_builders.hpp"
#include "apps/fmm/dag_builder.hpp"
#include "bench_util.hpp"
#include "core/multiprio.hpp"

namespace {

using namespace mp;
using namespace mp::bench;

TaskGraph make_cholesky(std::size_t tiles, std::size_t nb) {
  TaskGraph g;
  dense::TileMatrix a(tiles, nb, false);
  a.register_handles(g);
  dense::build_potrf(g, a, false);
  return g;
}

double run_cfg(const TaskGraph& g, const PlatformPreset& preset, MultiPrioConfig cfg) {
  SimEngine engine(g, preset.platform, preset.perf);
  const SimResult r = engine.run([cfg](SchedContext ctx) {
    return std::make_unique<MultiPrioScheduler>(std::move(ctx), cfg);
  });
  return r.makespan;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const PlatformPreset preset = intel_v100();

  const TaskGraph chol = make_cholesky(full ? 32 : 20, 960);
  auto parts = fmm::clustered_sphere(full ? 300000 : 100000, 99);
  fmm::Octree tree(std::move(parts), {5, 64, false});
  TaskGraph fmm_graph;
  (void)fmm::build_fmm(fmm_graph, tree);

  struct Variant {
    const char* name;
    MultiPrioConfig cfg;
  };
  std::vector<Variant> variants;
  variants.push_back({"full (paper)", MultiPrioConfig{}});
  {
    MultiPrioConfig c;
    c.use_eviction = false;
    variants.push_back({"no eviction", c});
  }
  {
    MultiPrioConfig c;
    c.use_locality = false;
    variants.push_back({"no locality", c});
  }
  {
    MultiPrioConfig c;
    c.use_nod = false;
    variants.push_back({"no NOD tiebreak", c});
  }
  {
    MultiPrioConfig c;
    c.normalize_brw_by_workers = false;
    variants.push_back({"raw brw (paper literal)", c});
  }

  std::printf("MultiPrio ablations on %s\n\n", preset.name.c_str());
  Table t({"variant", "cholesky makespan (s)", "fmm makespan (s)"});
  double base_c = 0.0;
  double base_f = 0.0;
  for (const Variant& v : variants) {
    const double mc = run_cfg(chol, preset, v.cfg);
    const double mf = run_cfg(fmm_graph, preset, v.cfg);
    if (base_c == 0.0) {
      base_c = mc;
      base_f = mf;
    }
    t.add_row({v.name, fmt_double(mc, 4) + " (" + fmt_percent(mc / base_c - 1.0) + ")",
               fmt_double(mf, 4) + " (" + fmt_percent(mf / base_f - 1.0) + ")"});
  }
  std::printf("%s\n", t.to_ascii().c_str());

  std::printf("locality window sweep (cholesky / fmm makespans, s)\n");
  Table sweep({"n", "eps", "cholesky", "fmm"});
  for (std::size_t n : {std::size_t{1}, std::size_t{5}, std::size_t{10}, std::size_t{40}}) {
    for (double eps : {0.1, 0.8}) {
      MultiPrioConfig c;
      c.locality_n = n;
      c.epsilon = eps;
      sweep.add_row({std::to_string(n), fmt_double(eps, 1),
                     fmt_double(run_cfg(chol, preset, c), 4),
                     fmt_double(run_cfg(fmm_graph, preset, c), 4)});
    }
  }
  std::printf("%s", sweep.to_ascii().c_str());
  return 0;
}
