// Scheduler-overhead microbenchmarks (google-benchmark): cost of the
// ScoredHeap operations and of each policy's PUSH/POP on a heterogeneous
// node — the "cheap and effective" claim the MultiPrio design inherits from
// HeteroPrio is quantified here.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <limits>
#include <memory>

#include "core/multiprio.hpp"
#include "core/scored_heap.hpp"
#include "common/rng.hpp"
#include "exec/thread_executor.hpp"
#include "obs/bench_json.hpp"
#include "obs/observer.hpp"
#include "sched/schedulers.hpp"
#include "sim/platform_presets.hpp"

namespace {

using namespace mp;

void BM_HeapInsertPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<std::pair<double, double>> scores(n);
  for (auto& s : scores) s = {rng.next_double(), rng.next_double()};
  for (auto _ : state) {
    ScoredHeap h;
    for (std::size_t i = 0; i < n; ++i) h.insert(TaskId{i}, scores[i].first, scores[i].second);
    while (!h.empty()) h.pop_top();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n));
}
BENCHMARK(BM_HeapInsertPop)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HeapTopKScan(benchmark::State& state) {
  const std::size_t n = 16384;
  const auto k = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  ScoredHeap h;
  for (std::size_t i = 0; i < n; ++i) h.insert(TaskId{i}, rng.next_double(), 0.0);
  for (auto _ : state) {
    std::size_t seen = 0;
    h.for_top([&](const HeapEntry& e) {
      benchmark::DoNotOptimize(e.gain);
      return ++seen < k;
    });
  }
}
BENCHMARK(BM_HeapTopKScan)->Arg(10)->Arg(100);

struct SchedWorld {
  TaskGraph graph;
  PlatformPreset preset = intel_v100();
  PerfDatabase& perf = preset.perf;
  std::unique_ptr<HistoryModel> history;
  std::unique_ptr<MemoryManager> memory;
  std::vector<TaskId> tasks;

  explicit SchedWorld(std::size_t n_tasks) {
    const CodeletId cl = graph.add_codelet("gemm", {ArchType::CPU, ArchType::GPU});
    Rng rng(3);
    for (std::size_t i = 0; i < n_tasks; ++i) {
      const DataId d = graph.add_data(1024 * (1 + rng.next_in(0, 64)));
      SubmitOptions o;
      o.flops = 1e6 * static_cast<double>(1 + rng.next_in(0, 1000));
      tasks.push_back(graph.submit(cl, {Access{d, AccessMode::ReadWrite}}, o));
    }
    history = std::make_unique<HistoryModel>(graph, perf);
    history->seed_from_truth();
    memory = std::make_unique<MemoryManager>(graph, preset.platform);
  }

  SchedContext ctx() {
    SchedContext c;
    c.graph = &graph;
    c.platform = &preset.platform;
    c.perf = history.get();
    c.memory = memory.get();
    c.now = [] { return 0.0; };
    return c;
  }
};

void bench_policy(benchmark::State& state, const std::string& name,
                  SchedObserver* observer = nullptr) {
  SchedWorld world(4096);
  for (auto _ : state) {
    state.PauseTiming();
    SchedContext ctx = world.ctx();
    ctx.observer = observer;
    auto sched = make_scheduler_by_name(name, std::move(ctx));
    state.ResumeTiming();
    for (TaskId t : world.tasks) sched->push(t);
    std::size_t popped = 0;
    std::size_t wi = 0;
    const std::size_t nw = world.preset.platform.num_workers();
    while (popped < world.tasks.size()) {
      if (sched->pop(WorkerId{wi}).has_value()) ++popped;
      wi = (wi + 1) % nw;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(world.tasks.size()));
}

void BM_PushPopMultiPrio(benchmark::State& state) { bench_policy(state, "multiprio"); }
void BM_PushPopDmdas(benchmark::State& state) { bench_policy(state, "dmdas"); }
void BM_PushPopHeteroPrio(benchmark::State& state) { bench_policy(state, "heteroprio"); }
void BM_PushPopEager(benchmark::State& state) { bench_policy(state, "eager"); }
BENCHMARK(BM_PushPopMultiPrio);
BENCHMARK(BM_PushPopDmdas);
BENCHMARK(BM_PushPopHeteroPrio);
BENCHMARK(BM_PushPopEager);

// Observability overhead on the hottest policy. NullSink pays the observer
// branch plus a virtual no-op record per decision (the upper bound of what
// a *disabled* sink could ever cost is the observer-absent baseline above);
// Recording pays event construction, the ring append and metric updates.
void BM_PushPopMultiPrioNullSink(benchmark::State& state) {
  NullObserver obs;
  bench_policy(state, "multiprio", &obs);
}
void BM_PushPopMultiPrioRecording(benchmark::State& state) {
  RecordingObserver obs;
  bench_policy(state, "multiprio", &obs);
}
// Same sink with the ring pre-allocated: isolates how much of the recording
// cost was EventLog regrowth charged to the measured loop.
void BM_PushPopMultiPrioRecordingReserved(benchmark::State& state) {
  RecordingObserver obs(EventLog::kDefaultCapacity, /*reserve_upfront=*/true);
  bench_policy(state, "multiprio", &obs);
}
BENCHMARK(BM_PushPopMultiPrioNullSink);
BENCHMARK(BM_PushPopMultiPrioRecording);
BENCHMARK(BM_PushPopMultiPrioRecordingReserved);

// ---- multi-worker contention sweep ----------------------------------------

// The sweep platform: W CPU workers on the RAM node + W GPU streams on one
// GPU node. The node (= shard) count is FIXED at two across the sweep, so
// ns_per_task growth isolates lock/wakeup contention — the quantity the
// sharded protocol controls — from the structural cost of duplicating a
// push into more node heaps (which scales with nodes, not workers, and is
// identical under both protocols).
Platform sweep_platform(std::size_t workers_per_arch) {
  Platform p;
  p.add_workers(ArchType::CPU, p.ram_node(), workers_per_arch);
  const MemNodeId gpu = p.add_gpu_node(0, 10e9, 1e-6);
  p.add_workers(ArchType::GPU, gpu, workers_per_arch);
  return p;
}

struct RunCost {
  double wall_s = 0.0;
  double cpu_s = 0.0;  ///< process CPU burned by the run, all threads
};

double process_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

// One real ThreadExecutor run over a single long dependency chain of no-op
// tasks: the cost is almost pure scheduling overhead (PUSH/POP/park/wake +
// dependency release), which is the quantity the lock protocol changes. The
// serial chain is the worst case for wakeup discipline — exactly one task is
// ever ready, so at width W every completion happens with 2W-1 workers
// parked. The coarse engine broadcast-wakes all of them per state change;
// the sharded protocol's waiter-gated, eligibility-filtered notify wakes at
// most one (and usually none, since the completing worker pops the successor
// itself). CPU time is the scaling metric: parked workers are free only if
// the protocol does not keep waking them, and on small hosts wall time
// measures timeslicing, not scheduler overhead.
RunCost run_executor_once(const std::string& sched, std::size_t workers,
                          std::size_t n_tasks, SchedObserver* observer) {
  constexpr std::size_t kChains = 1;
  TaskGraph g;
  const CodeletId cl = g.add_codelet("tick", {ArchType::CPU, ArchType::GPU},
                                     [](const Task&, std::span<void* const>) {});
  Rng rng(4);
  std::vector<DataId> chain_data;
  for (std::size_t c = 0; c < kChains; ++c)
    chain_data.push_back(g.add_data(1024 * (1 + rng.next_in(0, 64))));
  for (std::size_t i = 0; i < n_tasks; ++i) {
    SubmitOptions o;
    o.flops = 1e6 * static_cast<double>(1 + rng.next_in(0, 1000));
    g.submit(cl, {Access{chain_data[i % kChains], AccessMode::ReadWrite}}, o);
  }
  Platform p = sweep_platform(workers);
  PerfDatabase db;
  db.set_default(ArchType::CPU, RateSpec{10.0, 0.0, 0.0, 0.0});
  db.set_default(ArchType::GPU, RateSpec{100.0, 0.0, 0.0, 0.0});
  ThreadExecutor exec(g, p, db);
  ExecConfig cfg;
  cfg.stall_timeout = 0.05;
  cfg.observer = observer;
  const double cpu0 = process_cpu_seconds();
  const ExecResult r = exec.run(
      [&](SchedContext ctx) { return make_scheduler_by_name(sched, std::move(ctx)); },
      cfg);
  const double cpu1 = process_cpu_seconds();
  if (r.tasks_executed != n_tasks) {
    std::fprintf(stderr, "sweep run lost tasks: %zu/%zu (%s, %zu workers)\n",
                 r.tasks_executed, n_tasks, sched.c_str(), workers);
    std::exit(1);
  }
  return RunCost{r.wall_seconds, cpu1 - cpu0};
}

struct SweepPoint {
  std::string scheduler;
  std::size_t workers = 0;
  double ns_per_task = 0.0;
};

// Sweeps worker counts over the sharded default and the coarse-lock
// baseline, emitting ns_per_task plus the contention metrics
// (sched.lock_wait_s / sched.wakeups) from one instrumented run per point.
void emit_sweep_records(std::vector<BenchRecord>& records,
                        std::vector<SweepPoint>& points) {
  constexpr std::size_t kTasks = 4096;
  constexpr int kReps = 3;
  const std::size_t widths[] = {1, 2, 4, 8, 16};
  for (const char* sched : {"multiprio", "multiprio-coarse"}) {
    for (const std::size_t w : widths) {
      double best_wall = std::numeric_limits<double>::infinity();
      double best_cpu = std::numeric_limits<double>::infinity();
      for (int rep = 0; rep < kReps; ++rep) {
        const RunCost c = run_executor_once(sched, w, kTasks, nullptr);
        best_wall = std::min(best_wall, c.wall_s);
        best_cpu = std::min(best_cpu, c.cpu_s);
      }
      // The timed runs above are observer-free; the contention metrics come
      // from one extra instrumented run (its lock-wait timing path only
      // activates when a MetricsRegistry is attached).
      RecordingObserver obs(EventLog::kDefaultCapacity, /*reserve_upfront=*/true);
      run_executor_once(sched, w, kTasks, &obs);
      const Histogram& lock_wait = obs.metrics()->histogram("sched.lock_wait_s");
      const Counter& wakeups = obs.metrics()->counter("sched.wakeups");
      // ns_per_task = scheduling CPU per task: the overhead the protocol
      // controls, and the only per-task number comparable across machines
      // with different core counts (wall time on an oversubscribed host
      // measures the kernel's timeslicing instead).
      const double ns = best_cpu / static_cast<double>(kTasks) * 1e9;
      records.push_back(
          BenchRecord("overhead_sweep", sched)
              .param("workers", w)  // per arch: w CPUs + w GPU streams
              .param("tasks", kTasks)
              .param("reps", static_cast<std::size_t>(kReps))
              .makespan_s(best_wall)
              .extra("ns_per_task", ns)
              .extra("wall_ns_per_task",
                     best_wall / static_cast<double>(kTasks) * 1e9)
              .extra("lock_acquires", static_cast<double>(lock_wait.count()))
              .extra("lock_wait_s", lock_wait.sum())
              .extra("lock_wait_max_s", lock_wait.max())
              .extra("wakeups", static_cast<double>(wakeups.value())));
      points.push_back(SweepPoint{sched, w, ns});
      std::printf("  sweep %-16s %2zu workers: %8.0f ns/task cpu  "
                  "(wall %.0f ns, lock_wait %.3fms over %llu acquires, "
                  "%llu wakeups)\n",
                  sched, w, ns, best_wall / static_cast<double>(kTasks) * 1e9,
                  lock_wait.sum() * 1e3,
                  static_cast<unsigned long long>(lock_wait.count()),
                  static_cast<unsigned long long>(wakeups.value()));
    }
  }
}

double sweep_ns(const std::vector<SweepPoint>& points, const std::string& sched,
                std::size_t workers) {
  for (const SweepPoint& p : points)
    if (p.scheduler == sched && p.workers == workers) return p.ns_per_task;
  return 0.0;
}

// Machine-readable observer-overhead summary, emitted as
// BENCH_overhead.json so CI accumulates the instrumentation cost over time.
// Timed directly (std::chrono around the same push/pop loop the
// google-benchmark cases run) so the emission does not depend on any
// particular google-benchmark reporter API.
void emit_overhead_json(std::vector<BenchRecord>& records) {
  // Each rep gets a FRESH observer from its mode's factory: the lazy ring's
  // regrowth cost only exists on a cold EventLog, so reusing one observer
  // across reps would hide it from the best-of minimum. The lazy mode stays
  // measured so the reserve-up-front fix is re-checked in the same process,
  // back to back — cross-invocation numbers on a shared host differ by more
  // than the effect.
  struct Mode {
    const char* name;
    std::unique_ptr<SchedObserver> (*make)();
  };
  const Mode modes[] = {
      {"none", []() -> std::unique_ptr<SchedObserver> { return nullptr; }},
      {"null",
       []() -> std::unique_ptr<SchedObserver> {
         return std::make_unique<NullObserver>();
       }},
      {"recording",
       []() -> std::unique_ptr<SchedObserver> {
         return std::make_unique<RecordingObserver>(EventLog::kDefaultCapacity,
                                                    /*reserve_upfront=*/true);
       }},
      {"recording-lazy", []() -> std::unique_ptr<SchedObserver> {
         return std::make_unique<RecordingObserver>(EventLog::kDefaultCapacity,
                                                    /*reserve_upfront=*/false);
       }}};

  constexpr std::size_t kTasks = 4096;
  constexpr int kReps = 5;
  double baseline_s = 0.0;
  for (const Mode& mode : modes) {
    SchedWorld world(kTasks);
    // Best-of-reps: each rep is a full push/pop cycle timed on its own, and
    // the fastest one is the measurement — on a shared/small host the mean
    // is dominated by timeslicing noise, the minimum by the actual cost.
    double elapsed = std::numeric_limits<double>::infinity();
    std::unique_ptr<SchedObserver> observer;
    for (int rep = 0; rep < kReps; ++rep) {
      observer = mode.make();
      SchedContext ctx = world.ctx();
      ctx.observer = observer.get();
      auto sched = make_scheduler_by_name("multiprio", std::move(ctx));
      const auto t0 = std::chrono::steady_clock::now();
      for (TaskId t : world.tasks) sched->push(t);
      std::size_t popped = 0;
      std::size_t wi = 0;
      const std::size_t nw = world.preset.platform.num_workers();
      while (popped < world.tasks.size()) {
        if (sched->pop(WorkerId{wi}).has_value()) ++popped;
        wi = (wi + 1) % nw;
      }
      elapsed = std::min(
          elapsed,
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count());
    }
    if (observer == nullptr) baseline_s = elapsed;
    // "efficiency" = baseline/mode: 1.0 for the observer-free path, and the
    // slowdown factor's reciprocal for the instrumented ones — the ratio a
    // regression check watches.
    BenchRecord rec =
        BenchRecord("overhead", "multiprio")
            .param("observer", mode.name)
            .param("tasks", kTasks)
            .param("reps", static_cast<std::size_t>(kReps))
            .makespan_s(elapsed)
            .efficiency(elapsed > 0.0 && baseline_s > 0.0 ? baseline_s / elapsed : 0.0)
            .extra("ns_per_task", elapsed / static_cast<double>(kTasks) * 1e9);
    if (auto* rec_obs = dynamic_cast<RecordingObserver*>(observer.get());
        rec_obs != nullptr && std::strcmp(mode.name, "recording") == 0)
      rec.events_from(rec_obs->events());
    records.push_back(rec);
  }
}

// Runs observer modes + the worker sweep and writes BENCH_overhead.json.
// Returns false if the smoke scaling assertion fails (checked only when
// `enforce` — the CI bench-smoke gate; full runs just print the ratios).
bool emit_bench_json(bool enforce) {
  std::vector<BenchRecord> records;
  emit_overhead_json(records);
  std::vector<SweepPoint> points;
  emit_sweep_records(records, points);
  if (!write_bench_json("BENCH_overhead.json", records))
    std::fprintf(stderr, "warning: could not write BENCH_overhead.json\n");

  const double sharded_1 = sweep_ns(points, "multiprio", 1);
  const double sharded_8 = sweep_ns(points, "multiprio", 8);
  const double coarse_8 = sweep_ns(points, "multiprio-coarse", 8);
  const double scaling = sharded_1 > 0.0 ? sharded_8 / sharded_1 : 0.0;
  const double speedup = sharded_8 > 0.0 ? coarse_8 / sharded_8 : 0.0;
  std::printf("sweep: sharded 8w/1w ns_per_task ratio %.2f (gate: <= 1.50), "
              "coarse/sharded at 8w %.2fx\n",
              scaling, speedup);
  bool ok = true;
  if (enforce && scaling > 1.5) {
    std::fprintf(stderr,
                 "SMOKE FAIL: sharded ns_per_task at 8 workers is %.2fx the "
                 "1-worker cost (budget 1.5x) — scheduling no longer scales\n",
                 scaling);
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  // --smoke: skip the google-benchmark suite, run the sweep + observer modes
  // once and enforce the scaling assertion — the CI bench-smoke entry point.
  // Emits the same BENCH_overhead.json as a full run so the regression gate
  // can diff it against the committed baseline.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      return emit_bench_json(/*enforce=*/true) ? 0 : 1;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emit_bench_json(/*enforce=*/false);
  return 0;
}
