// Scheduler-overhead microbenchmarks (google-benchmark): cost of the
// ScoredHeap operations and of each policy's PUSH/POP on a heterogeneous
// node — the "cheap and effective" claim the MultiPrio design inherits from
// HeteroPrio is quantified here.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "core/multiprio.hpp"
#include "core/scored_heap.hpp"
#include "common/rng.hpp"
#include "obs/bench_json.hpp"
#include "obs/observer.hpp"
#include "sched/schedulers.hpp"
#include "sim/platform_presets.hpp"

namespace {

using namespace mp;

void BM_HeapInsertPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<std::pair<double, double>> scores(n);
  for (auto& s : scores) s = {rng.next_double(), rng.next_double()};
  for (auto _ : state) {
    ScoredHeap h;
    for (std::size_t i = 0; i < n; ++i) h.insert(TaskId{i}, scores[i].first, scores[i].second);
    while (!h.empty()) h.pop_top();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n));
}
BENCHMARK(BM_HeapInsertPop)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HeapTopKScan(benchmark::State& state) {
  const std::size_t n = 16384;
  const auto k = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  ScoredHeap h;
  for (std::size_t i = 0; i < n; ++i) h.insert(TaskId{i}, rng.next_double(), 0.0);
  for (auto _ : state) {
    std::size_t seen = 0;
    h.for_top([&](const HeapEntry& e) {
      benchmark::DoNotOptimize(e.gain);
      return ++seen < k;
    });
  }
}
BENCHMARK(BM_HeapTopKScan)->Arg(10)->Arg(100);

struct SchedWorld {
  TaskGraph graph;
  PlatformPreset preset = intel_v100();
  PerfDatabase& perf = preset.perf;
  std::unique_ptr<HistoryModel> history;
  std::unique_ptr<MemoryManager> memory;
  std::vector<TaskId> tasks;

  explicit SchedWorld(std::size_t n_tasks) {
    const CodeletId cl = graph.add_codelet("gemm", {ArchType::CPU, ArchType::GPU});
    Rng rng(3);
    for (std::size_t i = 0; i < n_tasks; ++i) {
      const DataId d = graph.add_data(1024 * (1 + rng.next_in(0, 64)));
      SubmitOptions o;
      o.flops = 1e6 * static_cast<double>(1 + rng.next_in(0, 1000));
      tasks.push_back(graph.submit(cl, {Access{d, AccessMode::ReadWrite}}, o));
    }
    history = std::make_unique<HistoryModel>(graph, perf);
    history->seed_from_truth();
    memory = std::make_unique<MemoryManager>(graph, preset.platform);
  }

  SchedContext ctx() {
    SchedContext c;
    c.graph = &graph;
    c.platform = &preset.platform;
    c.perf = history.get();
    c.memory = memory.get();
    c.now = [] { return 0.0; };
    return c;
  }
};

void bench_policy(benchmark::State& state, const std::string& name,
                  SchedObserver* observer = nullptr) {
  SchedWorld world(4096);
  for (auto _ : state) {
    state.PauseTiming();
    SchedContext ctx = world.ctx();
    ctx.observer = observer;
    auto sched = make_scheduler_by_name(name, std::move(ctx));
    state.ResumeTiming();
    for (TaskId t : world.tasks) sched->push(t);
    std::size_t popped = 0;
    std::size_t wi = 0;
    const std::size_t nw = world.preset.platform.num_workers();
    while (popped < world.tasks.size()) {
      if (sched->pop(WorkerId{wi}).has_value()) ++popped;
      wi = (wi + 1) % nw;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(world.tasks.size()));
}

void BM_PushPopMultiPrio(benchmark::State& state) { bench_policy(state, "multiprio"); }
void BM_PushPopDmdas(benchmark::State& state) { bench_policy(state, "dmdas"); }
void BM_PushPopHeteroPrio(benchmark::State& state) { bench_policy(state, "heteroprio"); }
void BM_PushPopEager(benchmark::State& state) { bench_policy(state, "eager"); }
BENCHMARK(BM_PushPopMultiPrio);
BENCHMARK(BM_PushPopDmdas);
BENCHMARK(BM_PushPopHeteroPrio);
BENCHMARK(BM_PushPopEager);

// Observability overhead on the hottest policy. NullSink pays the observer
// branch plus a virtual no-op record per decision (the upper bound of what
// a *disabled* sink could ever cost is the observer-absent baseline above);
// Recording pays event construction, the ring append and metric updates.
void BM_PushPopMultiPrioNullSink(benchmark::State& state) {
  NullObserver obs;
  bench_policy(state, "multiprio", &obs);
}
void BM_PushPopMultiPrioRecording(benchmark::State& state) {
  RecordingObserver obs;
  bench_policy(state, "multiprio", &obs);
}
BENCHMARK(BM_PushPopMultiPrioNullSink);
BENCHMARK(BM_PushPopMultiPrioRecording);

// Machine-readable observer-overhead summary, emitted as
// BENCH_overhead.json so CI accumulates the instrumentation cost over time.
// Timed directly (std::chrono around the same push/pop loop the
// google-benchmark cases run) so the emission does not depend on any
// particular google-benchmark reporter API.
void emit_overhead_json() {
  struct Mode {
    const char* name;
    SchedObserver* observer;
  };
  NullObserver null_obs;
  RecordingObserver rec_obs;
  const Mode modes[] = {{"none", nullptr}, {"null", &null_obs}, {"recording", &rec_obs}};

  constexpr std::size_t kTasks = 4096;
  constexpr int kReps = 5;
  std::vector<BenchRecord> records;
  double baseline_s = 0.0;
  for (const Mode& mode : modes) {
    SchedWorld world(kTasks);
    const auto t0 = std::chrono::steady_clock::now();
    for (int rep = 0; rep < kReps; ++rep) {
      SchedContext ctx = world.ctx();
      ctx.observer = mode.observer;
      auto sched = make_scheduler_by_name("multiprio", std::move(ctx));
      for (TaskId t : world.tasks) sched->push(t);
      std::size_t popped = 0;
      std::size_t wi = 0;
      const std::size_t nw = world.preset.platform.num_workers();
      while (popped < world.tasks.size()) {
        if (sched->pop(WorkerId{wi}).has_value()) ++popped;
        wi = (wi + 1) % nw;
      }
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (mode.observer == nullptr) baseline_s = elapsed;
    // "efficiency" = baseline/mode: 1.0 for the observer-free path, and the
    // slowdown factor's reciprocal for the instrumented ones — the ratio a
    // regression check watches.
    BenchRecord rec =
        BenchRecord("overhead", "multiprio")
            .param("observer", mode.name)
            .param("tasks", kTasks)
            .param("reps", static_cast<std::size_t>(kReps))
            .makespan_s(elapsed)
            .efficiency(elapsed > 0.0 && baseline_s > 0.0 ? baseline_s / elapsed : 0.0)
            .extra("ns_per_task",
                   elapsed / static_cast<double>(kTasks * kReps) * 1e9);
    if (mode.observer == &rec_obs) rec.events_from(rec_obs.events());
    records.push_back(rec);
  }
  if (!write_bench_json("BENCH_overhead.json", records))
    std::fprintf(stderr, "warning: could not write BENCH_overhead.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emit_overhead_json();
  return 0;
}
