// Regenerates Fig. 7: the sparse-matrix set. Prints the published
// rows/cols/nnz (matched exactly by the generators) and the paper's op
// count next to the op count our own multifrontal symbolic analysis finds
// on the synthetic stand-ins.
#include <cstdio>

#include "apps/sparseqr/generators.hpp"
#include "apps/sparseqr/symbolic.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace mp;
  using namespace mp::sqr;
  const bool full = mp::bench::full_mode(argc, argv);

  std::printf("Fig. 7 — QR_MUMPS matrix set (synthetic stand-ins)%s\n\n",
              full ? "" : " [quick: largest two skipped; pass --full]");
  Table t({"matrix", "rows", "cols", "nnz", "paper Gflop", "ours Gflop", "fronts"});
  for (const MatrixSpec& spec : paper_matrix_specs()) {
    if (!full && spec.gflop_target > 50000.0) {
      t.add_row({spec.name, std::to_string(spec.rows), std::to_string(spec.cols),
                 std::to_string(spec.nnz), fmt_double(spec.gflop_target, 0), "(--full)",
                 "-"});
      continue;
    }
    const SparseMatrix m = generate(spec);
    const SymbolicAnalysis sym = analyze(tall_orientation(m));
    t.add_row({spec.name, std::to_string(m.rows), std::to_string(m.cols),
               std::to_string(m.nnz()), fmt_double(spec.gflop_target, 0),
               fmt_double(sym.total_flops / 1e9, 0), std::to_string(sym.fronts.size())});
  }
  std::printf("%s\n", t.to_ascii().c_str());
  std::printf("rows/cols/nnz match the published table exactly; the op count is\n"
              "an emergent property of the synthetic structure (same regime and\n"
              "same ordering as the paper's METIS-ordered originals).\n");
  return 0;
}
