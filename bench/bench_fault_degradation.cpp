// Fault-degradation study: lose the GPU at a sweep of points during a
// simulated Cholesky run and measure how gracefully each policy degrades.
// Emits a CSV of makespan vs. loss time for multiprio, eager and heteroprio
// (plus the dm family in --full mode) and checks the fault invariants on
// every run: all tasks execute, none are abandoned.
#include <cstdio>

#include "apps/dense/dense_builders.hpp"
#include "bench_util.hpp"
#include "fault/invariants.hpp"

int main(int argc, char** argv) {
  using namespace mp;
  using namespace mp::bench;
  const bool full = full_mode(argc, argv);

  const std::size_t tiles = full ? 16 : 8;
  const std::size_t nb = 960;

  TaskGraph graph;
  dense::TileMatrix a(tiles, nb, /*allocate=*/false);
  a.register_handles(graph);
  dense::build_potrf(graph, a, /*expert_priorities=*/false);

  const PlatformPreset preset = fig4_node();
  WorkerId gpu_w{};
  for (const Worker& w : preset.platform.workers())
    if (w.arch == ArchType::GPU) gpu_w = w.id;

  std::printf("Fault degradation — GPU fail-stop during Cholesky\n");
  std::printf("Cholesky %zux%zu tiles of %zu on %s (%zu tasks)\n\n", tiles, tiles, nb,
              preset.name.c_str(), graph.num_tasks());

  std::vector<std::string> policies{"multiprio", "eager", "heteroprio"};
  if (full) {
    policies.push_back("dmda");
    policies.push_back("dmdas");
  }
  const std::vector<double> loss_fractions =
      full ? std::vector<double>{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
           : std::vector<double>{0.1, 0.25, 0.5, 0.75};

  Table t({"scheduler", "loss frac", "loss time (s)", "makespan (s)", "slowdown",
           "retries", "abandoned", "invariants"});
  bool all_ok = true;
  for (const std::string& name : policies) {
    const SimResult nominal =
        simulate(graph, preset.platform, preset.perf, factory(name));
    for (const double frac : loss_fractions) {
      SimConfig cfg;
      cfg.fault.worker_losses.push_back(
          WorkerLossSpec{gpu_w, frac * nominal.makespan});
      SimEngine engine(graph, preset.platform, preset.perf, cfg);
      const SimResult r = engine.run(factory(name));
      const InvariantReport rep =
          check_fault_invariants(graph, preset.platform, cfg.fault, engine, r);
      const bool ok = rep.ok() && r.tasks_executed == graph.num_tasks() &&
                      r.fault.tasks_abandoned == 0;
      all_ok = all_ok && ok;
      if (!rep.ok()) std::fprintf(stderr, "%s\n", rep.to_string().c_str());
      t.add_row({name, fmt_double(frac, 2),
                 fmt_double(frac * nominal.makespan, 4), fmt_double(r.makespan, 4),
                 fmt_double(r.makespan / nominal.makespan, 3),
                 std::to_string(r.fault.retries),
                 std::to_string(r.fault.tasks_abandoned), ok ? "ok" : "VIOLATED"});
    }
  }
  std::printf("%s\n", t.to_ascii().c_str());
  std::printf("CSV:\n%s", t.to_csv().c_str());
  if (!all_ok) {
    std::fprintf(stderr, "FAULT INVARIANT VIOLATIONS DETECTED\n");
    return 1;
  }
  return 0;
}
