// Regenerates Fig. 5: CHAMELEON dense kernels (potrf, getrf, geqrf) on the
// Intel-V100 and AMD-A100 platforms, comparing MultiPrio against Dmdas
// (expert priorities ON, as Chameleon provides them) and HeteroPrio.
// For each (kernel, platform, matrix size) the best-performing tile size is
// selected per scheduler, exactly as the paper does; the last column prints
// MultiPrio's gain/loss over Dmdas, the quantity Fig. 5 plots.
#include <cstdio>
#include <functional>
#include <memory>

#include "apps/dense/dense_builders.hpp"
#include "bench_util.hpp"

namespace {

using namespace mp;
using namespace mp::bench;

struct Kernel {
  const char* name;
  std::function<void(TaskGraph&, dense::TileMatrix&)> build;
  std::function<double(std::size_t)> total_flops;
};

double run_once(const char* sched, const char* kernel_name,
                const PlatformPreset& preset, const Kernel& kernel, std::size_t n,
                std::size_t nb) {
  (void)kernel_name;
  TaskGraph graph;
  dense::TileMatrix a(n / nb, nb, false);
  a.register_handles(graph);
  kernel.build(graph, a);
  SimEngine engine(graph, preset.platform, preset.perf);
  const SimResult r = engine.run(factory(sched));
  return kernel.total_flops(n) / r.makespan / 1e9;  // GFlop/s
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);

  std::vector<Kernel> kernels;
  kernels.push_back({"potrf",
                     [](TaskGraph& g, dense::TileMatrix& a) {
                       dense::build_potrf(g, a, true);
                     },
                     dense::potrf_total_flops});
  kernels.push_back({"getrf",
                     [](TaskGraph& g, dense::TileMatrix& a) {
                       dense::build_getrf(g, a, true);
                     },
                     dense::getrf_total_flops});
  kernels.push_back({"geqrf",
                     [](TaskGraph& g, dense::TileMatrix& a) {
                       auto aux = dense::build_geqrf(g, a, true);
                     },
                     dense::geqrf_total_flops});

  struct PlatformCase {
    PlatformPreset preset;
    std::vector<std::size_t> tile_sizes;
    std::vector<std::size_t> matrix_sizes;
  };
  std::vector<PlatformCase> cases;
  if (full) {
    cases.push_back({intel_v100(), {640, 1280, 2560}, {20480, 40960, 61440, 81920, 102400}});
    cases.push_back({amd_a100(), {960, 1920, 3840}, {23040, 46080, 69120, 92160, 115200}});
  } else {
    cases.push_back({intel_v100(), {640, 1280, 2560}, {20480, 40960, 61440}});
    cases.push_back({amd_a100(), {960, 1920, 3840}, {23040, 46080, 69120}});
  }

  const char* scheds[] = {"multiprio", "dmdas", "heteroprio"};
  std::printf("Fig. 5 — dense kernels, GFlop/s (best tile size per scheduler)%s\n\n",
              full ? " [full sweep]" : " [quick; pass --full for the paper sweep]");

  for (const Kernel& kernel : kernels) {
    for (const PlatformCase& pc : cases) {
      Table t({"N", "multiprio", "dmdas", "heteroprio", "multiprio vs dmdas"});
      for (std::size_t n : pc.matrix_sizes) {
        double best[3] = {0.0, 0.0, 0.0};
        for (std::size_t nb : pc.tile_sizes) {
          if (n % nb != 0 || n / nb < 4) continue;
          for (int s = 0; s < 3; ++s) {
            const double gf = run_once(scheds[s], kernel.name, pc.preset, kernel, n, nb);
            best[s] = std::max(best[s], gf);
          }
        }
        const double gain = best[1] > 0.0 ? (best[0] - best[1]) / best[1] : 0.0;
        t.add_row({std::to_string(n), fmt_double(best[0], 0), fmt_double(best[1], 0),
                   fmt_double(best[2], 0), fmt_percent(gain)});
      }
      std::printf("%s on %s\n%s\n", kernel.name, pc.preset.name.c_str(),
                  t.to_ascii().c_str());
    }
  }
  return 0;
}
