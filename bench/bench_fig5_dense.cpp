// Regenerates Fig. 5: CHAMELEON dense kernels (potrf, getrf, geqrf) on the
// Intel-V100 and AMD-A100 platforms, comparing MultiPrio against Dmdas
// (expert priorities ON, as Chameleon provides them) and HeteroPrio.
// For each (kernel, platform, matrix size) the best-performing tile size is
// selected per scheduler, exactly as the paper does; the last column prints
// MultiPrio's gain/loss over Dmdas, the quantity Fig. 5 plots.
//
// Every run is also emitted as a machine-readable record into
// BENCH_fig5_dense.json (schema: obs/bench_json.hpp), with the makespan
// expressed as an efficiency against the run's area lower bound. --smoke
// runs one small getrf configuration and *gates* on that efficiency —
// the CI regression check that a scheduler change did not silently tank
// schedule quality.
#include <cstdio>
#include <functional>
#include <memory>

#include "apps/dense/dense_builders.hpp"
#include "bench_util.hpp"
#include "obs/analysis.hpp"
#include "obs/bench_json.hpp"

namespace {

using namespace mp;
using namespace mp::bench;

struct Kernel {
  const char* name;
  std::function<void(TaskGraph&, dense::TileMatrix&)> build;
  std::function<double(std::size_t)> total_flops;
};

struct Outcome {
  double gflops = 0.0;
  double makespan = 0.0;
  double area_eff = 0.0;  // makespan efficiency vs the area lower bound
  BenchRecord record{"fig5_dense", ""};
};

Outcome run_once(const char* sched, const char* kernel_name,
                 const PlatformPreset& preset, const Kernel& kernel, std::size_t n,
                 std::size_t nb) {
  TaskGraph graph;
  dense::TileMatrix a(n / nb, nb, false);
  a.register_handles(graph);
  kernel.build(graph, a);
  // Small ring: per-kind counts are drop-proof, and the analysis here only
  // needs the bounds, so memory stays flat across the paper-scale sweep.
  RecordingObserver obs(1u << 16);
  SimConfig cfg;
  cfg.observer = &obs;
  SimEngine engine(graph, preset.platform, preset.perf, cfg);
  const SimResult r = engine.run(factory(sched));
  const RunAnalysis analysis(engine.trace(), graph, preset.platform, preset.perf,
                             &obs, engine.predicted_durations());

  Outcome o;
  o.gflops = kernel.total_flops(n) / r.makespan / 1e9;  // GFlop/s
  o.makespan = r.makespan;
  o.area_eff = analysis.area_efficiency();
  o.record = BenchRecord("fig5_dense", sched)
                 .param("kernel", kernel_name)
                 .param("platform", preset.name)
                 .param("n", n)
                 .param("nb", nb)
                 .makespan_s(r.makespan)
                 .efficiency(o.area_eff)
                 .extra("gflops", o.gflops)
                 .extra("efficiency_vs_bound", analysis.efficiency())
                 .extra("area_bound_s", analysis.area_bound_s())
                 .extra("cp_bound_s", analysis.cp_bound_s())
                 .extra("total_idle_s", analysis.total_idle_s())
                 .events_from(obs.events());
  return o;
}

/// --smoke: one small getrf on the Intel-V100 node, multiprio gated on
/// makespan efficiency >= 0.5 vs the area bound. Exit status is the gate.
int run_smoke(const std::vector<Kernel>& kernels) {
  const Kernel& getrf = kernels[1];
  const PlatformPreset preset = intel_v100();
  const std::size_t n = 23040, nb = 960;
  constexpr double kMinEfficiency = 0.5;

  std::printf("Fig. 5 smoke — getrf on %s, N=%zu, NB=%zu (gate: multiprio "
              "efficiency >= %.2f vs area bound)\n\n",
              preset.name.c_str(), n, nb, kMinEfficiency);
  std::vector<BenchRecord> records;
  bool ok = true;
  for (const char* sched : {"multiprio", "dmdas"}) {
    const Outcome o = run_once(sched, getrf.name, preset, getrf, n, nb);
    std::printf("  %-10s makespan %.4fs  %.0f GFlop/s  efficiency %.3f\n", sched,
                o.makespan, o.gflops, o.area_eff);
    if (std::string(sched) == "multiprio" && o.area_eff < kMinEfficiency) ok = false;
    records.push_back(o.record);
  }
  if (!write_bench_json("BENCH_fig5_dense.json", records))
    std::fprintf(stderr, "warning: could not write BENCH_fig5_dense.json\n");
  std::printf("\n%s\n", ok ? "PASS: efficiency gate met"
                           : "FAIL: multiprio efficiency below gate");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const bool smoke = has_flag(argc, argv, "--smoke");

  std::vector<Kernel> kernels;
  kernels.push_back({"potrf",
                     [](TaskGraph& g, dense::TileMatrix& a) {
                       dense::build_potrf(g, a, true);
                     },
                     dense::potrf_total_flops});
  kernels.push_back({"getrf",
                     [](TaskGraph& g, dense::TileMatrix& a) {
                       dense::build_getrf(g, a, true);
                     },
                     dense::getrf_total_flops});
  kernels.push_back({"geqrf",
                     [](TaskGraph& g, dense::TileMatrix& a) {
                       auto aux = dense::build_geqrf(g, a, true);
                     },
                     dense::geqrf_total_flops});

  if (smoke) return run_smoke(kernels);

  struct PlatformCase {
    PlatformPreset preset;
    std::vector<std::size_t> tile_sizes;
    std::vector<std::size_t> matrix_sizes;
  };
  std::vector<PlatformCase> cases;
  if (full) {
    cases.push_back({intel_v100(), {640, 1280, 2560}, {20480, 40960, 61440, 81920, 102400}});
    cases.push_back({amd_a100(), {960, 1920, 3840}, {23040, 46080, 69120, 92160, 115200}});
  } else {
    cases.push_back({intel_v100(), {640, 1280, 2560}, {20480, 40960, 61440}});
    cases.push_back({amd_a100(), {960, 1920, 3840}, {23040, 46080, 69120}});
  }

  const char* scheds[] = {"multiprio", "dmdas", "heteroprio"};
  std::printf("Fig. 5 — dense kernels, GFlop/s (best tile size per scheduler)%s\n\n",
              full ? " [full sweep]" : " [quick; pass --full for the paper sweep]");

  std::vector<BenchRecord> records;
  for (const Kernel& kernel : kernels) {
    for (const PlatformCase& pc : cases) {
      Table t({"N", "multiprio", "dmdas", "heteroprio", "multiprio vs dmdas"});
      for (std::size_t n : pc.matrix_sizes) {
        double best[3] = {0.0, 0.0, 0.0};
        for (std::size_t nb : pc.tile_sizes) {
          if (n % nb != 0 || n / nb < 4) continue;
          for (int s = 0; s < 3; ++s) {
            const Outcome o = run_once(scheds[s], kernel.name, pc.preset, kernel, n, nb);
            best[s] = std::max(best[s], o.gflops);
            records.push_back(o.record);
          }
        }
        const double gain = best[1] > 0.0 ? (best[0] - best[1]) / best[1] : 0.0;
        t.add_row({std::to_string(n), fmt_double(best[0], 0), fmt_double(best[1], 0),
                   fmt_double(best[2], 0), fmt_percent(gain)});
      }
      std::printf("%s on %s\n%s\n", kernel.name, pc.preset.name.c_str(),
                  t.to_ascii().c_str());
    }
  }
  if (!write_bench_json("BENCH_fig5_dense.json", records))
    std::fprintf(stderr, "warning: could not write BENCH_fig5_dense.json\n");
  return 0;
}
