// Regenerates Fig. 8: multifrontal sparse QR across the Fig. 7 matrix set
// on both platforms (2 GPUs, 4 streams each), performance relative to the
// Dmdas scheduler (higher = better), matrices sorted by op count.
// Paper: MultiPrio ≈ +31% mean over Dmdas on Intel-V100, ≈ +12% (≤ +20%)
// on AMD-A100; HeteroPrio in between.
#include <cstdio>

#include "apps/sparseqr/dag_builder.hpp"
#include "apps/sparseqr/generators.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace mp;
  using namespace mp::sqr;
  using namespace mp::bench;
  const bool full = full_mode(argc, argv);

  std::printf("Fig. 8 — sparse QR, performance ratio vs Dmdas (4 streams/GPU)%s\n\n",
              full ? "" : " [quick: subset of matrices; pass --full for all ten]");

  struct Regime {
    const char* label;
    SimConfig cfg;
  };
  std::vector<Regime> regimes(2);
  regimes[0].label = "calibrated models (push-time mapping's best case)";
  regimes[1].label = "cold models (uncalibrated, 10% noise)";
  regimes[1].cfg.calibrated = false;
  regimes[1].cfg.noise_sigma = 0.1;

  for (const Regime& regime : regimes) {
    std::printf("=== %s ===\n\n", regime.label);
    for (auto make_preset : {intel_v100, amd_a100}) {
      const PlatformPreset preset = make_preset(4);
      Table t({"matrix", "dmdas (s)", "heteroprio ratio", "multiprio ratio"});
      double mp_sum = 0.0;
      std::size_t count = 0;
      for (const MatrixSpec& spec : paper_matrix_specs()) {
        if (!full && (spec.gflop_target > 50000.0 || spec.rows > 500000)) continue;
        const SparseMatrix m = generate(spec);
        const SymbolicAnalysis sym = analyze(tall_orientation(m));
        TaskGraph graph;
        (void)build_sparseqr(graph, sym);
        double dmdas_time = 0.0;
        double ratios[2] = {0.0, 0.0};
        const char* scheds[3] = {"dmdas", "heteroprio", "multiprio"};
        for (int s = 0; s < 3; ++s) {
          SimEngine engine(graph, preset.platform, preset.perf, regime.cfg);
          const SimResult r = engine.run(factory(scheds[s]));
          if (s == 0) {
            dmdas_time = r.makespan;
          } else {
            ratios[s - 1] = dmdas_time / r.makespan;
          }
        }
        mp_sum += ratios[1];
        ++count;
        t.add_row({spec.name, fmt_double(dmdas_time, 3), fmt_double(ratios[0], 3),
                   fmt_double(ratios[1], 3)});
      }
      std::printf("%s\n%s", preset.name.c_str(), t.to_ascii().c_str());
      if (count > 0) {
        std::printf("mean MultiPrio gain over Dmdas: %+.1f%%\n\n",
                    100.0 * (mp_sum / static_cast<double>(count) - 1.0));
      }
    }
  }
  return 0;
}
