// Regenerates the paper's Table II (gain-heuristic worked example) and the
// Fig. 3 NOD example, printing paper value vs computed value.
#include <cstdio>

#include "bench_util.hpp"
#include "core/gain.hpp"
#include "core/nod.hpp"

namespace {

void table2() {
  using namespace mp;
  TaskGraph graph;
  const CodeletId cl = graph.add_codelet("k", {ArchType::CPU, ArchType::GPU});
  std::vector<TaskId> tasks;
  for (int i = 0; i < 3; ++i) {
    const DataId d = graph.add_data(100 + static_cast<std::size_t>(i));
    tasks.push_back(graph.submit(cl, {Access{d, AccessMode::ReadWrite}}));
  }
  Platform platform;
  platform.add_workers(ArchType::CPU, platform.ram_node(), 1);
  const MemNodeId gpu = platform.add_gpu_node(0, 10e9, 1e-6);
  platform.add_workers(ArchType::GPU, gpu, 1);

  PerfDatabase db;
  db.set_default(ArchType::CPU, RateSpec{10.0, 0.0, 0.0, 0.0});
  db.set_default(ArchType::GPU, RateSpec{10.0, 0.0, 0.0, 0.0});
  HistoryModel history(graph, db);
  MemoryManager memory(graph, platform);
  // Table II δ values (ms): a1 = CPU, a2 = GPU.
  const double cpu_ms[3] = {1, 5, 20};
  const double gpu_ms[3] = {20, 10, 10};
  for (int i = 0; i < 3; ++i) {
    history.record(tasks[i], ArchType::CPU, cpu_ms[i] * 1e-3);
    history.record(tasks[i], ArchType::GPU, gpu_ms[i] * 1e-3);
  }
  SchedContext ctx;
  ctx.graph = &graph;
  ctx.platform = &platform;
  ctx.perf = &history;
  ctx.memory = &memory;
  ctx.now = [] { return 0.0; };

  GainTracker gain;
  const double paper_a1[3] = {1.0, 0.631, 0.236};
  const double paper_a2[3] = {0.0, 0.368, 0.763};
  Table t({"task", "δ(a1)", "δ(a2)", "gain(a1) paper", "gain(a1) ours",
           "gain(a2) paper", "gain(a2) ours"});
  const char* names[3] = {"t_A", "t_B", "t_C"};
  for (int i = 0; i < 3; ++i) {
    const double g1 = gain.gain(ctx, tasks[i], ArchType::CPU);
    const double g2 = gain.gain(ctx, tasks[i], ArchType::GPU);
    t.add_row({names[i], fmt_double(cpu_ms[i], 0) + "ms", fmt_double(gpu_ms[i], 0) + "ms",
               fmt_double(paper_a1[i], 3), fmt_double(g1, 3), fmt_double(paper_a2[i], 3),
               fmt_double(g2, 3)});
  }
  std::printf("Table II — gain heuristic example (hd(a1) = hd(a2) = %.0f ms)\n%s\n",
              gain.hd(ArchType::CPU) * 1e3, t.to_ascii().c_str());
}

void figure3() {
  using namespace mp;
  // DAG of Fig. 3: T1→{T2,T3}; T2→{T4,T5,T6}; T3→{T6,T7}; T4→T7.
  TaskGraph graph;
  const CodeletId cl = graph.add_codelet("k", {ArchType::CPU});
  const std::vector<std::pair<int, int>> edges = {{0, 1}, {0, 2}, {1, 3}, {1, 4},
                                                  {1, 5}, {2, 5}, {2, 6}, {3, 6}};
  std::vector<DataId> edge_data;
  for (std::size_t e = 0; e < edges.size(); ++e) edge_data.push_back(graph.add_data(64));
  std::vector<TaskId> tasks;
  for (int i = 0; i < 7; ++i) {
    std::vector<Access> acc;
    const DataId own = graph.add_data(64);
    acc.push_back(Access{own, AccessMode::ReadWrite});
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (edges[e].first == i) acc.push_back(Access{edge_data[e], AccessMode::Write});
      if (edges[e].second == i) acc.push_back(Access{edge_data[e], AccessMode::Read});
    }
    tasks.push_back(graph.submit(cl, std::span<const Access>(acc)));
  }
  Platform platform;
  platform.add_workers(ArchType::CPU, platform.ram_node(), 2);
  PerfDatabase db;
  db.set_default(ArchType::CPU, RateSpec{10.0, 0.0, 0.0, 0.0});
  HistoryModel history(graph, db);
  MemoryManager memory(graph, platform);
  SchedContext ctx;
  ctx.graph = &graph;
  ctx.platform = &platform;
  ctx.perf = &history;
  ctx.memory = &memory;

  std::printf("Fig. 3 — NOD criticality example\n");
  std::printf("  NOD(T2): paper 2.5, ours %.1f\n",
              nod_score(ctx, tasks[1], platform.ram_node()));
  std::printf("  NOD(T3): paper 1.0, ours %.1f\n\n",
              nod_score(ctx, tasks[2], platform.ram_node()));
}

}  // namespace

int main() {
  table2();
  figure3();
  return 0;
}
