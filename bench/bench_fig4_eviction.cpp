// Regenerates Fig. 4: simulated Cholesky of a 960×20-tile matrix on a node
// with 1 GPU and 6 CPUs, MultiPrio with and without the eviction mechanism.
// Paper: eviction cuts GPU idle time from 29% to 1% and shortens the
// makespan; the practical critical path is highlighted in the traces.
#include <cstdio>

#include "apps/dense/dense_builders.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace mp;
  using namespace mp::bench;
  (void)argc;
  (void)argv;

  const std::size_t tiles = 20;
  const std::size_t nb = 960;

  TaskGraph graph;
  dense::TileMatrix a(tiles, nb, /*allocate=*/false);
  a.register_handles(graph);
  dense::build_potrf(graph, a, /*expert_priorities=*/false);

  const PlatformPreset preset = fig4_node();
  std::printf("Fig. 4 — eviction-mechanism study\n");
  std::printf("Cholesky %zux%zu tiles of %zu on %s (%zu tasks)\n\n", tiles, tiles, nb,
              preset.name.c_str(), graph.num_tasks());

  Table t({"variant", "makespan (s)", "CPU idle", "GPU idle", "critical path len",
           "paper GPU idle"});
  struct Row {
    const char* variant;
    const char* sched;
    const char* paper;
  };
  for (const Row& row : {Row{"MultiPrio w/o eviction", "multiprio-noevict", "29%"},
                         Row{"MultiPrio with eviction", "multiprio", "1%"}}) {
    SimEngine engine(graph, preset.platform, preset.perf);
    const SimResult r = engine.run(factory(row.sched));
    t.add_row({row.variant, fmt_double(r.makespan, 4), fmt_percent(r.idle_per_node[0]),
               fmt_percent(gpu_idle(preset.platform, r)),
               std::to_string(engine.trace().practical_critical_path().size()),
               row.paper});
  }
  std::printf("%s\n", t.to_ascii().c_str());

  // Show the end-of-DAG behaviour the paper's traces highlight.
  std::printf("Gantt, with eviction (# = busy, last rows are the GPU stream):\n");
  SimEngine engine(graph, preset.platform, preset.perf);
  (void)engine.run(factory("multiprio"));
  std::printf("%s\n", engine.trace().ascii_gantt(100).c_str());
  return 0;
}
