#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/csv.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"

namespace mp {
namespace {

TEST(Ids, DefaultIsInvalid) {
  TaskId t;
  EXPECT_FALSE(t.valid());
  EXPECT_EQ(t, TaskId::invalid());
}

TEST(Ids, ValueRoundTrip) {
  TaskId t{std::uint32_t{7}};
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.value(), 7u);
  EXPECT_EQ(t.index(), 7u);
}

TEST(Ids, DistinctTypesCompareOnlyWithinType) {
  TaskId a{std::uint32_t{1}};
  TaskId b{std::uint32_t{2}};
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
}

TEST(Ids, Hashable) {
  std::unordered_set<TaskId> s;
  s.insert(TaskId{std::uint32_t{1}});
  s.insert(TaskId{std::uint32_t{1}});
  s.insert(TaskId{std::uint32_t{2}});
  EXPECT_EQ(s.size(), 2u);
}

TEST(Ids, ArchHelpers) {
  EXPECT_EQ(arch_index(ArchType::CPU), 0u);
  EXPECT_EQ(arch_index(ArchType::GPU), 1u);
  EXPECT_STREQ(arch_name(ArchType::CPU), "CPU");
  EXPECT_STREQ(arch_name(ArchType::GPU), "GPU");
}

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differ = 0;
  for (int i = 0; i < 32; ++i) differ += a.next_u64() != b.next_u64();
  EXPECT_GT(differ, 30);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextInBounds) {
  Rng r(9);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.next_in(3, 17);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 17u);
  }
}

TEST(Rng, NextInCoversRange) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_in(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng r(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = r.next_normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(Rng, DeriveIndependentStreams) {
  Rng a = Rng::derive(42, 0);
  Rng b = Rng::derive(42, 1);
  int differ = 0;
  for (int i = 0; i < 32; ++i) differ += a.next_u64() != b.next_u64();
  EXPECT_GT(differ, 30);
}

TEST(Table, AsciiAlignsColumns) {
  Table t({"name", "v"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  const std::string s = t.to_ascii();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("| long-name |"), std::string::npos);
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t({"x"});
  t.add_row({"a,b"});
  t.add_row({"say \"hi\""});
  const std::string s = t.to_csv();
  EXPECT_NE(s.find("\"a,b\""), std::string::npos);
  EXPECT_NE(s.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, RowWidthEnforced) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "row width");
}

TEST(Fmt, DoubleAndPercent) {
  EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_percent(0.295, 0), "30%");
  EXPECT_EQ(fmt_percent(0.01, 1), "1.0%");
}

}  // namespace
}  // namespace mp
