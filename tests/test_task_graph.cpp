#include <gtest/gtest.h>

#include <algorithm>

#include "runtime/task_graph.hpp"
#include "test_util.hpp"

namespace mp {
namespace {

bool has_edge(const TaskGraph& g, TaskId u, TaskId v) {
  const auto s = g.successors(u);
  return std::find(s.begin(), s.end(), v) != s.end();
}

TEST(TaskGraph, RawDependency) {
  TaskGraph g;
  const CodeletId cl = g.add_codelet("w", {ArchType::CPU});
  const DataId d = g.add_data(64);
  const TaskId writer = g.submit(cl, {Access{d, AccessMode::Write}});
  const TaskId reader = g.submit(cl, {Access{d, AccessMode::Read}});
  EXPECT_TRUE(has_edge(g, writer, reader));
  EXPECT_EQ(g.in_degree(reader), 1u);
}

TEST(TaskGraph, WarDependency) {
  TaskGraph g;
  const CodeletId cl = g.add_codelet("w", {ArchType::CPU});
  const DataId d = g.add_data(64);
  const TaskId w0 = g.submit(cl, {Access{d, AccessMode::Write}});
  const TaskId r = g.submit(cl, {Access{d, AccessMode::Read}});
  const TaskId w1 = g.submit(cl, {Access{d, AccessMode::Write}});
  EXPECT_TRUE(has_edge(g, r, w1));  // WAR
  EXPECT_FALSE(has_edge(g, w0, w1));  // WAW subsumed: readers already guard
  EXPECT_EQ(g.in_degree(w1), 1u);
}

TEST(TaskGraph, WawDependencyWithoutReaders) {
  TaskGraph g;
  const CodeletId cl = g.add_codelet("w", {ArchType::CPU});
  const DataId d = g.add_data(64);
  const TaskId w0 = g.submit(cl, {Access{d, AccessMode::Write}});
  const TaskId w1 = g.submit(cl, {Access{d, AccessMode::Write}});
  EXPECT_TRUE(has_edge(g, w0, w1));
}

TEST(TaskGraph, ReadWriteActsAsBoth) {
  TaskGraph g;
  const CodeletId cl = g.add_codelet("w", {ArchType::CPU});
  const DataId d = g.add_data(64);
  const TaskId w0 = g.submit(cl, {Access{d, AccessMode::Write}});
  const TaskId rw = g.submit(cl, {Access{d, AccessMode::ReadWrite}});
  const TaskId r = g.submit(cl, {Access{d, AccessMode::Read}});
  EXPECT_TRUE(has_edge(g, w0, rw));
  EXPECT_TRUE(has_edge(g, rw, r));
}

TEST(TaskGraph, ParallelReadersShareNoEdges) {
  TaskGraph g;
  const CodeletId cl = g.add_codelet("w", {ArchType::CPU});
  const DataId d = g.add_data(64);
  const TaskId w = g.submit(cl, {Access{d, AccessMode::Write}});
  const TaskId r0 = g.submit(cl, {Access{d, AccessMode::Read}});
  const TaskId r1 = g.submit(cl, {Access{d, AccessMode::Read}});
  EXPECT_TRUE(has_edge(g, w, r0));
  EXPECT_TRUE(has_edge(g, w, r1));
  EXPECT_FALSE(has_edge(g, r0, r1));
}

TEST(TaskGraph, DuplicateEdgesCollapse) {
  TaskGraph g;
  const CodeletId cl = g.add_codelet("w", {ArchType::CPU});
  const DataId d0 = g.add_data(64);
  const DataId d1 = g.add_data(64);
  const TaskId w = g.submit(cl, {Access{d0, AccessMode::Write}, Access{d1, AccessMode::Write}});
  const TaskId r =
      g.submit(cl, {Access{d0, AccessMode::Read}, Access{d1, AccessMode::Read}});
  EXPECT_EQ(g.successors(w).size(), 1u);
  EXPECT_EQ(g.in_degree(r), 1u);
}

TEST(TaskGraph, InitialReadyAreRoots) {
  test::EdgeGraph eg(4, {{0, 2}, {1, 2}, {2, 3}});
  const auto ready = eg.graph.initial_ready();
  ASSERT_EQ(ready.size(), 2u);
  EXPECT_EQ(ready[0], eg.tasks[0]);
  EXPECT_EQ(ready[1], eg.tasks[1]);
}

TEST(TaskGraph, FootprintSumsAccessBytes) {
  TaskGraph g;
  const CodeletId cl = g.add_codelet("w", {ArchType::CPU});
  const DataId d0 = g.add_data(100);
  const DataId d1 = g.add_data(28);
  const TaskId t =
      g.submit(cl, {Access{d0, AccessMode::Read}, Access{d1, AccessMode::Write}});
  EXPECT_EQ(g.task(t).footprint_bytes, 128u);
}

TEST(TaskGraph, TotalFlopsAccumulates) {
  TaskGraph g;
  const CodeletId cl = g.add_codelet("w", {ArchType::CPU});
  const DataId d = g.add_data(8);
  SubmitOptions o1;
  o1.flops = 10.0;
  g.submit(cl, {Access{d, AccessMode::ReadWrite}}, o1);
  SubmitOptions o2;
  o2.flops = 32.0;
  g.submit(cl, {Access{d, AccessMode::ReadWrite}}, o2);
  EXPECT_DOUBLE_EQ(g.total_flops(), 42.0);
}

TEST(TaskGraph, CanExecFollowsCodelet) {
  TaskGraph g;
  const CodeletId cpu_only = g.add_codelet("c", {ArchType::CPU});
  const CodeletId both = g.add_codelet("b", {ArchType::CPU, ArchType::GPU});
  const DataId d = g.add_data(8);
  const TaskId t0 = g.submit(cpu_only, {Access{d, AccessMode::Read}});
  const TaskId t1 = g.submit(both, {Access{d, AccessMode::Read}});
  EXPECT_TRUE(g.can_exec(t0, ArchType::CPU));
  EXPECT_FALSE(g.can_exec(t0, ArchType::GPU));
  EXPECT_TRUE(g.can_exec(t1, ArchType::GPU));
}

TEST(TaskGraph, DepCountersReleaseInOrder) {
  test::EdgeGraph eg(4, {{0, 2}, {1, 2}, {2, 3}});
  DepCounters deps(eg.graph);
  EXPECT_TRUE(deps.is_ready(eg.tasks[0]));
  EXPECT_FALSE(deps.is_ready(eg.tasks[2]));
  std::vector<TaskId> out;
  deps.complete(eg.tasks[0], out);
  EXPECT_TRUE(out.empty());
  deps.complete(eg.tasks[1], out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], eg.tasks[2]);
  out.clear();
  deps.complete(eg.tasks[2], out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], eg.tasks[3]);
}

TEST(TaskGraph, UpwardRankIsCriticalPath) {
  // chain 0→1→2 plus isolated 3: ranks 3f, 2f, f, f.
  test::EdgeGraph eg(4, {{0, 1}, {1, 2}}, /*flops=*/5.0);
  const auto rank = eg.graph.upward_rank_flops();
  EXPECT_DOUBLE_EQ(rank[0], 15.0);
  EXPECT_DOUBLE_EQ(rank[1], 10.0);
  EXPECT_DOUBLE_EQ(rank[2], 5.0);
  EXPECT_DOUBLE_EQ(rank[3], 5.0);
}

TEST(TaskGraph, SetUserPriority) {
  test::EdgeGraph eg(2, {{0, 1}});
  eg.graph.set_user_priority(eg.tasks[1], 99);
  EXPECT_EQ(eg.graph.task(eg.tasks[1]).user_priority, 99);
}

TEST(TaskGraph, SelfCheckPassesOnStfGraphs) {
  test::EdgeGraph eg(10, {{0, 5}, {1, 5}, {5, 9}, {2, 9}});
  eg.graph.self_check();  // aborts on failure
}

TEST(TaskGraphDeath, BadCodeletRejected) {
  TaskGraph g;
  const DataId d = g.add_data(8);
  EXPECT_DEATH((void)g.submit(CodeletId{}, {Access{d, AccessMode::Read}}), "MP_CHECK");
}

}  // namespace
}  // namespace mp
