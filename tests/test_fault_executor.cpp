// Fault tolerance in the threaded executor: thrown kernels become retries,
// injected transient failures are retried against the budget, exhausted
// budgets abandon the descendant closure, and fail-stop worker loss degrades
// onto the survivors.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "exec/thread_executor.hpp"
#include "sched/schedulers.hpp"
#include "test_util.hpp"

namespace mp {
namespace {

ExecSchedulerFactory by_name(const std::string& name) {
  return [name](SchedContext ctx) { return make_scheduler_by_name(name, std::move(ctx)); };
}

TEST(ThreadExecutorFault, ThrownKernelIsRetriedWithoutAPlan) {
  TaskGraph g;
  constexpr int kTasks = 20;
  std::vector<std::atomic<int>> calls(kTasks);
  const CodeletId cl = g.add_codelet(
      "flaky", {ArchType::CPU, ArchType::GPU},
      [&calls](const Task& t, std::span<void* const>) {
        // First attempt of every task throws; the retry succeeds.
        if (calls[t.iparams[0]].fetch_add(1) == 0)
          throw std::runtime_error("transient");
      });
  for (int i = 0; i < kTasks; ++i) {
    const DataId d = g.add_data(8);
    SubmitOptions o;
    o.iparams = {i, 0, 0, 0};
    g.submit(cl, {Access{d, AccessMode::ReadWrite}}, o);
  }
  Platform p = test::small_platform(3, 1);
  PerfDatabase db = test::flat_perf();
  ThreadExecutor exec(g, p, db);
  const ExecResult r = exec.run(by_name("multiprio"));
  EXPECT_EQ(r.tasks_executed, static_cast<std::size_t>(kTasks));
  EXPECT_EQ(r.fault.failures_injected, static_cast<std::size_t>(kTasks));
  EXPECT_EQ(r.fault.retries, static_cast<std::size_t>(kTasks));
  EXPECT_EQ(r.fault.tasks_abandoned, 0u);
  EXPECT_FALSE(r.fault.degraded);
  for (auto& c : calls) EXPECT_EQ(c.load(), 2);  // one failure + one success
}

TEST(ThreadExecutorFault, InjectedTransientFailuresRetryToCompletion) {
  TaskGraph g;
  std::atomic<int> runs{0};
  const CodeletId cl = g.add_codelet(
      "tick", {ArchType::CPU, ArchType::GPU},
      [&runs](const Task&, std::span<void* const>) { runs.fetch_add(1); });
  for (int i = 0; i < 40; ++i) {
    const DataId d = g.add_data(8);
    g.submit(cl, {Access{d, AccessMode::ReadWrite}});
  }
  Platform p = test::small_platform(2, 1);
  PerfDatabase db = test::flat_perf();
  ThreadExecutor exec(g, p, db);
  ExecConfig cfg;
  cfg.stall_timeout = 0.05;
  cfg.fault.transient.push_back(TransientFaultSpec{CodeletId{}, 0.4});
  cfg.fault.retry_budget = 30;
  const ExecResult r = exec.run(by_name("eager"), cfg);
  EXPECT_EQ(r.tasks_executed, 40u);
  EXPECT_GT(r.fault.failures_injected, 0u);
  EXPECT_EQ(r.fault.retries, r.fault.failures_injected);
  EXPECT_EQ(r.fault.tasks_abandoned, 0u);
  // Every attempt runs the kernel; failed attempts discard the result.
  EXPECT_EQ(runs.load(), 40 + static_cast<int>(r.fault.failures_injected));
}

TEST(ThreadExecutorFault, ExhaustedBudgetAbandonsDescendants) {
  // A 3-chain that always throws, plus an independent healthy task.
  TaskGraph g;
  std::atomic<int> ok_runs{0};
  const CodeletId bad = g.add_codelet(
      "bad", {ArchType::CPU},
      [](const Task&, std::span<void* const>) { throw std::runtime_error("hw"); });
  const CodeletId ok = g.add_codelet(
      "ok", {ArchType::CPU},
      [&ok_runs](const Task&, std::span<void* const>) { ok_runs.fetch_add(1); });
  const DataId chain = g.add_data(8);
  g.submit(bad, {Access{chain, AccessMode::ReadWrite}});
  g.submit(bad, {Access{chain, AccessMode::ReadWrite}});
  g.submit(bad, {Access{chain, AccessMode::ReadWrite}});
  const DataId solo = g.add_data(8);
  g.submit(ok, {Access{solo, AccessMode::ReadWrite}});
  Platform p = test::small_platform(2, 0);
  PerfDatabase db = test::flat_perf();
  ThreadExecutor exec(g, p, db);
  ExecConfig cfg;
  cfg.stall_timeout = 0.05;
  cfg.fault.retry_budget = 2;
  const ExecResult r = exec.run(by_name("lws"), cfg);
  EXPECT_EQ(r.tasks_executed, 1u);
  EXPECT_EQ(r.fault.tasks_abandoned, 3u);  // head + the two chained successors
  EXPECT_EQ(r.fault.failures_injected, 3u);  // head: 1 try + 2 retries
  EXPECT_TRUE(r.fault.degraded);
  EXPECT_EQ(ok_runs.load(), 1);
}

TEST(ThreadExecutorFault, WorkerLossDegradesOntoSurvivors) {
  TaskGraph g;
  std::atomic<int> runs{0};
  const CodeletId cl = g.add_codelet(
      "tick", {ArchType::CPU, ArchType::GPU},
      [&runs](const Task&, std::span<void* const>) { runs.fetch_add(1); });
  for (int i = 0; i < 30; ++i) {
    const DataId d = g.add_data(8);
    g.submit(cl, {Access{d, AccessMode::ReadWrite}});
  }
  Platform p = test::small_platform(2, 1);
  WorkerId gpu_w{};
  for (const Worker& w : p.workers())
    if (w.arch == ArchType::GPU) gpu_w = w.id;
  PerfDatabase db = test::flat_perf();

  for (const char* name : {"multiprio", "eager", "heteroprio"}) {
    runs.store(0);
    ThreadExecutor exec(g, p, db);
    ExecConfig cfg;
    cfg.stall_timeout = 0.05;
    cfg.fault.worker_losses.push_back(WorkerLossSpec{gpu_w, 0.0});  // dies at start
    const ExecResult r = exec.run(by_name(name), cfg);
    EXPECT_EQ(r.tasks_executed, 30u) << name;
    EXPECT_EQ(runs.load(), 30) << name;
    EXPECT_EQ(r.fault.workers_lost, 1u) << name;
    EXPECT_EQ(r.fault.tasks_abandoned, 0u) << name;
    EXPECT_TRUE(r.fault.degraded) << name;
    EXPECT_EQ(r.tasks_per_worker[gpu_w.index()], 0u) << name;
  }
}

TEST(ThreadExecutorFault, LossOfOnlyCapableWorkerAbandonsOrphans) {
  TaskGraph g;
  std::atomic<int> runs{0};
  const CodeletId gpu_only = g.add_codelet(
      "gonly", {ArchType::GPU},
      [&runs](const Task&, std::span<void* const>) { runs.fetch_add(1); });
  const DataId head = g.add_data(8);
  g.submit(gpu_only, {Access{head, AccessMode::ReadWrite}});
  g.submit(gpu_only, {Access{head, AccessMode::ReadWrite}});
  Platform p = test::small_platform(2, 1);
  WorkerId gpu_w{};
  for (const Worker& w : p.workers())
    if (w.arch == ArchType::GPU) gpu_w = w.id;
  PerfDatabase db = test::flat_perf();
  ThreadExecutor exec(g, p, db);
  ExecConfig cfg;
  cfg.stall_timeout = 0.05;
  cfg.fault.worker_losses.push_back(WorkerLossSpec{gpu_w, 0.0});
  const ExecResult r = exec.run(by_name("eager"), cfg);
  EXPECT_EQ(r.tasks_executed, 0u);
  EXPECT_EQ(r.fault.tasks_abandoned, 2u);
  EXPECT_EQ(runs.load(), 0);
  EXPECT_TRUE(r.fault.degraded);
}

TEST(ThreadExecutorFault, StragglersSlowButDoNotBreakTheRun) {
  TaskGraph g;
  const CodeletId cl = g.add_codelet(
      "tick", {ArchType::CPU, ArchType::GPU},
      [](const Task&, std::span<void* const>) {});
  for (int i = 0; i < 10; ++i) {
    const DataId d = g.add_data(8);
    g.submit(cl, {Access{d, AccessMode::ReadWrite}});
  }
  Platform p = test::small_platform(2, 0);
  PerfDatabase db = test::flat_perf();
  ThreadExecutor exec(g, p, db);
  ExecConfig cfg;
  cfg.stall_timeout = 0.05;
  cfg.fault.stragglers.push_back(StragglerSpec{CodeletId{}, 1.0, 2.0});
  const ExecResult r = exec.run(by_name("random"), cfg);
  EXPECT_EQ(r.tasks_executed, 10u);
  EXPECT_EQ(r.fault.stragglers_injected, 10u);
  EXPECT_FALSE(r.fault.degraded);
}

}  // namespace
}  // namespace mp
