// The sharded (internally-locked) MultiPrio protocol: per-node shard locks,
// the Pending→Taken commit CAS, the live-mask slot-retire protocol and the
// work-epoch wait — explored end-to-end through ThreadExecutor's thin-lock
// engine path, plus the SkipNodeLock seeded mutation that proves the
// detector still detects now that cross-node races are benign by design.
//
// Exploration tests run only in -DMP_VERIFY=ON builds (`ctest -L verify`);
// the capability and determinism tests run in every build.
#include <gtest/gtest.h>

#include <string>

#include "common/check.hpp"
#include "core/multiprio.hpp"
#include "exec/thread_executor.hpp"
#include "obs/observer.hpp"
#include "sched/schedulers.hpp"
#include "sim/engine.hpp"
#include "test_util.hpp"
#include "verify/explore.hpp"
#include "verify/mutation.hpp"

namespace mp {
namespace {

ExecSchedulerFactory by_name(const std::string& name) {
  return [name](SchedContext ctx) { return make_scheduler_by_name(name, std::move(ctx)); };
}

// Same 6-task DAG as test_verify.cpp (diamond plus two independents), but
// driven through the sharded default. `cpus` = 2 for the mutation tests:
// SkipNodeLock reintroduces same-node-worker races, which need two workers
// popping the same shard.
void run_sharded_fixture_once(bool with_observer, std::size_t cpus = 1) {
  TaskGraph g;
  const CodeletId cl = g.add_codelet("work", {ArchType::CPU, ArchType::GPU},
                                     [](const Task&, std::span<void* const>) {});
  std::vector<DataId> d;
  for (int i = 0; i < 5; ++i) d.push_back(g.add_data(64));
  g.submit(cl, {Access{d[0], AccessMode::Write}});
  g.submit(cl, {Access{d[0], AccessMode::Read}, Access{d[1], AccessMode::Write}});
  g.submit(cl, {Access{d[0], AccessMode::Read}, Access{d[2], AccessMode::Write}});
  g.submit(cl, {Access{d[1], AccessMode::Read}, Access{d[2], AccessMode::Read}});
  g.submit(cl, {Access{d[3], AccessMode::ReadWrite}});
  g.submit(cl, {Access{d[4], AccessMode::ReadWrite}});

  Platform p = test::small_platform(cpus, 1);
  PerfDatabase db = test::flat_perf();
  ThreadExecutor exec(g, p, db);
  RecordingObserver obs;
  ExecConfig cfg;
  cfg.stall_timeout = 0.05;
  if (with_observer) cfg.observer = &obs;
  const ExecResult r = exec.run(by_name("multiprio"), cfg);
  MP_CHECK_MSG(r.tasks_executed == 6, "fixture must execute all 6 tasks");
  if (with_observer) {
    MP_CHECK_MSG(obs.events().count(SchedEventKind::Pop) == 6,
                 "one POP event per executed task");
    MP_CHECK_MSG(obs.events().accounting_ok(), "event accounting out of balance");
  }
}

// --- capability plumbing (all builds) --------------------------------------

TEST(ShardedCapability, MultiPrioIsInternalCoarseVariantIsNot) {
  test::EdgeGraph eg(2, {});
  Platform p = test::small_platform(1, 1);
  test::ManualContext mc(eg.graph, p, test::flat_perf());

  const auto sharded = make_scheduler_by_name("multiprio", mc.ctx());
  EXPECT_EQ(sharded->concurrency(), SchedConcurrency::Internal);
  EXPECT_EQ(sharded->name(), "multiprio");

  const auto coarse = make_scheduler_by_name("multiprio-coarse", mc.ctx());
  EXPECT_EQ(coarse->concurrency(), SchedConcurrency::ExternalLock);
  EXPECT_EQ(coarse->name(), "multiprio-coarse");

  // Every mutex-free policy in src/sched/ keeps the engine's coarse lock.
  for (const char* name : {"eager", "random", "lws", "dm", "dmda", "dmdas",
                           "heteroprio"}) {
    const auto s = make_scheduler_by_name(name, mc.ctx());
    EXPECT_EQ(s->concurrency(), SchedConcurrency::ExternalLock) << name;
  }
}

TEST(ShardedCapability, WorkEpochAdvancesOnPushTowardTheWorkerNode) {
  test::EdgeGraph eg(3, {});
  Platform p = test::small_platform(1, 1);
  test::ManualContext mc(eg.graph, p, test::flat_perf());
  MultiPrioScheduler s(mc.ctx());

  const WorkerId cpu{std::size_t{0}};
  const std::uint64_t before = s.work_epoch(cpu);
  s.push(eg.tasks[0]);
  const std::uint64_t after = s.work_epoch(cpu);
  EXPECT_GT(after, before) << "a push toward the worker's node must bump its epoch";

  // wait_for_work with a moved epoch returns immediately (predicate already
  // true) — the lost-wakeup closure the engine's park path relies on.
  s.wait_for_work(cpu, before, /*timeout_s=*/60.0, [] { return false; });
  // A canceled wait returns promptly too, epoch moved or not.
  s.wait_for_work(cpu, after, /*timeout_s=*/60.0, [] { return true; });
  s.interrupt_waiters();  // callable any time, with no waiters parked
}

// --- sharded == coarse decisions (all builds) ------------------------------

TEST(ShardedDeterminism, SimEngineShardedMatchesCoarseByteForByte) {
  // Under the single-threaded SimEngine the two lock protocols must be pure
  // overhead: same pops, same evictions, same event stream, same makespan.
  test::EdgeGraph eg(24, {{0, 8},  {1, 8},  {2, 9},  {3, 10}, {8, 16},
                          {9, 16}, {10, 17}, {4, 11}, {5, 12}, {11, 18},
                          {12, 18}, {6, 13}, {7, 14}, {13, 19}, {14, 19},
                          {15, 20}, {16, 21}, {17, 21}, {18, 22}, {19, 22}});
  const Platform p = test::small_platform(2, 2);
  const PerfDatabase db = test::flat_perf();
  auto run = [&](const std::string& name, RecordingObserver* obs) {
    SimConfig sc;
    sc.observer = obs;
    SimEngine engine(eg.graph, p, db, sc);
    return engine.run([&](SchedContext ctx) {
      return make_scheduler_by_name(name, std::move(ctx));
    });
  };
  RecordingObserver obs_sharded;
  RecordingObserver obs_coarse;
  const SimResult sharded = run("multiprio", &obs_sharded);
  const SimResult coarse = run("multiprio-coarse", &obs_coarse);

  EXPECT_EQ(sharded.makespan, coarse.makespan);  // bitwise, not approximate
  EXPECT_EQ(sharded.tasks_executed, coarse.tasks_executed);
  EXPECT_EQ(sharded.evictions, coarse.evictions);
  EXPECT_EQ(sharded.failed_pops, coarse.failed_pops);
  EXPECT_EQ(obs_sharded.events().to_csv(), obs_coarse.events().to_csv())
      << "lock sharding must not change a single scheduling decision";
}

// --- exploration (MP_VERIFY builds) ----------------------------------------

TEST(ShardedExplore, TinyFixtureExhaustsScheduleSpace) {
  if (!verify::exploration_supported()) GTEST_SKIP() << "needs -DMP_VERIFY=ON";
  // Two independent tasks, 1 CPU + 1 GPU = a 2-memory-node platform: the
  // full sharded protocol (2 shard locks + push_mu + engine mu + per-shard
  // condvars) explored to exhaustion.
  verify::ExploreConfig cfg;
  cfg.mode = verify::ExploreConfig::Mode::Exhaustive;
  cfg.max_schedules = 200000;
  const verify::ExploreResult r = verify::explore(
      [] {
        TaskGraph g;
        const CodeletId cl =
            g.add_codelet("work", {ArchType::CPU, ArchType::GPU},
                          [](const Task&, std::span<void* const>) {});
        const DataId a = g.add_data(64);
        const DataId b = g.add_data(64);
        g.submit(cl, {Access{a, AccessMode::ReadWrite}});
        g.submit(cl, {Access{b, AccessMode::ReadWrite}});
        Platform p = test::small_platform(1, 1);
        PerfDatabase db = test::flat_perf();
        ThreadExecutor exec(g, p, db);
        ExecConfig ecfg;
        ecfg.stall_timeout = 0.05;
        const ExecResult res = exec.run(by_name("multiprio"), ecfg);
        MP_CHECK(res.tasks_executed == 2);
      },
      cfg);
  EXPECT_FALSE(r.violation) << r.summary();
  EXPECT_TRUE(r.exhausted) << "DFS must terminate on the tiny sharded fixture, ran "
                           << r.schedules << " schedules";
  EXPECT_GT(r.schedules, 1u);
}

TEST(ShardedExplore, FixtureExploresCleanExhaustive) {
  if (!verify::exploration_supported()) GTEST_SKIP() << "needs -DMP_VERIFY=ON";
  verify::ExploreConfig cfg;
  cfg.mode = verify::ExploreConfig::Mode::Exhaustive;
  cfg.max_schedules = 10000;  // budget-bounded; clean within it
  const verify::ExploreResult r =
      verify::explore([] { run_sharded_fixture_once(/*with_observer=*/false); }, cfg);
  EXPECT_FALSE(r.violation) << r.summary();
  EXPECT_GT(r.schedules, 1u);
}

TEST(ShardedExplore, FixtureWithObserverExploresCleanPct) {
  if (!verify::exploration_supported()) GTEST_SKIP() << "needs -DMP_VERIFY=ON";
  verify::ExploreConfig cfg;
  cfg.mode = verify::ExploreConfig::Mode::Pct;
  cfg.max_schedules = 200;
  cfg.seed = 7;
  const verify::ExploreResult r =
      verify::explore([] { run_sharded_fixture_once(/*with_observer=*/true); }, cfg);
  EXPECT_FALSE(r.violation) << r.summary();
  EXPECT_EQ(r.schedules, 200u);
}

TEST(ShardedExplore, TwoSameNodeWorkersExploreClean) {
  if (!verify::exploration_supported()) GTEST_SKIP() << "needs -DMP_VERIFY=ON";
  // The same-node-contention fixture the mutation below corrupts — first
  // prove it is clean with the shard lock in place.
  verify::ExploreConfig cfg;
  cfg.mode = verify::ExploreConfig::Mode::Pct;
  cfg.max_schedules = 500;
  cfg.seed = 3;
  const verify::ExploreResult r = verify::explore(
      [] { run_sharded_fixture_once(/*with_observer=*/false, /*cpus=*/2); }, cfg);
  EXPECT_FALSE(r.violation) << r.summary();
}

TEST(ShardedMutation, SkipNodeLockIsCaughtExhaustive) {
  if (!verify::exploration_supported()) GTEST_SKIP() << "needs -DMP_VERIFY=ON";
  verify::ScopedMutation arm(verify::Mutation::SkipNodeLock);
  verify::ExploreConfig cfg;
  cfg.mode = verify::ExploreConfig::Mode::Exhaustive;
  cfg.max_schedules = 10000;  // the detection budget the suite guarantees
  const verify::ExploreResult r = verify::explore(
      [] { run_sharded_fixture_once(/*with_observer=*/false, /*cpus=*/2); }, cfg);
  ASSERT_TRUE(r.violation)
      << "a POP running without its shard lock must be detected within 10k "
      << "interleavings; " << r.summary();
  EXPECT_FALSE(r.violation_message.empty());
  EXPECT_FALSE(r.violation_trace.empty()) << "violation must carry the schedule";
}

TEST(ShardedMutation, SkipNodeLockIsCaughtByPct) {
  if (!verify::exploration_supported()) GTEST_SKIP() << "needs -DMP_VERIFY=ON";
  verify::ScopedMutation arm(verify::Mutation::SkipNodeLock);
  verify::ExploreConfig cfg;
  cfg.mode = verify::ExploreConfig::Mode::Pct;
  cfg.max_schedules = 10000;
  cfg.seed = 1;
  const verify::ExploreResult r = verify::explore(
      [] { run_sharded_fixture_once(/*with_observer=*/false, /*cpus=*/2); }, cfg);
  EXPECT_TRUE(r.violation) << r.summary();
}

}  // namespace
}  // namespace mp
