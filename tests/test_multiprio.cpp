// Unit tests of the MultiPrio scheduler's PUSH/POP mechanics (Algorithms 1
// and 2), the pop_condition, and the eviction mechanism.
#include <gtest/gtest.h>

#include "core/multiprio.hpp"
#include "test_util.hpp"

namespace mp {
namespace {

/// 2 CPUs on RAM + 1 GPU. δ is controlled via recorded history samples.
struct World {
  TaskGraph graph;
  Platform platform = test::small_platform(2, 1);
  MemNodeId ram;
  MemNodeId gpu{std::size_t{1}};
  CodeletId both;
  CodeletId cpu_only;
  CodeletId gpu_only;
  test::ManualContext mc;

  World()
      : ram(platform.ram_node()),
        both(graph.add_codelet("both", {ArchType::CPU, ArchType::GPU})),
        cpu_only(graph.add_codelet("conly", {ArchType::CPU})),
        gpu_only(graph.add_codelet("gonly", {ArchType::GPU})),
        mc(graph, platform, test::flat_perf()) {}

  TaskId add_task(CodeletId cl, double cpu_s, double gpu_s) {
    const DataId d = graph.add_data(next_bytes_++);
    const TaskId t = graph.submit(cl, {Access{d, AccessMode::ReadWrite}});
    if (graph.codelet(cl).can_exec(ArchType::CPU)) mc.history.record(t, ArchType::CPU, cpu_s);
    if (graph.codelet(cl).can_exec(ArchType::GPU)) mc.history.record(t, ArchType::GPU, gpu_s);
    return t;
  }

  WorkerId cpu_worker() const { return platform.workers_of_node(ram)[0]; }
  WorkerId gpu_worker() const { return platform.workers_of_node(gpu)[0]; }

  std::size_t next_bytes_ = 100;
};

TEST(MultiPrio, PushDuplicatesIntoAllCapableHeaps) {
  World w;
  MultiPrioScheduler s(w.mc.ctx());
  const TaskId t = w.add_task(w.both, 10e-3, 1e-3);
  s.push(t);
  EXPECT_EQ(s.ready_tasks_count(w.ram), 1u);
  EXPECT_EQ(s.ready_tasks_count(w.gpu), 1u);
  EXPECT_TRUE(s.heap(w.ram).contains(t));
  EXPECT_TRUE(s.heap(w.gpu).contains(t));
  EXPECT_EQ(s.pending_count(), 1u);
}

TEST(MultiPrio, SingleArchTaskOnlyInItsHeap) {
  World w;
  MultiPrioScheduler s(w.mc.ctx());
  const TaskId t = w.add_task(w.cpu_only, 10e-3, 0.0);
  s.push(t);
  EXPECT_EQ(s.ready_tasks_count(w.ram), 1u);
  EXPECT_EQ(s.ready_tasks_count(w.gpu), 0u);
}

TEST(MultiPrio, BestRemainingWorkAccumulatesOnBestArchNode) {
  World w;
  MultiPrioScheduler s(w.mc.ctx());
  const TaskId t = w.add_task(w.both, 10e-3, 1e-3);  // GPU best
  s.push(t);
  EXPECT_DOUBLE_EQ(s.best_remaining_work(w.gpu), 1e-3);
  EXPECT_DOUBLE_EQ(s.best_remaining_work(w.ram), 0.0);
}

TEST(MultiPrio, PopByBestArchWorkerAlwaysAllowed) {
  World w;
  MultiPrioScheduler s(w.mc.ctx());
  const TaskId t = w.add_task(w.both, 10e-3, 1e-3);
  s.push(t);
  const auto popped = s.pop(w.gpu_worker());
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(*popped, t);
  EXPECT_EQ(s.pending_count(), 0u);
  EXPECT_DOUBLE_EQ(s.best_remaining_work(w.gpu), 0.0);  // ledger reversed
}

TEST(MultiPrio, PopRemovesDuplicatesLazily) {
  World w;
  MultiPrioScheduler s(w.mc.ctx());
  const TaskId t0 = w.add_task(w.both, 10e-3, 1e-3);
  const TaskId t1 = w.add_task(w.both, 1e-3, 10e-3);  // CPU best
  s.push(t0);
  s.push(t1);
  ASSERT_EQ(s.pop(w.gpu_worker()), std::optional<TaskId>(t0));
  // t0's duplicate is still in the CPU heap, but a CPU pop must skip it.
  const auto popped = s.pop(w.cpu_worker());
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(*popped, t1);
}

TEST(MultiPrio, PopConditionRejectsSlowWorkerWhenBestIsFree) {
  World w;
  MultiPrioScheduler s(w.mc.ctx());
  // One GPU-best task; GPU has nothing else queued: a CPU worker must not
  // steal it (eviction instead).
  const TaskId t = w.add_task(w.both, 100e-3, 1e-3);
  s.push(t);
  // brw(GPU) after this push is 1 ms, not > 100 ms: condition fails.
  const auto popped = s.pop(w.cpu_worker());
  EXPECT_FALSE(popped.has_value());
  EXPECT_FALSE(s.heap(w.ram).contains(t));  // evicted from the CPU heap
  EXPECT_TRUE(s.heap(w.gpu).contains(t));   // survives in the best heap
  EXPECT_GE(s.eviction_total(), 1u);
  // The GPU worker still picks it up.
  EXPECT_EQ(s.pop(w.gpu_worker()), std::optional<TaskId>(t));
}

TEST(MultiPrio, PopConditionAllowsSlowWorkerWhenBestIsBusy) {
  World w;
  MultiPrioScheduler s(w.mc.ctx());
  // Pile lots of GPU-best work (brw ≈ 50 ms), then a small task whose CPU
  // time (10 ms) is below the backlog: the CPU may take it.
  for (int i = 0; i < 50; ++i) (void)0;
  std::vector<TaskId> backlog;
  for (int i = 0; i < 50; ++i) backlog.push_back(w.add_task(w.both, 20e-3, 1e-3));
  const TaskId small = w.add_task(w.both, 10e-3, 1e-3);
  for (TaskId t : backlog) s.push(t);
  s.push(small);
  const auto popped = s.pop(w.cpu_worker());
  ASSERT_TRUE(popped.has_value());
}

TEST(MultiPrio, EvictionDisabledTakesGreedily) {
  World w;
  MultiPrioConfig cfg;
  cfg.use_eviction = false;
  MultiPrioScheduler s(w.mc.ctx(), cfg);
  const TaskId t = w.add_task(w.both, 100e-3, 1e-3);
  s.push(t);
  EXPECT_EQ(s.pop(w.cpu_worker()), std::optional<TaskId>(t));
  EXPECT_EQ(s.eviction_total(), 0u);
}

TEST(MultiPrio, GainOrdersHeapPerArch) {
  World w;
  MultiPrioScheduler s(w.mc.ctx());
  // t_A strongly CPU-favored, t_C strongly GPU-favored (Table II shape).
  const TaskId ta = w.add_task(w.both, 1e-3, 20e-3);
  const TaskId tc = w.add_task(w.both, 20e-3, 10e-3);
  s.push(ta);
  s.push(tc);
  EXPECT_EQ(s.heap(w.ram).top()->task, ta);
  EXPECT_EQ(s.heap(w.gpu).top()->task, tc);
}

TEST(MultiPrio, NodBreaksGainTies) {
  // Two identical-δ CPU-only tasks; the one releasing more successors must
  // sit on top of the heap.
  TaskGraph g;
  const CodeletId cl = g.add_codelet("conly", {ArchType::CPU});
  std::vector<DataId> outs;
  const DataId d0 = g.add_data(64);
  const DataId d1 = g.add_data(64);
  const TaskId narrow = g.submit(cl, {Access{d0, AccessMode::Write}});
  const TaskId wide = g.submit(cl, {Access{d1, AccessMode::Write}});
  // wide releases 3 successors, narrow releases 1.
  g.submit(cl, {Access{d0, AccessMode::Read}});
  for (int i = 0; i < 3; ++i) {
    (void)i;
    g.submit(cl, {Access{d1, AccessMode::Read}});
  }
  Platform p = test::small_platform(2, 0);
  test::ManualContext mc(g, p, test::flat_perf());
  mc.history.record(narrow, ArchType::CPU, 5e-3);
  mc.history.record(wide, ArchType::CPU, 5e-3);
  MultiPrioScheduler s(mc.ctx());
  // NOD is normalized by the running max ("recorded so far"), so the very
  // first pushed task always scores 1.0; push wide first so the contrast is
  // observable (narrow then gets 1/3).
  s.push(wide);
  s.push(narrow);
  EXPECT_EQ(s.heap(p.ram_node()).top()->task, wide);
}

TEST(MultiPrio, LocalityWindowPicksLocalTask) {
  World w;
  MultiPrioConfig cfg;
  cfg.locality_n = 10;
  cfg.epsilon = 0.8;
  MultiPrioScheduler s(w.mc.ctx(), cfg);
  // Two GPU-favored tasks with close scores; t1's data is on the GPU.
  const TaskId t0 = w.add_task(w.both, 20e-3, 1e-3);
  const TaskId t1 = w.add_task(w.both, 20e-3, 1.05e-3);
  std::vector<TransferOp> ops;
  w.mc.memory.prefetch(w.graph.task(t1).accesses[0].data, w.gpu, ops);
  s.push(t0);
  s.push(t1);
  // Without locality t0 (higher gain via earlier seq / equal) would win;
  // with the window, t1's resident data decides.
  const auto popped = s.pop(w.gpu_worker());
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(*popped, t1);
}

TEST(MultiPrio, LocalityDisabledTakesTopOfHeap) {
  World w;
  MultiPrioConfig cfg;
  cfg.use_locality = false;
  MultiPrioScheduler s(w.mc.ctx(), cfg);
  const TaskId t0 = w.add_task(w.both, 20e-3, 1e-3);
  const TaskId t1 = w.add_task(w.both, 20e-3, 1.05e-3);
  std::vector<TransferOp> ops;
  w.mc.memory.prefetch(w.graph.task(t1).accesses[0].data, w.gpu, ops);
  s.push(t0);
  s.push(t1);
  const auto top = s.heap(w.gpu).top()->task;
  EXPECT_EQ(s.pop(w.gpu_worker()), std::optional<TaskId>(top));
}

TEST(MultiPrio, EmptyPopReturnsNothing) {
  World w;
  MultiPrioScheduler s(w.mc.ctx());
  EXPECT_FALSE(s.pop(w.cpu_worker()).has_value());
  EXPECT_FALSE(s.pop(w.gpu_worker()).has_value());
}

TEST(MultiPrio, HasWorkHintTracksHeaps) {
  World w;
  MultiPrioScheduler s(w.mc.ctx());
  EXPECT_FALSE(s.has_work_hint(w.cpu_worker()));
  const TaskId t = w.add_task(w.cpu_only, 5e-3, 0.0);
  s.push(t);
  EXPECT_TRUE(s.has_work_hint(w.cpu_worker()));
  EXPECT_FALSE(s.has_work_hint(w.gpu_worker()));
}

TEST(MultiPrio, CpuOnlyTaskNeverStarves) {
  World w;
  MultiPrioScheduler s(w.mc.ctx());
  const TaskId t = w.add_task(w.cpu_only, 5e-3, 0.0);
  s.push(t);
  // CPU is the best (only) arch: pop_condition is trivially true.
  EXPECT_EQ(s.pop(w.cpu_worker()), std::optional<TaskId>(t));
}

TEST(MultiPrio, MaxTriesBoundsEvictionsPerPop) {
  World w;
  MultiPrioConfig cfg;
  cfg.max_tries = 2;
  MultiPrioScheduler s(w.mc.ctx(), cfg);
  for (int i = 0; i < 10; ++i) s.push(w.add_task(w.both, 100e-3, 1e-3));
  const std::size_t before = s.eviction_total();
  EXPECT_FALSE(s.pop(w.cpu_worker()).has_value());
  EXPECT_LE(s.eviction_total() - before, cfg.max_tries + 1);
}

}  // namespace
}  // namespace mp
