// FMM: Morton codes, octree structure, interaction-list completeness,
// kernel accuracy vs direct summation, DAG construction, and full real
// execution under several schedulers.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "apps/fmm/dag_builder.hpp"
#include "apps/fmm/octree.hpp"
#include "exec/thread_executor.hpp"
#include "sched/schedulers.hpp"
#include "sim/engine.hpp"
#include "test_util.hpp"

namespace mp::fmm {
namespace {

TEST(Morton, EncodeDecodeRoundTrip) {
  for (std::uint32_t x : {0u, 1u, 5u, 31u, 63u}) {
    for (std::uint32_t y : {0u, 2u, 17u, 63u}) {
      for (std::uint32_t z : {0u, 3u, 40u, 63u}) {
        std::uint32_t rx = 0;
        std::uint32_t ry = 0;
        std::uint32_t rz = 0;
        morton_decode(morton_encode(x, y, z), rx, ry, rz);
        EXPECT_EQ(rx, x);
        EXPECT_EQ(ry, y);
        EXPECT_EQ(rz, z);
      }
    }
  }
}

TEST(Morton, ParentIsShiftedChild) {
  const std::uint64_t child = morton_encode(5, 3, 7);
  std::uint32_t x = 0;
  std::uint32_t y = 0;
  std::uint32_t z = 0;
  morton_decode(child >> 3, x, y, z);
  EXPECT_EQ(x, 2u);
  EXPECT_EQ(y, 1u);
  EXPECT_EQ(z, 3u);
}

TEST(Octree, EveryParticleInExactlyOneLeaf) {
  auto parts = uniform_cube(2000, 1);
  Octree tree(std::move(parts), {4, 16, true});
  const auto& leaves = tree.cells(tree.leaf_level());
  std::size_t total = 0;
  for (const auto& c : leaves) {
    EXPECT_LT(c.pbegin, c.pend);
    total += c.pend - c.pbegin;
  }
  EXPECT_EQ(total, 2000u);
}

TEST(Octree, UpperLevelsAreUniqueSortedParents) {
  auto parts = uniform_cube(3000, 2);
  Octree tree(std::move(parts), {5, 16, false});
  for (std::size_t l = 0; l + 1 < tree.height(); ++l) {
    const auto& up = tree.cells(l);
    for (std::size_t i = 1; i < up.size(); ++i)
      EXPECT_LT(up[i - 1].morton, up[i].morton);
    // Every child's parent exists.
    for (const auto& c : tree.cells(l + 1))
      EXPECT_TRUE(tree.find_cell(l, c.morton >> 3).has_value());
  }
  EXPECT_EQ(tree.cells(0).size(), 1u);  // root
}

TEST(Octree, ChildrenRangesCoverNextLevel) {
  auto parts = clustered_sphere(3000, 3);
  Octree tree(std::move(parts), {5, 16, false});
  for (std::size_t l = 0; l + 1 < tree.height(); ++l) {
    std::size_t covered = 0;
    for (std::size_t c = 0; c < tree.cells(l).size(); ++c) {
      const auto [b, e] = tree.children_of(l, c);
      EXPECT_LE(b, e);
      covered += e - b;
    }
    EXPECT_EQ(covered, tree.cells(l + 1).size());
  }
}

TEST(Octree, InteractionListsAreWellSeparated) {
  auto parts = uniform_cube(4000, 4);
  Octree tree(std::move(parts), {4, 16, false});
  for (std::size_t l = 2; l < tree.height(); ++l) {
    for (std::size_t c = 0; c < tree.cells(l).size(); ++c) {
      std::uint32_t cx = 0;
      std::uint32_t cy = 0;
      std::uint32_t cz = 0;
      morton_decode(tree.cells(l)[c].morton, cx, cy, cz);
      for (std::uint32_t s : tree.m2l_list(l, c)) {
        std::uint32_t sx = 0;
        std::uint32_t sy = 0;
        std::uint32_t sz = 0;
        morton_decode(tree.cells(l)[s].morton, sx, sy, sz);
        const auto dx = std::abs(static_cast<int>(cx) - static_cast<int>(sx));
        const auto dy = std::abs(static_cast<int>(cy) - static_cast<int>(sy));
        const auto dz = std::abs(static_cast<int>(cz) - static_cast<int>(sz));
        EXPECT_GT(std::max({dx, dy, dz}), 1);  // not adjacent
        EXPECT_LE(std::max({dx, dy, dz}), 3);  // parent was adjacent
      }
    }
  }
}

TEST(Octree, P2PListsSymmetricOnce) {
  auto parts = uniform_cube(3000, 5);
  Octree tree(std::move(parts), {4, 16, false});
  const std::size_t leaf = tree.leaf_level();
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  for (std::size_t c = 0; c < tree.cells(leaf).size(); ++c) {
    for (std::uint32_t n : tree.p2p_list(c)) {
      EXPECT_GT(n, c);  // each unordered pair appears once
      EXPECT_TRUE(seen.insert({static_cast<std::uint32_t>(c), n}).second);
    }
  }
}

TEST(FmmAccuracy, SerialFmmMatchesDirectSummation) {
  auto parts = uniform_cube(1500, 6);
  const auto direct = direct_potentials(parts);
  Octree tree(parts, {4, 8, true});
  run_fmm_serial(tree);
  const auto fmm = tree.potentials_original_order();
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < direct.size(); ++i) {
    num += (fmm[i] - direct[i]) * (fmm[i] - direct[i]);
    den += direct[i] * direct[i];
  }
  EXPECT_LT(std::sqrt(num / den), 5e-3);  // order-2 multipole accuracy
}

TEST(FmmAccuracy, ClusteredDistributionStaysAccurate) {
  auto parts = clustered_sphere(1500, 7);
  const auto direct = direct_potentials(parts);
  Octree tree(parts, {5, 8, true});
  run_fmm_serial(tree);
  const auto fmm = tree.potentials_original_order();
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < direct.size(); ++i) {
    num += (fmm[i] - direct[i]) * (fmm[i] - direct[i]);
    den += direct[i] * direct[i];
  }
  EXPECT_LT(std::sqrt(num / den), 1e-2);  // clustered sets lose ~2× accuracy
}

TEST(FmmDag, BuildsAndCountsTasks) {
  auto parts = uniform_cube(3000, 8);
  Octree tree(std::move(parts), {4, 8, false});
  TaskGraph g;
  const FmmBuildStats stats = build_fmm(g, tree);
  EXPECT_EQ(stats.total(), g.num_tasks());
  EXPECT_EQ(stats.p2m, tree.groups(tree.leaf_level()).size());
  EXPECT_EQ(stats.l2p, tree.groups(tree.leaf_level()).size());
  EXPECT_GT(stats.m2l, 0u);
  EXPECT_GT(stats.p2p, 0u);
  g.self_check();
}

TEST(FmmDag, SimulationCompletesOnHeterogeneousNode) {
  auto parts = clustered_sphere(5000, 9);
  Octree tree(std::move(parts), {5, 16, false});
  TaskGraph g;
  (void)build_fmm(g, tree);
  Platform p = test::small_platform(3, 2);
  PerfDatabase db = test::flat_perf(10.0, 100.0);
  for (const char* name : {"multiprio", "dmdas", "heteroprio"}) {
    const SimResult r = simulate(g, p, db, [&](SchedContext ctx) {
      return make_scheduler_by_name(name, std::move(ctx));
    });
    EXPECT_EQ(r.tasks_executed, g.num_tasks()) << name;
  }
}

class FmmRealRun : public ::testing::TestWithParam<std::string> {};

TEST_P(FmmRealRun, TaskBasedMatchesSerial) {
  auto parts = uniform_cube(1200, 10);
  Octree serial_tree(parts, {4, 8, true});
  run_fmm_serial(serial_tree);
  const auto expect = serial_tree.potentials_original_order();

  Octree tree(parts, {4, 8, true});
  TaskGraph g;
  (void)build_fmm(g, tree);
  Platform p = test::small_platform(2, 1);
  PerfDatabase db = test::flat_perf();
  ThreadExecutor exec(g, p, db);
  const ExecResult r = exec.run([&](SchedContext ctx) {
    return make_scheduler_by_name(GetParam(), std::move(ctx));
  });
  EXPECT_EQ(r.tasks_executed, g.num_tasks());
  const auto got = tree.potentials_original_order();
  double max_rel = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i)
    max_rel = std::max(max_rel, std::abs(got[i] - expect[i]) /
                                    std::max(1e-12, std::abs(expect[i])));
  EXPECT_LT(max_rel, 1e-11);  // same arithmetic, any valid schedule
}

INSTANTIATE_TEST_SUITE_P(Policies, FmmRealRun,
                         ::testing::Values("multiprio", "dmdas", "heteroprio", "lws"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace mp::fmm
