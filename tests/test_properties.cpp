// Cross-cutting property sweeps: scheduling invariants on random DAGs,
// memory-manager fuzzing, and trace-report consistency.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.hpp"
#include "sched/schedulers.hpp"
#include "sim/engine.hpp"
#include "sim/report.hpp"
#include "test_util.hpp"

namespace mp {
namespace {

SchedulerFactory by_name(const std::string& name) {
  return [name](SchedContext ctx) { return make_scheduler_by_name(name, std::move(ctx)); };
}

/// Random layered DAG with mixed modes including Commute.
TaskGraph fuzz_graph(std::uint64_t seed, std::size_t n_tasks) {
  Rng rng(seed);
  TaskGraph g;
  const CodeletId both = g.add_codelet("both", {ArchType::CPU, ArchType::GPU});
  const CodeletId conly = g.add_codelet("conly", {ArchType::CPU});
  std::vector<DataId> data;
  for (std::size_t i = 0; i < n_tasks / 2 + 2; ++i)
    data.push_back(g.add_data(256 + rng.next_in(0, 8192)));
  for (std::size_t i = 0; i < n_tasks; ++i) {
    std::vector<Access> acc;
    const DataId own = data[rng.next_in(0, data.size() - 1)];
    const double mode_pick = rng.next_double();
    AccessMode m = AccessMode::ReadWrite;
    if (mode_pick < 0.3) m = AccessMode::Read;
    if (mode_pick > 0.8) m = AccessMode::Commute;
    if (mode_pick > 0.95) m = AccessMode::Write;
    acc.push_back(Access{own, m});
    if (rng.next_double() < 0.7) {
      const DataId extra = data[rng.next_in(0, data.size() - 1)];
      if (extra != own) acc.push_back(Access{extra, AccessMode::Read});
    }
    SubmitOptions o;
    o.flops = 1e6 * static_cast<double>(1 + rng.next_in(0, 80));
    (void)g.submit(rng.next_double() < 0.2 ? conly : both,
                   std::span<const Access>(acc), std::move(o));
  }
  return g;
}

class SchedulingInvariants
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {};

TEST_P(SchedulingInvariants, MakespanRespectsLowerBounds) {
  const auto& [name, seed] = GetParam();
  const TaskGraph g = fuzz_graph(seed, 150);
  Platform p = test::small_platform(3, 1);
  PerfDatabase db = test::flat_perf(10.0, 100.0);
  SimEngine engine(g, p, db);
  const SimResult r = engine.run(by_name(name));
  EXPECT_EQ(r.tasks_executed, g.num_tasks());

  // Work bound: total execution seconds cannot be compressed below
  // busy/width (every worker at its own speed — use the fastest).
  double total_exec = 0.0;
  for (const TraceSegment& s : engine.trace().segments())
    total_exec += s.end - s.exec_start;
  EXPECT_GE(r.makespan + 1e-9, total_exec / static_cast<double>(p.num_workers()));

  // Critical-path bound over the executed durations.
  const TraceReport report(engine.trace(), g, p);
  EXPECT_GE(r.makespan + 1e-9, report.critical_path_seconds());
  EXPECT_GE(report.efficiency_bound_ratio(), 1.0 - 1e-9);
}

TEST_P(SchedulingInvariants, CommuteTasksNeverOverlapPerHandle) {
  const auto& [name, seed] = GetParam();
  const TaskGraph g = fuzz_graph(seed + 50, 120);
  Platform p = test::small_platform(2, 2);
  PerfDatabase db = test::flat_perf(10.0, 100.0);
  SimEngine engine(g, p, db);
  (void)engine.run(by_name(name));
  // Collect executions per commute handle and check pairwise disjointness.
  std::map<std::uint32_t, std::vector<std::pair<double, double>>> windows;
  for (const TraceSegment& s : engine.trace().segments()) {
    for (const Access& a : g.task(s.task).accesses) {
      if (a.mode == AccessMode::Commute)
        windows[a.data.value()].emplace_back(s.exec_start, s.end);
    }
  }
  for (auto& [d, w] : windows) {
    std::sort(w.begin(), w.end());
    for (std::size_t i = 1; i < w.size(); ++i) {
      EXPECT_LE(w[i - 1].second, w[i].first + 1e-12)
          << "handle " << d << " overlap at " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchedulingInvariants,
    ::testing::Combine(::testing::Values("multiprio", "dmdas", "heteroprio", "lws",
                                         "eager"),
                       ::testing::Values(11u, 12u, 13u)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, std::uint64_t>>& info) {
      std::string n = std::get<0>(info.param);
      for (char& c : n)
        if (c == '-') c = '_';
      return n + "_s" + std::to_string(std::get<1>(info.param));
    });

class MemoryFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MemoryFuzz, CoherenceNeverLosesData) {
  Rng rng(GetParam());
  TaskGraph g;
  const CodeletId cl = g.add_codelet("k", {ArchType::CPU, ArchType::GPU});
  std::vector<DataId> data;
  for (int i = 0; i < 24; ++i) data.push_back(g.add_data(64 + rng.next_in(0, 4096)));
  std::vector<TaskId> tasks;
  for (int i = 0; i < 200; ++i) {
    const DataId d = data[rng.next_in(0, data.size() - 1)];
    const double pick = rng.next_double();
    const AccessMode m = pick < 0.4   ? AccessMode::Read
                         : pick < 0.7 ? AccessMode::ReadWrite
                                      : AccessMode::Write;
    tasks.push_back(g.submit(cl, {Access{d, m}}));
  }
  // Capacity-limited GPUs force constant eviction traffic.
  Platform p = test::small_platform(2, 0);
  const MemNodeId g0 = p.add_gpu_node(6000, 10e9, 1e-6);
  p.add_workers(ArchType::GPU, g0, 1);
  const MemNodeId g1 = p.add_gpu_node(6000, 10e9, 1e-6);
  p.add_workers(ArchType::GPU, g1, 1);

  MemoryManager mm(g, p);
  std::vector<TransferOp> ops;
  for (TaskId t : tasks) {
    const std::size_t pick = rng.next_in(0, p.num_nodes() - 1);
    ops.clear();
    mm.acquire_for_task(t, MemNodeId{pick}, ops);
    // Invariant: every handle keeps at least one valid copy somewhere.
    for (const Access& a : g.task(t).accesses) {
      bool somewhere = false;
      for (std::size_t n = 0; n < p.num_nodes(); ++n)
        somewhere = somewhere || mm.is_valid_on(a.data, MemNodeId{n});
      ASSERT_TRUE(somewhere);
    }
    // Capacity invariant (pinning is not used here, so it must hold).
    EXPECT_LE(mm.used_bytes(g0), 6000u);
    EXPECT_LE(mm.used_bytes(g1), 6000u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemoryFuzz, ::testing::Values(21u, 22u, 23u, 24u));

TEST(TraceReport, SharesAndCountsAreConsistent) {
  const TaskGraph g = fuzz_graph(99, 120);
  Platform p = test::small_platform(3, 1);
  PerfDatabase db = test::flat_perf(10.0, 100.0);
  SimEngine engine(g, p, db);
  (void)engine.run(by_name("multiprio"));
  const TraceReport report(engine.trace(), g, p);
  EXPECT_NEAR(report.work_share(ArchType::CPU) + report.work_share(ArchType::GPU), 1.0,
              1e-12);
  std::size_t task_total = 0;
  for (const NodeReport& n : report.nodes()) task_total += n.tasks;
  EXPECT_EQ(task_total, g.num_tasks());
  std::size_t codelet_total = 0;
  for (const CodeletReport& c : report.codelets())
    codelet_total += c.count_cpu + c.count_gpu;
  EXPECT_EQ(codelet_total, g.num_tasks());
  EXPECT_NE(report.to_string().find("makespan"), std::string::npos);
}

}  // namespace
}  // namespace mp
