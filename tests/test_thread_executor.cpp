// Threaded executor: real concurrent execution of DAGs with every policy,
// dependency safety under contention, and history-model feedback.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>

#include "exec/thread_executor.hpp"
#include "sched/schedulers.hpp"
#include "test_util.hpp"

namespace mp {
namespace {

ExecSchedulerFactory by_name(const std::string& name) {
  return [name](SchedContext ctx) { return make_scheduler_by_name(name, std::move(ctx)); };
}

TEST(ThreadExecutor, RunsEveryTaskExactlyOnce) {
  TaskGraph g;
  std::atomic<int> counter{0};
  const CodeletId cl = g.add_codelet(
      "count", {ArchType::CPU, ArchType::GPU},
      [&counter](const Task&, std::span<void* const>) { counter.fetch_add(1); });
  for (int i = 0; i < 50; ++i) {
    const DataId d = g.add_data(8);
    g.submit(cl, {Access{d, AccessMode::ReadWrite}});
  }
  Platform p = test::small_platform(3, 1);
  PerfDatabase db = test::flat_perf();
  ThreadExecutor exec(g, p, db);
  const ExecResult r = exec.run(by_name("multiprio"));
  EXPECT_EQ(counter.load(), 50);
  EXPECT_EQ(r.tasks_executed, 50u);
  std::size_t sum = 0;
  for (std::size_t c : r.tasks_per_worker) sum += c;
  EXPECT_EQ(sum, 50u);
}

TEST(ThreadExecutor, DependencyOrderEnforced) {
  // Chain incrementing a shared cell: any reorder breaks the final value.
  TaskGraph g;
  double cell = 0.0;
  const CodeletId cl = g.add_codelet(
      "inc", {ArchType::CPU},
      [](const Task& t, std::span<void* const> buf) {
        auto* v = static_cast<double*>(buf[0]);
        // v must equal the task's position in the chain.
        *v = *v * 2.0 + static_cast<double>(t.iparams[0]);
      });
  const DataId d = g.add_data(sizeof(double), &cell);
  for (int i = 0; i < 12; ++i) {
    SubmitOptions o;
    o.iparams = {i, 0, 0, 0};
    g.submit(cl, {Access{d, AccessMode::ReadWrite}}, o);
  }
  Platform p = test::small_platform(4, 0);
  PerfDatabase db = test::flat_perf();
  ThreadExecutor exec(g, p, db);
  (void)exec.run(by_name("lws"));
  double expect = 0.0;
  for (int i = 0; i < 12; ++i) expect = expect * 2.0 + i;
  EXPECT_DOUBLE_EQ(cell, expect);
}

TEST(ThreadExecutor, ParallelReadersDoNotConflict) {
  TaskGraph g;
  double src_val = 7.0;
  std::vector<double> sinks(20, 0.0);
  const CodeletId copy = g.add_codelet(
      "copy", {ArchType::CPU, ArchType::GPU},
      [](const Task&, std::span<void* const> buf) {
        *static_cast<double*>(buf[1]) = *static_cast<const double*>(buf[0]);
      });
  const DataId src = g.add_data(sizeof(double), &src_val);
  for (int i = 0; i < 20; ++i) {
    const DataId dst = g.add_data(sizeof(double), &sinks[static_cast<std::size_t>(i)]);
    g.submit(copy, {Access{src, AccessMode::Read}, Access{dst, AccessMode::Write}});
  }
  Platform p = test::small_platform(4, 2);
  PerfDatabase db = test::flat_perf();
  ThreadExecutor exec(g, p, db);
  (void)exec.run(by_name("heteroprio"));
  for (double v : sinks) EXPECT_DOUBLE_EQ(v, 7.0);
}

TEST(ThreadExecutor, GpuWorkersFallBackToCpuImplementation) {
  TaskGraph g;
  std::atomic<int> calls{0};
  const CodeletId cl = g.add_codelet(
      "gpuonly", {ArchType::GPU},
      [&calls](const Task&, std::span<void* const>) { calls.fetch_add(1); });
  for (int i = 0; i < 5; ++i) {
    const DataId d = g.add_data(8);
    g.submit(cl, {Access{d, AccessMode::ReadWrite}});
  }
  Platform p = test::small_platform(1, 1);
  PerfDatabase db = test::flat_perf();
  ThreadExecutor exec(g, p, db);
  const ExecResult r = exec.run(by_name("eager"));
  EXPECT_EQ(calls.load(), 5);
  // All five must have run on the GPU worker (the only capable one).
  const WorkerId gpu_w = p.workers_of_node(MemNodeId{std::size_t{1}})[0];
  EXPECT_EQ(r.tasks_per_worker[gpu_w.index()], 5u);
}

TEST(ThreadExecutor, DistinctGpuImplementationUsedWhenPresent) {
  TaskGraph g;
  std::atomic<int> cpu_calls{0};
  std::atomic<int> gpu_calls{0};
  const CodeletId cl = g.add_codelet(
      "dual", {ArchType::GPU},
      [&cpu_calls](const Task&, std::span<void* const>) { cpu_calls.fetch_add(1); },
      [&gpu_calls](const Task&, std::span<void* const>) { gpu_calls.fetch_add(1); });
  const DataId d = g.add_data(8);
  g.submit(cl, {Access{d, AccessMode::ReadWrite}});
  Platform p = test::small_platform(1, 1);
  PerfDatabase db = test::flat_perf();
  ThreadExecutor exec(g, p, db);
  (void)exec.run(by_name("eager"));
  EXPECT_EQ(gpu_calls.load(), 1);
  EXPECT_EQ(cpu_calls.load(), 0);
}

TEST(ThreadExecutor, DiamondJoinSeesBothBranches) {
  TaskGraph g;
  double left = 0.0;
  double right = 0.0;
  double joined = 0.0;
  const CodeletId set1 = g.add_codelet(
      "set", {ArchType::CPU}, [](const Task& t, std::span<void* const> buf) {
        *static_cast<double*>(buf[0]) = static_cast<double>(t.iparams[0]);
      });
  const CodeletId join = g.add_codelet(
      "join", {ArchType::CPU}, [](const Task&, std::span<void* const> buf) {
        *static_cast<double*>(buf[2]) = *static_cast<const double*>(buf[0]) +
                                        *static_cast<const double*>(buf[1]);
      });
  const DataId dl = g.add_data(sizeof(double), &left);
  const DataId dr = g.add_data(sizeof(double), &right);
  const DataId dj = g.add_data(sizeof(double), &joined);
  SubmitOptions ol;
  ol.iparams = {21, 0, 0, 0};
  g.submit(set1, {Access{dl, AccessMode::Write}}, ol);
  SubmitOptions orr;
  orr.iparams = {21, 0, 0, 0};
  g.submit(set1, {Access{dr, AccessMode::Write}}, orr);
  g.submit(join, {Access{dl, AccessMode::Read}, Access{dr, AccessMode::Read},
                  Access{dj, AccessMode::Write}});
  Platform p = test::small_platform(2, 0);
  PerfDatabase db = test::flat_perf();
  ThreadExecutor exec(g, p, db);
  (void)exec.run(by_name("multiprio"));
  EXPECT_DOUBLE_EQ(joined, 42.0);
}

class ExecutorPolicies : public ::testing::TestWithParam<std::string> {};

TEST_P(ExecutorPolicies, StressManySmallTasks) {
  TaskGraph g;
  std::atomic<int> counter{0};
  const CodeletId cl = g.add_codelet(
      "tick", {ArchType::CPU, ArchType::GPU},
      [&counter](const Task&, std::span<void* const>) { counter.fetch_add(1); });
  // Layered graph with fan-in/fan-out through shared handles.
  std::vector<DataId> layer;
  for (int i = 0; i < 8; ++i) layer.push_back(g.add_data(8));
  for (int l = 0; l < 10; ++l) {
    for (int i = 0; i < 8; ++i) {
      const DataId in = layer[static_cast<std::size_t>((i + l) % 8)];
      const DataId out = layer[static_cast<std::size_t>(i)];
      g.submit(cl, {Access{in, AccessMode::Read}, Access{out, AccessMode::ReadWrite}});
    }
  }
  Platform p = test::small_platform(3, 1);
  PerfDatabase db = test::flat_perf();
  ThreadExecutor exec(g, p, db);
  const ExecResult r = exec.run(by_name(GetParam()));
  EXPECT_EQ(counter.load(), 80);
  EXPECT_EQ(r.tasks_executed, 80u);
}

INSTANTIATE_TEST_SUITE_P(Policies, ExecutorPolicies,
                         ::testing::Values("eager", "random", "lws", "dm", "dmda",
                                           "dmdas", "heteroprio", "multiprio"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace mp
