// LS_SDH² (Eq. 3) unit tests.
#include <gtest/gtest.h>

#include "core/locality.hpp"
#include "test_util.hpp"

namespace mp {
namespace {

struct World {
  TaskGraph graph;
  Platform platform = test::small_platform(1, 2);
  MemNodeId gpu0{std::size_t{1}};
  MemNodeId gpu1{std::size_t{2}};
  CodeletId cl;

  World() { cl = graph.add_codelet("k", {ArchType::CPU, ArchType::GPU}); }
};

TEST(LsSdh2, ZeroWhenNothingLocal) {
  World w;
  const DataId d = w.graph.add_data(100);
  const TaskId t = w.graph.submit(w.cl, {Access{d, AccessMode::Read}});
  test::ManualContext mc(w.graph, w.platform, test::flat_perf());
  SchedContext ctx = mc.ctx();
  EXPECT_DOUBLE_EQ(ls_sdh2(ctx, w.gpu0, t), 0.0);
}

TEST(LsSdh2, ReadCountsLinearWriteQuadratic) {
  World w;
  const DataId r = w.graph.add_data(100);
  const DataId wr = w.graph.add_data(100);
  const TaskId t = w.graph.submit(
      w.cl, {Access{r, AccessMode::Read}, Access{wr, AccessMode::ReadWrite}});
  test::ManualContext mc(w.graph, w.platform, test::flat_perf());
  SchedContext ctx = mc.ctx();
  // Everything starts valid on RAM: 100 (read) + 100² (write).
  EXPECT_DOUBLE_EQ(ls_sdh2(ctx, w.platform.ram_node(), t), 100.0 + 100.0 * 100.0);
}

TEST(LsSdh2, CountsOnlyDataValidOnTheNode) {
  World w;
  const DataId d0 = w.graph.add_data(100);
  const DataId d1 = w.graph.add_data(40);
  const TaskId t = w.graph.submit(
      w.cl, {Access{d0, AccessMode::Read}, Access{d1, AccessMode::Read}});
  test::ManualContext mc(w.graph, w.platform, test::flat_perf());
  std::vector<TransferOp> ops;
  mc.memory.prefetch(d0, w.gpu0, ops);
  SchedContext ctx = mc.ctx();
  EXPECT_DOUBLE_EQ(ls_sdh2(ctx, w.gpu0, t), 100.0);
  EXPECT_DOUBLE_EQ(ls_sdh2(ctx, w.gpu1, t), 0.0);
}

TEST(LsSdh2, WriteDominatesReadOfSameSize) {
  // A node holding the written tile must beat one holding a read tile.
  World w;
  const DataId rd = w.graph.add_data(64);
  const DataId wr = w.graph.add_data(64);
  const TaskId t = w.graph.submit(
      w.cl, {Access{rd, AccessMode::Read}, Access{wr, AccessMode::ReadWrite}});
  test::ManualContext mc(w.graph, w.platform, test::flat_perf());
  std::vector<TransferOp> ops;
  mc.memory.prefetch(rd, w.gpu0, ops);   // gpu0 holds the read data
  mc.memory.prefetch(wr, w.gpu1, ops);   // gpu1 holds the written data
  SchedContext ctx = mc.ctx();
  EXPECT_GT(ls_sdh2(ctx, w.gpu1, t), ls_sdh2(ctx, w.gpu0, t));
}

TEST(LsSdh2, MoreLocalBytesScoreHigher) {
  World w;
  const DataId big = w.graph.add_data(1000);
  const DataId small = w.graph.add_data(10);
  const TaskId t = w.graph.submit(
      w.cl, {Access{big, AccessMode::Read}, Access{small, AccessMode::Read}});
  test::ManualContext mc(w.graph, w.platform, test::flat_perf());
  std::vector<TransferOp> ops;
  mc.memory.prefetch(big, w.gpu0, ops);
  mc.memory.prefetch(small, w.gpu1, ops);
  SchedContext ctx = mc.ctx();
  EXPECT_GT(ls_sdh2(ctx, w.gpu0, t), ls_sdh2(ctx, w.gpu1, t));
}

}  // namespace
}  // namespace mp
