// Observability tests: EventLog bounds and drop-proof counts, the metrics
// instruments, end-to-end event emission through the simulator (every event
// kind, counts matching the scheduler's own tallies), the ThreadExecutor's
// pop-latency histogram, and the Chrome trace exporter.
#include <gtest/gtest.h>

#include "core/multiprio.hpp"
#include "exec/thread_executor.hpp"
#include "obs/export.hpp"
#include "obs/observer.hpp"
#include "sched/schedulers.hpp"
#include "sim/engine.hpp"
#include "test_util.hpp"

namespace mp {
namespace {

SchedulerFactory by_name(const std::string& name) {
  return [name](SchedContext ctx) { return make_scheduler_by_name(name, std::move(ctx)); };
}

std::size_t count_occurrences(const std::string& haystack, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++n;
  return n;
}

// --- EventLog ----------------------------------------------------------------

TEST(EventLog, AssignsMonotonicSeqAndSnapshotsOldestFirst) {
  EventLog log(16);
  for (std::size_t i = 0; i < 5; ++i) {
    SchedEvent e;
    e.kind = SchedEventKind::Push;
    e.task = TaskId{i};
    e.time = static_cast<double>(i);
    log.append(e);
  }
  const auto events = log.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(events[i].seq, i);
    EXPECT_EQ(events[i].task, TaskId{i});
  }
  EXPECT_EQ(log.size(), 5u);
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_EQ(log.recorded(), 5u);
}

TEST(EventLog, DropsOldestWhenFullButKindCountsSurvive) {
  EventLog log(4);
  for (std::size_t i = 0; i < 10; ++i) {
    SchedEvent e;
    e.kind = i % 2 == 0 ? SchedEventKind::Push : SchedEventKind::Pop;
    e.task = TaskId{i};
    log.append(e);
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.dropped(), 6u);
  EXPECT_EQ(log.recorded(), 10u);
  // The retained window is the most recent 4, oldest first.
  const auto events = log.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].task, TaskId{6 + i});
  // Per-kind totals count *all* appends, not just the retained ones.
  EXPECT_EQ(log.count(SchedEventKind::Push), 5u);
  EXPECT_EQ(log.count(SchedEventKind::Pop), 5u);
  EXPECT_EQ(log.count(SchedEventKind::Evict), 0u);
}

TEST(EventLog, CsvHasHeaderAndOneRowPerRetainedEvent) {
  EventLog log(8);
  SchedEvent e;
  e.kind = SchedEventKind::Evict;
  e.task = TaskId{std::size_t{3}};
  log.append(e);
  const std::string csv = log.to_csv();
  EXPECT_NE(csv.find("seq"), std::string::npos);
  EXPECT_NE(csv.find("kind"), std::string::npos);
  EXPECT_NE(csv.find("EVICT"), std::string::npos);
}

// --- metrics -----------------------------------------------------------------

TEST(Metrics, CounterGaugeHistogramBasics) {
  MetricsRegistry mx;
  Counter& c = mx.counter("c");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(&mx.counter("c"), &c);  // stable reference, same instrument

  Gauge& g = mx.gauge("g", 3);
  for (int i = 0; i < 5; ++i) g.sample(i, 10.0 * i);
  EXPECT_DOUBLE_EQ(g.last(), 40.0);
  EXPECT_EQ(g.dropped(), 2u);
  const auto samples = g.samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_DOUBLE_EQ(samples.front().value, 20.0);  // oldest retained
  EXPECT_DOUBLE_EQ(samples.back().value, 40.0);

  Histogram& h = mx.histogram("h");
  h.observe(1e-6);
  h.observe(2e-6);
  h.observe(1e-3);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), 1e-6);
  EXPECT_DOUBLE_EQ(h.max(), 1e-3);
  EXPECT_NEAR(h.sum(), 1e-3 + 3e-6, 1e-12);
  // Bucket-resolution quantile: the p100 bucket upper bound covers the max.
  EXPECT_GE(h.quantile(1.0), 1e-3);
  EXPECT_LE(h.quantile(0.0), 2e-6);

  const std::string dump = mx.to_string();
  EXPECT_NE(dump.find("c"), std::string::npos);
  EXPECT_NE(dump.find("h"), std::string::npos);
}

// --- end-to-end through the simulator ---------------------------------------

/// A platform and workload tuned so that one MultiPrio run produces every
/// event kind: CPUs are 100x slower than the GPU, so the pop_condition
/// rejects (and evicts) every CPU pop attempt; a transient-fault plan with a
/// generous budget forces REPUSH; killing one of two CPU workers at t=0
/// exercises WORKER_LOST without degrading the run.
struct ObservedRun {
  test::EdgeGraph eg{40, {{0, 20}, {1, 21}}, 1e8};
  Platform platform = test::small_platform(2, 1);
  PerfDatabase perf = test::flat_perf(1.0, 100.0);
  RecordingObserver obs;
  SimConfig cfg;
  std::unique_ptr<SimEngine> engine;
  SimResult result;

  ObservedRun() {
    cfg.observer = &obs;
    cfg.fault.transient.push_back(TransientFaultSpec{CodeletId{}, 0.4});
    cfg.fault.retry_budget = 50;
    cfg.fault.worker_losses.push_back(WorkerLossSpec{WorkerId{std::size_t{0}}, 0.0});
    engine = std::make_unique<SimEngine>(eg.graph, platform, perf, cfg);
    result = engine->run(by_name("multiprio"));
  }
};

TEST(ObsSim, EveryEventKindAppearsAndCountsMatchTheScheduler) {
  ObservedRun run;
  EXPECT_EQ(run.result.tasks_executed, 40u);
  const EventLog& log = run.obs.events();
  for (SchedEventKind k :
       {SchedEventKind::Push, SchedEventKind::Pop, SchedEventKind::PopReject,
        SchedEventKind::Evict, SchedEventKind::Repush, SchedEventKind::WorkerLost,
        SchedEventKind::FaultFailure}) {
    EXPECT_GE(log.count(k), 1u) << "no " << event_kind_name(k) << " event recorded";
  }
  // The event stream and the scheduler's own tallies must agree exactly.
  const auto* mp = dynamic_cast<const MultiPrioScheduler*>(&run.engine->scheduler());
  ASSERT_NE(mp, nullptr);
  EXPECT_EQ(log.count(SchedEventKind::Evict), mp->eviction_total());
  EXPECT_EQ(log.count(SchedEventKind::PopReject), mp->pop_condition_rejects());
  EXPECT_EQ(log.count(SchedEventKind::WorkerLost), run.result.fault.workers_lost);
  EXPECT_EQ(log.count(SchedEventKind::FaultFailure), run.result.fault.failures_injected);
  EXPECT_EQ(log.count(SchedEventKind::Repush), run.result.fault.retries);
  // Exactly one successful POP per executed task (failed attempts re-pop).
  EXPECT_EQ(log.count(SchedEventKind::Pop),
            run.result.tasks_executed + run.result.fault.retries);
}

TEST(ObsSim, EventPayloadsCarryTheDecisionContext) {
  ObservedRun run;
  bool saw_pop_with_worker = false;
  bool saw_push_with_gain = false;
  std::uint64_t prev_seq = 0;
  bool first = true;
  for (const SchedEvent& e : run.obs.events().snapshot()) {
    if (!first) {
      EXPECT_GT(e.seq, prev_seq);  // globally ordered
    }
    prev_seq = e.seq;
    first = false;
    EXPECT_GE(e.time, 0.0);
    if (e.kind == SchedEventKind::Pop && e.worker.valid()) saw_pop_with_worker = true;
    if (e.kind == SchedEventKind::Push && e.gain > 0.0) saw_push_with_gain = true;
    if (e.kind == SchedEventKind::PopReject) {
      // The reject payload records the backlog the verdict compared against,
      // which lost to this worker's own estimate.
      EXPECT_TRUE(e.worker.valid());
      EXPECT_GE(e.best_remaining_work, 0.0);
    }
  }
  EXPECT_TRUE(saw_pop_with_worker);
  EXPECT_TRUE(saw_push_with_gain);
}

TEST(ObsSim, MultiPrioMetricsInstrumentsArePopulated) {
  ObservedRun run;
  const MetricsRegistry& mx = run.obs.metrics_registry();
  // Heap-depth gauges exist for every memory node and saw samples.
  const auto gauges = mx.gauges();
  ASSERT_EQ(gauges.size(), run.platform.num_nodes());
  for (const auto& [name, g] : gauges) {
    EXPECT_NE(name.find("multiprio.heap_depth.node"), std::string::npos);
    EXPECT_FALSE(g->samples().empty());
  }
}

TEST(ObsSim, NullObserverAndAbsentObserverAgreeWithRecordedRun) {
  // The observer must be write-only: attaching one (of any kind) cannot
  // change a deterministic schedule.
  test::EdgeGraph a(30, {{0, 15}, {3, 17}}, 1e8);
  Platform p = test::small_platform(2, 1);
  PerfDatabase db = test::flat_perf();
  const SimResult base = simulate(a.graph, p, db, by_name("multiprio"));

  test::EdgeGraph b(30, {{0, 15}, {3, 17}}, 1e8);
  NullObserver null_obs;
  SimConfig cfg_null;
  cfg_null.observer = &null_obs;
  const SimResult with_null = simulate(b.graph, p, db, by_name("multiprio"), cfg_null);

  test::EdgeGraph c(30, {{0, 15}, {3, 17}}, 1e8);
  RecordingObserver rec;
  SimConfig cfg_rec;
  cfg_rec.observer = &rec;
  const SimResult with_rec = simulate(c.graph, p, db, by_name("multiprio"), cfg_rec);

  EXPECT_DOUBLE_EQ(base.makespan, with_null.makespan);
  EXPECT_DOUBLE_EQ(base.makespan, with_rec.makespan);
  EXPECT_GT(rec.events().recorded(), 0u);
}

TEST(ObsSim, EveryPolicyEmitsPushAndPopEvents) {
  for (const std::string name : {"eager", "random", "lws", "dm", "dmda", "dmdas",
                                 "heteroprio", "multiprio"}) {
    test::EdgeGraph eg(12, {}, 1e8);
    Platform p = test::small_platform(2, 1);
    PerfDatabase db = test::flat_perf();
    RecordingObserver obs;
    SimConfig cfg;
    cfg.observer = &obs;
    const SimResult r = simulate(eg.graph, p, db, by_name(name), cfg);
    EXPECT_EQ(r.tasks_executed, 12u) << name;
    EXPECT_GE(obs.events().count(SchedEventKind::Push), 12u) << name;
    EXPECT_EQ(obs.events().count(SchedEventKind::Pop), 12u) << name;
  }
}

// --- ThreadExecutor ----------------------------------------------------------

TEST(ObsExec, ExecutorRecordsEventsAndPopLatency) {
  TaskGraph g;
  const CodeletId cl = g.add_codelet(
      "inc", {ArchType::CPU, ArchType::GPU},
      [](const Task&, std::span<void* const> bufs) { ++*static_cast<int*>(bufs[0]); });
  std::vector<int> cells(16, 0);
  std::vector<TaskId> tasks;
  for (int& cell : cells) {
    const DataId d = g.add_data(sizeof(int), &cell);
    tasks.push_back(g.submit(cl, {Access{d, AccessMode::ReadWrite}}));
  }
  Platform p = test::small_platform(2, 1);
  PerfDatabase db = test::flat_perf();

  RecordingObserver obs;
  ThreadExecutor exec(g, p, db);
  ExecConfig cfg;
  cfg.stall_timeout = 0.05;
  cfg.observer = &obs;
  const ExecResult r = exec.run(by_name("multiprio"), cfg);
  EXPECT_EQ(r.tasks_executed, cells.size());
  for (int cell : cells) EXPECT_EQ(cell, 1);

  EXPECT_EQ(obs.events().count(SchedEventKind::Pop), cells.size());
  // Wall-clock timestamps: non-negative and bounded by the run duration.
  for (const SchedEvent& e : obs.events().snapshot()) {
    EXPECT_GE(e.time, 0.0);
    EXPECT_LE(e.time, r.wall_seconds + 1e-3);
  }
  // Every sched->pop call (successful or empty) was timed, and every
  // completion fed the per-(codelet, arch) model-audit histograms.
  std::uint64_t pop_timed = 0, audit_samples = 0;
  for (const auto& [name, hist] : obs.metrics_registry().histograms()) {
    if (name == "exec.pop_latency_s") pop_timed = hist->count();
    if (name.rfind("perf_model.abs_err_s.inc.", 0) == 0)
      audit_samples += hist->count();
  }
  EXPECT_GE(pop_timed, cells.size());
  EXPECT_EQ(audit_samples, cells.size());
}

// --- Chrome trace export -----------------------------------------------------

TEST(ObsExport, ChromeTraceContainsSlicesInstantsAndCounters) {
  ObservedRun run;
  const std::string json =
      chrome_trace_json(run.engine->trace(), run.eg.graph, run.platform, &run.obs);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // One "X" slice per executed segment plus one per positive data stall.
  std::size_t stalls = 0;
  for (const TraceSegment& s : run.engine->trace().segments())
    if (s.data_stall > 0.0) ++stalls;
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""),
            run.engine->trace().num_executed() + stalls);
  // Instants cover the retained scheduler events; counters cover the gauges.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"i\""), run.obs.events().size());
  EXPECT_GE(count_occurrences(json, "\"ph\":\"C\""), 1u);
  // Every event kind that fired appears by name.
  for (const char* name : {"PUSH", "POP", "POP_REJECT", "EVICT", "REPUSH",
                           "WORKER_LOST", "FAULT_FAILURE"})
    EXPECT_NE(json.find(name), std::string::npos) << name;
  // Per-worker metadata tracks plus the scheduler track.
  EXPECT_EQ(count_occurrences(json, "\"thread_name\""), run.platform.num_workers() + 1);
}

TEST(ObsExport, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(ObsExport, WriteChromeTraceRoundTrips) {
  ObservedRun run;
  const std::string path = ::testing::TempDir() + "mp_trace_test.json";
  ASSERT_TRUE(write_chrome_trace(path, run.engine->trace(), run.eg.graph,
                                 run.platform, &run.obs));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(static_cast<std::size_t>(size),
            chrome_trace_json(run.engine->trace(), run.eg.graph, run.platform, &run.obs)
                .size());
}

}  // namespace
}  // namespace mp
