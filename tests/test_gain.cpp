// Reproduces the paper's Table II gain-heuristic example exactly, plus edge
// cases of Eq. 1.
#include <gtest/gtest.h>

#include "core/gain.hpp"
#include "test_util.hpp"

namespace mp {
namespace {

/// Table II setting: three tasks, two architecture types (a1 = CPU,
/// a2 = GPU), δ in milliseconds:
///           t_A    t_B    t_C
///   δ(a1)   1      5      20
///   δ(a2)   20     10     10
class TableTwo : public ::testing::Test {
 protected:
  TableTwo()
      : platform(test::small_platform(1, 1)),
        mc(make_graph(), platform, test::flat_perf()) {}

  const TaskGraph& make_graph() {
    const CodeletId cl = graph.add_codelet("k", {ArchType::CPU, ArchType::GPU});
    // Distinct footprints so each task has its own history bucket.
    for (int i = 0; i < 3; ++i) {
      const DataId d = graph.add_data(100 + static_cast<std::size_t>(i));
      tasks.push_back(graph.submit(cl, {Access{d, AccessMode::ReadWrite}}));
    }
    return graph;
  }

  void seed_deltas() {
    const double cpu[3] = {1e-3, 5e-3, 20e-3};
    const double gpu[3] = {20e-3, 10e-3, 10e-3};
    for (int i = 0; i < 3; ++i) {
      mc.history.record(tasks[i], ArchType::CPU, cpu[i]);
      mc.history.record(tasks[i], ArchType::GPU, gpu[i]);
    }
  }

  TaskGraph graph;
  std::vector<TaskId> tasks;
  Platform platform;
  test::ManualContext mc;
  GainTracker gain;
};

TEST_F(TableTwo, ReproducesPaperValues) {
  seed_deltas();
  SchedContext ctx = mc.ctx();
  // Process t_A first on both archs: establishes hd(a1) = hd(a2) = 19 ms.
  EXPECT_NEAR(gain.gain(ctx, tasks[0], ArchType::CPU), 1.0, 1e-12);
  EXPECT_NEAR(gain.gain(ctx, tasks[0], ArchType::GPU), 0.0, 1e-12);
  EXPECT_NEAR(gain.hd(ArchType::CPU), 19e-3, 1e-12);
  EXPECT_NEAR(gain.hd(ArchType::GPU), 19e-3, 1e-12);
  // t_B: paper reports 0.631 / 0.368 (exact: 24/38 and 14/38).
  EXPECT_NEAR(gain.gain(ctx, tasks[1], ArchType::CPU), 24.0 / 38.0, 1e-12);
  EXPECT_NEAR(gain.gain(ctx, tasks[1], ArchType::GPU), 14.0 / 38.0, 1e-12);
  // t_C: paper reports 0.236 / 0.763 (exact: 9/38 and 29/38).
  EXPECT_NEAR(gain.gain(ctx, tasks[2], ArchType::CPU), 9.0 / 38.0, 1e-12);
  EXPECT_NEAR(gain.gain(ctx, tasks[2], ArchType::GPU), 29.0 / 38.0, 1e-12);
}

TEST_F(TableTwo, PaperRoundedValuesMatch) {
  seed_deltas();
  SchedContext ctx = mc.ctx();
  (void)gain.gain(ctx, tasks[0], ArchType::CPU);  // establish hd
  (void)gain.gain(ctx, tasks[0], ArchType::GPU);
  EXPECT_NEAR(gain.gain(ctx, tasks[1], ArchType::CPU), 0.631, 1e-3);
  EXPECT_NEAR(gain.gain(ctx, tasks[1], ArchType::GPU), 0.368, 1e-3);
  EXPECT_NEAR(gain.gain(ctx, tasks[2], ArchType::CPU), 0.236, 1e-3);
  EXPECT_NEAR(gain.gain(ctx, tasks[2], ArchType::GPU), 0.763, 1e-3);
}

TEST_F(TableTwo, GainOrderingMatchesPaperNarrative) {
  seed_deltas();
  SchedContext ctx = mc.ctx();
  const double a1_a = gain.gain(ctx, tasks[0], ArchType::CPU);
  const double a1_b = gain.gain(ctx, tasks[1], ArchType::CPU);
  const double a1_c = gain.gain(ctx, tasks[2], ArchType::CPU);
  EXPECT_GT(a1_a, a1_b);  // CPU heap: A first, then B, then C
  EXPECT_GT(a1_b, a1_c);
  const double a2_a = gain.gain(ctx, tasks[0], ArchType::GPU);
  const double a2_b = gain.gain(ctx, tasks[1], ArchType::GPU);
  const double a2_c = gain.gain(ctx, tasks[2], ArchType::GPU);
  EXPECT_GT(a2_c, a2_b);  // GPU heap: C first, then B, then A
  EXPECT_GT(a2_b, a2_a);
}

TEST_F(TableTwo, ScoresStayWithinUnitInterval) {
  seed_deltas();
  SchedContext ctx = mc.ctx();
  for (int i = 0; i < 3; ++i) {
    for (ArchType a : {ArchType::CPU, ArchType::GPU}) {
      const double v = gain.gain(ctx, tasks[i], a);
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(Gain, SingleArchTaskScoresOne) {
  TaskGraph g;
  const CodeletId cl = g.add_codelet("cpuonly", {ArchType::CPU});
  const DataId d = g.add_data(8);
  const TaskId t = g.submit(cl, {Access{d, AccessMode::Read}});
  Platform p = test::small_platform(2, 1);
  test::ManualContext mc(g, p, test::flat_perf());
  GainTracker gain;
  SchedContext ctx = mc.ctx();
  EXPECT_DOUBLE_EQ(gain.gain(ctx, t, ArchType::CPU), 1.0);
}

TEST(Gain, GpuCapableTaskWithoutGpuWorkersScoresOne) {
  // |A| counts *enabled* archs: with no GPU worker, the only runnable arch
  // is the CPU, so the gain must be 1.
  TaskGraph g;
  const CodeletId cl = g.add_codelet("both", {ArchType::CPU, ArchType::GPU});
  const DataId d = g.add_data(8);
  const TaskId t = g.submit(cl, {Access{d, AccessMode::Read}});
  Platform p = test::small_platform(2, 0);
  test::ManualContext mc(g, p, test::flat_perf());
  GainTracker gain;
  SchedContext ctx = mc.ctx();
  EXPECT_DOUBLE_EQ(gain.gain(ctx, t, ArchType::CPU), 1.0);
}

TEST(Gain, ZeroContrastGivesNeutralHalf) {
  // Equal δ on both archs -> diff 0, hd 0 -> neutral 0.5.
  TaskGraph g;
  const CodeletId cl = g.add_codelet("both", {ArchType::CPU, ArchType::GPU});
  const DataId d = g.add_data(8);
  const TaskId t = g.submit(cl, {Access{d, AccessMode::Read}});
  Platform p = test::small_platform(1, 1);
  test::ManualContext mc(g, p, test::flat_perf(10.0, 10.0));
  mc.history.record(t, ArchType::CPU, 5e-3);
  mc.history.record(t, ArchType::GPU, 5e-3);
  GainTracker gain;
  SchedContext ctx = mc.ctx();
  EXPECT_DOUBLE_EQ(gain.gain(ctx, t, ArchType::CPU), 0.5);
}

TEST(Gain, HdIsMonotoneNonDecreasing) {
  TaskGraph g;
  const CodeletId cl = g.add_codelet("both", {ArchType::CPU, ArchType::GPU});
  std::vector<TaskId> ts;
  for (int i = 0; i < 3; ++i) {
    const DataId d = g.add_data(50 + static_cast<std::size_t>(i));
    ts.push_back(g.submit(cl, {Access{d, AccessMode::Read}}));
  }
  Platform p = test::small_platform(1, 1);
  test::ManualContext mc(g, p, test::flat_perf());
  // Increasing contrast: 1 ms, then 10 ms, then 2 ms (hd must stay 10).
  const double cpu[3] = {2e-3, 12e-3, 4e-3};
  const double gpu[3] = {1e-3, 2e-3, 2e-3};
  for (int i = 0; i < 3; ++i) {
    mc.history.record(ts[i], ArchType::CPU, cpu[i]);
    mc.history.record(ts[i], ArchType::GPU, gpu[i]);
  }
  GainTracker gain;
  SchedContext ctx = mc.ctx();
  (void)gain.gain(ctx, ts[0], ArchType::CPU);
  const double hd0 = gain.hd(ArchType::CPU);
  (void)gain.gain(ctx, ts[1], ArchType::CPU);
  const double hd1 = gain.hd(ArchType::CPU);
  (void)gain.gain(ctx, ts[2], ArchType::CPU);
  const double hd2 = gain.hd(ArchType::CPU);
  EXPECT_LE(hd0, hd1);
  EXPECT_DOUBLE_EQ(hd1, hd2);  // smaller contrast does not shrink hd
  EXPECT_NEAR(hd1, 10e-3, 1e-12);
}

}  // namespace
}  // namespace mp
