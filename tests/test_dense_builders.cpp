// Dense DAG builders: task counts, dependency shape, expert priorities, and
// full numerical validation of the tiled algorithms executed for real
// through the threaded executor under several schedulers.
#include <gtest/gtest.h>

#include "apps/dense/dense_builders.hpp"
#include "apps/dense/reference.hpp"
#include "exec/thread_executor.hpp"
#include "sched/schedulers.hpp"
#include "sim/engine.hpp"
#include "test_util.hpp"

namespace mp::dense {
namespace {

std::size_t count_codelet(const TaskGraph& g, const std::string& name) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < g.num_tasks(); ++i)
    if (g.codelet_of(TaskId{i}).name == name) ++n;
  return n;
}

TEST(PotrfBuilder, TaskCountsMatchFormula) {
  const std::size_t T = 6;
  TaskGraph g;
  TileMatrix a(T, 8, /*allocate=*/false);
  a.register_handles(g);
  build_potrf(g, a, false);
  EXPECT_EQ(count_codelet(g, "potrf"), T);
  EXPECT_EQ(count_codelet(g, "trsm"), T * (T - 1) / 2);
  EXPECT_EQ(count_codelet(g, "syrk"), T * (T - 1) / 2);
  EXPECT_EQ(count_codelet(g, "gemm"), T * (T - 1) * (T - 2) / 6);
  g.self_check();
}

TEST(GetrfBuilder, TaskCountsMatchFormula) {
  const std::size_t T = 5;
  TaskGraph g;
  TileMatrix a(T, 8, false);
  a.register_handles(g);
  build_getrf(g, a, false);
  EXPECT_EQ(count_codelet(g, "getrf"), T);
  EXPECT_EQ(count_codelet(g, "trsm"), T * (T - 1));
  // Σ_{k} (T-1-k)² = (T-1)T(2T-1)/6
  EXPECT_EQ(count_codelet(g, "gemm"), (T - 1) * T * (2 * T - 1) / 6);
}

TEST(GeqrfBuilder, TaskCountsMatchFormula) {
  const std::size_t T = 5;
  TaskGraph g;
  TileMatrix a(T, 8, false);
  a.register_handles(g);
  auto aux = build_geqrf(g, a, false);
  EXPECT_EQ(count_codelet(g, "geqrt"), T);
  EXPECT_EQ(count_codelet(g, "ormqr"), T * (T - 1) / 2);
  EXPECT_EQ(count_codelet(g, "tsqrt"), T * (T - 1) / 2);
  EXPECT_EQ(count_codelet(g, "tsmqr"), (T - 1) * T * (2 * T - 1) / 6);
}

TEST(PotrfBuilder, FirstPotrfIsOnlyRoot) {
  TaskGraph g;
  TileMatrix a(4, 8, false);
  a.register_handles(g);
  build_potrf(g, a, false);
  const auto ready = g.initial_ready();
  // potrf(0) plus nothing else on the critical handle... in fact every task
  // touching A(i,j) for the first time with RW has no predecessor except
  // through earlier tasks; the true roots are potrf(0) and first-touch
  // trsm/syrk/gemm... verify potrf(0) is a root and is task 0.
  EXPECT_FALSE(ready.empty());
  EXPECT_EQ(ready.front().index(), 0u);
}

TEST(PotrfBuilder, ExpertPrioritiesDecreaseAlongCriticalPath) {
  TaskGraph g;
  TileMatrix a(5, 8, false);
  a.register_handles(g);
  build_potrf(g, a, true);
  // potrf(0) sits at the head of the critical path: maximal priority.
  std::int64_t max_prio = 0;
  for (std::size_t i = 0; i < g.num_tasks(); ++i)
    max_prio = std::max(max_prio, g.task(TaskId{i}).user_priority);
  EXPECT_EQ(g.task(TaskId{std::size_t{0}}).user_priority, max_prio);
  // Sinks have the lowest (their own flops only).
  bool some_lower = false;
  for (std::size_t i = 0; i < g.num_tasks(); ++i)
    some_lower = some_lower || g.task(TaskId{i}).user_priority < max_prio;
  EXPECT_TRUE(some_lower);
}

TEST(Builders, SimulationRunsAllSchedulers) {
  TaskGraph g;
  TileMatrix a(6, 64, false);
  a.register_handles(g);
  build_potrf(g, a, true);
  Platform p = test::small_platform(2, 1);
  PerfDatabase db = test::flat_perf(10.0, 100.0);
  for (const char* name : {"multiprio", "dmdas", "heteroprio", "lws"}) {
    const SimResult r = simulate(g, p, db, [&](SchedContext ctx) {
      return make_scheduler_by_name(name, std::move(ctx));
    });
    EXPECT_EQ(r.tasks_executed, g.num_tasks()) << name;
  }
}

// --- real execution: tiled result must match the full-matrix reference ----

struct RealRun : public ::testing::TestWithParam<std::string> {};

TEST_P(RealRun, PotrfMatchesReference) {
  const std::size_t T = 4;
  const std::size_t nb = 12;
  TaskGraph g;
  TileMatrix a(T, nb, true);
  a.fill_spd(1234);
  const std::vector<double> orig = a.to_full();
  a.register_handles(g);
  build_potrf(g, a, true);

  Platform p = test::small_platform(2, 1);
  PerfDatabase db = test::flat_perf();
  ThreadExecutor exec(g, p, db);
  const ExecResult r = exec.run([&](SchedContext ctx) {
    return make_scheduler_by_name(GetParam(), std::move(ctx));
  });
  EXPECT_EQ(r.tasks_executed, g.num_tasks());

  const std::size_t n = a.n();
  std::vector<double> expect = orig;
  ref::cholesky(expect, n);
  const std::vector<double> got = a.to_full();
  double err = 0.0;
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = j; i < n; ++i)
      err = std::max(err, std::abs(got[j * n + i] - expect[j * n + i]));
  EXPECT_LT(err, 1e-9);
}

TEST_P(RealRun, GetrfMatchesReference) {
  const std::size_t T = 4;
  const std::size_t nb = 10;
  TaskGraph g;
  TileMatrix a(T, nb, true);
  a.fill_diag_dominant(99);
  const std::vector<double> orig = a.to_full();
  a.register_handles(g);
  build_getrf(g, a, true);

  Platform p = test::small_platform(2, 1);
  PerfDatabase db = test::flat_perf();
  ThreadExecutor exec(g, p, db);
  (void)exec.run([&](SchedContext ctx) {
    return make_scheduler_by_name(GetParam(), std::move(ctx));
  });

  const std::size_t n = a.n();
  std::vector<double> expect = orig;
  ref::lu_nopiv(expect, n);
  const std::vector<double> got = a.to_full();
  EXPECT_LT(ref::fro_diff(got, expect) / ref::fro_norm(expect), 1e-10);
}

TEST_P(RealRun, GeqrfPreservesGram) {
  const std::size_t T = 3;
  const std::size_t nb = 10;
  TaskGraph g;
  TileMatrix a(T, nb, true);
  a.fill_random(321);
  const std::vector<double> orig = a.to_full();
  a.register_handles(g);
  auto aux = build_geqrf(g, a, true);

  Platform p = test::small_platform(2, 1);
  PerfDatabase db = test::flat_perf();
  ThreadExecutor exec(g, p, db);
  (void)exec.run([&](SchedContext ctx) {
    return make_scheduler_by_name(GetParam(), std::move(ctx));
  });

  // QᵀQ = I ⇒ RᵀR = AᵀA with R the upper triangle of the result.
  const std::size_t n = a.n();
  const std::vector<double> got = a.to_full();
  const auto r = ref::upper(got, n);
  const auto rtr = ref::matmul_tn(r, r, n);
  const auto ata = ref::matmul_tn(orig, orig, n);
  EXPECT_LT(ref::fro_diff(rtr, ata) / ref::fro_norm(ata), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Policies, RealRun,
                         ::testing::Values("multiprio", "dmdas", "heteroprio", "eager",
                                           "lws"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

}  // namespace
}  // namespace mp::dense
