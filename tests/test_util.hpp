// Shared helpers for the test suite.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "runtime/perf_model.hpp"
#include "runtime/platform.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/task_graph.hpp"

namespace mp::test {

/// Builds a DAG with `n` tasks and the given edges (u → v, u < v) via STF
/// submission: each edge gets its own handle written by u and read by v.
/// Every task uses the same dual-arch codelet with `flops`.
struct EdgeGraph {
  TaskGraph graph;
  std::vector<TaskId> tasks;

  EdgeGraph(std::size_t n, const std::vector<std::pair<std::size_t, std::size_t>>& edges,
            double flops = 1e6, std::initializer_list<ArchType> where = {ArchType::CPU,
                                                                         ArchType::GPU}) {
    const CodeletId cl = graph.add_codelet("work", where);
    // Pre-register one handle per edge plus one private handle per task.
    std::vector<DataId> edge_data(edges.size());
    for (std::size_t e = 0; e < edges.size(); ++e)
      edge_data[e] = graph.add_data(1024);
    std::vector<DataId> own(n);
    for (std::size_t i = 0; i < n; ++i) own[i] = graph.add_data(1024);

    for (std::size_t i = 0; i < n; ++i) {
      std::vector<Access> acc;
      acc.push_back(Access{own[i], AccessMode::ReadWrite});
      for (std::size_t e = 0; e < edges.size(); ++e) {
        if (edges[e].first == i) acc.push_back(Access{edge_data[e], AccessMode::Write});
        if (edges[e].second == i) acc.push_back(Access{edge_data[e], AccessMode::Read});
      }
      SubmitOptions opts;
      opts.flops = flops;
      opts.name = "t" + std::to_string(i);
      tasks.push_back(graph.submit(cl, std::span<const Access>(acc), std::move(opts)));
    }
  }
};

/// 1 RAM node with `cpus` CPU workers + `gpus` GPU nodes with one worker each.
inline Platform small_platform(std::size_t cpus, std::size_t gpus,
                               std::size_t gpu_capacity = 0) {
  Platform p;
  if (cpus > 0) p.add_workers(ArchType::CPU, p.ram_node(), cpus);
  for (std::size_t g = 0; g < gpus; ++g) {
    const MemNodeId node = p.add_gpu_node(gpu_capacity, 10e9, 1e-6);
    p.add_workers(ArchType::GPU, node, 1);
  }
  return p;
}

/// Perf database with flat per-arch rates (CPU slow, GPU fast).
inline PerfDatabase flat_perf(double cpu_gflops = 10.0, double gpu_gflops = 100.0) {
  PerfDatabase db;
  db.set_default(ArchType::CPU, RateSpec{cpu_gflops, 0.0, 0.0, 0.0});
  db.set_default(ArchType::GPU, RateSpec{gpu_gflops, 0.0, 0.0, 0.0});
  return db;
}

/// Wires a SchedContext over the pieces (no engine). The liveness mask is
/// wired in so fault tests can kill workers with `liveness.mark_dead(w)`
/// before calling notify_worker_removed on the policy under test.
struct ManualContext {
  const TaskGraph& graph;
  const Platform& platform;
  PerfDatabase perf;
  HistoryModel history;
  MemoryManager memory;
  WorkerLiveness liveness;
  double now = 0.0;

  ManualContext(const TaskGraph& g, const Platform& p, PerfDatabase db)
      : graph(g), platform(p), perf(std::move(db)), history(g, perf), memory(g, p),
        liveness(p) {}

  [[nodiscard]] SchedContext ctx() {
    SchedContext c;
    c.graph = &graph;
    c.platform = &platform;
    c.perf = &history;
    c.memory = &memory;
    c.now = [this] { return now; };
    c.liveness = &liveness;
    return c;
  }
};

}  // namespace mp::test
