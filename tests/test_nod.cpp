// Reproduces the paper's Fig. 3 NOD example (NOD(T2) = 2.5, NOD(T3) = 1)
// and exercises the arch-restricted variants of Eq. 2.
#include <gtest/gtest.h>

#include "core/nod.hpp"
#include "test_util.hpp"

namespace mp {
namespace {

TEST(Nod, Figure3Example) {
  // DAG: T1→{T2,T3}; T2→{T4,T5,T6}; T3→{T6,T7}; T4→T7.
  // |λ−|: T4=1, T5=1, T6=2, T7=2.
  // NOD(T2) = 1 + 1 + 1/2 = 2.5; NOD(T3) = 1/2 + 1/2 = 1.
  test::EdgeGraph eg(7, {{0, 1}, {0, 2}, {1, 3}, {1, 4}, {1, 5}, {2, 5}, {2, 6}, {3, 6}});
  Platform p = test::small_platform(2, 0);
  test::ManualContext mc(eg.graph, p, test::flat_perf());
  SchedContext ctx = mc.ctx();
  const MemNodeId ram = p.ram_node();
  EXPECT_DOUBLE_EQ(nod_score(ctx, eg.tasks[1], ram), 2.5);
  EXPECT_DOUBLE_EQ(nod_score(ctx, eg.tasks[2], ram), 1.0);
}

TEST(Nod, SinkTaskScoresZero) {
  test::EdgeGraph eg(2, {{0, 1}});
  Platform p = test::small_platform(1, 0);
  test::ManualContext mc(eg.graph, p, test::flat_perf());
  SchedContext ctx = mc.ctx();
  EXPECT_DOUBLE_EQ(nod_score(ctx, eg.tasks[1], p.ram_node()), 0.0);
}

TEST(Nod, RestrictsSuccessorsToNodeArch) {
  // t0 → t1 (CPU-only successor) and t0 → t2 (GPU-only successor).
  TaskGraph g;
  const CodeletId both = g.add_codelet("b", {ArchType::CPU, ArchType::GPU});
  const CodeletId cpu = g.add_codelet("c", {ArchType::CPU});
  const CodeletId gpu = g.add_codelet("g", {ArchType::GPU});
  const DataId d0 = g.add_data(8);
  const DataId d1 = g.add_data(8);
  const TaskId t0 = g.submit(
      both, {Access{d0, AccessMode::Write}, Access{d1, AccessMode::Write}});
  g.submit(cpu, {Access{d0, AccessMode::Read}});
  g.submit(gpu, {Access{d1, AccessMode::Read}});
  Platform p = test::small_platform(1, 1);
  test::ManualContext mc(g, p, test::flat_perf());
  SchedContext ctx = mc.ctx();
  // On the RAM (CPU) node only the CPU successor counts; its only
  // CPU-capable predecessor is t0.
  EXPECT_DOUBLE_EQ(nod_score(ctx, t0, p.ram_node()), 1.0);
  // On the GPU node only the GPU successor counts.
  EXPECT_DOUBLE_EQ(nod_score(ctx, t0, MemNodeId{std::size_t{1}}), 1.0);
}

TEST(Nod, NormalizerKeepsUnitRange) {
  test::EdgeGraph eg(7, {{0, 1}, {0, 2}, {1, 3}, {1, 4}, {1, 5}, {2, 5}, {2, 6}, {3, 6}});
  Platform p = test::small_platform(2, 0);
  test::ManualContext mc(eg.graph, p, test::flat_perf());
  SchedContext ctx = mc.ctx();
  NodNormalizer norm;
  const MemNodeId ram = p.ram_node();
  const double first = norm.normalized(ctx, eg.tasks[1], ram);  // NOD 2.5
  EXPECT_DOUBLE_EQ(first, 1.0);  // first value defines the running max
  const double second = norm.normalized(ctx, eg.tasks[2], ram);  // NOD 1.0
  EXPECT_DOUBLE_EQ(second, 1.0 / 2.5);
  EXPECT_DOUBLE_EQ(norm.max_seen(), 2.5);
}

TEST(Nod, NormalizerZeroWhenNoSuccessors) {
  test::EdgeGraph eg(1, {});
  Platform p = test::small_platform(1, 0);
  test::ManualContext mc(eg.graph, p, test::flat_perf());
  SchedContext ctx = mc.ctx();
  NodNormalizer norm;
  EXPECT_DOUBLE_EQ(norm.normalized(ctx, eg.tasks[0], p.ram_node()), 0.0);
}

TEST(Nod, WideFanOutBeatsNarrow) {
  // t0 releases 5 exclusive successors; t1 releases 1: NOD favors t0.
  test::EdgeGraph eg(9, {{0, 2}, {0, 3}, {0, 4}, {0, 5}, {0, 6}, {1, 7}, {7, 8}});
  Platform p = test::small_platform(2, 0);
  test::ManualContext mc(eg.graph, p, test::flat_perf());
  SchedContext ctx = mc.ctx();
  EXPECT_GT(nod_score(ctx, eg.tasks[0], p.ram_node()),
            nod_score(ctx, eg.tasks[1], p.ram_node()));
}

}  // namespace
}  // namespace mp
