// Trace / TraceReport analytics on a hand-built trace whose every quantity
// is computable by hand: a 4-task diamond executed on 1 CPU + 1 GPU.
#include <gtest/gtest.h>

#include "obs/observer.hpp"
#include "sim/report.hpp"
#include "sim/trace.hpp"
#include "test_util.hpp"

namespace mp {
namespace {

/// Diamond DAG t0 → {t1, t2} → t3 on a 1-CPU + 1-GPU platform, with a
/// hand-written schedule:
///
///   worker 0 (CPU, node 0): t0 [0,2)             t3 [5,7)
///   worker 1 (GPU, node 1):        t1 [2,4)  t2 [4,5)  (t2 stalled 0.5)
///
/// makespan 7; busy: CPU 4s, GPU 3s.
struct HandTrace {
  test::EdgeGraph eg{4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}}, 1e6};
  Platform platform = test::small_platform(1, 1);
  Trace trace{eg.graph, platform};
  WorkerId cpu{std::size_t{0}};
  WorkerId gpu{std::size_t{1}};
  MemNodeId ram{std::size_t{0}};
  MemNodeId vram{std::size_t{1}};

  HandTrace() {
    trace.record(TraceSegment{eg.tasks[0], cpu, 0.0, 0.0, 2.0, 0.0});
    trace.record(TraceSegment{eg.tasks[1], gpu, 2.0, 2.0, 4.0, 0.0});
    trace.record(TraceSegment{eg.tasks[2], gpu, 3.5, 4.0, 5.0, 0.5});
    trace.record(TraceSegment{eg.tasks[3], cpu, 5.0, 5.0, 7.0, 0.0});
  }
};

TEST(TraceReport, MakespanBusyAndIdleFractions) {
  HandTrace h;
  EXPECT_DOUBLE_EQ(h.trace.makespan(), 7.0);
  EXPECT_EQ(h.trace.num_executed(), 4u);
  EXPECT_DOUBLE_EQ(h.trace.busy_time(h.cpu), 4.0);
  EXPECT_DOUBLE_EQ(h.trace.busy_time(h.gpu), 3.0);
  // Node 0 holds only the CPU worker, node 1 only the GPU worker.
  EXPECT_DOUBLE_EQ(h.trace.idle_fraction_node(h.ram), 1.0 - 4.0 / 7.0);
  EXPECT_DOUBLE_EQ(h.trace.idle_fraction_node(h.vram), 1.0 - 3.0 / 7.0);
  EXPECT_DOUBLE_EQ(h.trace.total_fetch_stall(), 0.5);
  h.trace.validate();  // hand schedule respects the diamond's dependencies
}

TEST(TraceReport, WorkShareSplitsBusySecondsByArch) {
  HandTrace h;
  const TraceReport report(h.trace, h.eg.graph, h.platform);
  EXPECT_DOUBLE_EQ(report.work_share(ArchType::CPU), 4.0 / 7.0);
  EXPECT_DOUBLE_EQ(report.work_share(ArchType::GPU), 3.0 / 7.0);
}

TEST(TraceReport, PracticalCriticalPathWalksLastFinishingChain) {
  HandTrace h;
  // Last finisher is t3; its last-finishing predecessor is t2 (ends 5.0),
  // whose predecessor is t0. Chain in execution order: t0, t2, t3.
  const std::vector<TaskId> path = h.trace.practical_critical_path();
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], h.eg.tasks[0]);
  EXPECT_EQ(path[1], h.eg.tasks[2]);
  EXPECT_EQ(path[2], h.eg.tasks[3]);
  // Critical path seconds = 2 (t0) + 1 (t2) + 2 (t3) = 5.
  const TraceReport report(h.trace, h.eg.graph, h.platform);
  EXPECT_DOUBLE_EQ(report.critical_path_seconds(), 5.0);
}

TEST(TraceReport, EfficiencyBoundRatioUsesTheTighterBound) {
  HandTrace h;
  const TraceReport report(h.trace, h.eg.graph, h.platform);
  // Work bound = total busy / workers = 7/2 = 3.5 < critical path 5, so the
  // bound is the critical path and the ratio is makespan / 5.
  EXPECT_DOUBLE_EQ(report.efficiency_bound_ratio(), 7.0 / 5.0);
}

TEST(TraceReport, ToStringCarriesTablesAndObserverRollup) {
  HandTrace h;
  const TraceReport plain(h.trace, h.eg.graph, h.platform);
  const std::string s = plain.to_string();
  EXPECT_NE(s.find("makespan"), std::string::npos);
  EXPECT_NE(s.find("work"), std::string::npos);  // the codelet name

  RecordingObserver obs;
  SchedEvent e;
  e.kind = SchedEventKind::Evict;
  obs.record(e);
  const TraceReport with_obs(h.trace, h.eg.graph, h.platform, &obs);
  const std::string s2 = with_obs.to_string();
  EXPECT_NE(s2.find("EVICT"), std::string::npos);
  EXPECT_GT(s2.size(), s.size());
}

}  // namespace
}  // namespace mp
