// Integration tests pinning the paper-level behaviours the benches report:
// the Fig. 4 eviction effect, worker pipelining, the Algorithm-2
// best_remaining_work debit, and HeteroPrio's slowdown guard.
#include <gtest/gtest.h>

#include "apps/dense/dense_builders.hpp"
#include "apps/fmm/dag_builder.hpp"
#include "core/multiprio.hpp"
#include "sched/schedulers.hpp"
#include "sim/engine.hpp"
#include "sim/platform_presets.hpp"
#include "test_util.hpp"

namespace mp {
namespace {

SchedulerFactory by_name(const std::string& name) {
  return [name](SchedContext ctx) { return make_scheduler_by_name(name, std::move(ctx)); };
}

TEST(Fig4Shape, EvictionCutsGpuIdleAndMakespan) {
  // The paper's own ablation: simulated Cholesky 960×20 on 1 GPU + 6 CPUs;
  // eviction drops GPU idle dramatically (29% -> 1% there) and shortens the
  // makespan.
  TaskGraph g;
  dense::TileMatrix a(20, 960, false);
  a.register_handles(g);
  dense::build_potrf(g, a, false);
  const PlatformPreset preset = fig4_node();

  SimEngine with(g, preset.platform, preset.perf);
  const SimResult r_with = with.run(by_name("multiprio"));
  SimEngine without(g, preset.platform, preset.perf);
  const SimResult r_without = without.run(by_name("multiprio-noevict"));

  const double gpu_idle_with = r_with.idle_per_node[1];
  const double gpu_idle_without = r_without.idle_per_node[1];
  EXPECT_LT(gpu_idle_with, 0.15);
  EXPECT_GT(gpu_idle_without, gpu_idle_with + 0.15);
  EXPECT_LT(r_with.makespan, r_without.makespan);
}

TEST(Pipelining, OverlapsTransfersWithExecution) {
  // Chain-free GPU workload with large inputs on one worker: pipelining
  // must hide most fetches behind execution.
  TaskGraph g;
  const CodeletId cl = g.add_codelet("k", {ArchType::GPU});
  SubmitOptions o;
  o.flops = 2e8;  // 2 ms exec at 100 GF
  for (int i = 0; i < 10; ++i) {
    const DataId d = g.add_data(10'000'000);  // 1 ms transfer at 10 GB/s
    g.submit(cl, {Access{d, AccessMode::Read}}, o);
  }
  Platform p = test::small_platform(0, 1);
  PerfDatabase db = test::flat_perf(10.0, 100.0);

  SimConfig off;
  off.pipeline_depth = 0;
  SimEngine e_off(g, p, db, off);
  const SimResult r_off = e_off.run(by_name("eager"));
  SimConfig on;
  on.pipeline_depth = 1;
  SimEngine e_on(g, p, db, on);
  const SimResult r_on = e_on.run(by_name("eager"));

  EXPECT_LT(r_on.makespan, r_off.makespan);
  EXPECT_LT(e_on.trace().total_fetch_stall(), e_off.trace().total_fetch_stall());
  // Serial: 10×(1 ms fetch + 2 ms exec); pipelined: first fetch + 10×2 ms.
  EXPECT_NEAR(r_off.makespan, 0.030, 2e-3);
  EXPECT_NEAR(r_on.makespan, 0.021, 2e-3);
}

TEST(Pipelining, DoesNotHoardWhenPeersAreIdle) {
  // 4 equal tasks, 4 workers: pipelining must not let worker 0 take two.
  test::EdgeGraph eg(4, {}, 1e9, {ArchType::CPU});
  Platform p = test::small_platform(4, 0);
  PerfDatabase db = test::flat_perf(10.0, 100.0);
  const SimResult r = simulate(eg.graph, p, db, by_name("eager"));
  EXPECT_NEAR(r.makespan, 0.1, 1e-9);
}

TEST(BrwDebit, DiversionDebitsMoreThanCredit) {
  // Algorithm 2 debits δ(t, w_a): a CPU diverting a GPU-best task must
  // reduce the GPU ledger by the (large) CPU time, throttling cascades.
  TaskGraph g;
  const CodeletId cl = g.add_codelet("both", {ArchType::CPU, ArchType::GPU});
  std::vector<TaskId> tasks;
  for (int i = 0; i < 4; ++i) {
    const DataId d = g.add_data(100 + static_cast<std::size_t>(i));
    tasks.push_back(g.submit(cl, {Access{d, AccessMode::ReadWrite}}));
  }
  Platform p = test::small_platform(2, 1);
  test::ManualContext mc(g, p, test::flat_perf());
  for (TaskId t : tasks) {
    mc.history.record(t, ArchType::CPU, 20e-3);
    mc.history.record(t, ArchType::GPU, 10e-3);  // GPU best, only 2× faster
  }
  MultiPrioScheduler s(mc.ctx());
  for (TaskId t : tasks) s.push(t);
  const MemNodeId gpu{std::size_t{1}};
  EXPECT_NEAR(s.best_remaining_work(gpu), 40e-3, 1e-12);
  // brw/1 worker = 40 ms > 20 ms: the CPU may divert one task...
  const WorkerId cpu_w = p.workers_of_node(p.ram_node())[0];
  ASSERT_TRUE(s.pop(cpu_w).has_value());
  // ...which debits 20 ms (the CPU time), not 10 ms (the credit).
  EXPECT_NEAR(s.best_remaining_work(gpu), 20e-3, 1e-12);
}

TEST(HeteroPrioGuard, SlowWorkerWaitsUnlessBestIsBusy) {
  TaskGraph g;
  const CodeletId cl = g.add_codelet("gpuish", {ArchType::CPU, ArchType::GPU});
  std::vector<TaskId> tasks;
  for (int i = 0; i < 6; ++i) {
    const DataId d = g.add_data(64 + static_cast<std::size_t>(i));
    tasks.push_back(g.submit(cl, {Access{d, AccessMode::ReadWrite}}));
  }
  Platform p = test::small_platform(1, 1);
  test::ManualContext mc(g, p, test::flat_perf());
  for (TaskId t : tasks) {
    mc.history.record(t, ArchType::CPU, 30e-3);
    mc.history.record(t, ArchType::GPU, 1e-3);
  }
  auto s = make_heteroprio(mc.ctx());
  const WorkerId cpu_w = p.workers_of_node(p.ram_node())[0];

  // One queued GPU task (backlog 1 ms < 30 ms CPU): the CPU must refuse.
  s->push(tasks[0]);
  EXPECT_FALSE(s->pop(cpu_w).has_value());
  // Pile up 5 more (backlog 6 ms)... still below the 30 ms CPU time.
  for (int i = 1; i < 6; ++i) s->push(tasks[i]);
  EXPECT_FALSE(s->pop(cpu_w).has_value());
}

TEST(HeteroPrioGuard, SlowWorkerTakesWhenBacklogDeep) {
  TaskGraph g;
  const CodeletId cl = g.add_codelet("gpuish", {ArchType::CPU, ArchType::GPU});
  std::vector<TaskId> tasks;
  for (int i = 0; i < 6; ++i) {
    const DataId d = g.add_data(64 + static_cast<std::size_t>(i));
    tasks.push_back(g.submit(cl, {Access{d, AccessMode::ReadWrite}}));
  }
  Platform p = test::small_platform(1, 1);
  test::ManualContext mc(g, p, test::flat_perf());
  for (TaskId t : tasks) {
    mc.history.record(t, ArchType::CPU, 3e-3);
    mc.history.record(t, ArchType::GPU, 1e-3);
  }
  auto s = make_heteroprio(mc.ctx());
  for (TaskId t : tasks) s->push(t);  // backlog 6 ms > 3 ms CPU time
  const WorkerId cpu_w = p.workers_of_node(p.ram_node())[0];
  EXPECT_TRUE(s->pop(cpu_w).has_value());
}

TEST(SchedulerComparison, MultiPrioCompetitiveOnIrregularFmm) {
  // Loose sanity on the Fig. 6 direction: MultiPrio must stay within a
  // reasonable factor of Dmdas on the irregular FMM workload (the paper has
  // it winning on real hardware; our perfectly-calibrated simulator gives
  // Dmdas its best case, see EXPERIMENTS.md).
  auto parts = fmm::clustered_sphere(60000, 11);
  fmm::Octree tree(std::move(parts), {5, 64, false});
  TaskGraph g;
  (void)fmm::build_fmm(g, tree);
  const PlatformPreset preset = intel_v100(2);
  const SimResult mp_r = simulate(g, preset.platform, preset.perf, by_name("multiprio"));
  const SimResult dm_r = simulate(g, preset.platform, preset.perf, by_name("dmdas"));
  EXPECT_LT(mp_r.makespan, dm_r.makespan * 1.5);
  EXPECT_EQ(mp_r.tasks_executed, g.num_tasks());
}

TEST(SchedulerComparison, MultiPrioBeatsNaiveBaselinesOnCholesky) {
  TaskGraph g;
  dense::TileMatrix a(16, 960, false);
  a.register_handles(g);
  dense::build_potrf(g, a, false);
  const PlatformPreset preset = intel_v100();
  const SimResult mp_r = simulate(g, preset.platform, preset.perf, by_name("multiprio"));
  const SimResult rnd = simulate(g, preset.platform, preset.perf, by_name("random"));
  EXPECT_LT(mp_r.makespan, rnd.makespan);
}

}  // namespace
}  // namespace mp
