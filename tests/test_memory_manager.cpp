#include <gtest/gtest.h>

#include "runtime/memory_manager.hpp"
#include "test_util.hpp"

namespace mp {
namespace {

struct World {
  TaskGraph graph;
  Platform platform;
  CodeletId cl;
  MemNodeId gpu0;
  MemNodeId gpu1;

  explicit World(std::size_t gpu_capacity = 0) {
    platform.add_workers(ArchType::CPU, platform.ram_node(), 2);
    gpu0 = platform.add_gpu_node(gpu_capacity, 10e9, 1e-6);
    platform.add_workers(ArchType::GPU, gpu0, 1);
    gpu1 = platform.add_gpu_node(gpu_capacity, 10e9, 1e-6);
    platform.add_workers(ArchType::GPU, gpu1, 1);
    cl = graph.add_codelet("k", {ArchType::CPU, ArchType::GPU});
  }

  TaskId task(std::initializer_list<Access> acc) { return graph.submit(cl, acc); }
};

TEST(MemoryManager, HomeCopyIsValid) {
  World w;
  const DataId d = w.graph.add_data(100);
  MemoryManager mm(w.graph, w.platform);
  EXPECT_TRUE(mm.is_valid_on(d, w.platform.ram_node()));
  EXPECT_FALSE(mm.is_valid_on(d, w.gpu0));
}

TEST(MemoryManager, ReadFetchesCopyAndKeepsSource) {
  World w;
  const DataId d = w.graph.add_data(100);
  const TaskId t = w.task({Access{d, AccessMode::Read}});
  MemoryManager mm(w.graph, w.platform);
  std::vector<TransferOp> ops;
  mm.acquire_for_task(t, w.gpu0, ops);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].from, w.platform.ram_node());
  EXPECT_EQ(ops[0].to, w.gpu0);
  EXPECT_EQ(ops[0].bytes, 100u);
  EXPECT_TRUE(mm.is_valid_on(d, w.gpu0));
  EXPECT_TRUE(mm.is_valid_on(d, w.platform.ram_node()));  // shared copy
}

TEST(MemoryManager, WriteInvalidatesOtherCopies) {
  World w;
  const DataId d = w.graph.add_data(100);
  const TaskId r = w.task({Access{d, AccessMode::Read}});
  const TaskId rw = w.task({Access{d, AccessMode::ReadWrite}});
  MemoryManager mm(w.graph, w.platform);
  std::vector<TransferOp> ops;
  mm.acquire_for_task(r, w.gpu0, ops);
  ops.clear();
  mm.acquire_for_task(rw, w.gpu1, ops);
  EXPECT_TRUE(mm.is_valid_on(d, w.gpu1));
  EXPECT_FALSE(mm.is_valid_on(d, w.gpu0));
  EXPECT_FALSE(mm.is_valid_on(d, w.platform.ram_node()));
}

TEST(MemoryManager, WriteOnlyNeedsNoFetch) {
  World w;
  const DataId d = w.graph.add_data(100);
  const TaskId t = w.task({Access{d, AccessMode::Write}});
  MemoryManager mm(w.graph, w.platform);
  std::vector<TransferOp> ops;
  mm.acquire_for_task(t, w.gpu0, ops);
  EXPECT_TRUE(ops.empty());
  EXPECT_TRUE(mm.is_valid_on(d, w.gpu0));
}

TEST(MemoryManager, ReadAlreadyValidNoTransfer) {
  World w;
  const DataId d = w.graph.add_data(100);
  const TaskId t0 = w.task({Access{d, AccessMode::Read}});
  const TaskId t1 = w.task({Access{d, AccessMode::Read}});
  MemoryManager mm(w.graph, w.platform);
  std::vector<TransferOp> ops;
  mm.acquire_for_task(t0, w.gpu0, ops);
  ops.clear();
  mm.acquire_for_task(t1, w.gpu0, ops);
  EXPECT_TRUE(ops.empty());
}

TEST(MemoryManager, BytesMissing) {
  World w;
  const DataId d0 = w.graph.add_data(100);
  const DataId d1 = w.graph.add_data(50);
  const TaskId t =
      w.task({Access{d0, AccessMode::Read}, Access{d1, AccessMode::Read}});
  MemoryManager mm(w.graph, w.platform);
  EXPECT_EQ(mm.bytes_missing(t, w.gpu0), 150u);
  std::vector<TransferOp> ops;
  mm.prefetch(d0, w.gpu0, ops);
  EXPECT_EQ(mm.bytes_missing(t, w.gpu0), 50u);
  EXPECT_EQ(mm.bytes_missing(t, w.platform.ram_node()), 0u);
}

TEST(MemoryManager, EstimatedTransferTimeMatchesPlatform) {
  World w;
  const DataId d = w.graph.add_data(10'000'000);
  const TaskId t = w.task({Access{d, AccessMode::Read}});
  MemoryManager mm(w.graph, w.platform);
  EXPECT_NEAR(mm.estimated_transfer_time(t, w.gpu0),
              w.platform.transfer_time(10'000'000, w.platform.ram_node(), w.gpu0), 1e-12);
}

TEST(MemoryManager, PrefetchIdempotent) {
  World w;
  const DataId d = w.graph.add_data(100);
  MemoryManager mm(w.graph, w.platform);
  std::vector<TransferOp> ops;
  mm.prefetch(d, w.gpu0, ops);
  EXPECT_EQ(ops.size(), 1u);
  mm.prefetch(d, w.gpu0, ops);
  EXPECT_EQ(ops.size(), 1u);  // no duplicate transfer
}

TEST(MemoryManager, LruEvictionMakesRoom) {
  World w(/*gpu_capacity=*/250);
  const DataId d0 = w.graph.add_data(100);
  const DataId d1 = w.graph.add_data(100);
  const DataId d2 = w.graph.add_data(100);
  MemoryManager mm(w.graph, w.platform);
  std::vector<TransferOp> ops;
  mm.prefetch(d0, w.gpu0, ops);
  mm.prefetch(d1, w.gpu0, ops);
  ops.clear();
  mm.prefetch(d2, w.gpu0, ops);  // must evict d0 (LRU)
  EXPECT_FALSE(mm.is_valid_on(d0, w.gpu0));
  EXPECT_TRUE(mm.is_valid_on(d1, w.gpu0));
  EXPECT_TRUE(mm.is_valid_on(d2, w.gpu0));
  EXPECT_GE(mm.eviction_count(), 1u);
  EXPECT_LE(mm.used_bytes(w.gpu0), 250u);
}

TEST(MemoryManager, EvictionWritesBackSoleDirtyCopy) {
  World w(/*gpu_capacity=*/250);
  const DataId d0 = w.graph.add_data(100);
  const DataId d1 = w.graph.add_data(100);
  const DataId d2 = w.graph.add_data(100);
  const TaskId writer = w.task({Access{d0, AccessMode::ReadWrite}});
  MemoryManager mm(w.graph, w.platform);
  std::vector<TransferOp> ops;
  mm.acquire_for_task(writer, w.gpu0, ops);  // d0 dirty, only on gpu0
  mm.prefetch(d1, w.gpu0, ops);
  ops.clear();
  mm.prefetch(d2, w.gpu0, ops);  // evicting d0 requires a writeback
  ASSERT_GE(ops.size(), 2u);
  EXPECT_TRUE(ops[0].writeback);
  EXPECT_EQ(ops[0].data, d0);
  EXPECT_EQ(ops[0].to, w.platform.ram_node());
  EXPECT_TRUE(mm.is_valid_on(d0, w.platform.ram_node()));  // data never lost
}

TEST(MemoryManager, PinnedDataSurvivesEviction) {
  World w(/*gpu_capacity=*/250);
  const DataId d0 = w.graph.add_data(100);
  const DataId d1 = w.graph.add_data(100);
  const DataId d2 = w.graph.add_data(100);
  const TaskId t0 = w.task({Access{d0, AccessMode::Read}});
  MemoryManager mm(w.graph, w.platform);
  std::vector<TransferOp> ops;
  mm.acquire_for_task(t0, w.gpu0, ops);
  mm.pin_task_data(t0, w.gpu0);
  mm.prefetch(d1, w.gpu0, ops);
  ops.clear();
  mm.prefetch(d2, w.gpu0, ops);  // d0 pinned: d1 is the eviction victim
  EXPECT_TRUE(mm.is_valid_on(d0, w.gpu0));
  EXPECT_FALSE(mm.is_valid_on(d1, w.gpu0));
  mm.unpin_task_data(t0, w.gpu0);
}

TEST(MemoryManager, TransferStatsAccumulate) {
  World w;
  const DataId d = w.graph.add_data(100);
  MemoryManager mm(w.graph, w.platform);
  std::vector<TransferOp> ops;
  mm.prefetch(d, w.gpu0, ops);
  EXPECT_EQ(mm.total_bytes_to(w.gpu0), 100u);
  EXPECT_EQ(mm.total_bytes_from(w.platform.ram_node()), 100u);
}

TEST(MemoryManager, LateRegisteredHandlesAnswerFromHomeFallback) {
  // Handles registered after construction must be answerable by the
  // lock-free query paths (a scheduler's POP runs them without any lock)
  // without growing any state: below the published synced count they read
  // the chunked store, above it they fall back to valid-at-home.
  World w;
  const DataId d0 = w.graph.add_data(100);
  MemoryManager mm(w.graph, w.platform);
  const DataId d1 = w.graph.add_data(50);
  EXPECT_TRUE(mm.is_valid_on(d1, w.platform.ram_node()));
  EXPECT_FALSE(mm.is_valid_on(d1, w.gpu0));
  const TaskId t = w.task({Access{d0, AccessMode::Read}, Access{d1, AccessMode::Read}});
  EXPECT_EQ(mm.bytes_missing(t, w.gpu0), 150u);
  EXPECT_GT(mm.estimated_transfer_time(t, w.gpu0), 0.0);
  EXPECT_DOUBLE_EQ(mm.estimated_transfer_time(t, w.platform.ram_node()), 0.0);
  // The first mutating entry point syncs the late handle into the store.
  std::vector<TransferOp> ops;
  mm.acquire_for_task(t, w.gpu0, ops);
  EXPECT_EQ(ops.size(), 2u);
  EXPECT_TRUE(mm.is_valid_on(d1, w.gpu0));
  EXPECT_EQ(mm.bytes_missing(t, w.gpu0), 0u);
}

TEST(MemoryManager, GpuToGpuReadsPreferRamSource) {
  World w;
  const DataId d = w.graph.add_data(100);
  MemoryManager mm(w.graph, w.platform);
  std::vector<TransferOp> ops;
  mm.prefetch(d, w.gpu0, ops);
  ops.clear();
  mm.prefetch(d, w.gpu1, ops);  // RAM still valid: cheapest single hop
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].from, w.platform.ram_node());
}

TEST(MemoryManager, DirtyGpuCopyServesOtherGpu) {
  World w;
  const DataId d = w.graph.add_data(100);
  const TaskId writer = w.task({Access{d, AccessMode::ReadWrite}});
  const TaskId reader = w.task({Access{d, AccessMode::Read}});
  MemoryManager mm(w.graph, w.platform);
  std::vector<TransferOp> ops;
  mm.acquire_for_task(writer, w.gpu0, ops);
  ops.clear();
  mm.acquire_for_task(reader, w.gpu1, ops);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].from, w.gpu0);  // only valid copy
  EXPECT_EQ(ops[0].to, w.gpu1);
}

}  // namespace
}  // namespace mp
