#include <gtest/gtest.h>

#include "runtime/perf_model.hpp"
#include "test_util.hpp"

namespace mp {
namespace {

struct OneTask {
  TaskGraph graph;
  TaskId task;
  OneTask(double flops, std::size_t bytes, const char* codelet = "k") {
    const CodeletId cl = graph.add_codelet(codelet, {ArchType::CPU, ArchType::GPU});
    const DataId d = graph.add_data(bytes);
    SubmitOptions o;
    o.flops = flops;
    task = graph.submit(cl, {Access{d, AccessMode::ReadWrite}}, o);
  }
};

TEST(PerfDatabase, GroundTruthUsesRate) {
  OneTask w(1e9, 8);
  PerfDatabase db;
  db.set_rate("k", ArchType::CPU, RateSpec{10.0, 0.0, 0.0, 0.0});
  db.set_rate("k", ArchType::GPU, RateSpec{100.0, 0.0, 0.0, 0.0});
  EXPECT_NEAR(db.ground_truth(w.graph, w.task, ArchType::CPU), 0.1, 1e-12);
  EXPECT_NEAR(db.ground_truth(w.graph, w.task, ArchType::GPU), 0.01, 1e-12);
}

TEST(PerfDatabase, OverheadAdds) {
  OneTask w(1e9, 8);
  PerfDatabase db;
  db.set_rate("k", ArchType::GPU, RateSpec{100.0, 5e-6, 0.0, 0.0});
  db.set_rate("k", ArchType::CPU, RateSpec{100.0, 0.0, 0.0, 0.0});
  EXPECT_NEAR(db.ground_truth(w.graph, w.task, ArchType::GPU), 0.01 + 5e-6, 1e-12);
}

TEST(PerfDatabase, SaturationTermPenalizesSmallTasks) {
  OneTask small(1e6, 8);
  PerfDatabase db;
  db.set_rate("k", ArchType::GPU, RateSpec{1000.0, 0.0, 0.0, 1e9});
  db.set_rate("k", ArchType::CPU, RateSpec{10.0, 0.0, 0.0, 0.0});
  // (1e6 + 1e9)/1e12 ≈ 1 ms instead of 1 µs.
  EXPECT_NEAR(db.ground_truth(small.graph, small.task, ArchType::GPU), 1.001e-3, 1e-9);
}

TEST(PerfDatabase, MemoryBoundTerm) {
  OneTask w(0.0, 1'000'000);
  PerfDatabase db;
  db.set_rate("k", ArchType::CPU, RateSpec{10.0, 0.0, 1e9, 0.0});
  db.set_rate("k", ArchType::GPU, RateSpec{10.0, 0.0, 0.0, 0.0});
  EXPECT_NEAR(db.ground_truth(w.graph, w.task, ArchType::CPU), 1e-3, 1e-9);
}

TEST(PerfDatabase, FallsBackToDefault) {
  OneTask w(1e9, 8, "unknown-kernel");
  PerfDatabase db;
  db.set_default(ArchType::CPU, RateSpec{2.0, 0.0, 0.0, 0.0});
  db.set_default(ArchType::GPU, RateSpec{20.0, 0.0, 0.0, 0.0});
  EXPECT_NEAR(db.ground_truth(w.graph, w.task, ArchType::CPU), 0.5, 1e-12);
}

TEST(PerfDatabase, NeverReturnsNonPositive) {
  OneTask w(0.0, 0);
  PerfDatabase db;
  db.set_default(ArchType::CPU, RateSpec{1000.0, 0.0, 0.0, 0.0});
  EXPECT_GT(db.ground_truth(w.graph, w.task, ArchType::CPU), 0.0);
}

TEST(HistoryModel, UncalibratedUsesDefaultPrior) {
  OneTask w(1e9, 8);
  PerfDatabase db;
  db.set_rate("k", ArchType::CPU, RateSpec{10.0, 0.0, 0.0, 0.0});
  db.set_default(ArchType::CPU, RateSpec{5.0, 0.0, 0.0, 0.0});
  db.set_default(ArchType::GPU, RateSpec{50.0, 0.0, 0.0, 0.0});
  HistoryModel hm(w.graph, db);
  EXPECT_FALSE(hm.is_calibrated(w.task, ArchType::CPU));
  // Prior uses the *default* rate, not the codelet-specific one.
  EXPECT_NEAR(hm.estimate(w.task, ArchType::CPU), 0.2, 1e-12);
}

TEST(HistoryModel, RecordedMeanWins) {
  OneTask w(1e9, 8);
  PerfDatabase db = test::flat_perf();
  HistoryModel hm(w.graph, db);
  hm.record(w.task, ArchType::CPU, 0.5);
  EXPECT_TRUE(hm.is_calibrated(w.task, ArchType::CPU));
  EXPECT_NEAR(hm.estimate(w.task, ArchType::CPU), 0.5, 1e-12);
  hm.record(w.task, ArchType::CPU, 1.5);
  EXPECT_NEAR(hm.estimate(w.task, ArchType::CPU), 1.0, 1e-12);
}

TEST(HistoryModel, CalibrationMinHonored) {
  OneTask w(1e9, 8);
  PerfDatabase db = test::flat_perf();
  HistoryModel hm(w.graph, db);
  hm.set_calibration_min(3);
  hm.record(w.task, ArchType::CPU, 0.5);
  hm.record(w.task, ArchType::CPU, 0.5);
  EXPECT_FALSE(hm.is_calibrated(w.task, ArchType::CPU));
  hm.record(w.task, ArchType::CPU, 0.5);
  EXPECT_TRUE(hm.is_calibrated(w.task, ArchType::CPU));
}

TEST(HistoryModel, SeedFromTruthMatchesAnalytic) {
  OneTask w(1e9, 8);
  PerfDatabase db;
  db.set_rate("k", ArchType::CPU, RateSpec{10.0, 0.0, 0.0, 0.0});
  db.set_rate("k", ArchType::GPU, RateSpec{100.0, 0.0, 0.0, 0.0});
  HistoryModel hm(w.graph, db);
  hm.seed_from_truth();
  EXPECT_TRUE(hm.is_calibrated(w.task, ArchType::CPU));
  EXPECT_NEAR(hm.estimate(w.task, ArchType::CPU),
              db.ground_truth(w.graph, w.task, ArchType::CPU), 1e-15);
  EXPECT_NEAR(hm.estimate(w.task, ArchType::GPU),
              db.ground_truth(w.graph, w.task, ArchType::GPU), 1e-15);
}

TEST(HistoryModel, BucketsSharedAcrossSameShapeTasks) {
  // Two tasks, same codelet and footprint: one bucket.
  TaskGraph g;
  const CodeletId cl = g.add_codelet("k", {ArchType::CPU});
  const DataId d0 = g.add_data(64);
  const DataId d1 = g.add_data(64);
  SubmitOptions o;
  o.flops = 1e6;
  const TaskId t0 = g.submit(cl, {Access{d0, AccessMode::ReadWrite}}, o);
  const TaskId t1 = g.submit(cl, {Access{d1, AccessMode::ReadWrite}}, o);
  PerfDatabase db = test::flat_perf();
  HistoryModel hm(g, db);
  hm.record(t0, ArchType::CPU, 0.25);
  EXPECT_TRUE(hm.is_calibrated(t1, ArchType::CPU));
  EXPECT_NEAR(hm.estimate(t1, ArchType::CPU), 0.25, 1e-15);
}

TEST(HistoryModel, DifferentFootprintsSeparateBuckets) {
  TaskGraph g;
  const CodeletId cl = g.add_codelet("k", {ArchType::CPU});
  const DataId d0 = g.add_data(64);
  const DataId d1 = g.add_data(128);
  const TaskId t0 = g.submit(cl, {Access{d0, AccessMode::ReadWrite}});
  const TaskId t1 = g.submit(cl, {Access{d1, AccessMode::ReadWrite}});
  PerfDatabase db = test::flat_perf();
  HistoryModel hm(g, db);
  hm.record(t0, ArchType::CPU, 0.25);
  EXPECT_TRUE(hm.is_calibrated(t0, ArchType::CPU));
  EXPECT_FALSE(hm.is_calibrated(t1, ArchType::CPU));
}

TEST(PerfDatabaseDeath, GroundTruthRequiresImplementation) {
  TaskGraph g;
  const CodeletId cl = g.add_codelet("cpu-only", {ArchType::CPU});
  const DataId d = g.add_data(8);
  const TaskId t = g.submit(cl, {Access{d, AccessMode::Read}});
  PerfDatabase db = test::flat_perf();
  EXPECT_DEATH((void)db.ground_truth(g, t, ArchType::GPU), "no implementation");
}

}  // namespace
}  // namespace mp
