// Sparse QR: CSC utilities, column elimination tree vs brute force,
// post-order, front amalgamation invariants, generators, and DAG execution.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/sparseqr/dag_builder.hpp"
#include "common/rng.hpp"
#include "apps/sparseqr/generators.hpp"
#include "apps/sparseqr/symbolic.hpp"
#include "sched/schedulers.hpp"
#include "sim/engine.hpp"
#include "test_util.hpp"

namespace mp::sqr {
namespace {

SparseMatrix tiny(std::size_t rows, std::size_t cols,
                  std::vector<std::pair<std::uint32_t, std::uint32_t>> coo) {
  return from_coo(rows, cols, std::move(coo));
}

/// Brute-force etree of AᵀA: parent(j) = min{i > j : (AᵀA Cholesky fill)...}
/// computed the simple way — build the symmetric pattern of AᵀA, then run
/// the textbook etree algorithm on it.
std::vector<std::uint32_t> brute_etree(const SparseMatrix& a) {
  const std::size_t n = a.cols;
  // Dense pattern of AᵀA.
  std::vector<std::vector<bool>> ata(n, std::vector<bool>(n, false));
  const SparseMatrix at = a.transposed();
  for (std::size_t r = 0; r < a.rows; ++r) {
    for (std::size_t k1 = at.col_ptr[r]; k1 < at.col_ptr[r + 1]; ++k1)
      for (std::size_t k2 = at.col_ptr[r]; k2 < at.col_ptr[r + 1]; ++k2)
        ata[at.row_idx[k1]][at.row_idx[k2]] = true;
  }
  // Liu's etree on the symmetric pattern.
  constexpr std::uint32_t kNone = 0xffffffffu;
  std::vector<std::uint32_t> parent(n, kNone);
  std::vector<std::uint32_t> ancestor(n, kNone);
  for (std::uint32_t j = 0; j < n; ++j) {
    for (std::uint32_t i = 0; i < j; ++i) {
      if (!ata[i][j]) continue;
      std::uint32_t r = i;
      while (ancestor[r] != kNone && ancestor[r] != j) {
        const std::uint32_t next = ancestor[r];
        ancestor[r] = j;
        r = next;
      }
      if (ancestor[r] == kNone) {
        ancestor[r] = j;
        parent[r] = j;
      }
    }
  }
  for (std::uint32_t j = 0; j < n; ++j)
    if (parent[j] == kNone) parent[j] = j;
  return parent;
}

TEST(SparseMatrix, FromCooSortsAndDedupes) {
  const SparseMatrix m = tiny(4, 3, {{2, 1}, {0, 0}, {2, 1}, {1, 0}, {3, 2}});
  EXPECT_EQ(m.nnz(), 4u);
  m.self_check();
  EXPECT_EQ(m.col_ptr[1] - m.col_ptr[0], 2u);
}

TEST(SparseMatrix, TransposeRoundTrip) {
  const SparseMatrix m = tiny(5, 4, {{0, 0}, {2, 0}, {1, 1}, {4, 2}, {3, 3}, {0, 3}});
  const SparseMatrix tt = m.transposed().transposed();
  EXPECT_EQ(tt.col_ptr, m.col_ptr);
  EXPECT_EQ(tt.row_idx, m.row_idx);
}

TEST(SparseMatrix, LeftmostColPerRow) {
  const SparseMatrix m = tiny(3, 3, {{0, 1}, {1, 0}, {1, 2}, {2, 2}});
  const auto lm = m.leftmost_col_per_row();
  EXPECT_EQ(lm[0], 1u);
  EXPECT_EQ(lm[1], 0u);
  EXPECT_EQ(lm[2], 2u);
}

TEST(ColumnEtree, DenseColumnIsAPath) {
  // A column-dense matrix: AᵀA dense -> etree is the path j -> j+1.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> coo;
  for (std::uint32_t j = 0; j < 5; ++j)
    for (std::uint32_t r = 0; r < 3; ++r) coo.emplace_back(r, j);
  const SparseMatrix m = tiny(3, 5, std::move(coo));
  const auto parent = column_etree(m);
  for (std::uint32_t j = 0; j + 1 < 5; ++j) EXPECT_EQ(parent[j], j + 1);
  EXPECT_EQ(parent[4], 4u);
}

TEST(ColumnEtree, BlockDiagonalGivesForest) {
  // Two independent column blocks -> two trees.
  const SparseMatrix m =
      tiny(4, 4, {{0, 0}, {1, 0}, {1, 1}, {2, 2}, {3, 2}, {3, 3}});
  const auto parent = column_etree(m);
  EXPECT_EQ(parent[0], 1u);
  EXPECT_EQ(parent[1], 1u);  // root of block 1
  EXPECT_EQ(parent[2], 3u);
  EXPECT_EQ(parent[3], 3u);  // root of block 2
}

class EtreeRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EtreeRandom, MatchesBruteForce) {
  Rng rng(GetParam());
  const std::size_t rows = 14 + rng.next_in(0, 10);
  const std::size_t cols = 10 + rng.next_in(0, 8);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> coo;
  for (std::uint32_t j = 0; j < cols; ++j) {
    coo.emplace_back(static_cast<std::uint32_t>(rng.next_in(0, rows - 1)), j);
    for (int e = 0; e < 3; ++e)
      if (rng.next_double() < 0.6)
        coo.emplace_back(static_cast<std::uint32_t>(rng.next_in(0, rows - 1)), j);
  }
  const SparseMatrix m = from_coo(rows, cols, std::move(coo));
  EXPECT_EQ(column_etree(m), brute_etree(m));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EtreeRandom, ::testing::Range<std::uint64_t>(1, 13));

TEST(Postorder, ChildrenBeforeParents) {
  const std::vector<std::uint32_t> parent = {2, 2, 4, 4, 4};
  const auto post = postorder(parent);
  std::vector<std::uint32_t> pos(parent.size());
  for (std::uint32_t i = 0; i < post.size(); ++i) pos[post[i]] = i;
  for (std::uint32_t j = 0; j < parent.size(); ++j) {
    if (parent[j] != j) {
      EXPECT_LT(pos[j], pos[parent[j]]);
    }
  }
}

TEST(Postorder, SubtreesAreContiguous) {
  const std::vector<std::uint32_t> parent = {1, 4, 3, 4, 4};
  const auto post = postorder(parent);
  // node 1's subtree {0,1} must occupy consecutive positions.
  std::vector<std::uint32_t> pos(parent.size());
  for (std::uint32_t i = 0; i < post.size(); ++i) pos[post[i]] = i;
  EXPECT_EQ(pos[1], pos[0] + 1);
}

TEST(Analyze, FrontInvariantsHold) {
  const MatrixSpec spec{"t", 300, 200, 900, 0.0, 10.0, 0.01};
  const SparseMatrix m = generate(spec, 3);
  const SymbolicAnalysis sym = analyze(m, {16});
  // self_check ran inside analyze; verify extra invariants here.
  std::size_t cols_total = 0;
  for (const Front& f : sym.fronts) {
    cols_total += f.k();
    EXPECT_LE(f.k(), 16u);
    for (std::uint32_t b : f.border) EXPECT_GT(b, f.cols.back());
    EXPECT_GE(f.n(), f.k());
  }
  EXPECT_EQ(cols_total, m.cols);
  EXPECT_GT(sym.total_flops, 0.0);
}

TEST(Analyze, SingleDenseBlockGivesOneBigFlopCount) {
  // Denser pattern -> more fill -> more flops than a banded one.
  const MatrixSpec banded{"b", 400, 300, 1200, 0.0, 3.0, 0.0};
  const MatrixSpec wild{"w", 400, 300, 1200, 0.0, 80.0, 0.05};
  const double f_banded = analyze(generate(banded, 1)).total_flops;
  const double f_wild = analyze(generate(wild, 1)).total_flops;
  EXPECT_GT(f_wild, f_banded * 2.0);
}

TEST(Analyze, AmalgamationReducesFrontCount) {
  const MatrixSpec spec{"t", 500, 400, 1600, 0.0, 8.0, 0.005};
  const SparseMatrix m = generate(spec, 5);
  const auto few = analyze(m, {64});
  const auto many = analyze(m, {1});
  EXPECT_LT(few.fronts.size(), many.fronts.size());
  EXPECT_EQ(many.fronts.size(), m.cols);  // no amalgamation: one col each
}

TEST(Generators, ExactShapeAndNnz) {
  for (const MatrixSpec& spec : paper_matrix_specs()) {
    if (spec.rows > 200000) continue;  // keep unit tests fast; Rucci1 is benched
    const SparseMatrix m = generate(spec, 7);
    EXPECT_EQ(m.rows, spec.rows) << spec.name;
    EXPECT_EQ(m.cols, spec.cols) << spec.name;
    EXPECT_EQ(m.nnz(), spec.nnz) << spec.name;
  }
}

TEST(Generators, Deterministic) {
  const MatrixSpec spec = paper_matrix_specs()[0];
  const SparseMatrix a = generate(spec, 7);
  const SparseMatrix b = generate(spec, 7);
  EXPECT_EQ(a.row_idx, b.row_idx);
  EXPECT_EQ(a.col_ptr, b.col_ptr);
}

TEST(Generators, SpecListMatchesPaperTable) {
  const auto specs = paper_matrix_specs();
  ASSERT_EQ(specs.size(), 10u);
  EXPECT_EQ(specs[0].name, "cat_ears_4_4");
  EXPECT_EQ(specs[4].name, "Rucci1");
  EXPECT_EQ(specs[4].rows, 1977885u);
  EXPECT_EQ(specs[9].name, "mk13-b5");
  // Fig. 7 claims op-count order but itself lists neos2 (31018) before
  // GL7d24 (26825); we keep the published row order, so assert sortedness
  // modulo exactly that documented inversion.
  for (std::size_t i = 1; i < specs.size(); ++i) {
    if (specs[i].name == "GL7d24") continue;
    const double prev = specs[i - 1].name == "neos2" ? specs[i - 2].gflop_target
                                                     : specs[i - 1].gflop_target;
    EXPECT_GT(specs[i].gflop_target, prev) << specs[i].name;
  }
}

TEST(SparseQrDag, BuildsAndRunsUnderAllSchedulers) {
  const MatrixSpec spec{"t", 600, 400, 1800, 0.0, 15.0, 0.01};
  const SparseMatrix m = generate(spec, 11);
  const SymbolicAnalysis sym = analyze(m, {32});
  TaskGraph g;
  const SparseQrStats stats = build_sparseqr(g, sym, {16});
  EXPECT_EQ(stats.tasks, g.num_tasks());
  EXPECT_GT(stats.tasks, sym.fronts.size());  // assembly + panels + updates
  g.self_check();
  Platform p = test::small_platform(3, 1);
  PerfDatabase db = test::flat_perf(10.0, 100.0);
  for (const char* name : {"multiprio", "dmdas", "heteroprio", "eager"}) {
    const SimResult r = simulate(g, p, db, [&](SchedContext ctx) {
      return make_scheduler_by_name(name, std::move(ctx));
    });
    EXPECT_EQ(r.tasks_executed, g.num_tasks()) << name;
  }
}

TEST(SparseQrDag, ParentWaitsForChildContribution) {
  // Two-column chain: front(0) child of front(1) with a border — the
  // parent's assembly must depend on the child's trailing panel.
  const SparseMatrix m = tiny(3, 2, {{0, 0}, {1, 0}, {1, 1}, {2, 1}});
  const SymbolicAnalysis sym = analyze(m, {1});
  ASSERT_EQ(sym.fronts.size(), 2u);
  ASSERT_EQ(sym.fronts[0].parent, 1u);
  TaskGraph g;
  (void)build_sparseqr(g, sym, {1});
  // Find the parent's init task; it must have at least one predecessor in
  // the child's tasks.
  bool found_cross_dep = false;
  for (std::size_t i = 0; i < g.num_tasks(); ++i) {
    const Task& t = g.task(TaskId{i});
    if (t.name == "init_front#1") {
      found_cross_dep = !g.predecessors(t.id).empty();
    }
  }
  EXPECT_TRUE(found_cross_dep);
}

TEST(SparseQrDag, FlopsAccumulated) {
  const MatrixSpec spec{"t", 300, 200, 800, 0.0, 10.0, 0.01};
  const SparseMatrix m = generate(spec, 13);
  const SymbolicAnalysis sym = analyze(m, {16});
  TaskGraph g;
  const SparseQrStats stats = build_sparseqr(g, sym, {16});
  EXPECT_GT(stats.flops, 0.0);
  EXPECT_DOUBLE_EQ(stats.flops, g.total_flops());
}

}  // namespace
}  // namespace mp::sqr
