// Discrete-event engine tests: timing math, link contention, prefetch,
// noise determinism, trace validation.
#include <gtest/gtest.h>

#include "sched/schedulers.hpp"
#include "sim/engine.hpp"
#include "test_util.hpp"

namespace mp {
namespace {

SchedulerFactory eager_factory() {
  return [](SchedContext ctx) { return make_eager(std::move(ctx)); };
}

TEST(SimEngine, SingleTaskMakespanIsExecTime) {
  TaskGraph g;
  const CodeletId cl = g.add_codelet("k", {ArchType::CPU});
  const DataId d = g.add_data(8);
  SubmitOptions o;
  o.flops = 1e9;
  g.submit(cl, {Access{d, AccessMode::ReadWrite}}, o);
  Platform p = test::small_platform(1, 0);
  PerfDatabase db = test::flat_perf(10.0, 100.0);  // CPU: 1e9/(10e9) = 0.1 s
  const SimResult r = simulate(g, p, db, eager_factory());
  EXPECT_NEAR(r.makespan, 0.1, 1e-9);
  EXPECT_EQ(r.tasks_executed, 1u);
}

TEST(SimEngine, ChainSerializes) {
  test::EdgeGraph eg(3, {{0, 1}, {1, 2}}, 1e9, {ArchType::CPU});
  Platform p = test::small_platform(4, 0);
  PerfDatabase db = test::flat_perf(10.0, 100.0);
  const SimResult r = simulate(eg.graph, p, db, eager_factory());
  EXPECT_NEAR(r.makespan, 0.3, 1e-9);  // no parallelism on a chain
}

TEST(SimEngine, IndependentTasksRunInParallel) {
  test::EdgeGraph eg(4, {}, 1e9, {ArchType::CPU});
  Platform p = test::small_platform(4, 0);
  PerfDatabase db = test::flat_perf(10.0, 100.0);
  const SimResult r = simulate(eg.graph, p, db, eager_factory());
  EXPECT_NEAR(r.makespan, 0.1, 1e-9);  // 4 tasks, 4 workers
}

TEST(SimEngine, FewerWorkersSerialize) {
  test::EdgeGraph eg(4, {}, 1e9, {ArchType::CPU});
  Platform p = test::small_platform(2, 0);
  PerfDatabase db = test::flat_perf(10.0, 100.0);
  const SimResult r = simulate(eg.graph, p, db, eager_factory());
  EXPECT_NEAR(r.makespan, 0.2, 1e-9);
}

TEST(SimEngine, TransferDelaysGpuStart) {
  TaskGraph g;
  const CodeletId cl = g.add_codelet("k", {ArchType::GPU});
  const DataId d = g.add_data(10'000'000);  // 1 ms over the 10 GB/s link
  SubmitOptions o;
  o.flops = 1e9;  // 10 ms at 100 GFlop/s
  g.submit(cl, {Access{d, AccessMode::Read}}, o);
  Platform p = test::small_platform(1, 1);
  PerfDatabase db = test::flat_perf(10.0, 100.0);
  SimEngine engine(g, p, db);
  const SimResult r = engine.run(eager_factory());
  // latency 1µs + 1 ms transfer + 10 ms exec.
  EXPECT_NEAR(r.makespan, 1e-6 + 1e-3 + 1e-2, 1e-9);
  EXPECT_EQ(r.bytes_to_gpus, 10'000'000u);
  EXPECT_NEAR(engine.trace().total_fetch_stall(), 1e-3 + 1e-6, 1e-9);
}

TEST(SimEngine, LinkContentionSerializesTransfers) {
  // Two independent GPU tasks with distinct 1 ms inputs on one GPU: the
  // second fetch waits for the first on the shared link.
  TaskGraph g;
  const CodeletId cl = g.add_codelet("k", {ArchType::GPU});
  const DataId d0 = g.add_data(10'000'000);
  const DataId d1 = g.add_data(10'000'000);
  SubmitOptions o;
  o.flops = 1e6;  // negligible exec
  g.submit(cl, {Access{d0, AccessMode::Read}}, o);
  g.submit(cl, {Access{d1, AccessMode::Read}}, o);
  Platform p;
  const MemNodeId gpu = p.add_gpu_node(0, 10e9, 0.0);
  p.add_workers(ArchType::GPU, gpu, 2);  // two streams, one link
  PerfDatabase db = test::flat_perf(10.0, 100.0);
  const SimResult r = simulate(g, p, db, eager_factory());
  EXPECT_GE(r.makespan, 2e-3);  // both transfers share the link
}

TEST(SimEngine, CachedDataNotRefetched) {
  // Two sequential tasks reading the same data on the same GPU: one fetch.
  TaskGraph g;
  const CodeletId cl = g.add_codelet("k", {ArchType::GPU});
  const DataId d = g.add_data(10'000'000);
  SubmitOptions o;
  o.flops = 1e6;
  g.submit(cl, {Access{d, AccessMode::Read}}, o);
  g.submit(cl, {Access{d, AccessMode::Read}}, o);
  Platform p = test::small_platform(0, 1);
  PerfDatabase db = test::flat_perf(10.0, 100.0);
  const SimResult r = simulate(g, p, db, eager_factory());
  EXPECT_EQ(r.bytes_to_gpus, 10'000'000u);
}

TEST(SimEngine, HeterogeneousMappingPrefersGpuWithDm) {
  // One big task that is 10× faster on GPU: dm must map it there.
  TaskGraph g;
  const CodeletId cl = g.add_codelet("k", {ArchType::CPU, ArchType::GPU});
  const DataId d = g.add_data(8);
  SubmitOptions o;
  o.flops = 1e9;
  g.submit(cl, {Access{d, AccessMode::ReadWrite}}, o);
  Platform p = test::small_platform(2, 1);
  PerfDatabase db = test::flat_perf(10.0, 100.0);
  SimEngine engine(g, p, db);
  const SimResult r = engine.run(
      [](SchedContext ctx) { return make_dm_family(std::move(ctx), DmVariant::Dm); });
  EXPECT_NEAR(r.makespan, 0.01, 1e-5);  // + µs-scale fetch latency
  EXPECT_EQ(p.worker(engine.trace().segments()[0].worker).arch, ArchType::GPU);
}

TEST(SimEngine, NoiseIsDeterministicPerSeed) {
  test::EdgeGraph eg(20, {{0, 5}, {1, 5}, {5, 9}}, 1e8, {ArchType::CPU});
  Platform p = test::small_platform(3, 0);
  PerfDatabase db = test::flat_perf();
  SimConfig cfg;
  cfg.noise_sigma = 0.1;
  cfg.seed = 7;
  const SimResult a = simulate(eg.graph, p, db, eager_factory(), cfg);
  const SimResult b = simulate(eg.graph, p, db, eager_factory(), cfg);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  SimConfig cfg2 = cfg;
  cfg2.seed = 8;
  const SimResult c = simulate(eg.graph, p, db, eager_factory(), cfg2);
  EXPECT_NE(a.makespan, c.makespan);
}

TEST(SimEngine, MakespanAtLeastCriticalPathAndWorkBound) {
  test::EdgeGraph eg(30, {{0, 10}, {10, 20}, {1, 11}, {11, 21}}, 1e8, {ArchType::CPU});
  Platform p = test::small_platform(4, 0);
  PerfDatabase db = test::flat_perf(10.0, 100.0);
  const SimResult r = simulate(eg.graph, p, db, eager_factory());
  const double exec = 1e8 / 10e9;
  EXPECT_GE(r.makespan, 3 * exec - 1e-12);             // chain bound
  EXPECT_GE(r.makespan, 30 * exec / 4.0 - 1e-12);      // work bound
}

TEST(SimEngine, TraceCriticalPathEndsAtLastTask) {
  test::EdgeGraph eg(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}}, 1e8, {ArchType::CPU});
  Platform p = test::small_platform(2, 0);
  PerfDatabase db = test::flat_perf();
  SimEngine engine(eg.graph, p, db);
  (void)engine.run(eager_factory());
  const auto path = engine.trace().practical_critical_path();
  ASSERT_EQ(path.size(), 5u);
  EXPECT_EQ(path.front(), eg.tasks[0]);
  EXPECT_EQ(path.back(), eg.tasks[4]);
}

TEST(SimEngine, GanttAndCsvExportNonEmpty) {
  test::EdgeGraph eg(3, {{0, 1}}, 1e8, {ArchType::CPU});
  Platform p = test::small_platform(2, 0);
  PerfDatabase db = test::flat_perf();
  SimEngine engine(eg.graph, p, db);
  (void)engine.run(eager_factory());
  EXPECT_NE(engine.trace().to_csv().find("exec_start"), std::string::npos);
  EXPECT_NE(engine.trace().ascii_gantt().find('#'), std::string::npos);
}

TEST(SimEngine, PrefetchReducesFetchStallForDmda) {
  // A chain of GPU tasks each reading large fresh data; dmda's push-time
  // prefetch should overlap transfers with execution, unlike dm.
  TaskGraph g;
  const CodeletId cl = g.add_codelet("k", {ArchType::GPU});
  std::vector<DataId> ds;
  for (int i = 0; i < 8; ++i) ds.push_back(g.add_data(10'000'000));
  SubmitOptions o;
  o.flops = 2e8;  // 2 ms on GPU ≈ transfer time
  for (int i = 0; i < 8; ++i) g.submit(cl, {Access{ds[i], AccessMode::Read}}, o);
  Platform p = test::small_platform(0, 1);
  PerfDatabase db = test::flat_perf(10.0, 100.0);

  // Disable worker pipelining so the comparison isolates the push-time
  // prefetch (pipelining also hides fetches, for every policy).
  SimConfig cfg;
  cfg.pipeline_depth = 0;
  SimEngine e_dm(g, p, db, cfg);
  (void)e_dm.run(
      [](SchedContext ctx) { return make_dm_family(std::move(ctx), DmVariant::Dm); });
  SimEngine e_dmda(g, p, db, cfg);
  (void)e_dmda.run(
      [](SchedContext ctx) { return make_dm_family(std::move(ctx), DmVariant::Dmda); });
  EXPECT_LT(e_dmda.trace().total_fetch_stall(), e_dm.trace().total_fetch_stall());
  EXPECT_LT(e_dmda.trace().makespan(), e_dm.trace().makespan());
}

TEST(SimEngineDeath, EngineIsSingleShot) {
  test::EdgeGraph eg(1, {}, 1e6, {ArchType::CPU});
  Platform p = test::small_platform(1, 0);
  PerfDatabase db = test::flat_perf();
  SimEngine engine(eg.graph, p, db);
  (void)engine.run(eager_factory());
  EXPECT_DEATH((void)engine.run(eager_factory()), "single-shot");
}

}  // namespace
}  // namespace mp
