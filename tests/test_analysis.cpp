// Run-analysis tests: critical-path and area lower bounds against
// hand-computed optima, idle-blame decomposition (buckets partition the idle
// exactly; eviction storms and fail-stop drains land in the right bucket),
// the δ(t,a) model audit, and byte-for-byte determinism of the reports.
#include <gtest/gtest.h>

#include "obs/analysis.hpp"
#include "obs/bench_json.hpp"
#include "obs/compare.hpp"
#include "obs/observer.hpp"
#include "sched/schedulers.hpp"
#include "sim/engine.hpp"
#include "sim/report.hpp"
#include "test_util.hpp"

namespace mp {
namespace {

SchedulerFactory by_name(const std::string& name) {
  return [name](SchedContext ctx) { return make_scheduler_by_name(name, std::move(ctx)); };
}

/// One simulated run with everything the analysis consumes kept alive.
struct AnalyzedRun {
  test::EdgeGraph eg;
  Platform platform;
  PerfDatabase perf;
  RecordingObserver obs;
  std::unique_ptr<SimEngine> engine;
  SimResult result;

  AnalyzedRun(test::EdgeGraph graph_in, Platform p, PerfDatabase db,
              const std::string& sched = "multiprio", SimConfig cfg = {},
              std::size_t event_capacity = EventLog::kDefaultCapacity)
      : eg(std::move(graph_in)), platform(std::move(p)), perf(std::move(db)),
        obs(event_capacity) {
    cfg.observer = &obs;
    engine = std::make_unique<SimEngine>(eg.graph, platform, perf, cfg);
    result = engine->run(by_name(sched));
  }

  [[nodiscard]] RunAnalysis analyze() const {
    return RunAnalysis(engine->trace(), eg.graph, platform, perf, &obs,
                       engine->predicted_durations());
  }
};

// A diamond 0 → {1, 2} → 3, every task 1e8 flops, dual-arch.
test::EdgeGraph diamond(double flops = 1e8) {
  return test::EdgeGraph(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}}, flops);
}

// --- lower bounds -------------------------------------------------------------

TEST(RunAnalysisBounds, DiamondMatchesHandComputedOptima) {
  // 2 CPUs at 10 GFlop/s (0.01 s/task) + 1 GPU at 100 GFlop/s (0.001 s/task).
  AnalyzedRun run(diamond(), test::small_platform(2, 1), test::flat_perf(10.0, 100.0));
  const RunAnalysis a = run.analyze();

  // Critical path 0 → 1 → 3: three tasks at the best-arch (GPU) time.
  EXPECT_NEAR(a.cp_bound_s(), 3e-3, 1e-12);

  // Area bound: 4 divisible tasks, d_cpu = 0.01, d_gpu = 0.001. At the
  // optimum both pools run flat out: g·0.001 = T on the GPU and
  // (4−g)·0.01 = 2T on the CPUs ⇒ g = 10/3, T = 1/300 s.
  EXPECT_NEAR(a.area_bound_s(), 1.0 / 300.0, 1e-9);

  // The binding bound is the larger one, and no schedule can beat it.
  EXPECT_DOUBLE_EQ(a.bound_s(), std::max(a.area_bound_s(), a.cp_bound_s()));
  EXPECT_GE(run.result.makespan, a.bound_s() - 1e-12);
  EXPECT_GT(a.efficiency(), 0.0);
  EXPECT_LE(a.efficiency(), 1.0 + 1e-12);
  EXPECT_LE(a.area_efficiency(), a.efficiency() + 1e-12);
}

TEST(RunAnalysisBounds, ChainIsCriticalPathBoundExactlyAndOptimal) {
  // A pure chain serializes completely: the executed makespan equals the
  // critical-path bound, so efficiency is exactly 1.
  test::EdgeGraph chain(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}}, 1e8);
  AnalyzedRun run(std::move(chain), test::small_platform(2, 1),
                  test::flat_perf(10.0, 100.0));
  const RunAnalysis a = run.analyze();
  EXPECT_NEAR(a.cp_bound_s(), 5e-3, 1e-12);
  // The executed makespan exceeds the bound only by the (µs-scale) transfer
  // latencies between the chained tasks, which the bound ignores.
  EXPECT_GE(run.result.makespan, a.cp_bound_s() - 1e-12);
  EXPECT_GT(a.efficiency(), 0.99);
  EXPECT_LE(a.efficiency(), 1.0 + 1e-12);
  // The executed critical path covers every task of the chain, and its exec
  // seconds are exactly the bound (same tasks, same arch).
  EXPECT_EQ(a.critical_path().size(), 5u);
  EXPECT_NEAR(a.critical_path_exec_s(), a.cp_bound_s(), 1e-12);
}

TEST(RunAnalysisBounds, SingleArchPoolFallsBackToMeanLoad) {
  // CPU-only platform: the area bound degenerates to total work / workers.
  test::EdgeGraph g(6, {}, 1e8, {ArchType::CPU});
  AnalyzedRun run(std::move(g), test::small_platform(3, 0), test::flat_perf(10.0, 100.0),
                  "eager");
  const RunAnalysis a = run.analyze();
  EXPECT_NEAR(a.area_bound_s(), 6 * 0.01 / 3.0, 1e-12);
}

// --- idle blame ----------------------------------------------------------------

TEST(RunAnalysisBlame, BucketsPartitionTotalIdleExactly) {
  AnalyzedRun run(test::EdgeGraph(40, {{0, 20}, {1, 21}}, 1e8),
                  test::small_platform(2, 1), test::flat_perf(1.0, 100.0));
  const RunAnalysis a = run.analyze();

  double worker_sum = 0.0;
  for (const WorkerIdleBlame& b : a.idle_blame()) {
    const double cause_sum = b.by_cause[0] + b.by_cause[1] + b.by_cause[2] + b.by_cause[3];
    EXPECT_NEAR(cause_sum, b.total_idle_s, 1e-9) << b.name;
    worker_sum += b.total_idle_s;
  }
  EXPECT_NEAR(worker_sum, a.total_idle_s(), 1e-9);
  double cause_totals = 0.0;
  for (std::size_t c = 0; c < kNumIdleCauses; ++c)
    cause_totals += a.idle_cause_total(static_cast<IdleCause>(c));
  EXPECT_NEAR(cause_totals, a.total_idle_s(), 1e-9);
}

TEST(RunAnalysisBlame, EvictionStormLandsInEvictionBucket) {
  // 200 identical dual tasks, GPU 10× faster: the CPUs are fed while the GPU
  // heap holds more best-affinity work than δ(t, CPU), then MultiPrio's
  // pop_condition turns them away over and over for the whole tail of the
  // run (the Fig. 4 situation). Those turned-away seconds must be blamed on
  // eviction, not starvation.
  AnalyzedRun run(test::EdgeGraph(200, {}, 1e8), test::small_platform(2, 1),
                  test::flat_perf(10.0, 100.0));
  ASSERT_GT(run.obs.events().count(SchedEventKind::PopReject), 0u);
  const RunAnalysis a = run.analyze();
  const double eviction = a.idle_cause_total(IdleCause::Eviction);
  EXPECT_GT(eviction, 0.0);
  // The storm dominates what the CPUs did with their idle time.
  double cpu_idle = 0.0, cpu_eviction = 0.0;
  for (const WorkerIdleBlame& b : a.idle_blame()) {
    if (run.platform.worker(b.worker).arch != ArchType::CPU) continue;
    cpu_idle += b.total_idle_s;
    cpu_eviction += b.by_cause[static_cast<std::size_t>(IdleCause::Eviction)];
  }
  EXPECT_GT(cpu_eviction, 0.5 * cpu_idle);
}

TEST(RunAnalysisBlame, LostWorkerIdleIsDrainAfterTheLoss) {
  SimConfig cfg;
  cfg.fault.worker_losses.push_back(WorkerLossSpec{WorkerId{std::size_t{0}}, 0.0});
  AnalyzedRun run(test::EdgeGraph(12, {}, 1e8), test::small_platform(2, 1),
                  test::flat_perf(10.0, 100.0), "eager", cfg);
  ASSERT_EQ(run.result.fault.workers_lost, 1u);
  const RunAnalysis a = run.analyze();
  const WorkerIdleBlame& dead = a.idle_blame()[0];
  // Lost at t=0: the whole makespan is idle, all of it drain.
  EXPECT_NEAR(dead.total_idle_s, run.result.makespan, 1e-12);
  EXPECT_NEAR(dead.by_cause[static_cast<std::size_t>(IdleCause::Drain)],
              dead.total_idle_s, 1e-9);
}

// --- model audit ----------------------------------------------------------------

TEST(RunAnalysisModel, CalibratedNoiseFreeRunHasZeroError) {
  AnalyzedRun run(diamond(), test::small_platform(2, 1), test::flat_perf(10.0, 100.0));
  const RunAnalysis a = run.analyze();
  ASSERT_FALSE(a.model_accuracy().empty());
  std::size_t samples = 0;
  for (const ModelAccuracy& m : a.model_accuracy()) {
    EXPECT_EQ(m.codelet, "work");
    EXPECT_NEAR(m.mean_abs_err_s, 0.0, 1e-12);
    EXPECT_NEAR(m.bias_s, 0.0, 1e-12);
    samples += m.samples;
  }
  EXPECT_EQ(samples, run.result.tasks_executed);
  EXPECT_NEAR(a.model_mean_abs_err_s(), 0.0, 1e-12);
}

TEST(RunAnalysisModel, CalibrationBiasShowsUpAsError) {
  SimConfig cfg;
  cfg.calibration_bias_sigma = 0.5;
  AnalyzedRun run(test::EdgeGraph(20, {}, 1e8), test::small_platform(2, 1),
                  test::flat_perf(10.0, 100.0), "multiprio", cfg);
  const RunAnalysis a = run.analyze();
  EXPECT_GT(a.model_mean_abs_err_s(), 0.0);
  // The engine also published the same audit as histograms.
  bool found = false;
  for (const auto& [name, hist] : run.obs.metrics_registry().histograms()) {
    if (name.rfind("perf_model.abs_err_s.work.", 0) == 0 && hist->count() > 0)
      found = true;
  }
  EXPECT_TRUE(found);
}

TEST(RunAnalysisModel, NoPredictionsMeansNoAudit) {
  AnalyzedRun run(diamond(), test::small_platform(2, 1), test::flat_perf(10.0, 100.0));
  const RunAnalysis a(run.engine->trace(), run.eg.graph, run.platform, run.perf,
                      &run.obs, {});
  EXPECT_TRUE(a.model_accuracy().empty());
  EXPECT_EQ(a.model_mean_abs_err_s(), 0.0);
}

// --- truncation ------------------------------------------------------------------

TEST(RunAnalysis, TruncatedEventLogIsFlaggedAndWarned) {
  AnalyzedRun run(test::EdgeGraph(40, {{0, 20}, {1, 21}}, 1e8),
                  test::small_platform(2, 1), test::flat_perf(1.0, 100.0), "multiprio",
                  {}, /*event_capacity=*/8);
  ASSERT_GT(run.obs.events().dropped(), 0u);
  const RunAnalysis a = run.analyze();
  EXPECT_TRUE(a.events_truncated());
  EXPECT_NE(a.to_string().find("WARNING"), std::string::npos);
  // Truncation loses attribution detail, never the arithmetic partition.
  for (const WorkerIdleBlame& b : a.idle_blame())
    EXPECT_NEAR(b.by_cause[0] + b.by_cause[1] + b.by_cause[2] + b.by_cause[3],
                b.total_idle_s, 1e-9);
}

// --- determinism -------------------------------------------------------------------

TEST(RunAnalysis, ReportsAreByteForByteDeterministic) {
  const auto once = [] {
    AnalyzedRun ra(test::EdgeGraph(40, {{0, 20}, {1, 21}}, 1e8),
                   test::small_platform(2, 1), test::flat_perf(1.0, 100.0), "multiprio");
    AnalyzedRun rb(test::EdgeGraph(40, {{0, 20}, {1, 21}}, 1e8),
                   test::small_platform(2, 1), test::flat_perf(1.0, 100.0), "dmdas");
    const RunAnalysis aa = ra.analyze();
    const RunAnalysis ab = rb.analyze();
    const TraceReport ta(ra.engine->trace(), ra.eg.graph, ra.platform, &ra.obs);
    const TraceReport tb(rb.engine->trace(), rb.eg.graph, rb.platform, &rb.obs);
    return aa.to_string() +
           compare_runs(summarize_run("multiprio", aa, ta, ra.engine->trace()),
                        summarize_run("dmdas", ab, tb, rb.engine->trace()));
  };
  EXPECT_EQ(once(), once());
}

// --- bench JSON ----------------------------------------------------------------------

TEST(BenchJson, FixedSchemaEscapedAndDeterministic) {
  EventLog log(4);
  SchedEvent e;
  e.kind = SchedEventKind::Push;
  log.append(e);
  const BenchRecord rec = BenchRecord("fig5_dense", "multi\"prio")
                              .param("kernel", "getrf")
                              .param("n", std::size_t{20480})
                              .param("sigma", 0.125)
                              .makespan_s(1.5)
                              .efficiency(0.875)
                              .extra("gflops", 42.0)
                              .events_from(log);
  const std::string json = rec.to_json();
  EXPECT_EQ(json, rec.to_json());
  EXPECT_NE(json.find("\"bench\":\"fig5_dense\""), std::string::npos);
  EXPECT_NE(json.find("\"scheduler\":\"multi\\\"prio\""), std::string::npos);
  EXPECT_NE(json.find("\"params\":{\"kernel\":\"getrf\",\"n\":20480,\"sigma\":0.125}"),
            std::string::npos);
  EXPECT_NE(json.find("\"makespan_s\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"efficiency\":0.875"), std::string::npos);
  EXPECT_NE(json.find("\"gflops\":42"), std::string::npos);
  EXPECT_NE(json.find("\"PUSH\":1"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos);

  const std::string arr = bench_records_json({rec, rec});
  EXPECT_EQ(arr.front(), '[');
  EXPECT_EQ(count(arr.begin(), arr.end(), '\n'), 4);  // [, two records, ]
}

// --- EventLog CSV footer ---------------------------------------------------------------

TEST(EventLogCsv, FooterCarriesDropProofTotals) {
  EventLog log(2);
  for (std::size_t i = 0; i < 5; ++i) {
    SchedEvent e;
    e.kind = i % 2 == 0 ? SchedEventKind::Push : SchedEventKind::Pop;
    log.append(e);
  }
  const std::string csv = log.to_csv();
  EXPECT_NE(csv.find("# recorded=5 retained=2 dropped=3"), std::string::npos);
  EXPECT_NE(csv.find("# totals:"), std::string::npos);
  EXPECT_NE(csv.find("PUSH=3"), std::string::npos);
  EXPECT_NE(csv.find("POP=2"), std::string::npos);
}

}  // namespace
}  // namespace mp
