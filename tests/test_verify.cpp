// The concurrency verification layer (src/verify/): deterministic
// interleaving exploration of ThreadExecutor + MultiPrio end-to-end, the
// always-on structural-invariant oracle, and the seeded mutations that prove
// the detector detects.
//
// The exploration tests run only in -DMP_VERIFY=ON builds (the `verify`
// ctest label / CI job); in normal builds they skip via
// exploration_supported() and only the stub/oracle tests execute.
#include <gtest/gtest.h>

#include <string>

#include "common/check.hpp"
#include "core/multiprio.hpp"
#include "exec/thread_executor.hpp"
#include "obs/observer.hpp"
#include "sched/schedulers.hpp"
#include "test_util.hpp"
#include "verify/explore.hpp"
#include "verify/mutation.hpp"

namespace mp {
namespace {

ExecSchedulerFactory by_name(const std::string& name) {
  return [name](SchedContext ctx) { return make_scheduler_by_name(name, std::move(ctx)); };
}

// The exploration fixture: a 6-task DAG (diamond 0→{1,2}→3 plus two
// independent tasks) on `cpus` CPU workers (RAM node) + 1 GPU worker (its
// own node), so duplication, pop_condition and eviction paths are all live.
// Small enough for exhaustive DFS, rich enough that the lock protocol under
// test actually arbitrates between the workers.
//
// The coarse-protocol tests here pin "multiprio-coarse": the policy whose
// POP runs naked under the engine lock, where SkipExecutorLock races two
// workers inside the heap code. The sharded default's internal locks are
// verified by the dedicated suite in test_sharded.cpp. cpus = 2 for the
// lock mutations — the races they reintroduce are same-node-worker races.
void run_fixture_once(const std::string& sched_name, bool with_observer,
                      std::size_t cpus = 1) {
  TaskGraph g;
  const CodeletId cl = g.add_codelet("work", {ArchType::CPU, ArchType::GPU},
                                     [](const Task&, std::span<void* const>) {});
  std::vector<DataId> d;
  for (int i = 0; i < 5; ++i) d.push_back(g.add_data(64));
  g.submit(cl, {Access{d[0], AccessMode::Write}});
  g.submit(cl, {Access{d[0], AccessMode::Read}, Access{d[1], AccessMode::Write}});
  g.submit(cl, {Access{d[0], AccessMode::Read}, Access{d[2], AccessMode::Write}});
  g.submit(cl, {Access{d[1], AccessMode::Read}, Access{d[2], AccessMode::Read}});
  g.submit(cl, {Access{d[3], AccessMode::ReadWrite}});
  g.submit(cl, {Access{d[4], AccessMode::ReadWrite}});

  Platform p = test::small_platform(cpus, 1);
  PerfDatabase db = test::flat_perf();
  ThreadExecutor exec(g, p, db);
  RecordingObserver obs;
  ExecConfig cfg;
  cfg.stall_timeout = 0.05;  // idle retries must not dominate explored runs
  if (with_observer) cfg.observer = &obs;
  const ExecResult r = exec.run(by_name(sched_name), cfg);
  // Post-conditions double as oracles: under an active exploration a failed
  // MP_CHECK is reported as a violation with the schedule trace.
  MP_CHECK_MSG(r.tasks_executed == 6, "fixture must execute all 6 tasks");
  if (with_observer) {
    MP_CHECK_MSG(obs.events().count(SchedEventKind::Pop) == 6,
                 "one POP event per executed task");
    MP_CHECK_MSG(obs.events().accounting_ok(), "event accounting out of balance");
  }
}

TEST(VerifyExplore, StubsAreInertWithoutMpVerify) {
  if (verify::exploration_supported()) GTEST_SKIP() << "MP_VERIFY build";
  bool ran = false;
  const verify::ExploreResult r = verify::explore([&] { ran = true; });
  EXPECT_FALSE(ran);  // the stub never runs the body
  EXPECT_EQ(r.schedules, 0u);
  EXPECT_FALSE(r.violation);
  EXPECT_FALSE(r.summary().empty());
}

TEST(VerifyExplore, UnmutatedFixtureExploresClean) {
  if (!verify::exploration_supported()) GTEST_SKIP() << "needs -DMP_VERIFY=ON";
  verify::ExploreConfig cfg;
  cfg.mode = verify::ExploreConfig::Mode::Exhaustive;
  cfg.max_schedules = 10000;
  const verify::ExploreResult r =
      verify::explore([] { run_fixture_once("multiprio-coarse", /*with_observer=*/false); }, cfg);
  EXPECT_FALSE(r.violation) << r.summary();
  EXPECT_GT(r.schedules, 1u) << "fixture must actually branch";
  EXPECT_EQ(r.truncated, 0u);
}

TEST(VerifyExplore, TinyFixtureExhaustsScheduleSpace) {
  if (!verify::exploration_supported()) GTEST_SKIP() << "needs -DMP_VERIFY=ON";
  // Two independent tasks on two workers: small enough that the DFS must
  // prove full coverage of the schedule space (the 6-task fixture above has
  // exponentially many mutex interleavings and is budget-bounded instead).
  verify::ExploreConfig cfg;
  cfg.mode = verify::ExploreConfig::Mode::Exhaustive;
  cfg.max_schedules = 10000;
  const verify::ExploreResult r = verify::explore(
      [] {
        TaskGraph g;
        const CodeletId cl =
            g.add_codelet("work", {ArchType::CPU, ArchType::GPU},
                          [](const Task&, std::span<void* const>) {});
        const DataId a = g.add_data(64);
        const DataId b = g.add_data(64);
        g.submit(cl, {Access{a, AccessMode::ReadWrite}});
        g.submit(cl, {Access{b, AccessMode::ReadWrite}});
        Platform p = test::small_platform(1, 1);
        PerfDatabase db = test::flat_perf();
        ThreadExecutor exec(g, p, db);
        ExecConfig ecfg;
        ecfg.stall_timeout = 0.05;
        const ExecResult res = exec.run(by_name("multiprio-coarse"), ecfg);
        MP_CHECK(res.tasks_executed == 2);
      },
      cfg);
  EXPECT_FALSE(r.violation) << r.summary();
  EXPECT_TRUE(r.exhausted) << "DFS must terminate on the tiny fixture, ran "
                           << r.schedules << " schedules";
  EXPECT_GT(r.schedules, 1u);
}

TEST(VerifyExplore, UnmutatedFixtureWithObserverExploresClean) {
  if (!verify::exploration_supported()) GTEST_SKIP() << "needs -DMP_VERIFY=ON";
  verify::ExploreConfig cfg;
  cfg.mode = verify::ExploreConfig::Mode::Pct;
  cfg.max_schedules = 200;
  cfg.seed = 7;
  const verify::ExploreResult r =
      verify::explore([] { run_fixture_once("multiprio-coarse", /*with_observer=*/true); }, cfg);
  EXPECT_FALSE(r.violation) << r.summary();
  EXPECT_EQ(r.schedules, 200u);
}

// The minimal contended fixture for the exhaustive lock mutations: two
// independent dual-arch tasks on two same-node CPU workers. Both workers'
// pops select the same heap top, so any interleaving that runs one full pop
// inside another's read-top→remove window trips the ScoredHeap presence
// check. Small enough that exhaustive DFS reaches that window well inside
// the 10k budget (the 6-task fixture's mutated space is too wide for DFS;
// the PCT variants below keep covering it).
void run_tiny_contended_fixture(const std::string& sched_name) {
  TaskGraph g;
  const CodeletId cl = g.add_codelet("work", {ArchType::CPU, ArchType::GPU},
                                     [](const Task&, std::span<void* const>) {});
  const DataId a = g.add_data(64);
  const DataId b = g.add_data(64);
  g.submit(cl, {Access{a, AccessMode::ReadWrite}});
  g.submit(cl, {Access{b, AccessMode::ReadWrite}});
  Platform p = test::small_platform(2, 0);
  PerfDatabase db = test::flat_perf();
  ThreadExecutor exec(g, p, db);
  ExecConfig cfg;
  cfg.stall_timeout = 0.05;
  const ExecResult r = exec.run(by_name(sched_name), cfg);
  MP_CHECK(r.tasks_executed == 2);
}

TEST(VerifyMutation, SkipExecutorLockIsCaughtExhaustive) {
  if (!verify::exploration_supported()) GTEST_SKIP() << "needs -DMP_VERIFY=ON";
  verify::ScopedMutation arm(verify::Mutation::SkipExecutorLock);
  verify::ExploreConfig cfg;
  cfg.mode = verify::ExploreConfig::Mode::Exhaustive;
  cfg.max_schedules = 10000;  // the detection budget the suite guarantees
  const verify::ExploreResult r =
      verify::explore([] { run_tiny_contended_fixture("multiprio-coarse"); }, cfg);
  ASSERT_TRUE(r.violation)
      << "unlocked Scheduler::pop must be detected within 10k interleavings; "
      << r.summary();
  EXPECT_FALSE(r.violation_message.empty());
  EXPECT_FALSE(r.violation_trace.empty()) << "violation must carry the schedule";
}

TEST(VerifyMutation, SkipExecutorLockIsCaughtByPct) {
  if (!verify::exploration_supported()) GTEST_SKIP() << "needs -DMP_VERIFY=ON";
  verify::ScopedMutation arm(verify::Mutation::SkipExecutorLock);
  verify::ExploreConfig cfg;
  cfg.mode = verify::ExploreConfig::Mode::Pct;
  cfg.max_schedules = 10000;
  cfg.seed = 1;
  const verify::ExploreResult r = verify::explore(
      [] { run_fixture_once("multiprio-coarse", /*with_observer=*/false, /*cpus=*/2); },
      cfg);
  EXPECT_TRUE(r.violation) << r.summary();
}

TEST(VerifyMutation, SkipBrwDecrementIsCaught) {
  if (!verify::exploration_supported()) GTEST_SKIP() << "needs -DMP_VERIFY=ON";
  verify::ScopedMutation arm(verify::Mutation::SkipBrwDecrement);
  verify::ExploreConfig cfg;
  cfg.mode = verify::ExploreConfig::Mode::Exhaustive;
  cfg.max_schedules = 10000;
  const verify::ExploreResult r = verify::explore(
      [] { run_fixture_once("multiprio-coarse", /*with_observer=*/false); }, cfg);
  ASSERT_TRUE(r.violation)
      << "an uncorrected best_remaining_work ledger must trip the brw "
      << "upper-bound invariant; " << r.summary();
  EXPECT_NE(r.violation_message.find("best_remaining_work"), std::string::npos)
      << r.violation_message;
}

TEST(VerifyExplore, PctIsDeterministicPerSeed) {
  if (!verify::exploration_supported()) GTEST_SKIP() << "needs -DMP_VERIFY=ON";
  verify::ScopedMutation arm(verify::Mutation::SkipExecutorLock);
  verify::ExploreConfig cfg;
  cfg.mode = verify::ExploreConfig::Mode::Pct;
  cfg.max_schedules = 10000;
  cfg.seed = 42;
  const auto body = [] {
    run_fixture_once("multiprio-coarse", /*with_observer=*/false, /*cpus=*/2);
  };
  const verify::ExploreResult a = verify::explore(body, cfg);
  const verify::ExploreResult b = verify::explore(body, cfg);
  EXPECT_EQ(a.violation, b.violation);
  EXPECT_EQ(a.schedules, b.schedules);
  EXPECT_EQ(a.violation_message, b.violation_message);
}

// ---- the oracle itself, exercised without any exploration (all builds) ----

TEST(MultiPrioInvariants, HoldAcrossPushPopRepushEvict) {
  test::EdgeGraph eg(8, {{0, 4}, {1, 5}, {2, 6}, {3, 7}});
  Platform p = test::small_platform(2, 1);
  test::ManualContext mc(eg.graph, p, test::flat_perf());
  MultiPrioScheduler s(mc.ctx());
  std::string why;

  EXPECT_TRUE(s.check_invariants(&why)) << why;
  for (std::size_t i = 0; i < 4; ++i) s.push(eg.tasks[i]);
  EXPECT_TRUE(s.check_invariants(&why)) << why;

  // Worker 2 is the GPU — the best architecture under flat_perf, so its
  // pops always pass the pop_condition. CPU pops below may instead evict
  // (diversion refused), which is exactly the path the oracle must survive.
  const auto t = s.pop(WorkerId{std::size_t{2}});
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(s.check_invariants(&why)) << why;

  s.repush(*t);
  EXPECT_TRUE(s.check_invariants(&why)) << why;

  // Drain everything through all workers; the oracle must hold at every
  // intermediate state, including after evictions and lazy stale-duplicate
  // discards.
  std::size_t popped = 0;
  while (popped < 4) {
    bool any = false;
    for (std::size_t w = 0; w < p.num_workers(); ++w) {
      if (s.pop(WorkerId{w}).has_value()) {
        ++popped;
        any = true;
        EXPECT_TRUE(s.check_invariants(&why)) << why;
      }
    }
    ASSERT_TRUE(any) << "scheduler stopped yielding tasks";
  }
  EXPECT_EQ(s.pending_count(), 0u);
  EXPECT_TRUE(s.check_invariants(&why)) << why;
}

TEST(MultiPrioInvariants, ReadyCountExcludesStaleDuplicates) {
  // One dual-arch task duplicated into the CPU and the GPU heap: taking it
  // from the CPU node must retire the GPU node's ready count immediately,
  // even though the stale GPU heap entry is only dropped lazily.
  test::EdgeGraph eg(2, {});
  Platform p = test::small_platform(1, 1);
  test::ManualContext mc(eg.graph, p, test::flat_perf());
  MultiPrioScheduler s(mc.ctx());
  s.push(eg.tasks[0]);
  s.push(eg.tasks[1]);
  const MemNodeId ram = p.ram_node();
  ASSERT_EQ(s.ready_tasks_count(ram), 2u);

  // The GPU worker: takes from its own node.
  const auto t = s.pop(WorkerId{std::size_t{1}});
  ASSERT_TRUE(t.has_value());
  std::string why;
  EXPECT_TRUE(s.check_invariants(&why)) << why;
  EXPECT_EQ(s.ready_tasks_count(ram), 1u);
  for (std::size_t mi = 0; mi < p.num_nodes(); ++mi) {
    const MemNodeId m{mi};
    // Every node's ready count stays ≤ pending (stale entries excluded).
    EXPECT_LE(s.ready_tasks_count(m), s.pending_count());
  }
}

}  // namespace
}  // namespace mp
