// Cross-policy property tests: every registered scheduler must run random
// DAGs to completion with a valid trace, on several platform shapes; plus
// policy-specific behaviour checks for the baselines.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "sched/schedulers.hpp"
#include "sim/engine.hpp"
#include "test_util.hpp"

namespace mp {
namespace {

SchedulerFactory by_name(const std::string& name) {
  return [name](SchedContext ctx) { return make_scheduler_by_name(name, std::move(ctx)); };
}

/// Random layered DAG with a mix of CPU-only / GPU-only / dual codelets.
TaskGraph random_graph(std::uint64_t seed, std::size_t n_tasks, bool with_gpu_only) {
  Rng rng(seed);
  TaskGraph g;
  const CodeletId both = g.add_codelet("both", {ArchType::CPU, ArchType::GPU});
  const CodeletId conly = g.add_codelet("conly", {ArchType::CPU});
  const CodeletId gonly = g.add_codelet("gonly", {ArchType::GPU});
  std::vector<DataId> data;
  for (std::size_t i = 0; i < n_tasks; ++i)
    data.push_back(g.add_data(512 + rng.next_in(0, 4096)));
  for (std::size_t i = 0; i < n_tasks; ++i) {
    std::vector<Access> acc;
    acc.push_back(Access{data[i], AccessMode::ReadWrite});
    // Read a couple of earlier outputs to create dependencies.
    for (int k = 0; k < 2 && i > 0; ++k) {
      const std::size_t j = rng.next_in(0, i - 1);
      if (j != i) acc.push_back(Access{data[j], AccessMode::Read});
    }
    const double pick = rng.next_double();
    CodeletId cl = both;
    if (pick < 0.15) cl = conly;
    if (pick > 0.9 && with_gpu_only) cl = gonly;
    SubmitOptions o;
    o.flops = 1e6 * static_cast<double>(1 + rng.next_in(0, 50));
    o.user_priority = static_cast<std::int64_t>(rng.next_in(0, 5));
    (void)g.submit(cl, std::span<const Access>(acc), std::move(o));
  }
  return g;
}

using Param = std::tuple<std::string, std::uint64_t>;

class AllSchedulers : public ::testing::TestWithParam<Param> {};

TEST_P(AllSchedulers, CompletesRandomDagOnHeterogeneousNode) {
  const auto& [name, seed] = GetParam();
  const TaskGraph g = random_graph(seed, 120, /*with_gpu_only=*/true);
  Platform p = test::small_platform(3, 2);
  PerfDatabase db = test::flat_perf(10.0, 100.0);
  SimEngine engine(g, p, db);
  const SimResult r = engine.run(by_name(name));
  EXPECT_EQ(r.tasks_executed, g.num_tasks());
  EXPECT_GT(r.makespan, 0.0);
  // trace().validate() ran inside run(); do an extra smoke query here.
  EXPECT_EQ(engine.trace().num_executed(), g.num_tasks());
}

TEST_P(AllSchedulers, CompletesOnCpuOnlyNode) {
  const auto& [name, seed] = GetParam();
  const TaskGraph g = random_graph(seed + 100, 80, /*with_gpu_only=*/false);
  Platform p = test::small_platform(4, 0);
  PerfDatabase db = test::flat_perf();
  const SimResult r = simulate(g, p, db, by_name(name));
  EXPECT_EQ(r.tasks_executed, g.num_tasks());
}

TEST_P(AllSchedulers, CompletesWithNoise) {
  const auto& [name, seed] = GetParam();
  const TaskGraph g = random_graph(seed + 200, 100, true);
  Platform p = test::small_platform(2, 1);
  PerfDatabase db = test::flat_perf(10.0, 100.0);
  SimConfig cfg;
  cfg.noise_sigma = 0.2;
  cfg.seed = seed;
  const SimResult r = simulate(g, p, db, by_name(name), cfg);
  EXPECT_EQ(r.tasks_executed, g.num_tasks());
}

TEST_P(AllSchedulers, CompletesUncalibrated) {
  const auto& [name, seed] = GetParam();
  const TaskGraph g = random_graph(seed + 300, 60, true);
  Platform p = test::small_platform(2, 1);
  PerfDatabase db = test::flat_perf(10.0, 100.0);
  SimConfig cfg;
  cfg.calibrated = false;  // schedulers must cope with prior-based δ
  const SimResult r = simulate(g, p, db, by_name(name), cfg);
  EXPECT_EQ(r.tasks_executed, g.num_tasks());
}

TEST_P(AllSchedulers, DeterministicAcrossRuns) {
  const auto& [name, seed] = GetParam();
  if (name == "random") GTEST_SKIP() << "random policy reseeds per engine run";
  const TaskGraph g = random_graph(seed + 400, 90, true);
  Platform p = test::small_platform(3, 1);
  PerfDatabase db = test::flat_perf(10.0, 100.0);
  const SimResult a = simulate(g, p, db, by_name(name));
  const SimResult b = simulate(g, p, db, by_name(name));
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

INSTANTIATE_TEST_SUITE_P(
    PolicySeeds, AllSchedulers,
    ::testing::Combine(::testing::Values("eager", "random", "lws", "dm", "dmda",
                                         "dmdas", "heteroprio", "multiprio",
                                         "multiprio-noevict", "multiprio-nolocality",
                                         "multiprio-nonod", "multiprio-rawbrw"),
                       ::testing::Values(1u, 2u, 3u)),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string n = std::get<0>(info.param);
      for (char& c : n)
        if (c == '-') c = '_';
      return n + "_s" + std::to_string(std::get<1>(info.param));
    });

TEST(SchedulerRegistry, KnowsAllNames) {
  const TaskGraph g = random_graph(1, 10, true);
  Platform p = test::small_platform(2, 1);
  PerfDatabase db = test::flat_perf();
  for (const std::string& name : scheduler_names()) {
    const SimResult r = simulate(g, p, db, by_name(name));
    EXPECT_EQ(r.tasks_executed, g.num_tasks()) << name;
  }
}

TEST(SchedulerRegistryDeath, UnknownNameAborts) {
  const TaskGraph g = random_graph(1, 5, false);
  Platform p = test::small_platform(1, 0);
  PerfDatabase db = test::flat_perf();
  EXPECT_DEATH((void)simulate(g, p, db, by_name("nope")), "unknown scheduler");
}

TEST(Eager, ServesHighestUserPriorityFirst) {
  TaskGraph g;
  const CodeletId cl = g.add_codelet("k", {ArchType::CPU});
  const DataId d0 = g.add_data(8);
  const DataId d1 = g.add_data(8);
  SubmitOptions lo;
  lo.user_priority = 1;
  SubmitOptions hi;
  hi.user_priority = 5;
  const TaskId tlo = g.submit(cl, {Access{d0, AccessMode::ReadWrite}}, lo);
  const TaskId thi = g.submit(cl, {Access{d1, AccessMode::ReadWrite}}, hi);
  Platform p = test::small_platform(1, 0);
  test::ManualContext mc(g, p, test::flat_perf());
  auto s = make_eager(mc.ctx());
  s->push(tlo);
  s->push(thi);
  EXPECT_EQ(s->pop(WorkerId{std::size_t{0}}), std::optional<TaskId>(thi));
  EXPECT_EQ(s->pop(WorkerId{std::size_t{0}}), std::optional<TaskId>(tlo));
}

TEST(Eager, SkipsTasksWorkerCannotRun) {
  TaskGraph g;
  const CodeletId gonly = g.add_codelet("g", {ArchType::GPU});
  const CodeletId conly = g.add_codelet("c", {ArchType::CPU});
  const DataId d0 = g.add_data(8);
  const DataId d1 = g.add_data(8);
  const TaskId tg = g.submit(gonly, {Access{d0, AccessMode::ReadWrite}});
  const TaskId tc = g.submit(conly, {Access{d1, AccessMode::ReadWrite}});
  Platform p = test::small_platform(1, 1);
  test::ManualContext mc(g, p, test::flat_perf());
  auto s = make_eager(mc.ctx());
  s->push(tg);
  s->push(tc);
  // CPU worker (id 0) must skip the GPU-only head of the queue.
  EXPECT_EQ(s->pop(p.workers_of_node(p.ram_node())[0]), std::optional<TaskId>(tc));
}

TEST(DmFamily, MapsToFasterArchWhenFree) {
  TaskGraph g;
  const CodeletId cl = g.add_codelet("k", {ArchType::CPU, ArchType::GPU});
  const DataId d = g.add_data(8);
  SubmitOptions o;
  o.flops = 1e9;
  const TaskId t = g.submit(cl, {Access{d, AccessMode::ReadWrite}}, o);
  Platform p = test::small_platform(2, 1);
  test::ManualContext mc(g, p, test::flat_perf(10.0, 100.0));
  mc.history.seed_from_truth();
  auto s = make_dm_family(mc.ctx(), DmVariant::Dm);
  s->push(t);
  const WorkerId gpu_w = p.workers_of_node(MemNodeId{std::size_t{1}})[0];
  EXPECT_TRUE(s->pop(gpu_w).has_value());
}

TEST(DmFamily, LoadBalancesAcrossEqualWorkers) {
  // 4 equal CPU tasks on 2 CPU workers: dm's expected-end ledger must
  // spread them 2/2.
  TaskGraph g;
  const CodeletId cl = g.add_codelet("k", {ArchType::CPU});
  SubmitOptions o;
  o.flops = 1e9;
  std::vector<TaskId> ts;
  for (int i = 0; i < 4; ++i) {
    const DataId d = g.add_data(8);
    ts.push_back(g.submit(cl, {Access{d, AccessMode::ReadWrite}}, o));
  }
  Platform p = test::small_platform(2, 0);
  test::ManualContext mc(g, p, test::flat_perf());
  mc.history.seed_from_truth();
  auto s = make_dm_family(mc.ctx(), DmVariant::Dm);
  for (TaskId t : ts) s->push(t);
  int w0 = 0;
  int w1 = 0;
  for (int i = 0; i < 2; ++i) {
    if (s->pop(WorkerId{std::size_t{0}})) ++w0;
    if (s->pop(WorkerId{std::size_t{1}})) ++w1;
  }
  EXPECT_EQ(w0, 2);
  EXPECT_EQ(w1, 2);
}

TEST(HeteroPrio, CpuAndGpuScanBucketsInOppositeOrder) {
  TaskGraph g;
  const CodeletId fast_gpu = g.add_codelet("fastgpu", {ArchType::CPU, ArchType::GPU});
  const CodeletId cpu_ish = g.add_codelet("cpuish", {ArchType::CPU, ArchType::GPU});
  const DataId d0 = g.add_data(16);
  const DataId d1 = g.add_data(16);
  SubmitOptions o;
  o.flops = 1e8;
  const TaskId tg = g.submit(fast_gpu, {Access{d0, AccessMode::ReadWrite}}, o);
  const TaskId tc = g.submit(cpu_ish, {Access{d1, AccessMode::ReadWrite}}, o);
  Platform p = test::small_platform(1, 1);
  test::ManualContext mc(g, p, test::flat_perf());
  // fastgpu: 50× GPU speedup; cpuish: CPU-favoured.
  mc.history.record(tg, ArchType::CPU, 50e-3);
  mc.history.record(tg, ArchType::GPU, 1e-3);
  mc.history.record(tc, ArchType::CPU, 0.9e-3);
  mc.history.record(tc, ArchType::GPU, 1e-3);
  auto s = make_heteroprio(mc.ctx());
  s->push(tg);
  s->push(tc);
  const WorkerId cpu_w = p.workers_of_node(p.ram_node())[0];
  const WorkerId gpu_w = p.workers_of_node(MemNodeId{std::size_t{1}})[0];
  EXPECT_EQ(s->pop(gpu_w), std::optional<TaskId>(tg));  // GPU takes high speedup
  EXPECT_EQ(s->pop(cpu_w), std::optional<TaskId>(tc));  // CPU takes low speedup
}

TEST(Lws, LocalPopIsLifoStealIsFifo) {
  TaskGraph g;
  const CodeletId cl = g.add_codelet("k", {ArchType::CPU});
  std::vector<TaskId> ts;
  for (int i = 0; i < 3; ++i) {
    const DataId d = g.add_data(8);
    ts.push_back(g.submit(cl, {Access{d, AccessMode::ReadWrite}}));
  }
  Platform p = test::small_platform(2, 0);
  test::ManualContext mc(g, p, test::flat_perf());
  auto s = make_lws(mc.ctx());
  // All pushes land on worker 0's deque (no completions yet).
  for (TaskId t : ts) s->push(t);
  const WorkerId w0{std::size_t{0}};
  const WorkerId w1{std::size_t{1}};
  EXPECT_EQ(s->pop(w0), std::optional<TaskId>(ts[2]));  // LIFO local
  EXPECT_EQ(s->pop(w1), std::optional<TaskId>(ts[0]));  // FIFO steal
}

}  // namespace
}  // namespace mp
