// Numerical validation of the dense tile kernels against full-matrix
// references, plus flop-count sanity.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "apps/dense/reference.hpp"
#include "apps/dense/tile_kernels.hpp"
#include "common/rng.hpp"

namespace mp::dense {
namespace {

std::vector<double> random_matrix(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> a(n * n);
  for (double& v : a) v = rng.next_real(-1.0, 1.0);
  return a;
}

std::vector<double> random_spd(std::size_t n, std::uint64_t seed) {
  std::vector<double> a = random_matrix(n, seed);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      const double s = 0.5 * (a[j * n + i] + a[i * n + j]);
      a[j * n + i] = s;
      a[i * n + j] = s;
    }
    a[j * n + j] += static_cast<double>(n);
  }
  return a;
}

constexpr std::size_t kNb = 24;

TEST(TileKernels, PotrfReconstructs) {
  std::vector<double> a = random_spd(kNb, 1);
  const std::vector<double> orig = a;
  potrf(a.data(), kNb);
  const auto l = ref::lower(a, kNb, false);
  const auto llt = ref::matmul_nt(l, l, kNb);
  // Compare only the lower triangle (potrf leaves the upper part untouched).
  double err = 0.0;
  for (std::size_t j = 0; j < kNb; ++j)
    for (std::size_t i = j; i < kNb; ++i)
      err = std::max(err, std::abs(llt[j * kNb + i] - orig[j * kNb + i]));
  EXPECT_LT(err, 1e-10);
}

TEST(TileKernels, PotrfMatchesReference) {
  std::vector<double> a = random_spd(kNb, 2);
  std::vector<double> b = a;
  potrf(a.data(), kNb);
  ref::cholesky(b, kNb);
  double err = 0.0;
  for (std::size_t j = 0; j < kNb; ++j)
    for (std::size_t i = j; i < kNb; ++i)
      err = std::max(err, std::abs(a[j * kNb + i] - b[j * kNb + i]));
  EXPECT_LT(err, 1e-12);
}

TEST(TileKernelsDeath, PotrfRejectsIndefinite) {
  std::vector<double> a(kNb * kNb, 0.0);
  a[0] = -1.0;
  EXPECT_DEATH(potrf(a.data(), kNb), "positive definite");
}

TEST(TileKernels, TrsmRltSolves) {
  // X = B·L^{-T}  ⇔  X·Lᵀ = B.
  std::vector<double> spd = random_spd(kNb, 3);
  ref::cholesky(spd, kNb);
  const auto l = ref::lower(spd, kNb, false);
  std::vector<double> b = random_matrix(kNb, 4);
  std::vector<double> x = b;
  trsm_rlt(l.data(), x.data(), kNb);
  // Recompute X·Lᵀ: (X·Lᵀ)_{ij} = Σ_k X_{ik}·L_{jk}.
  const auto xlt = ref::matmul_nt(x, l, kNb);
  EXPECT_LT(ref::fro_diff(xlt, b) / ref::fro_norm(b), 1e-12);
}

TEST(TileKernels, SyrkUpdatesLowerTriangle) {
  std::vector<double> a = random_matrix(kNb, 5);
  std::vector<double> c = random_spd(kNb, 6);
  std::vector<double> expect = c;
  const auto aat = ref::matmul_nt(a, a, kNb);
  for (std::size_t j = 0; j < kNb; ++j)
    for (std::size_t i = j; i < kNb; ++i) expect[j * kNb + i] -= aat[j * kNb + i];
  syrk_ln(a.data(), c.data(), kNb);
  double err = 0.0;
  for (std::size_t j = 0; j < kNb; ++j)
    for (std::size_t i = j; i < kNb; ++i)
      err = std::max(err, std::abs(c[j * kNb + i] - expect[j * kNb + i]));
  EXPECT_LT(err, 1e-11);
}

TEST(TileKernels, GemmNtMatchesReference) {
  std::vector<double> a = random_matrix(kNb, 7);
  std::vector<double> b = random_matrix(kNb, 8);
  std::vector<double> c = random_matrix(kNb, 9);
  std::vector<double> expect = c;
  const auto abt = ref::matmul_nt(a, b, kNb);
  for (std::size_t i = 0; i < expect.size(); ++i) expect[i] -= abt[i];
  gemm_nt(a.data(), b.data(), c.data(), kNb);
  EXPECT_LT(ref::fro_diff(c, expect), 1e-11);
}

TEST(TileKernels, GemmNnMatchesReference) {
  std::vector<double> a = random_matrix(kNb, 10);
  std::vector<double> b = random_matrix(kNb, 11);
  std::vector<double> c = random_matrix(kNb, 12);
  std::vector<double> expect = c;
  const auto ab = ref::matmul(a, b, kNb);
  for (std::size_t i = 0; i < expect.size(); ++i) expect[i] -= ab[i];
  gemm_nn(a.data(), b.data(), c.data(), kNb);
  EXPECT_LT(ref::fro_diff(c, expect), 1e-11);
}

TEST(TileKernels, GetrfNopivReconstructs) {
  std::vector<double> a = random_matrix(kNb, 13);
  for (std::size_t j = 0; j < kNb; ++j) a[j * kNb + j] += kNb;  // dominance
  const std::vector<double> orig = a;
  getrf_nopiv(a.data(), kNb);
  const auto l = ref::lower(a, kNb, true);
  const auto u = ref::upper(a, kNb);
  const auto lu = ref::matmul(l, u, kNb);
  EXPECT_LT(ref::fro_diff(lu, orig) / ref::fro_norm(orig), 1e-12);
}

TEST(TileKernels, TrsmLlnuSolves) {
  std::vector<double> a = random_matrix(kNb, 14);
  for (std::size_t j = 0; j < kNb; ++j) a[j * kNb + j] += kNb;
  getrf_nopiv(a.data(), kNb);
  const auto l = ref::lower(a, kNb, true);
  std::vector<double> b = random_matrix(kNb, 15);
  std::vector<double> x = b;
  trsm_llnu(l.data(), x.data(), kNb);
  const auto lx = ref::matmul(l, x, kNb);
  EXPECT_LT(ref::fro_diff(lx, b) / ref::fro_norm(b), 1e-12);
}

TEST(TileKernels, TrsmRunSolves) {
  std::vector<double> a = random_matrix(kNb, 16);
  for (std::size_t j = 0; j < kNb; ++j) a[j * kNb + j] += kNb;
  getrf_nopiv(a.data(), kNb);
  const auto u = ref::upper(a, kNb);
  std::vector<double> b = random_matrix(kNb, 17);
  std::vector<double> x = b;
  trsm_run(u.data(), x.data(), kNb);
  const auto xu = ref::matmul(x, u, kNb);
  EXPECT_LT(ref::fro_diff(xu, b) / ref::fro_norm(b), 1e-11);
}

TEST(TileKernels, GeqrtRDiagonalMatchesReference) {
  std::vector<double> a = random_matrix(kNb, 18);
  std::vector<double> b = a;
  std::vector<double> tau(kNb, 0.0);
  geqrt(a.data(), tau.data(), kNb);
  std::vector<double> tau_ref;
  ref::qr(b, tau_ref, kNb);
  // R is unique up to column signs; compare |R|.
  for (std::size_t j = 0; j < kNb; ++j)
    for (std::size_t i = 0; i <= j; ++i)
      EXPECT_NEAR(std::abs(a[j * kNb + i]), std::abs(b[j * kNb + i]), 1e-10);
}

TEST(TileKernels, GeqrtPreservesGram) {
  // QᵀQ = I ⇒ AᵀA = RᵀR.
  std::vector<double> a = random_matrix(kNb, 19);
  const std::vector<double> orig = a;
  std::vector<double> tau(kNb, 0.0);
  geqrt(a.data(), tau.data(), kNb);
  const auto r = ref::upper(a, kNb);
  const auto rtr = ref::matmul_tn(r, r, kNb);
  const auto ata = ref::matmul_tn(orig, orig, kNb);
  EXPECT_LT(ref::fro_diff(rtr, ata) / ref::fro_norm(ata), 1e-11);
}

TEST(TileKernels, OrmqrAppliesQt) {
  // ormqr(V, tau, C) with C = A must give R (Qᵀ·A = R).
  std::vector<double> a = random_matrix(kNb, 20);
  std::vector<double> v = a;
  std::vector<double> tau(kNb, 0.0);
  geqrt(v.data(), tau.data(), kNb);
  std::vector<double> c = a;
  ormqr(v.data(), tau.data(), c.data(), kNb);
  const auto r = ref::upper(v, kNb);
  // Below-diagonal entries of QᵀA must vanish; the rest must equal R.
  for (std::size_t j = 0; j < kNb; ++j) {
    for (std::size_t i = 0; i < kNb; ++i) {
      const double want = i <= j ? r[j * kNb + i] : 0.0;
      EXPECT_NEAR(c[j * kNb + i], want, 1e-10);
    }
  }
}

TEST(TileKernels, TsqrtPreservesStackedGram) {
  // QR of [R0; B]: R1ᵀR1 must equal R0ᵀR0 + BᵀB.
  std::vector<double> top = random_matrix(kNb, 21);
  std::vector<double> tau0(kNb, 0.0);
  geqrt(top.data(), tau0.data(), kNb);       // make top = V0 + R0
  const auto r0 = ref::upper(top, kNb);
  std::vector<double> b = random_matrix(kNb, 22);
  const std::vector<double> b_orig = b;
  std::vector<double> tau1(kNb, 0.0);
  std::vector<double> top_before = top;
  tsqrt(top.data(), b.data(), tau1.data(), kNb);
  const auto r1 = ref::upper(top, kNb);
  const auto lhs = ref::matmul_tn(r1, r1, kNb);
  auto rhs = ref::matmul_tn(r0, r0, kNb);
  const auto btb = ref::matmul_tn(b_orig, b_orig, kNb);
  for (std::size_t i = 0; i < rhs.size(); ++i) rhs[i] += btb[i];
  EXPECT_LT(ref::fro_diff(lhs, rhs) / ref::fro_norm(rhs), 1e-10);
  // The strictly-lower part of the top tile (V0 storage) must be untouched.
  for (std::size_t j = 0; j < kNb; ++j)
    for (std::size_t i = j + 1; i < kNb; ++i)
      EXPECT_DOUBLE_EQ(top[j * kNb + i], top_before[j * kNb + i]);
}

TEST(TileKernels, TsmqrStackedGramInvariant) {
  const std::size_t nb = 16;
  auto rand_m = [&](std::uint64_t s) { return random_matrix(nb, s); };
  std::vector<double> a0 = rand_m(31);
  std::vector<double> tau0(nb, 0.0);
  geqrt(a0.data(), tau0.data(), nb);
  std::vector<double> a1 = rand_m(32);
  std::vector<double> c_top = rand_m(33);
  std::vector<double> c_bot = rand_m(34);

  // Stacked Gram of [Rtop;A1] vs [Ctop;Cbot] before.
  const auto r_before = ref::upper(a0, nb);
  auto cross_before = ref::matmul_tn(r_before, c_top, nb);
  {
    const auto t = ref::matmul_tn(a1, c_bot, nb);
    for (std::size_t i = 0; i < cross_before.size(); ++i) cross_before[i] += t[i];
  }

  std::vector<double> tau1(nb, 0.0);
  tsqrt(a0.data(), a1.data(), tau1.data(), nb);
  tsmqr(c_top.data(), c_bot.data(), a1.data(), tau1.data(), nb);

  // After: Qᵀ[R;A1] = [R'; 0] (V storage aside), Qᵀ[C] = C'. Gram of the
  // *stacked* transformed pair: R'ᵀ·C_top' + 0ᵀ·C_bot' — the bottom block of
  // the transformed first operand is exactly zero mathematically, so the
  // invariant reads R'ᵀ·C_top' = cross_before.
  const auto r_after = ref::upper(a0, nb);
  const auto cross_after = ref::matmul_tn(r_after, c_top, nb);
  EXPECT_LT(ref::fro_diff(cross_after, cross_before) / (ref::fro_norm(cross_before) + 1e-30),
            1e-9);
}

TEST(TileKernels, FlopCountsScaleCubically) {
  EXPECT_DOUBLE_EQ(flops_gemm(10), 2000.0);
  EXPECT_DOUBLE_EQ(flops_gemm(20) / flops_gemm(10), 8.0);
  EXPECT_GT(flops_tsmqr(10), flops_ormqr(10));
  EXPECT_LT(flops_potrf(10), flops_getrf(10));
  EXPECT_LT(flops_getrf(10), flops_geqrt(10));
}

}  // namespace
}  // namespace mp::dense
