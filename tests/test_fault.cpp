// Fault model tests: injector determinism, transient retry, abandonment,
// stragglers, fail-stop worker loss across every policy, MultiPrio retry
// accounting, and the max_events stall diagnostic.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/dense/dense_builders.hpp"
#include "fault/invariants.hpp"
#include "sched/schedulers.hpp"
#include "sim/engine.hpp"
#include "sim/platform_presets.hpp"
#include "test_util.hpp"

namespace mp {
namespace {

SchedulerFactory by_name(const std::string& name) {
  return [name](SchedContext ctx) { return make_scheduler_by_name(name, std::move(ctx)); };
}

WorkerId gpu_worker(const Platform& p) {
  for (const Worker& w : p.workers())
    if (w.arch == ArchType::GPU) return w.id;
  ADD_FAILURE() << "platform has no GPU worker";
  return WorkerId{};
}

// --- FaultInjector -----------------------------------------------------------

TEST(FaultInjector, DecisionsAreDeterministicAndPerAttempt) {
  test::EdgeGraph eg(8, {});
  FaultPlan plan;
  plan.seed = 123;
  plan.transient.push_back(TransientFaultSpec{CodeletId{}, 0.5});
  const FaultInjector a(plan, eg.graph);
  const FaultInjector b(plan, eg.graph);
  bool any_true = false;
  bool any_false = false;
  bool differs_across_attempts = false;
  for (TaskId t : eg.tasks) {
    for (std::size_t at = 0; at < 4; ++at) {
      EXPECT_EQ(a.fail_attempt(t, at), b.fail_attempt(t, at));
      any_true = any_true || a.fail_attempt(t, at);
      any_false = any_false || !a.fail_attempt(t, at);
      if (at > 0 && a.fail_attempt(t, at) != a.fail_attempt(t, 0))
        differs_across_attempts = true;
    }
  }
  EXPECT_TRUE(any_true);
  EXPECT_TRUE(any_false);
  EXPECT_TRUE(differs_across_attempts);  // streams independent per attempt
}

TEST(FaultInjector, ProbabilityExtremesAndCodeletMatch) {
  TaskGraph g;
  const CodeletId always = g.add_codelet("always", {ArchType::CPU});
  const CodeletId never = g.add_codelet("never", {ArchType::CPU});
  const DataId d0 = g.add_data(8);
  const DataId d1 = g.add_data(8);
  const TaskId ta = g.submit(always, {Access{d0, AccessMode::ReadWrite}});
  const TaskId tn = g.submit(never, {Access{d1, AccessMode::ReadWrite}});
  FaultPlan plan;
  plan.transient.push_back(TransientFaultSpec{always, 1.0});
  plan.transient.push_back(TransientFaultSpec{never, 0.0});
  plan.stragglers.push_back(StragglerSpec{always, 1.0, 3.0});
  const FaultInjector inj(plan, g);
  for (std::size_t at = 0; at < 5; ++at) {
    EXPECT_TRUE(inj.fail_attempt(ta, at));
    EXPECT_FALSE(inj.fail_attempt(tn, at));
    EXPECT_DOUBLE_EQ(inj.duration_multiplier(ta, at), 3.0);
    EXPECT_DOUBLE_EQ(inj.duration_multiplier(tn, at), 1.0);
  }
}

// --- transient failures in the simulator ------------------------------------

TEST(SimFault, TransientFailuresRetryToCompletion) {
  test::EdgeGraph eg(30, {{0, 10}, {1, 11}, {10, 20}}, 1e8, {ArchType::CPU});
  Platform p = test::small_platform(3, 0);
  PerfDatabase db = test::flat_perf();
  SimConfig cfg;
  cfg.fault.transient.push_back(TransientFaultSpec{CodeletId{}, 0.3});
  cfg.fault.retry_budget = 20;  // abandonment essentially impossible
  const SimResult r = simulate(eg.graph, p, db, by_name("multiprio"), cfg);
  EXPECT_EQ(r.tasks_executed, 30u);
  EXPECT_EQ(r.fault.tasks_abandoned, 0u);
  EXPECT_GT(r.fault.failures_injected, 0u);
  EXPECT_EQ(r.fault.retries, r.fault.failures_injected);
  EXPECT_FALSE(r.fault.degraded);  // retried-through failures do not degrade
}

TEST(SimFault, FailedAttemptsCostTimeButNeverEnterTheTrace) {
  // One task that always fails twice, then succeeds (p = 1 on attempts is
  // impossible to express directly, so force it with budget accounting:
  // probability 1 + budget 2 abandons; instead compare makespans at p=0.3).
  test::EdgeGraph clean(12, {}, 1e9, {ArchType::CPU});
  Platform p = test::small_platform(2, 0);
  PerfDatabase db = test::flat_perf();
  const SimResult r0 = simulate(clean.graph, p, db, by_name("eager"));
  SimConfig cfg;
  cfg.fault.transient.push_back(TransientFaultSpec{CodeletId{}, 0.3});
  cfg.fault.retry_budget = 30;
  test::EdgeGraph again(12, {}, 1e9, {ArchType::CPU});
  const SimResult r1 = simulate(again.graph, p, db, by_name("eager"), cfg);
  ASSERT_GT(r1.fault.failures_injected, 0u);
  EXPECT_GT(r1.makespan, r0.makespan);        // wasted attempts cost time
  EXPECT_EQ(r1.tasks_executed, 12u);          // but execute exactly once each
}

TEST(SimFault, BudgetExhaustionAbandonsTaskAndDescendants) {
  test::EdgeGraph eg(4, {{0, 1}, {1, 2}}, 1e8, {ArchType::CPU});
  Platform p = test::small_platform(2, 0);
  PerfDatabase db = test::flat_perf();
  SimConfig cfg;
  cfg.fault.transient.push_back(TransientFaultSpec{CodeletId{}, 1.0});
  cfg.fault.retry_budget = 2;
  const SimResult r = simulate(eg.graph, p, db, by_name("eager"), cfg);
  EXPECT_EQ(r.tasks_executed, 0u);
  EXPECT_EQ(r.fault.tasks_abandoned, 4u);  // 0 -> 1 -> 2 closure plus task 3
  // Every root burned its full budget: 1 + 2 retries each.
  EXPECT_EQ(r.fault.failures_injected, 2u * 3u);
  EXPECT_TRUE(r.fault.degraded);
}

TEST(SimFault, StragglerMultipliesDuration) {
  test::EdgeGraph eg(1, {}, 1e9, {ArchType::CPU});  // 0.1 s nominal
  Platform p = test::small_platform(1, 0);
  PerfDatabase db = test::flat_perf();
  SimConfig cfg;
  cfg.fault.stragglers.push_back(StragglerSpec{CodeletId{}, 1.0, 4.0});
  const SimResult r = simulate(eg.graph, p, db, by_name("eager"), cfg);
  EXPECT_EQ(r.fault.stragglers_injected, 1u);
  EXPECT_NEAR(r.makespan, 0.4, 1e-9);
  EXPECT_FALSE(r.fault.degraded);
}

// --- determinism (same seed + plan => identical result) ----------------------

TEST(SimFault, SameSeedAndPlanReproduceBitForBit) {
  test::EdgeGraph eg(40, {{0, 10}, {1, 11}, {10, 20}, {11, 21}}, 1e8);
  Platform p = test::small_platform(3, 1);
  PerfDatabase db = test::flat_perf();
  SimConfig cfg;
  cfg.noise_sigma = 0.05;
  cfg.seed = 9;
  cfg.fault.seed = 77;
  cfg.fault.transient.push_back(TransientFaultSpec{CodeletId{}, 0.2});
  cfg.fault.stragglers.push_back(StragglerSpec{CodeletId{}, 0.1, 2.5});
  cfg.fault.worker_losses.push_back(WorkerLossSpec{gpu_worker(p), 0.05});
  cfg.fault.retry_budget = 25;
  for (const char* name : {"multiprio", "eager", "dmdas"}) {
    const SimResult a = simulate(eg.graph, p, db, by_name(name), cfg);
    const SimResult b = simulate(eg.graph, p, db, by_name(name), cfg);
    EXPECT_DOUBLE_EQ(a.makespan, b.makespan) << name;
    EXPECT_EQ(a.tasks_executed, b.tasks_executed) << name;
    EXPECT_EQ(a.fault.failures_injected, b.fault.failures_injected) << name;
    EXPECT_EQ(a.fault.retries, b.fault.retries) << name;
    EXPECT_EQ(a.fault.stragglers_injected, b.fault.stragglers_injected) << name;
    EXPECT_EQ(a.fault.tasks_abandoned, b.fault.tasks_abandoned) << name;
  }
}

// --- fail-stop worker loss ---------------------------------------------------

TEST(SimFault, GpuLossDegradesCholeskyGracefullyForEveryScheduler) {
  // The acceptance scenario: lose the GPU a quarter into the nominal run;
  // every policy must still complete the whole Cholesky DAG on the CPUs.
  TaskGraph graph;
  dense::TileMatrix a(6, 64, /*allocate=*/false);
  a.register_handles(graph);
  dense::build_potrf(graph, a, /*expert_priorities=*/false);
  const PlatformPreset preset = test_node();

  for (const std::string& name : scheduler_names()) {
    const SimResult nominal =
        simulate(graph, preset.platform, preset.perf, by_name(name));
    ASSERT_EQ(nominal.tasks_executed, graph.num_tasks()) << name;

    SimConfig cfg;
    cfg.fault.worker_losses.push_back(
        WorkerLossSpec{gpu_worker(preset.platform), 0.25 * nominal.makespan});
    SimEngine engine(graph, preset.platform, preset.perf, cfg);
    const SimResult r = engine.run(by_name(name));
    EXPECT_EQ(r.tasks_executed, graph.num_tasks()) << name;
    EXPECT_EQ(r.fault.tasks_abandoned, 0u) << name;
    EXPECT_EQ(r.fault.workers_lost, 1u) << name;
    EXPECT_TRUE(r.fault.degraded) << name;
    // No makespan assertion: with tiny transfer-bound tiles, losing the GPU
    // can *shorten* the run for transfer-oblivious policies.

    const InvariantReport rep = check_fault_invariants(
        graph, preset.platform, cfg.fault, engine, r);
    EXPECT_TRUE(rep.ok()) << name << ": " << rep.to_string();
  }
}

TEST(SimFault, LossAtTimeZeroLeavesCpusOnly) {
  test::EdgeGraph eg(10, {{0, 5}}, 1e8);
  Platform p = test::small_platform(2, 1);
  PerfDatabase db = test::flat_perf();
  SimConfig cfg;
  cfg.fault.worker_losses.push_back(WorkerLossSpec{gpu_worker(p), 0.0});
  SimEngine engine(eg.graph, p, db, cfg);
  const SimResult r = engine.run(by_name("multiprio"));
  EXPECT_EQ(r.tasks_executed, 10u);
  EXPECT_EQ(r.fault.tasks_abandoned, 0u);
  for (const TraceSegment& s : engine.trace().segments())
    EXPECT_EQ(p.worker(s.worker).arch, ArchType::CPU);
}

TEST(SimFault, MidPipelineLossDrainsPendingPops) {
  // Deep worker pipeline on the GPU: the loss must drain popped-but-unstarted
  // tasks back into the scheduler, not lose them.
  test::EdgeGraph eg(24, {}, 1e9);
  Platform p = test::small_platform(1, 1);
  PerfDatabase db = test::flat_perf();
  SimConfig cfg;
  cfg.pipeline_depth = 3;
  cfg.fault.worker_losses.push_back(WorkerLossSpec{gpu_worker(p), 0.015});
  SimEngine engine(eg.graph, p, db, cfg);
  const SimResult r = engine.run(by_name("dmdas"));
  EXPECT_EQ(r.tasks_executed, 24u);
  EXPECT_EQ(r.fault.tasks_abandoned, 0u);
  EXPECT_GT(r.fault.retries, 0u);  // the drained pipeline re-entered the queue
  const InvariantReport rep =
      check_fault_invariants(eg.graph, p, cfg.fault, engine, r);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

TEST(SimFault, OrphanedTasksAreAbandonedWithDescendants) {
  // GPU-only work and the only GPU dies: everything must be abandoned, and
  // the run must still terminate cleanly.
  test::EdgeGraph eg(6, {{0, 1}, {1, 2}, {3, 4}}, 1e8, {ArchType::GPU});
  Platform p = test::small_platform(2, 1);
  PerfDatabase db = test::flat_perf();
  SimConfig cfg;
  cfg.fault.worker_losses.push_back(WorkerLossSpec{gpu_worker(p), 0.0});
  SimEngine engine(eg.graph, p, db, cfg);
  const SimResult r = engine.run(by_name("eager"));
  EXPECT_EQ(r.tasks_executed, 0u);
  EXPECT_EQ(r.fault.tasks_abandoned, 6u);
  EXPECT_TRUE(r.fault.degraded);
  const InvariantReport rep =
      check_fault_invariants(eg.graph, p, cfg.fault, engine, r);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

TEST(SimFault, EvacuationWritesDirtyDataBackToRam) {
  // A GPU task writes a handle, then the GPU dies, then a CPU task reads it:
  // the sole authoritative copy must have been written back on retirement.
  TaskGraph g;
  const CodeletId on_gpu = g.add_codelet("produce", {ArchType::GPU});
  const CodeletId on_cpu = g.add_codelet("consume", {ArchType::CPU});
  const DataId d = g.add_data(10'000'000);
  SubmitOptions o;
  o.flops = 1e9;
  g.submit(on_gpu, {Access{d, AccessMode::ReadWrite}}, o);
  g.submit(on_cpu, {Access{d, AccessMode::Read}}, o);
  Platform p = test::small_platform(1, 1);
  PerfDatabase db = test::flat_perf();
  SimConfig cfg;
  cfg.fault.worker_losses.push_back(WorkerLossSpec{gpu_worker(p), 0.02});
  SimEngine engine(g, p, db, cfg);
  const SimResult r = engine.run(by_name("eager"));
  EXPECT_EQ(r.tasks_executed, 2u);
  EXPECT_GT(r.bytes_from_gpus, 0u);  // the evacuation writeback
  EXPECT_TRUE(engine.memory().is_valid_on(d, p.ram_node()));
}

// --- MultiPrio-specific accounting ------------------------------------------

TEST(MultiPrioFault, RepushRestoresAccountingLikeAFreshPush) {
  test::EdgeGraph eg(6, {}, 1e8);
  Platform p = test::small_platform(2, 1);
  PerfDatabase db = test::flat_perf();

  test::ManualContext mca(eg.graph, p, db);
  MultiPrioScheduler a(mca.ctx());
  test::ManualContext mcb(eg.graph, p, db);
  MultiPrioScheduler b(mcb.ctx());

  for (TaskId t : eg.tasks) a.push(t);
  for (TaskId t : eg.tasks) b.push(t);

  // A pops one task and gets it back (failed attempt); B never popped.
  // Popping from the best-arch (GPU) worker keeps the pop_condition out of
  // the picture — this test is about the push/repush ledger.
  const WorkerId gw = gpu_worker(p);
  const std::optional<TaskId> popped = a.pop(gw);
  ASSERT_TRUE(popped.has_value());
  EXPECT_FALSE(a.is_pending(*popped));
  a.repush(*popped);
  EXPECT_TRUE(a.is_pending(*popped));

  EXPECT_EQ(a.pending_count(), b.pending_count());
  for (std::size_t mi = 0; mi < p.num_nodes(); ++mi) {
    const MemNodeId m{mi};
    EXPECT_DOUBLE_EQ(a.best_remaining_work(m), b.best_remaining_work(m)) << mi;
    EXPECT_EQ(a.ready_tasks_count(m), b.ready_tasks_count(m)) << mi;
  }
  EXPECT_EQ(a.pop_condition_rejects(), b.pop_condition_rejects());

  // And the repushed task is poppable again.
  std::size_t drained = 0;
  while (a.pop(gw)) ++drained;
  EXPECT_EQ(drained, eg.tasks.size());
}

TEST(MultiPrioFault, NodeDeathRebuildsHeapsOnSurvivors) {
  test::EdgeGraph eg(8, {}, 1e8);
  Platform p = test::small_platform(2, 1);
  PerfDatabase db = test::flat_perf();
  test::ManualContext mc(eg.graph, p, db);
  MultiPrioScheduler sched(mc.ctx());
  for (TaskId t : eg.tasks) sched.push(t);

  const WorkerId gw = gpu_worker(p);
  const MemNodeId gpu_node = p.worker(gw).node;
  ASSERT_GT(sched.ready_tasks_count(gpu_node), 0u);

  mc.liveness.mark_dead(gw);  // engine contract: flip before notifying
  const std::vector<TaskId> orphans = sched.notify_worker_removed(gw);
  EXPECT_TRUE(orphans.empty());  // dual-arch tasks survive on the CPUs
  EXPECT_EQ(sched.pending_count(), eg.tasks.size());
  EXPECT_EQ(sched.ready_tasks_count(gpu_node), 0u);
  EXPECT_EQ(sched.heap(gpu_node).size(), 0u);
  EXPECT_DOUBLE_EQ(sched.best_remaining_work(gpu_node), 0.0);

  std::size_t drained = 0;
  while (sched.pop(WorkerId{std::size_t{0}})) ++drained;
  EXPECT_EQ(drained, eg.tasks.size());  // nothing was lost in the rebuild
}

TEST(MultiPrioFault, NodeDeathSurrendersOrphans) {
  // Half the tasks are GPU-only: after the GPU node dies they must come back
  // as orphans and leave the pending ledger.
  TaskGraph g;
  const CodeletId both = g.add_codelet("both", {ArchType::CPU, ArchType::GPU});
  const CodeletId gonly = g.add_codelet("gpu_only", {ArchType::GPU});
  std::vector<TaskId> tasks;
  for (int i = 0; i < 6; ++i) {
    const DataId d = g.add_data(1024);
    tasks.push_back(
        g.submit(i % 2 == 0 ? both : gonly, {Access{d, AccessMode::ReadWrite}}));
  }
  Platform p = test::small_platform(2, 1);
  PerfDatabase db = test::flat_perf();
  test::ManualContext mc(g, p, db);
  MultiPrioScheduler sched(mc.ctx());
  for (TaskId t : tasks) sched.push(t);

  const WorkerId gw = gpu_worker(p);
  mc.liveness.mark_dead(gw);
  std::vector<TaskId> orphans = sched.notify_worker_removed(gw);
  EXPECT_EQ(orphans.size(), 3u);
  EXPECT_TRUE(std::is_sorted(orphans.begin(), orphans.end()));  // deterministic
  EXPECT_EQ(sched.pending_count(), 3u);
  for (TaskId t : orphans) EXPECT_FALSE(sched.is_pending(t));
}

TEST(MultiPrioFault, StreamLossKeepsHeapsIntact) {
  // Two GPU streams on one node: losing one is not a node death, so the
  // heaps and ledgers must stand untouched.
  test::EdgeGraph eg(6, {}, 1e8);
  Platform p;
  p.add_workers(ArchType::CPU, p.ram_node(), 2);
  const MemNodeId gpu = p.add_gpu_node(0, 10e9, 1e-6);
  p.add_workers(ArchType::GPU, gpu, 2);
  PerfDatabase db = test::flat_perf();
  test::ManualContext mc(eg.graph, p, db);
  MultiPrioScheduler sched(mc.ctx());
  for (TaskId t : eg.tasks) sched.push(t);
  const std::size_t ready_before = sched.ready_tasks_count(gpu);
  const double brw_before = sched.best_remaining_work(gpu);

  const WorkerId first_stream = p.workers_of_node(gpu).front();
  mc.liveness.mark_dead(first_stream);
  EXPECT_TRUE(sched.notify_worker_removed(first_stream).empty());
  EXPECT_EQ(sched.ready_tasks_count(gpu), ready_before);
  EXPECT_DOUBLE_EQ(sched.best_remaining_work(gpu), brw_before);
}

TEST(MultiPrioFault, PushRacingWorkerLossSurrendersTask) {
  // Thin-lock race window: the engine's liveness screen passed before the
  // GPU died, and the push lands after the flip but before the dying
  // worker's notify_worker_removed reaches push_mu. The push must not
  // abort — it surrenders the task for the engine to abandon.
  TaskGraph g;
  const CodeletId gonly = g.add_codelet("gpu_only", {ArchType::GPU});
  const DataId d = g.add_data(64);
  const TaskId t = g.submit(gonly, {Access{d, AccessMode::ReadWrite}});
  Platform p = test::small_platform(2, 1);
  PerfDatabase db = test::flat_perf();
  test::ManualContext mc(g, p, db);
  MultiPrioScheduler sched(mc.ctx());

  mc.liveness.mark_dead(gpu_worker(p));
  sched.push(t);
  EXPECT_EQ(sched.pending_count(), 0u);
  EXPECT_FALSE(sched.is_pending(t));
  const std::vector<TaskId> unplaced = sched.drain_unplaced();
  ASSERT_EQ(unplaced.size(), 1u);
  EXPECT_EQ(unplaced[0], t);
  EXPECT_TRUE(sched.drain_unplaced().empty());  // drained exactly once
  std::string why;
  EXPECT_TRUE(sched.check_invariants(&why)) << why;
}

TEST(MultiPrioFault, PushBatchRacingWorkerLossSurrendersOnlyDoomedTasks) {
  // A mixed release batch after the same race: the dual-arch task is placed
  // and stays poppable on the CPUs, only the GPU-only task is surrendered.
  TaskGraph g;
  const CodeletId both = g.add_codelet("both", {ArchType::CPU, ArchType::GPU});
  const CodeletId gonly = g.add_codelet("gpu_only", {ArchType::GPU});
  const DataId d0 = g.add_data(64);
  const DataId d1 = g.add_data(64);
  const TaskId tb = g.submit(both, {Access{d0, AccessMode::ReadWrite}});
  const TaskId tg = g.submit(gonly, {Access{d1, AccessMode::ReadWrite}});
  Platform p = test::small_platform(2, 1);
  PerfDatabase db = test::flat_perf();
  test::ManualContext mc(g, p, db);
  MultiPrioScheduler sched(mc.ctx());

  mc.liveness.mark_dead(gpu_worker(p));
  sched.push_batch({tb, tg});
  EXPECT_EQ(sched.pending_count(), 1u);
  EXPECT_TRUE(sched.is_pending(tb));
  EXPECT_FALSE(sched.is_pending(tg));
  const std::vector<TaskId> unplaced = sched.drain_unplaced();
  ASSERT_EQ(unplaced.size(), 1u);
  EXPECT_EQ(unplaced[0], tg);
  EXPECT_EQ(sched.pop(WorkerId{std::size_t{0}}), std::optional<TaskId>(tb));
  std::string why;
  EXPECT_TRUE(sched.check_invariants(&why)) << why;
}

// --- stall diagnostic (max_events safety valve) ------------------------------

TEST(SimFaultDeath, MaxEventsEmitsStallDiagnostic) {
  test::EdgeGraph eg(20, {{0, 1}, {1, 2}}, 1e8, {ArchType::CPU});
  Platform p = test::small_platform(2, 0);
  PerfDatabase db = test::flat_perf();
  SimConfig cfg;
  cfg.max_events = 5;  // far too few for 20 tasks
  EXPECT_DEATH((void)simulate(eg.graph, p, db, by_name("eager"), cfg),
               "simulation stalled.*stuck total");
}

}  // namespace
}  // namespace mp
