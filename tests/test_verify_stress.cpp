// Randomized stress for the structures the verification layer guards most
// closely: ScoredHeap's arbitrary-removal/stale-duplicate machinery and the
// EventLog's concurrent append/export path. The concurrency tests run under
// real threads in every build (the TSan CI job runs them with `-L verify`)
// and additionally under the controlled scheduler when -DMP_VERIFY=ON.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include "common/check.hpp"
#include "core/scored_heap.hpp"
#include "obs/observer.hpp"
#include "verify/explore.hpp"
#include "verify/sync.hpp"

namespace mp {
namespace {

// ---- ScoredHeap ----------------------------------------------------------

TEST(ScoredHeapStress, RandomInsertRemovePopAgainstReference) {
  std::mt19937_64 rng(20260806);
  std::uniform_real_distribution<double> score(0.0, 4.0);
  for (int round = 0; round < 50; ++round) {
    ScoredHeap h;
    // Reference: the live entries, compared via the heap's own ordering.
    std::vector<HeapEntry> ref;
    std::uint32_t next_task = 0;
    for (int step = 0; step < 200; ++step) {
      const int op = static_cast<int>(rng() % 4);
      if (op <= 1 || ref.empty()) {  // insert (biased: heaps mostly grow)
        const TaskId t{next_task++};
        const double g = score(rng);
        const double p = score(rng);
        h.insert(t, g, p);
        // seq mirrors the heap's FIFO tiebreak (one insert per task id).
        ref.push_back(HeapEntry{t, g, p, t.value()});
      } else if (op == 2) {  // remove an arbitrary live task (eviction path)
        const TaskId victim = ref[rng() % ref.size()].task;
        h.remove(victim);
        ref.erase(std::find_if(ref.begin(), ref.end(),
                               [&](const HeapEntry& e) { return e.task == victim; }));
      } else {  // pop_top must agree with the reference maximum
        const auto top = h.top();
        ASSERT_TRUE(top.has_value());
        const auto best = std::min_element(
            ref.begin(), ref.end(),
            [](const HeapEntry& a, const HeapEntry& b) { return a.before(b); });
        ASSERT_EQ(top->task, best->task);
        h.pop_top();
        ref.erase(best);
      }
      ASSERT_TRUE(h.validate()) << "heap corrupt after step " << step;
      ASSERT_EQ(h.size(), ref.size());
    }
    for (const HeapEntry& e : ref) ASSERT_TRUE(h.contains(e.task));
  }
}

TEST(ScoredHeapStress, StaleDuplicateDiscardPattern) {
  // MultiPrio's lazy-discard usage: tasks duplicated into several heaps, one
  // heap takes, the others top()/pop_top() through the stale entries later.
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> score(0.0, 1.0);
  constexpr std::size_t kHeaps = 3, kTasks = 64;
  for (int round = 0; round < 20; ++round) {
    std::vector<ScoredHeap> heaps(kHeaps);
    std::vector<bool> taken(kTasks, false);
    for (std::uint32_t t = 0; t < kTasks; ++t)
      for (auto& h : heaps) h.insert(TaskId{t}, score(rng), score(rng));
    std::size_t live = kTasks;
    while (live > 0) {
      ScoredHeap& h = heaps[rng() % kHeaps];
      // Lazy discard, exactly as MultiPrioScheduler::drop_taken does it.
      while (auto top = h.top()) {
        if (!taken[top->task.index()]) break;
        h.pop_top();
        ASSERT_TRUE(h.validate());
      }
      const auto top = h.top();
      if (!top.has_value()) continue;  // this heap ran dry of live entries
      taken[top->task.index()] = true;
      h.remove(top->task);
      ASSERT_TRUE(h.validate());
      --live;
    }
    // Whatever remains anywhere must be stale duplicates of taken tasks.
    for (auto& h : heaps)
      h.for_top([&](const HeapEntry& e) {
        EXPECT_TRUE(taken[e.task.index()]);
        return true;
      });
  }
}

// ---- EventLog under real concurrency -------------------------------------

void hammer_event_log(std::size_t appenders, std::size_t per_thread,
                      std::size_t capacity, bool concurrent_export) {
  EventLog log(capacity);
  std::vector<Thread> threads;
  threads.reserve(appenders + (concurrent_export ? 1 : 0));
  for (std::size_t a = 0; a < appenders; ++a) {
    threads.emplace_back([&log, a, per_thread] {
      for (std::size_t i = 0; i < per_thread; ++i) {
        SchedEvent e;
        e.kind = (a % 2 == 0) ? SchedEventKind::Push : SchedEventKind::Pop;
        e.task = TaskId{static_cast<std::uint32_t>(i)};
        log.append(e);
      }
    });
  }
  if (concurrent_export) {
    threads.emplace_back([&log, appenders, per_thread] {
      // Export while appends are in flight: must never crash or double-count.
      while (log.recorded() < appenders * per_thread / 2) {
        (void)log.snapshot();
        (void)log.to_csv();
      }
      (void)log.to_csv();
    });
  }
  for (auto& th : threads) th.join();

  const std::uint64_t total = appenders * per_thread;
  MP_CHECK_MSG(log.recorded() == total, "appends lost");
  MP_CHECK_MSG(log.accounting_ok(), "drop accounting out of balance");
  std::uint64_t pushes = 0, pops = 0;
  for (std::size_t a = 0; a < appenders; ++a)
    (a % 2 == 0 ? pushes : pops) += per_thread;
  MP_CHECK(log.count(SchedEventKind::Push) == pushes);
  MP_CHECK(log.count(SchedEventKind::Pop) == pops);
  // Seqs in the retained window are unique and the window is the newest.
  std::set<std::uint64_t> seqs;
  for (const SchedEvent& e : log.snapshot()) {
    MP_CHECK(e.seq < total);
    MP_CHECK_MSG(seqs.insert(e.seq).second, "duplicate seq in snapshot");
  }
}

TEST(EventLogStress, ConcurrentAppendKeepsDropProofAccounting) {
  hammer_event_log(/*appenders=*/4, /*per_thread=*/5000, /*capacity=*/1024,
                   /*concurrent_export=*/false);
}

TEST(EventLogStress, ConcurrentAppendAndExport) {
  hammer_event_log(/*appenders=*/4, /*per_thread=*/2000, /*capacity=*/512,
                   /*concurrent_export=*/true);
}

TEST(EventLogStress, ExploredAppendAndExport) {
  if (!verify::exploration_supported()) GTEST_SKIP() << "needs -DMP_VERIFY=ON";
  // Tiny instance under the controlled scheduler: every interleaving of two
  // appenders against the ring boundary (capacity 3 < the 4 total appends),
  // with the MP_CHECK post-conditions acting as the oracle.
  verify::ExploreConfig cfg;
  cfg.mode = verify::ExploreConfig::Mode::Exhaustive;
  cfg.max_schedules = 10000;
  const verify::ExploreResult r = verify::explore(
      [] {
        hammer_event_log(/*appenders=*/2, /*per_thread=*/2, /*capacity=*/3,
                         /*concurrent_export=*/false);
      },
      cfg);
  EXPECT_FALSE(r.violation) << r.summary();
  EXPECT_GT(r.schedules, 1u);
}

// ---- metrics counters under the shim -------------------------------------

TEST(MetricsStress, CounterIsAtomicAcrossThreads) {
  Counter c;
  constexpr std::size_t kThreads = 4, kIncs = 20000;
  std::vector<Thread> threads;
  for (std::size_t i = 0; i < kThreads; ++i)
    threads.emplace_back([&c] {
      for (std::size_t k = 0; k < kIncs; ++k) c.inc();
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), kThreads * kIncs);
}

}  // namespace
}  // namespace mp
