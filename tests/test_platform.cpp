#include <gtest/gtest.h>

#include "runtime/platform.hpp"
#include "sim/platform_presets.hpp"
#include "test_util.hpp"

namespace mp {
namespace {

TEST(Platform, RamNodeAlwaysPresent) {
  Platform p;
  EXPECT_EQ(p.num_nodes(), 1u);
  EXPECT_EQ(p.node(p.ram_node()).kind, MemNodeKind::Ram);
}

TEST(Platform, AddGpuNodesAndWorkers) {
  Platform p = test::small_platform(4, 2);
  EXPECT_EQ(p.num_nodes(), 3u);
  EXPECT_EQ(p.num_workers(), 6u);
  EXPECT_EQ(p.worker_count(ArchType::CPU), 4u);
  EXPECT_EQ(p.worker_count(ArchType::GPU), 2u);
  EXPECT_EQ(p.nodes_of_arch(ArchType::GPU).size(), 2u);
  EXPECT_EQ(p.nodes_of_arch(ArchType::CPU).size(), 1u);
}

TEST(Platform, NodeArchReflectsWorkers) {
  Platform p = test::small_platform(2, 1);
  EXPECT_EQ(p.node_arch(p.ram_node()), ArchType::CPU);
  EXPECT_EQ(p.node_arch(MemNodeId{std::size_t{1}}), ArchType::GPU);
}

TEST(Platform, WorkersOfNode) {
  Platform p = test::small_platform(3, 1);
  EXPECT_EQ(p.workers_of_node(p.ram_node()).size(), 3u);
  EXPECT_EQ(p.workers_of_node(MemNodeId{std::size_t{1}}).size(), 1u);
}

TEST(Platform, TransferTimeZeroSameNode) {
  Platform p = test::small_platform(1, 1);
  EXPECT_DOUBLE_EQ(p.transfer_time(1 << 20, p.ram_node(), p.ram_node()), 0.0);
}

TEST(Platform, TransferTimeRamToGpu) {
  Platform p;
  const MemNodeId g = p.add_gpu_node(0, 10e9, 1e-6);
  p.add_workers(ArchType::GPU, g, 1);
  // 10 MB over 10 GB/s + 1 µs latency.
  EXPECT_NEAR(p.transfer_time(10'000'000, p.ram_node(), g), 1e-3 + 1e-6, 1e-12);
  EXPECT_NEAR(p.transfer_time(10'000'000, g, p.ram_node()), 1e-3 + 1e-6, 1e-12);
}

TEST(Platform, GpuToGpuPaysBothLinks) {
  Platform p;
  const MemNodeId g0 = p.add_gpu_node(0, 10e9, 1e-6);
  const MemNodeId g1 = p.add_gpu_node(0, 20e9, 2e-6);
  p.add_workers(ArchType::GPU, g0, 1);
  p.add_workers(ArchType::GPU, g1, 1);
  const double expected = (1e-6 + 1e7 / 10e9) + (2e-6 + 1e7 / 20e9);
  EXPECT_NEAR(p.transfer_time(10'000'000, g0, g1), expected, 1e-12);
}

TEST(PlatformDeath, MixedArchOnOneNodeRejected) {
  Platform p;
  p.add_workers(ArchType::CPU, p.ram_node(), 1);
  EXPECT_DEATH(p.add_workers(ArchType::GPU, p.ram_node(), 1), "single worker arch");
}

TEST(Presets, IntelV100Shape) {
  const PlatformPreset preset = intel_v100();
  EXPECT_EQ(preset.platform.worker_count(ArchType::CPU), 30u);
  EXPECT_EQ(preset.platform.worker_count(ArchType::GPU), 2u);
  EXPECT_EQ(preset.platform.num_nodes(), 3u);
  preset.platform.self_check();
}

TEST(Presets, AmdA100Shape) {
  const PlatformPreset preset = amd_a100();
  EXPECT_EQ(preset.platform.worker_count(ArchType::CPU), 62u);
  EXPECT_EQ(preset.platform.worker_count(ArchType::GPU), 2u);
  preset.platform.self_check();
}

TEST(Presets, StreamsMultiplyGpuWorkers) {
  const PlatformPreset preset = intel_v100(4);
  EXPECT_EQ(preset.platform.worker_count(ArchType::GPU), 8u);
  EXPECT_EQ(preset.platform.num_nodes(), 3u);  // still 2 GPU memory nodes
}

TEST(Presets, Fig4NodeShape) {
  const PlatformPreset preset = fig4_node();
  EXPECT_EQ(preset.platform.worker_count(ArchType::CPU), 6u);
  EXPECT_EQ(preset.platform.worker_count(ArchType::GPU), 1u);
}

TEST(Presets, AmdCpusSlowerGpusFaster) {
  const PlatformPreset intel = intel_v100();
  const PlatformPreset amd = amd_a100();
  // Per the paper: each AMD core ~2× slower, each A100 much faster.
  const RateSpec& icpu = intel.perf.rate("gemm", ArchType::CPU);
  const RateSpec& acpu = amd.perf.rate("gemm", ArchType::CPU);
  EXPECT_NEAR(acpu.gflops / icpu.gflops, 0.5, 1e-9);
  const RateSpec& igpu = intel.perf.rate("gemm", ArchType::GPU);
  const RateSpec& agpu = amd.perf.rate("gemm", ArchType::GPU);
  EXPECT_GT(agpu.gflops / igpu.gflops, 2.0);
}

TEST(Presets, GemmGpuFavoredAtLargeTiles) {
  // On a V100-like device a 960³ gemm should be much faster than one core,
  // but a tiny 64³ gemm should lose to the CPU because of launch overhead.
  const PlatformPreset preset = intel_v100();
  TaskGraph g;
  const CodeletId cl = g.add_codelet("gemm", {ArchType::CPU, ArchType::GPU});
  const DataId d = g.add_data(8);
  SubmitOptions big;
  big.flops = 2.0 * 960.0 * 960.0 * 960.0;
  const TaskId tb = g.submit(cl, {Access{d, AccessMode::ReadWrite}}, big);
  SubmitOptions small;
  small.flops = 2.0 * 64.0 * 64.0 * 64.0;
  const TaskId ts = g.submit(cl, {Access{d, AccessMode::ReadWrite}}, small);
  const double big_cpu = preset.perf.ground_truth(g, tb, ArchType::CPU);
  const double big_gpu = preset.perf.ground_truth(g, tb, ArchType::GPU);
  const double small_cpu = preset.perf.ground_truth(g, ts, ArchType::CPU);
  const double small_gpu = preset.perf.ground_truth(g, ts, ArchType::GPU);
  EXPECT_GT(big_cpu / big_gpu, 10.0);    // GPU wins big tiles by a lot
  EXPECT_LT(small_cpu / small_gpu, 1.0);  // CPU wins tiny tiles
}

}  // namespace
}  // namespace mp
