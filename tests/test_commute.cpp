// AccessMode::Commute: STF dependency rules, simulator mutual exclusion,
// real-executor correctness under contention, and the DAG-parallelism gain
// on the FMM accumulations.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>

#include "apps/fmm/dag_builder.hpp"
#include "exec/thread_executor.hpp"
#include "sched/schedulers.hpp"
#include "sim/engine.hpp"
#include "test_util.hpp"

namespace mp {
namespace {

bool has_edge(const TaskGraph& g, TaskId u, TaskId v) {
  const auto s = g.successors(u);
  return std::find(s.begin(), s.end(), v) != s.end();
}

struct World {
  TaskGraph g;
  CodeletId cl;
  DataId d;
  World() {
    cl = g.add_codelet("k", {ArchType::CPU});
    d = g.add_data(64);
  }
  TaskId submit(AccessMode m) { return g.submit(cl, {Access{d, m}}); }
};

TEST(CommuteStf, CommutersCarryNoMutualEdges) {
  World w;
  const TaskId w0 = w.submit(AccessMode::Write);
  const TaskId c1 = w.submit(AccessMode::Commute);
  const TaskId c2 = w.submit(AccessMode::Commute);
  const TaskId c3 = w.submit(AccessMode::Commute);
  EXPECT_TRUE(has_edge(w.g, w0, c1));
  EXPECT_TRUE(has_edge(w.g, w0, c2));
  EXPECT_TRUE(has_edge(w.g, w0, c3));
  EXPECT_FALSE(has_edge(w.g, c1, c2));
  EXPECT_FALSE(has_edge(w.g, c2, c3));
  EXPECT_FALSE(has_edge(w.g, c1, c3));
}

TEST(CommuteStf, ReaderWaitsForAllCommuters) {
  World w;
  const TaskId c1 = w.submit(AccessMode::Commute);
  const TaskId c2 = w.submit(AccessMode::Commute);
  const TaskId r = w.submit(AccessMode::Read);
  EXPECT_TRUE(has_edge(w.g, c1, r));
  EXPECT_TRUE(has_edge(w.g, c2, r));
  EXPECT_EQ(w.g.in_degree(r), 2u);
}

TEST(CommuteStf, WriterWaitsForAllCommuters) {
  World w;
  const TaskId c1 = w.submit(AccessMode::Commute);
  const TaskId c2 = w.submit(AccessMode::Commute);
  const TaskId wr = w.submit(AccessMode::Write);
  EXPECT_TRUE(has_edge(w.g, c1, wr));
  EXPECT_TRUE(has_edge(w.g, c2, wr));
}

TEST(CommuteStf, CommuterAfterReadersWaitsForThem) {
  World w;
  const TaskId w0 = w.submit(AccessMode::Write);
  const TaskId r1 = w.submit(AccessMode::Read);
  const TaskId r2 = w.submit(AccessMode::Read);
  const TaskId c = w.submit(AccessMode::Commute);
  EXPECT_TRUE(has_edge(w.g, r1, c));
  EXPECT_TRUE(has_edge(w.g, r2, c));
  EXPECT_FALSE(has_edge(w.g, w0, c));  // covered transitively by the readers
}

TEST(CommuteStf, TwoReadersAfterEpochBothGuarded) {
  World w;
  const TaskId c1 = w.submit(AccessMode::Commute);
  const TaskId c2 = w.submit(AccessMode::Commute);
  const TaskId r1 = w.submit(AccessMode::Read);
  const TaskId r2 = w.submit(AccessMode::Read);
  EXPECT_TRUE(has_edge(w.g, c1, r1));
  EXPECT_TRUE(has_edge(w.g, c2, r1));
  EXPECT_TRUE(has_edge(w.g, c1, r2));
  EXPECT_TRUE(has_edge(w.g, c2, r2));
  EXPECT_FALSE(has_edge(w.g, r1, r2));
}

TEST(CommuteStf, MixedEpochsStaySafe) {
  World w;
  const TaskId c1 = w.submit(AccessMode::Commute);
  const TaskId r = w.submit(AccessMode::Read);
  const TaskId c2 = w.submit(AccessMode::Commute);
  const TaskId wr = w.submit(AccessMode::Write);
  EXPECT_TRUE(has_edge(w.g, c1, r));
  EXPECT_TRUE(has_edge(w.g, r, c2));
  EXPECT_TRUE(has_edge(w.g, c2, wr));
  w.g.self_check();
}

TEST(CommuteSim, ExecutionsNeverOverlapOnOneHandle) {
  // 8 independent commuters on one handle, 4 workers: the engine must
  // serialize their executions even though the DAG has no edges.
  TaskGraph g;
  const CodeletId cl = g.add_codelet("k", {ArchType::CPU});
  const DataId d = g.add_data(64);
  SubmitOptions o;
  o.flops = 1e8;
  for (int i = 0; i < 8; ++i) g.submit(cl, {Access{d, AccessMode::Commute}}, o);
  Platform p = test::small_platform(4, 0);
  PerfDatabase db = test::flat_perf();
  SimEngine engine(g, p, db);
  const SimResult r = engine.run([](SchedContext ctx) { return make_eager(std::move(ctx)); });
  EXPECT_EQ(r.tasks_executed, 8u);
  // Mutual exclusion: intervals must not overlap pairwise.
  const auto& segs = engine.trace().segments();
  for (std::size_t i = 0; i < segs.size(); ++i) {
    for (std::size_t j = i + 1; j < segs.size(); ++j) {
      const bool disjoint =
          segs[i].end <= segs[j].exec_start + 1e-12 || segs[j].end <= segs[i].exec_start + 1e-12;
      EXPECT_TRUE(disjoint) << i << " vs " << j;
    }
  }
  // Serialized: makespan ≈ 8 executions back to back.
  EXPECT_GE(r.makespan, 8.0 * 1e8 / 10e9 - 1e-9);
}

TEST(CommuteSim, IndependentHandlesStillRunInParallel) {
  TaskGraph g;
  const CodeletId cl = g.add_codelet("k", {ArchType::CPU});
  SubmitOptions o;
  o.flops = 1e8;
  for (int i = 0; i < 4; ++i) {
    const DataId d = g.add_data(64);
    g.submit(cl, {Access{d, AccessMode::Commute}}, o);
  }
  Platform p = test::small_platform(4, 0);
  PerfDatabase db = test::flat_perf();
  const SimResult r = simulate(g, p, db, [](SchedContext ctx) {
    return make_eager(std::move(ctx));
  });
  EXPECT_NEAR(r.makespan, 1e8 / 10e9, 1e-9);
}

TEST(CommuteSim, AllSchedulersHandleCommuteDags) {
  TaskGraph g;
  const CodeletId cl = g.add_codelet("k", {ArchType::CPU, ArchType::GPU});
  const DataId acc_data = g.add_data(256);
  SubmitOptions o;
  o.flops = 1e7;
  for (int i = 0; i < 20; ++i) {
    const DataId own = g.add_data(128);
    g.submit(cl, {Access{own, AccessMode::Read}, Access{acc_data, AccessMode::Commute}}, o);
  }
  g.submit(cl, {Access{acc_data, AccessMode::Read}}, o);  // reduction barrier
  Platform p = test::small_platform(2, 1);
  PerfDatabase db = test::flat_perf(10.0, 100.0);
  for (const std::string& name : scheduler_names()) {
    const SimResult r = simulate(g, p, db, [&](SchedContext ctx) {
      return make_scheduler_by_name(name, std::move(ctx));
    });
    EXPECT_EQ(r.tasks_executed, g.num_tasks()) << name;
  }
}

TEST(CommuteExec, ConcurrentAccumulationIsExact) {
  // 64 commuters each add 1 into a shared counter under real threads; the
  // per-handle mutex must make the final value exact.
  TaskGraph g;
  double counter = 0.0;
  const CodeletId cl = g.add_codelet(
      "add", {ArchType::CPU, ArchType::GPU},
      [](const Task&, std::span<void* const> buf) {
        auto* v = static_cast<double*>(buf[0]);
        const double old = *v;
        // Widen the race window without the lock.
        volatile int spin = 0;
        while (spin < 500) spin = spin + 1;
        *v = old + 1.0;
      });
  const DataId d = g.add_data(sizeof(double), &counter);
  for (int i = 0; i < 64; ++i) g.submit(cl, {Access{d, AccessMode::Commute}});
  Platform p = test::small_platform(4, 2);
  PerfDatabase db = test::flat_perf();
  ThreadExecutor exec(g, p, db);
  const ExecResult r = exec.run([](SchedContext ctx) {
    return make_scheduler_by_name("lws", std::move(ctx));
  });
  EXPECT_EQ(r.tasks_executed, 64u);
  EXPECT_DOUBLE_EQ(counter, 64.0);
}

TEST(CommuteFmm, CommuteDagHasFewerOrderingConstraints) {
  auto parts = fmm::uniform_cube(30000, 5);
  fmm::Octree tree(std::move(parts), {5, 32, false});
  TaskGraph g_rw;
  (void)fmm::build_fmm(g_rw, tree, {/*commute_accumulations=*/false});
  TaskGraph g_c;
  (void)fmm::build_fmm(g_c, tree, {/*commute_accumulations=*/true});
  // Same task count; the accumulation chains vanish, so the unit-weight
  // critical path (DAG depth) must shrink even though commute adds more
  // entry/exit edges per accumulator.
  ASSERT_EQ(g_rw.num_tasks(), g_c.num_tasks());
  auto depth = [](const TaskGraph& g) {
    std::size_t best = 0;
    std::vector<std::size_t> d(g.num_tasks(), 1);
    for (std::size_t i = g.num_tasks(); i-- > 0;) {
      for (TaskId s : g.successors(TaskId{i}))
        d[i] = std::max(d[i], 1 + d[s.index()]);
      best = std::max(best, d[i]);
    }
    return best;
  };
  EXPECT_LT(depth(g_c), depth(g_rw));
  // Both encodings schedule to completion; the commute run pays our
  // conservative pop-order arbiter (see FmmBuildOptions), so we only bound
  // it loosely rather than require a speed-up.
  Platform p = test::small_platform(4, 2);
  PerfDatabase db = test::flat_perf(10.0, 100.0);
  const SimResult rw = simulate(g_rw, p, db, [](SchedContext ctx) {
    return make_scheduler_by_name("multiprio", std::move(ctx));
  });
  const SimResult cm = simulate(g_c, p, db, [](SchedContext ctx) {
    return make_scheduler_by_name("multiprio", std::move(ctx));
  });
  EXPECT_EQ(cm.tasks_executed, g_c.num_tasks());
  EXPECT_LT(cm.makespan, rw.makespan * 4.0);
}

TEST(CommuteFmm, RealExecutionStaysNumericallyCorrect) {
  auto parts = fmm::uniform_cube(1200, 6);
  fmm::Octree serial_tree(parts, {4, 8, true});
  fmm::run_fmm_serial(serial_tree);
  const auto expect = serial_tree.potentials_original_order();

  fmm::Octree tree(parts, {4, 8, true});
  TaskGraph g;
  (void)fmm::build_fmm(g, tree, {/*commute_accumulations=*/true});
  Platform p = test::small_platform(3, 1);
  PerfDatabase db = test::flat_perf();
  ThreadExecutor exec(g, p, db);
  (void)exec.run([](SchedContext ctx) {
    return make_scheduler_by_name("multiprio", std::move(ctx));
  });
  const auto got = tree.potentials_original_order();
  // Accumulation order now varies: compare with an FP-reordering tolerance.
  double max_rel = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i)
    max_rel = std::max(max_rel, std::abs(got[i] - expect[i]) /
                                    std::max(1e-12, std::abs(expect[i])));
  EXPECT_LT(max_rel, 1e-9);
}

}  // namespace
}  // namespace mp
