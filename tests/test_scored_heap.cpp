#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "core/scored_heap.hpp"

namespace mp {
namespace {

TaskId tid(std::size_t i) { return TaskId{i}; }

TEST(ScoredHeap, EmptyBehaviour) {
  ScoredHeap h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0u);
  EXPECT_FALSE(h.top().has_value());
}

TEST(ScoredHeap, TopIsMaxGain) {
  ScoredHeap h;
  h.insert(tid(0), 0.3, 0.0);
  h.insert(tid(1), 0.9, 0.0);
  h.insert(tid(2), 0.5, 0.0);
  ASSERT_TRUE(h.top().has_value());
  EXPECT_EQ(h.top()->task, tid(1));
}

TEST(ScoredHeap, CriticalityBreaksGainTies) {
  ScoredHeap h;
  h.insert(tid(0), 0.5, 0.2);
  h.insert(tid(1), 0.5, 0.9);
  h.insert(tid(2), 0.5, 0.5);
  EXPECT_EQ(h.top()->task, tid(1));
}

TEST(ScoredHeap, FifoBreaksFullTies) {
  ScoredHeap h;
  h.insert(tid(3), 0.5, 0.5);
  h.insert(tid(1), 0.5, 0.5);
  h.insert(tid(2), 0.5, 0.5);
  EXPECT_EQ(h.top()->task, tid(3));  // earliest insertion wins
  h.pop_top();
  EXPECT_EQ(h.top()->task, tid(1));
  h.pop_top();
  EXPECT_EQ(h.top()->task, tid(2));
}

TEST(ScoredHeap, PopTopRemoves) {
  ScoredHeap h;
  h.insert(tid(0), 0.1, 0.0);
  h.insert(tid(1), 0.2, 0.0);
  h.pop_top();
  EXPECT_EQ(h.size(), 1u);
  EXPECT_EQ(h.top()->task, tid(0));
  EXPECT_FALSE(h.contains(tid(1)));
}

TEST(ScoredHeap, RemoveArbitrary) {
  ScoredHeap h;
  for (std::size_t i = 0; i < 10; ++i)
    h.insert(tid(i), 0.1 * static_cast<double>(i), 0.0);
  h.remove(tid(5));
  EXPECT_EQ(h.size(), 9u);
  EXPECT_FALSE(h.contains(tid(5)));
  EXPECT_TRUE(h.validate());
  EXPECT_EQ(h.top()->task, tid(9));
}

TEST(ScoredHeap, RemoveLastElementNoReheap) {
  ScoredHeap h;
  h.insert(tid(0), 0.9, 0.0);
  h.insert(tid(1), 0.1, 0.0);
  h.remove(tid(1));
  EXPECT_TRUE(h.validate());
  EXPECT_EQ(h.size(), 1u);
}

TEST(ScoredHeapDeath, DoubleInsertRejected) {
  ScoredHeap h;
  h.insert(tid(0), 0.5, 0.0);
  EXPECT_DEATH(h.insert(tid(0), 0.6, 0.0), "already in this heap");
}

TEST(ScoredHeapDeath, RemoveMissingRejected) {
  ScoredHeap h;
  EXPECT_DEATH(h.remove(tid(0)), "not in the heap");
}

TEST(ScoredHeap, ForTopVisitsInExactOrder) {
  ScoredHeap h;
  Rng rng(5);
  for (std::size_t i = 0; i < 64; ++i)
    h.insert(tid(i), rng.next_double(), rng.next_double());
  std::vector<HeapEntry> visited;
  h.for_top([&](const HeapEntry& e) {
    visited.push_back(e);
    return true;
  });
  ASSERT_EQ(visited.size(), 64u);
  for (std::size_t i = 1; i < visited.size(); ++i)
    EXPECT_TRUE(visited[i - 1].before(visited[i]) ||
                (!visited[i].before(visited[i - 1])));
}

TEST(ScoredHeap, ForTopEarlyStop) {
  ScoredHeap h;
  for (std::size_t i = 0; i < 32; ++i) h.insert(tid(i), static_cast<double>(i), 0.0);
  std::size_t count = 0;
  h.for_top([&](const HeapEntry&) { return ++count < 5; });
  EXPECT_EQ(count, 5u);
  EXPECT_EQ(h.size(), 32u);  // non-destructive
}

TEST(ScoredHeap, ForTopFirstIsTop) {
  ScoredHeap h;
  Rng rng(17);
  for (std::size_t i = 0; i < 50; ++i) h.insert(tid(i), rng.next_double(), 0.0);
  bool first = true;
  h.for_top([&](const HeapEntry& e) {
    if (first) {
      EXPECT_EQ(e.task, h.top()->task);
      first = false;
    }
    return false;
  });
}

// Property sweep: random interleavings of insert/remove/pop keep the heap
// property, the index map, and the exact max ordering.
class ScoredHeapProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScoredHeapProperty, RandomOpsKeepInvariants) {
  Rng rng(GetParam());
  ScoredHeap h;
  std::vector<TaskId> live;
  std::size_t next_id = 0;
  for (int step = 0; step < 2000; ++step) {
    const double action = rng.next_double();
    if (action < 0.55 || live.empty()) {
      const TaskId t = tid(next_id++);
      h.insert(t, rng.next_double(), rng.next_double());
      live.push_back(t);
    } else if (action < 0.8) {
      // remove a random live task
      const std::size_t pick = static_cast<std::size_t>(rng.next_in(0, live.size() - 1));
      h.remove(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      const TaskId top = h.top()->task;
      h.pop_top();
      for (std::size_t i = 0; i < live.size(); ++i) {
        if (live[i] == top) {
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
    }
    if (step % 100 == 0) {
      ASSERT_TRUE(h.validate());
    }
    ASSERT_EQ(h.size(), live.size());
  }
  ASSERT_TRUE(h.validate());
  // Drain: pops must come out in non-increasing order.
  std::optional<HeapEntry> prev;
  while (!h.empty()) {
    const HeapEntry e = *h.top();
    if (prev) {
      EXPECT_FALSE(e.before(*prev));
    }
    prev = e;
    h.pop_top();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScoredHeapProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace mp
