#!/usr/bin/env python3
"""Bench regression gate for BENCH_overhead.json.

Compares a freshly produced BENCH_overhead.json against the committed
baseline and fails on a >20% regression in normalized ns_per_task for the
sharded MultiPrio sweep points.

Normalization: raw ns_per_task is machine-dependent (CI runners differ in
clock speed and core count), so each file is normalized by its OWN 1-worker
sharded ns_per_task before comparison. The normalized value at width W is
the contention multiplier — "how much more scheduling CPU does a task cost
at W workers than at 1" — which is the quantity the sharded lock protocol
protects and the one that is comparable across machines.

Only `multiprio` (sharded) sweep points are gated. The `multiprio-coarse`
baseline points are printed for context but not gated: the coarse engine's
notify_all herd makes its numbers wildly variant run-to-run (that variance
is the pathology the sharded protocol removes), and the coarse path is the
comparison anchor, not the protected quantity.

Usage: tools/bench_gate.py <candidate.json> <baseline.json>
Exit status 0 = pass, 1 = regression or malformed input.
"""

import json
import sys

TOLERANCE = 1.20  # fail when candidate normalized cost exceeds baseline by >20%


def sweep_points(path):
    """Return {(scheduler, workers): ns_per_task} for overhead_sweep records."""
    with open(path) as f:
        records = json.load(f)
    points = {}
    for rec in records:
        if rec.get("bench") != "overhead_sweep":
            continue
        key = (rec["scheduler"], rec["params"]["workers"])
        points[key] = rec["ns_per_task"]
    return points


def normalized(points):
    """Divide every point by the file's own 1-worker sharded anchor."""
    anchor = points.get(("multiprio", 1))
    if not anchor or anchor <= 0:
        raise SystemExit("bench_gate: no 1-worker multiprio anchor point")
    return {key: ns / anchor for key, ns in points.items()}


def main(argv):
    if len(argv) != 3:
        print("usage: tools/bench_gate.py <candidate.json> <baseline.json>", file=sys.stderr)
        return 1
    candidate = sweep_points(argv[1])
    baseline = sweep_points(argv[2])
    cand_norm = normalized(candidate)
    base_norm = normalized(baseline)

    failed = False
    for key in sorted(base_norm, key=lambda k: (k[0], k[1])):
        sched, workers = key
        if key not in cand_norm:
            print(f"bench_gate: FAIL {sched} @{workers}w missing from candidate")
            failed = True
            continue
        c, b = cand_norm[key], base_norm[key]
        gated = sched == "multiprio"
        verdict = "ok"
        if gated and c > b * TOLERANCE:
            verdict = f"FAIL (>{(TOLERANCE - 1) * 100:.0f}% regression)"
            failed = True
        tag = "" if gated else "  [context only]"
        print(
            f"bench_gate: {sched:17s} @{workers:2d}w "
            f"normalized {c:5.2f} vs baseline {b:5.2f}  {verdict}{tag}"
        )
    if not failed:
        print("bench_gate: OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
