#!/usr/bin/env bash
# Project lint wall. Two custom rules that clang-tidy cannot express, plus a
# clang-tidy pass over the core when the binary is available.
#
#   1. No naked std synchronization primitives outside src/verify/. All of
#      src/ must go through the mp::sync shim (mp::Mutex, mp::Thread,
#      mp::Atomic, ...) so that -DMP_VERIFY=ON builds can interpose the
#      deterministic interleaving explorer. A raw std::mutex is invisible to
#      the controlled scheduler and silently shrinks the explored space.
#
#   2. Every public mutator of the scheduler core (src/core/) must carry at
#      least one always-on MP_CHECK / MP_CHECK_MSG in its own body. MP_ASSERT
#      does not count: it compiles out under NDEBUG, and the verification
#      harness relies on always-on checks to turn racy corruption into caught
#      violations instead of undefined behaviour.
#
#   3. Shard-lock hygiene. The per-node shard locks (`order_mu`) define the
#      bottom of the lock hierarchy and are only deadlock-free because every
#      multi-shard acquisition goes through AscendingShardLocks, which sorts
#      its index set. The lock fields must not leak outside
#      src/core/multiprio.{hpp,cpp}, every code line touching one must be
#      tagged `// shard-lock(asc)` (forcing the author past the ordering
#      rule), and the sort in the AscendingShardLocks constructor must stay.
#
# Usage: tools/lint.sh [--no-tidy]   (run from anywhere inside the repo)
set -u

cd "$(dirname "$0")/.." || exit 1
fail=0

# ---- Rule 1: naked std primitives --------------------------------------------
# Word-boundary match; a '// lint-allow-std-sync' suffix exempts a line (the
# shim itself lives in src/verify/ and is excluded wholesale).
naked=$(grep -rnE '\bstd::(mutex|recursive_mutex|shared_mutex|timed_mutex|condition_variable(_any)?|thread|jthread|atomic(_flag)?)\b' \
            src/ --include='*.hpp' --include='*.cpp' \
        | grep -v '^src/verify/' \
        | grep -v 'lint-allow-std-sync' || true)
if [[ -n "$naked" ]]; then
  echo "lint: naked std synchronization primitives outside src/verify/ —"
  echo "      use the mp::sync shim (src/verify/sync.hpp) instead:"
  echo "$naked" | sed 's/^/      /'
  fail=1
fi

# ---- Rule 2: MP_CHECK-less public mutators in src/core/ ----------------------
# For each header: walk class bodies tracking the public/private/protected
# label, collect non-const, non-static public method names ("mutators").
# For each such method with an out-of-line definition in the matching .cpp,
# require MP_CHECK somewhere in the definition body.
for hdr in src/core/*.hpp; do
  cpp="${hdr%.hpp}.cpp"
  [[ -f "$cpp" ]] || continue
  mutators=$(awk '
    /^(class|struct)[ \t]+[A-Za-z_]/ { in_class = 1; access = /^struct/ ? "public" : "private" }
    in_class && /^[ \t]*public:/    { access = "public";    next }
    in_class && /^[ \t]*private:/   { access = "private";   next }
    in_class && /^[ \t]*protected:/ { access = "protected"; next }
    in_class && /^};/               { in_class = 0 }
    # A public declaration line with a parameter list that is not const-
    # qualified, not static, not deleted/defaulted, and not an operator.
    in_class && access == "public" && /^[ \t]*[A-Za-z_\[].*\(/ \
        && !/\)[ \t]*const/ && !/const[ \t]*;[ \t]*$/ \
        && !/static|operator|= *(delete|default)|using|typedef|friend/ {
      line = $0
      sub(/\(.*/, "", line)            # drop the parameter list onward
      n = split(line, parts, /[ \t*&]+/)
      name = parts[n]                  # last token before "(" is the name
      if (name ~ /^[a-z_][A-Za-z0-9_]*$/) print name   # skips ctors/dtors
    }
  ' "$hdr" | sort -u)
  for m in $mutators; do
    # Extract the out-of-line definition body by brace counting.
    body=$(awk -v m="$m" '
      !in_fn && $0 ~ ("^[A-Za-z_].*::" m "\\(") { in_fn = 1 }
      in_fn {
        print
        depth += gsub(/{/, "{") - gsub(/}/, "}")
        if (seen_open && depth == 0) exit
        if (depth > 0) seen_open = 1
      }
    ' "$cpp")
    [[ -z "$body" ]] && continue  # inline in the header or not defined here
    if ! grep -q 'MP_CHECK' <<<"$body"; then
      echo "lint: ${cpp}: public mutator ${m}() has no always-on MP_CHECK" \
           "in its body"
      fail=1
    fi
  done
done

# ---- Rule 3: shard-lock hygiene ----------------------------------------------
# 3a. `order_mu` must not appear outside the MultiPrio implementation pair.
leaked=$(grep -rln '\border_mu\b' src/ --include='*.hpp' --include='*.cpp' \
         | grep -vE '^src/core/multiprio\.(hpp|cpp)$' || true)
if [[ -n "$leaked" ]]; then
  echo "lint: shard lock order_mu referenced outside src/core/multiprio.{hpp,cpp}:"
  echo "$leaked" | sed 's/^/      /'
  fail=1
fi
# 3b. Every code line touching order_mu carries the ascending-order tag.
# Pure comment lines are exempt (they discuss the lock, they don't take it).
untagged=$(grep -rnE '\border_mu\b' src/core/multiprio.hpp src/core/multiprio.cpp \
           | grep -vE ':[0-9]+:[ \t]*(//|\*)' \
           | grep -v 'shard-lock(asc)' || true)
if [[ -n "$untagged" ]]; then
  echo "lint: order_mu use without the '// shard-lock(asc)' tag — all shard"
  echo "      lock acquisitions must go through the ascending-order helpers:"
  echo "$untagged" | sed 's/^/      /'
  fail=1
fi
# 3c. The AscendingShardLocks constructor must still sort its index set.
if ! awk '/AscendingShardLocks::AscendingShardLocks/,/^}/' src/core/multiprio.cpp \
     | grep -q 'std::sort'; then
  echo "lint: AscendingShardLocks constructor no longer sorts its shard set —"
  echo "      multi-shard acquisition order is unenforced (deadlock risk)"
  fail=1
fi

# ---- clang-tidy (best effort: skipped when unavailable) ----------------------
if [[ "${1:-}" != "--no-tidy" ]]; then
  if command -v clang-tidy >/dev/null 2>&1; then
    if [[ ! -f build/compile_commands.json ]]; then
      cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    fi
    if ! clang-tidy -p build --quiet src/core/*.cpp src/exec/*.cpp src/obs/*.cpp; then
      echo "lint: clang-tidy reported errors"
      fail=1
    fi
  else
    echo "lint: clang-tidy not found; skipping tidy pass (custom rules still ran)"
  fi
fi

if [[ $fail -eq 0 ]]; then
  echo "lint: OK"
fi
exit $fail
