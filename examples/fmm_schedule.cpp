// Task-based FMM (TBFMM-style) scheduled on both paper platforms — the
// Fig. 6 setting at reduced scale, plus a real threaded execution that
// validates the computed potentials against direct summation.
//
//   ./examples/fmm_schedule [particles] [tree_height]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "apps/fmm/dag_builder.hpp"
#include "common/csv.hpp"
#include "exec/thread_executor.hpp"
#include "sched/schedulers.hpp"
#include "sim/engine.hpp"
#include "sim/platform_presets.hpp"

int main(int argc, char** argv) {
  using namespace mp;
  using namespace mp::fmm;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50000;
  const std::size_t height = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;

  // --- scheduling study on the two platforms --------------------------------
  auto parts = clustered_sphere(n, 42);
  Octree tree(parts, {height, 32, false});
  TaskGraph graph;
  const FmmBuildStats stats = build_fmm(graph, tree);
  std::printf("FMM: %zu particles, height %zu -> %zu tasks "
              "(P2M %zu, M2M %zu, M2L %zu, L2L %zu, L2P %zu, P2P %zu)\n\n",
              n, height, stats.total(), stats.p2m, stats.m2m, stats.m2l, stats.l2l,
              stats.l2p, stats.p2p);

  for (auto preset : {intel_v100(2), amd_a100(2)}) {
    Table table({"scheduler", "makespan (ms)", "CPU idle", "GPU idle"});
    for (const char* name : {"multiprio", "dmdas", "heteroprio"}) {
      SimEngine engine(graph, preset.platform, preset.perf);
      const SimResult r = engine.run([&](SchedContext ctx) {
        return make_scheduler_by_name(name, std::move(ctx));
      });
      double gpu_idle = 0.0;
      for (std::size_t m = 1; m < preset.platform.num_nodes(); ++m)
        gpu_idle += r.idle_per_node[m];
      gpu_idle /= static_cast<double>(preset.platform.num_nodes() - 1);
      table.add_row({name, fmt_double(r.makespan * 1e3, 2),
                     fmt_percent(r.idle_per_node[0]), fmt_percent(gpu_idle)});
    }
    std::printf("%s (2 streams/GPU)\n%s\n", preset.name.c_str(),
                table.to_ascii().c_str());
  }

  // --- real execution + accuracy check (smaller set) ------------------------
  auto small = uniform_cube(1500, 7);
  const auto direct = direct_potentials(small);
  Octree real_tree(small, {4, 8, true});
  TaskGraph real_graph;
  (void)build_fmm(real_graph, real_tree);
  Platform node;
  node.add_workers(ArchType::CPU, node.ram_node(), 2);
  PerfDatabase flat;
  flat.set_default(ArchType::CPU, RateSpec{10.0, 0.0, 0.0, 0.0});
  flat.set_default(ArchType::GPU, RateSpec{100.0, 0.0, 0.0, 0.0});
  ThreadExecutor exec(real_graph, node, flat);
  (void)exec.run([](SchedContext ctx) {
    return make_scheduler_by_name("multiprio", std::move(ctx));
  });
  const auto fmm_pot = real_tree.potentials_original_order();
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < direct.size(); ++i) {
    num += (fmm_pot[i] - direct[i]) * (fmm_pot[i] - direct[i]);
    den += direct[i] * direct[i];
  }
  std::printf("real task-based FMM vs direct sum (1500 particles): "
              "relative L2 error = %.2e\n",
              std::sqrt(num / den));
  return 0;
}
