// Multifrontal sparse QR: symbolic analysis of a Fig. 7 matrix and the
// scheduling of its irregular front DAG — the Fig. 8 setting on one matrix.
//
//   ./examples/sparseqr_analysis [matrix_name]
#include <cstdio>
#include <cstring>

#include "apps/sparseqr/dag_builder.hpp"
#include "apps/sparseqr/generators.hpp"
#include "common/csv.hpp"
#include "sched/schedulers.hpp"
#include "sim/engine.hpp"
#include "sim/platform_presets.hpp"

int main(int argc, char** argv) {
  using namespace mp;
  using namespace mp::sqr;
  const char* want = argc > 1 ? argv[1] : "e18";

  MatrixSpec spec;
  bool found = false;
  for (const MatrixSpec& s : paper_matrix_specs()) {
    if (s.name == want) {
      spec = s;
      found = true;
    }
  }
  if (!found) {
    std::printf("unknown matrix '%s'; available:\n", want);
    for (const MatrixSpec& s : paper_matrix_specs()) std::printf("  %s\n", s.name.c_str());
    return 1;
  }

  std::printf("generating %s (%zux%zu, %zu nnz; paper op count %.0f Gflop)...\n",
              spec.name.c_str(), spec.rows, spec.cols, spec.nnz, spec.gflop_target);
  const SparseMatrix m = generate(spec);
  const SymbolicAnalysis sym = analyze(tall_orientation(m));

  std::size_t max_k = 0;
  std::size_t max_n = 0;
  std::size_t leaves = 0;
  for (const Front& f : sym.fronts) {
    max_k = std::max(max_k, f.k());
    max_n = std::max(max_n, f.n());
    if (f.children.empty()) ++leaves;
  }
  std::printf("symbolic analysis: %zu fronts (%zu leaves), widest front %zu cols "
              "(+border -> %zu), %.1f Gflop in our elimination\n\n",
              sym.fronts.size(), leaves, max_k, max_n, sym.total_flops / 1e9);

  TaskGraph graph;
  const SparseQrStats stats = build_sparseqr(graph, sym);
  std::printf("front DAG: %zu tasks over %zu panel handles\n\n", stats.tasks,
              stats.panels);

  const PlatformPreset preset = intel_v100(4);  // 4 streams/GPU, as in Fig. 8
  Table table({"scheduler", "makespan (s)", "ratio vs dmdas"});
  double dmdas_time = 0.0;
  for (const char* name : {"dmdas", "heteroprio", "multiprio"}) {
    SimEngine engine(graph, preset.platform, preset.perf);
    const SimResult r = engine.run([&](SchedContext ctx) {
      return make_scheduler_by_name(name, std::move(ctx));
    });
    if (std::strcmp(name, "dmdas") == 0) dmdas_time = r.makespan;
    table.add_row({name, fmt_double(r.makespan, 3),
                   fmt_double(dmdas_time / r.makespan, 3)});
  }
  std::printf("%s (2 GPUs, 4 streams each)\n%s\n", preset.name.c_str(),
              table.to_ascii().c_str());
  return 0;
}
