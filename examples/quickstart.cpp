// Quickstart: define data and tasks, let the STF runtime infer the DAG,
// then (1) execute it for real on worker threads under MultiPrio and
// (2) simulate it on a calibrated heterogeneous platform.
//
//   ./examples/quickstart
#include <cstdio>
#include <vector>

#include "core/multiprio.hpp"
#include "exec/thread_executor.hpp"
#include "sched/schedulers.hpp"
#include "sim/engine.hpp"
#include "sim/platform_presets.hpp"

int main() {
  using namespace mp;

  // --- 1. describe the computation as tasks over data -----------------------
  TaskGraph graph;
  std::vector<double> vec(1024, 1.0);
  double sum = 0.0;

  const DataId d_vec = graph.add_data(vec.size() * sizeof(double), vec.data(), "vec");
  const DataId d_sum = graph.add_data(sizeof(double), &sum, "sum");

  const CodeletId scale = graph.add_codelet(
      "scale", {ArchType::CPU, ArchType::GPU},
      [](const Task& t, std::span<void* const> buf) {
        auto* v = static_cast<double*>(buf[0]);
        for (std::size_t i = 0; i < 1024; ++i) v[i] *= static_cast<double>(t.iparams[0]);
      });
  const CodeletId reduce = graph.add_codelet(
      "reduce", {ArchType::CPU},
      [](const Task&, std::span<void* const> buf) {
        const auto* v = static_cast<const double*>(buf[0]);
        auto* s = static_cast<double*>(buf[1]);
        *s = 0.0;
        for (std::size_t i = 0; i < 1024; ++i) *s += v[i];
      });

  // Sequential submission; dependencies inferred from access modes.
  SubmitOptions s1;
  s1.iparams = {2, 0, 0, 0};
  s1.flops = 1024;
  graph.submit(scale, {Access{d_vec, AccessMode::ReadWrite}}, s1);
  SubmitOptions s2;
  s2.iparams = {3, 0, 0, 0};
  s2.flops = 1024;
  graph.submit(scale, {Access{d_vec, AccessMode::ReadWrite}}, s2);
  SubmitOptions s3;
  s3.flops = 2048;
  graph.submit(reduce, {Access{d_vec, AccessMode::Read}, Access{d_sum, AccessMode::Write}},
               s3);

  // --- 2. run it for real under the MultiPrio scheduler ---------------------
  Platform node;
  node.add_workers(ArchType::CPU, node.ram_node(), 2);
  PerfDatabase flat;
  flat.set_default(ArchType::CPU, RateSpec{10.0, 0.0, 0.0, 0.0});
  flat.set_default(ArchType::GPU, RateSpec{100.0, 0.0, 0.0, 0.0});

  ThreadExecutor exec(graph, node, flat);
  const ExecResult real = exec.run([](SchedContext ctx) {
    return std::make_unique<MultiPrioScheduler>(std::move(ctx));
  });
  std::printf("real execution: %zu tasks, sum = %.1f (expect %.1f)\n",
              real.tasks_executed, sum, 1024.0 * 6.0);

  // --- 3. simulate the same DAG on a paper platform -------------------------
  const PlatformPreset preset = intel_v100();
  SimEngine sim(graph, preset.platform, preset.perf);
  const SimResult r = sim.run([](SchedContext ctx) {
    return std::make_unique<MultiPrioScheduler>(std::move(ctx));
  });
  std::printf("simulated on %s: makespan = %.3f ms over %zu tasks\n",
              preset.name.c_str(), r.makespan * 1e3, r.tasks_executed);
  std::printf("\nGantt (one row per worker, # = busy):\n%s",
              sim.trace().ascii_gantt(64).c_str());
  return 0;
}
