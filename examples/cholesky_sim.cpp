// Dense Cholesky on the paper's Intel-V100 platform: compare schedulers on
// the same DAG and show the per-resource utilization that drives Fig. 4/5.
//
//   ./examples/cholesky_sim [matrix_size] [tile_size]
#include <cstdio>
#include <cstdlib>

#include "apps/dense/dense_builders.hpp"
#include "common/csv.hpp"
#include "sched/schedulers.hpp"
#include "sim/engine.hpp"
#include "sim/platform_presets.hpp"

int main(int argc, char** argv) {
  using namespace mp;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20480;
  const std::size_t nb = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1280;
  const std::size_t tiles = n / nb;

  TaskGraph graph;
  dense::TileMatrix a(tiles, nb, /*allocate=*/false);
  a.register_handles(graph);
  dense::build_potrf(graph, a, /*expert_priorities=*/true);

  const PlatformPreset preset = intel_v100();
  std::printf("Cholesky %zux%zu, tile %zu -> %zu tasks on %s\n\n", n, n, nb,
              graph.num_tasks(), preset.name.c_str());

  Table table({"scheduler", "makespan (s)", "GFlop/s", "CPU idle", "GPU idle",
               "GB to GPUs"});
  for (const char* name : {"multiprio", "dmdas", "heteroprio", "lws", "eager"}) {
    SimEngine engine(graph, preset.platform, preset.perf);
    const SimResult r = engine.run([&](SchedContext ctx) {
      return make_scheduler_by_name(name, std::move(ctx));
    });
    double gpu_idle = 0.0;
    for (std::size_t m = 1; m < preset.platform.num_nodes(); ++m)
      gpu_idle += r.idle_per_node[m];
    gpu_idle /= static_cast<double>(preset.platform.num_nodes() - 1);
    table.add_row({name, fmt_double(r.makespan, 4),
                   fmt_double(dense::potrf_total_flops(n) / r.makespan / 1e9, 1),
                   fmt_percent(r.idle_per_node[0]), fmt_percent(gpu_idle),
                   fmt_double(static_cast<double>(r.bytes_to_gpus) / 1e9, 2)});
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf("(GFlop/s uses the algorithmic n^3/3 flop count, as Chameleon reports)\n");
  return 0;
}
