// Post-mortem trace analysis: run one DAG under two schedulers with a
// recording observer attached, print where the time went (per-codelet
// placement, per-node utilization, bound ratios, scheduler-event rollup)
// and export the run for visual inspection:
//
//   <sched>_trace.csv   executed segments (one row per task)
//   <sched>_events.csv  scheduler decision events (PUSH/POP/EVICT/...)
//   <sched>_trace.json  Chrome Trace Event Format
//
//   ./examples/trace_report [tiles] [tile_size]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "apps/dense/dense_builders.hpp"
#include "obs/analysis.hpp"
#include "obs/export.hpp"
#include "obs/observer.hpp"
#include "sched/schedulers.hpp"
#include "sim/engine.hpp"
#include "sim/platform_presets.hpp"
#include "sim/report.hpp"

namespace {

bool write_text(const std::string& path, const std::string& text) {
  std::ofstream f(path);
  if (!f) return false;
  f << text;
  return static_cast<bool>(f);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mp;
  const std::size_t tiles = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 24;
  const std::size_t nb = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 960;

  TaskGraph graph;
  dense::TileMatrix a(tiles, nb, /*allocate=*/false);
  a.register_handles(graph);
  dense::build_getrf(graph, a, /*expert_priorities=*/true);

  const PlatformPreset preset = intel_v100();
  std::printf("LU %zux%zu tiles of %zu on %s — %zu tasks\n\n", tiles, tiles, nb,
              preset.name.c_str(), graph.num_tasks());

  for (const char* sched : {"multiprio", "dmdas"}) {
    RecordingObserver obs;
    SimConfig cfg;
    cfg.observer = &obs;
    SimEngine engine(graph, preset.platform, preset.perf, cfg);
    (void)engine.run([&](SchedContext ctx) {
      return make_scheduler_by_name(sched, std::move(ctx));
    });
    const TraceReport report(engine.trace(), graph, preset.platform, &obs);
    std::printf("--- %s ---\n%s\n", sched, report.to_string().c_str());
    const RunAnalysis analysis(engine.trace(), graph, preset.platform, preset.perf,
                               &obs, engine.predicted_durations());
    std::printf("%s\n", analysis.to_string().c_str());

    const std::string base(sched);
    const std::string trace_csv = base + "_trace.csv";
    const std::string events_csv = base + "_events.csv";
    const std::string trace_json = base + "_trace.json";
    bool ok = write_text(trace_csv, engine.trace().to_csv());
    ok = write_text(events_csv, obs.events().to_csv()) && ok;
    ok = write_chrome_trace(trace_json, engine.trace(), graph, preset.platform, &obs) && ok;
    if (!ok) {
      std::fprintf(stderr, "failed to write exports for %s\n", sched);
      return 1;
    }
    std::printf("wrote %s, %s and %s — open the .json at https://ui.perfetto.dev\n",
                trace_csv.c_str(), events_csv.c_str(), trace_json.c_str());
    std::printf("(or chrome://tracing) to see per-worker timelines, decision\n");
    std::printf("markers and heap-depth counters.\n\n");
  }
  return 0;
}
