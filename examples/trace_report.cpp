// Post-mortem trace analysis: run one DAG under two schedulers and print
// where the time went (per-codelet placement, per-node utilization, bound
// ratios) — the workflow for debugging a scheduling decision.
//
//   ./examples/trace_report [tiles] [tile_size]
#include <cstdio>
#include <cstdlib>

#include "apps/dense/dense_builders.hpp"
#include "sched/schedulers.hpp"
#include "sim/engine.hpp"
#include "sim/platform_presets.hpp"
#include "sim/report.hpp"

int main(int argc, char** argv) {
  using namespace mp;
  const std::size_t tiles = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 24;
  const std::size_t nb = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 960;

  TaskGraph graph;
  dense::TileMatrix a(tiles, nb, /*allocate=*/false);
  a.register_handles(graph);
  dense::build_getrf(graph, a, /*expert_priorities=*/true);

  const PlatformPreset preset = intel_v100();
  std::printf("LU %zux%zu tiles of %zu on %s — %zu tasks\n\n", tiles, tiles, nb,
              preset.name.c_str(), graph.num_tasks());

  for (const char* sched : {"multiprio", "dmdas"}) {
    SimEngine engine(graph, preset.platform, preset.perf);
    (void)engine.run([&](SchedContext ctx) {
      return make_scheduler_by_name(sched, std::move(ctx));
    });
    const TraceReport report(engine.trace(), graph, preset.platform);
    std::printf("--- %s ---\n%s\n", sched, report.to_string().c_str());
  }
  return 0;
}
