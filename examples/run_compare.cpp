// Compare two schedulers on the same DAG, post-mortem: run both under a
// recording observer, analyze each completed run (critical path, area and
// critical-path lower bounds, idle-blame decomposition, δ(t,a) model audit)
// and print the side-by-side delta tables — the "why did A beat B" view.
//
//   ./examples/run_compare [schedA] [schedB] [tiles] [tile_size]
//
// Defaults: multiprio vs dmdas on a 24x24-tile LU (getrf) with 960-wide
// tiles on the Intel-V100 preset.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/dense/dense_builders.hpp"
#include "obs/analysis.hpp"
#include "obs/compare.hpp"
#include "obs/observer.hpp"
#include "sched/schedulers.hpp"
#include "sim/engine.hpp"
#include "sim/platform_presets.hpp"
#include "sim/report.hpp"

int main(int argc, char** argv) {
  using namespace mp;
  const std::string sched_a = argc > 1 ? argv[1] : "multiprio";
  const std::string sched_b = argc > 2 ? argv[2] : "dmdas";
  const std::size_t tiles = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 24;
  const std::size_t nb = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 960;

  TaskGraph graph;
  dense::TileMatrix a(tiles, nb, /*allocate=*/false);
  a.register_handles(graph);
  dense::build_getrf(graph, a, /*expert_priorities=*/true);

  const PlatformPreset preset = intel_v100();
  std::printf("LU %zux%zu tiles of %zu on %s — %zu tasks, %s vs %s\n\n", tiles,
              tiles, nb, preset.name.c_str(), graph.num_tasks(), sched_a.c_str(),
              sched_b.c_str());

  std::vector<RunSummary> summaries;
  for (const std::string& sched : {sched_a, sched_b}) {
    RecordingObserver obs;
    SimConfig cfg;
    cfg.observer = &obs;
    SimEngine engine(graph, preset.platform, preset.perf, cfg);
    (void)engine.run([&](SchedContext ctx) {
      return make_scheduler_by_name(sched, std::move(ctx));
    });
    const RunAnalysis analysis(engine.trace(), graph, preset.platform, preset.perf,
                               &obs, engine.predicted_durations());
    const TraceReport report(engine.trace(), graph, preset.platform, &obs);
    std::printf("--- %s ---\n%s\n", sched.c_str(), analysis.to_string().c_str());
    summaries.push_back(summarize_run(sched, analysis, report, engine.trace()));
  }

  std::printf("%s", compare_runs(summaries[0], summaries[1]).c_str());
  return 0;
}
