# Empty dependencies file for bench_fig4_eviction.
# This may be replaced when dependencies are built.
