file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_eviction.dir/bench_fig4_eviction.cpp.o"
  "CMakeFiles/bench_fig4_eviction.dir/bench_fig4_eviction.cpp.o.d"
  "bench_fig4_eviction"
  "bench_fig4_eviction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_eviction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
