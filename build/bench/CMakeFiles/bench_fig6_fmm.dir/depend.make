# Empty dependencies file for bench_fig6_fmm.
# This may be replaced when dependencies are built.
