file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_fmm.dir/bench_fig6_fmm.cpp.o"
  "CMakeFiles/bench_fig6_fmm.dir/bench_fig6_fmm.cpp.o.d"
  "bench_fig6_fmm"
  "bench_fig6_fmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_fmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
