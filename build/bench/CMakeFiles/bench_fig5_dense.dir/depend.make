# Empty dependencies file for bench_fig5_dense.
# This may be replaced when dependencies are built.
