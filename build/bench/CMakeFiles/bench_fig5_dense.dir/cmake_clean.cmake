file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_dense.dir/bench_fig5_dense.cpp.o"
  "CMakeFiles/bench_fig5_dense.dir/bench_fig5_dense.cpp.o.d"
  "bench_fig5_dense"
  "bench_fig5_dense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_dense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
