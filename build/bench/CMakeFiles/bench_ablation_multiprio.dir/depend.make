# Empty dependencies file for bench_ablation_multiprio.
# This may be replaced when dependencies are built.
