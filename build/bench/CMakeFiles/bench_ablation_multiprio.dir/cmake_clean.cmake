file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multiprio.dir/bench_ablation_multiprio.cpp.o"
  "CMakeFiles/bench_ablation_multiprio.dir/bench_ablation_multiprio.cpp.o.d"
  "bench_ablation_multiprio"
  "bench_ablation_multiprio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multiprio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
