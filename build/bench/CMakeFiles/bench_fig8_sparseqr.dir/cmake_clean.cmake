file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_sparseqr.dir/bench_fig8_sparseqr.cpp.o"
  "CMakeFiles/bench_fig8_sparseqr.dir/bench_fig8_sparseqr.cpp.o.d"
  "bench_fig8_sparseqr"
  "bench_fig8_sparseqr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_sparseqr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
