file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_matrices.dir/bench_fig7_matrices.cpp.o"
  "CMakeFiles/bench_fig7_matrices.dir/bench_fig7_matrices.cpp.o.d"
  "bench_fig7_matrices"
  "bench_fig7_matrices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_matrices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
