# Empty compiler generated dependencies file for bench_fig7_matrices.
# This may be replaced when dependencies are built.
