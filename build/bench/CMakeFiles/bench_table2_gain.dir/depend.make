# Empty dependencies file for bench_table2_gain.
# This may be replaced when dependencies are built.
