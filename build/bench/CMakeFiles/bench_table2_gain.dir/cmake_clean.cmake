file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_gain.dir/bench_table2_gain.cpp.o"
  "CMakeFiles/bench_table2_gain.dir/bench_table2_gain.cpp.o.d"
  "bench_table2_gain"
  "bench_table2_gain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_gain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
