# Empty dependencies file for mp_dense.
# This may be replaced when dependencies are built.
