file(REMOVE_RECURSE
  "CMakeFiles/mp_dense.dir/apps/dense/geqrf.cpp.o"
  "CMakeFiles/mp_dense.dir/apps/dense/geqrf.cpp.o.d"
  "CMakeFiles/mp_dense.dir/apps/dense/getrf.cpp.o"
  "CMakeFiles/mp_dense.dir/apps/dense/getrf.cpp.o.d"
  "CMakeFiles/mp_dense.dir/apps/dense/potrf.cpp.o"
  "CMakeFiles/mp_dense.dir/apps/dense/potrf.cpp.o.d"
  "CMakeFiles/mp_dense.dir/apps/dense/reference.cpp.o"
  "CMakeFiles/mp_dense.dir/apps/dense/reference.cpp.o.d"
  "CMakeFiles/mp_dense.dir/apps/dense/tile_kernels.cpp.o"
  "CMakeFiles/mp_dense.dir/apps/dense/tile_kernels.cpp.o.d"
  "CMakeFiles/mp_dense.dir/apps/dense/tile_matrix.cpp.o"
  "CMakeFiles/mp_dense.dir/apps/dense/tile_matrix.cpp.o.d"
  "libmp_dense.a"
  "libmp_dense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_dense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
