
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/dense/geqrf.cpp" "src/CMakeFiles/mp_dense.dir/apps/dense/geqrf.cpp.o" "gcc" "src/CMakeFiles/mp_dense.dir/apps/dense/geqrf.cpp.o.d"
  "/root/repo/src/apps/dense/getrf.cpp" "src/CMakeFiles/mp_dense.dir/apps/dense/getrf.cpp.o" "gcc" "src/CMakeFiles/mp_dense.dir/apps/dense/getrf.cpp.o.d"
  "/root/repo/src/apps/dense/potrf.cpp" "src/CMakeFiles/mp_dense.dir/apps/dense/potrf.cpp.o" "gcc" "src/CMakeFiles/mp_dense.dir/apps/dense/potrf.cpp.o.d"
  "/root/repo/src/apps/dense/reference.cpp" "src/CMakeFiles/mp_dense.dir/apps/dense/reference.cpp.o" "gcc" "src/CMakeFiles/mp_dense.dir/apps/dense/reference.cpp.o.d"
  "/root/repo/src/apps/dense/tile_kernels.cpp" "src/CMakeFiles/mp_dense.dir/apps/dense/tile_kernels.cpp.o" "gcc" "src/CMakeFiles/mp_dense.dir/apps/dense/tile_kernels.cpp.o.d"
  "/root/repo/src/apps/dense/tile_matrix.cpp" "src/CMakeFiles/mp_dense.dir/apps/dense/tile_matrix.cpp.o" "gcc" "src/CMakeFiles/mp_dense.dir/apps/dense/tile_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
