file(REMOVE_RECURSE
  "libmp_dense.a"
)
