file(REMOVE_RECURSE
  "CMakeFiles/mp_core.dir/core/gain.cpp.o"
  "CMakeFiles/mp_core.dir/core/gain.cpp.o.d"
  "CMakeFiles/mp_core.dir/core/locality.cpp.o"
  "CMakeFiles/mp_core.dir/core/locality.cpp.o.d"
  "CMakeFiles/mp_core.dir/core/multiprio.cpp.o"
  "CMakeFiles/mp_core.dir/core/multiprio.cpp.o.d"
  "CMakeFiles/mp_core.dir/core/nod.cpp.o"
  "CMakeFiles/mp_core.dir/core/nod.cpp.o.d"
  "CMakeFiles/mp_core.dir/core/scored_heap.cpp.o"
  "CMakeFiles/mp_core.dir/core/scored_heap.cpp.o.d"
  "libmp_core.a"
  "libmp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
