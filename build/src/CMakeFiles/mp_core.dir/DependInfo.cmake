
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/gain.cpp" "src/CMakeFiles/mp_core.dir/core/gain.cpp.o" "gcc" "src/CMakeFiles/mp_core.dir/core/gain.cpp.o.d"
  "/root/repo/src/core/locality.cpp" "src/CMakeFiles/mp_core.dir/core/locality.cpp.o" "gcc" "src/CMakeFiles/mp_core.dir/core/locality.cpp.o.d"
  "/root/repo/src/core/multiprio.cpp" "src/CMakeFiles/mp_core.dir/core/multiprio.cpp.o" "gcc" "src/CMakeFiles/mp_core.dir/core/multiprio.cpp.o.d"
  "/root/repo/src/core/nod.cpp" "src/CMakeFiles/mp_core.dir/core/nod.cpp.o" "gcc" "src/CMakeFiles/mp_core.dir/core/nod.cpp.o.d"
  "/root/repo/src/core/scored_heap.cpp" "src/CMakeFiles/mp_core.dir/core/scored_heap.cpp.o" "gcc" "src/CMakeFiles/mp_core.dir/core/scored_heap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
