# Empty compiler generated dependencies file for mp_core.
# This may be replaced when dependencies are built.
