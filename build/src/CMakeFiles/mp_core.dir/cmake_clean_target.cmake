file(REMOVE_RECURSE
  "libmp_core.a"
)
