file(REMOVE_RECURSE
  "libmp_fmm.a"
)
