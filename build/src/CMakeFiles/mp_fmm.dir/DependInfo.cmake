
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/fmm/dag_builder.cpp" "src/CMakeFiles/mp_fmm.dir/apps/fmm/dag_builder.cpp.o" "gcc" "src/CMakeFiles/mp_fmm.dir/apps/fmm/dag_builder.cpp.o.d"
  "/root/repo/src/apps/fmm/kernels.cpp" "src/CMakeFiles/mp_fmm.dir/apps/fmm/kernels.cpp.o" "gcc" "src/CMakeFiles/mp_fmm.dir/apps/fmm/kernels.cpp.o.d"
  "/root/repo/src/apps/fmm/octree.cpp" "src/CMakeFiles/mp_fmm.dir/apps/fmm/octree.cpp.o" "gcc" "src/CMakeFiles/mp_fmm.dir/apps/fmm/octree.cpp.o.d"
  "/root/repo/src/apps/fmm/particles.cpp" "src/CMakeFiles/mp_fmm.dir/apps/fmm/particles.cpp.o" "gcc" "src/CMakeFiles/mp_fmm.dir/apps/fmm/particles.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
