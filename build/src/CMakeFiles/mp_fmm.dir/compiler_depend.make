# Empty compiler generated dependencies file for mp_fmm.
# This may be replaced when dependencies are built.
