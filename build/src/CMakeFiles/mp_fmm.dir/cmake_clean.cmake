file(REMOVE_RECURSE
  "CMakeFiles/mp_fmm.dir/apps/fmm/dag_builder.cpp.o"
  "CMakeFiles/mp_fmm.dir/apps/fmm/dag_builder.cpp.o.d"
  "CMakeFiles/mp_fmm.dir/apps/fmm/kernels.cpp.o"
  "CMakeFiles/mp_fmm.dir/apps/fmm/kernels.cpp.o.d"
  "CMakeFiles/mp_fmm.dir/apps/fmm/octree.cpp.o"
  "CMakeFiles/mp_fmm.dir/apps/fmm/octree.cpp.o.d"
  "CMakeFiles/mp_fmm.dir/apps/fmm/particles.cpp.o"
  "CMakeFiles/mp_fmm.dir/apps/fmm/particles.cpp.o.d"
  "libmp_fmm.a"
  "libmp_fmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_fmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
