file(REMOVE_RECURSE
  "CMakeFiles/mp_sim.dir/sim/engine.cpp.o"
  "CMakeFiles/mp_sim.dir/sim/engine.cpp.o.d"
  "CMakeFiles/mp_sim.dir/sim/platform_presets.cpp.o"
  "CMakeFiles/mp_sim.dir/sim/platform_presets.cpp.o.d"
  "CMakeFiles/mp_sim.dir/sim/report.cpp.o"
  "CMakeFiles/mp_sim.dir/sim/report.cpp.o.d"
  "CMakeFiles/mp_sim.dir/sim/trace.cpp.o"
  "CMakeFiles/mp_sim.dir/sim/trace.cpp.o.d"
  "libmp_sim.a"
  "libmp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
