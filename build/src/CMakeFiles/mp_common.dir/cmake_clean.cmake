file(REMOVE_RECURSE
  "CMakeFiles/mp_common.dir/common/csv.cpp.o"
  "CMakeFiles/mp_common.dir/common/csv.cpp.o.d"
  "CMakeFiles/mp_common.dir/common/rng.cpp.o"
  "CMakeFiles/mp_common.dir/common/rng.cpp.o.d"
  "libmp_common.a"
  "libmp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
