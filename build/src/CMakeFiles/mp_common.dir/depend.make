# Empty dependencies file for mp_common.
# This may be replaced when dependencies are built.
