file(REMOVE_RECURSE
  "libmp_common.a"
)
