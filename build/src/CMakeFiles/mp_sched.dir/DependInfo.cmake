
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/dm_family.cpp" "src/CMakeFiles/mp_sched.dir/sched/dm_family.cpp.o" "gcc" "src/CMakeFiles/mp_sched.dir/sched/dm_family.cpp.o.d"
  "/root/repo/src/sched/eager.cpp" "src/CMakeFiles/mp_sched.dir/sched/eager.cpp.o" "gcc" "src/CMakeFiles/mp_sched.dir/sched/eager.cpp.o.d"
  "/root/repo/src/sched/heteroprio.cpp" "src/CMakeFiles/mp_sched.dir/sched/heteroprio.cpp.o" "gcc" "src/CMakeFiles/mp_sched.dir/sched/heteroprio.cpp.o.d"
  "/root/repo/src/sched/lws.cpp" "src/CMakeFiles/mp_sched.dir/sched/lws.cpp.o" "gcc" "src/CMakeFiles/mp_sched.dir/sched/lws.cpp.o.d"
  "/root/repo/src/sched/random_sched.cpp" "src/CMakeFiles/mp_sched.dir/sched/random_sched.cpp.o" "gcc" "src/CMakeFiles/mp_sched.dir/sched/random_sched.cpp.o.d"
  "/root/repo/src/sched/registry.cpp" "src/CMakeFiles/mp_sched.dir/sched/registry.cpp.o" "gcc" "src/CMakeFiles/mp_sched.dir/sched/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
