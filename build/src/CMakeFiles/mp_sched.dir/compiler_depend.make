# Empty compiler generated dependencies file for mp_sched.
# This may be replaced when dependencies are built.
