file(REMOVE_RECURSE
  "CMakeFiles/mp_sched.dir/sched/dm_family.cpp.o"
  "CMakeFiles/mp_sched.dir/sched/dm_family.cpp.o.d"
  "CMakeFiles/mp_sched.dir/sched/eager.cpp.o"
  "CMakeFiles/mp_sched.dir/sched/eager.cpp.o.d"
  "CMakeFiles/mp_sched.dir/sched/heteroprio.cpp.o"
  "CMakeFiles/mp_sched.dir/sched/heteroprio.cpp.o.d"
  "CMakeFiles/mp_sched.dir/sched/lws.cpp.o"
  "CMakeFiles/mp_sched.dir/sched/lws.cpp.o.d"
  "CMakeFiles/mp_sched.dir/sched/random_sched.cpp.o"
  "CMakeFiles/mp_sched.dir/sched/random_sched.cpp.o.d"
  "CMakeFiles/mp_sched.dir/sched/registry.cpp.o"
  "CMakeFiles/mp_sched.dir/sched/registry.cpp.o.d"
  "libmp_sched.a"
  "libmp_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
