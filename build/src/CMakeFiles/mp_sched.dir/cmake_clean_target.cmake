file(REMOVE_RECURSE
  "libmp_sched.a"
)
