file(REMOVE_RECURSE
  "libmp_runtime.a"
)
