# Empty compiler generated dependencies file for mp_runtime.
# This may be replaced when dependencies are built.
