
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/data_handle.cpp" "src/CMakeFiles/mp_runtime.dir/runtime/data_handle.cpp.o" "gcc" "src/CMakeFiles/mp_runtime.dir/runtime/data_handle.cpp.o.d"
  "/root/repo/src/runtime/memory_manager.cpp" "src/CMakeFiles/mp_runtime.dir/runtime/memory_manager.cpp.o" "gcc" "src/CMakeFiles/mp_runtime.dir/runtime/memory_manager.cpp.o.d"
  "/root/repo/src/runtime/perf_model.cpp" "src/CMakeFiles/mp_runtime.dir/runtime/perf_model.cpp.o" "gcc" "src/CMakeFiles/mp_runtime.dir/runtime/perf_model.cpp.o.d"
  "/root/repo/src/runtime/platform.cpp" "src/CMakeFiles/mp_runtime.dir/runtime/platform.cpp.o" "gcc" "src/CMakeFiles/mp_runtime.dir/runtime/platform.cpp.o.d"
  "/root/repo/src/runtime/sched_context.cpp" "src/CMakeFiles/mp_runtime.dir/runtime/sched_context.cpp.o" "gcc" "src/CMakeFiles/mp_runtime.dir/runtime/sched_context.cpp.o.d"
  "/root/repo/src/runtime/task_graph.cpp" "src/CMakeFiles/mp_runtime.dir/runtime/task_graph.cpp.o" "gcc" "src/CMakeFiles/mp_runtime.dir/runtime/task_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
