file(REMOVE_RECURSE
  "CMakeFiles/mp_runtime.dir/runtime/data_handle.cpp.o"
  "CMakeFiles/mp_runtime.dir/runtime/data_handle.cpp.o.d"
  "CMakeFiles/mp_runtime.dir/runtime/memory_manager.cpp.o"
  "CMakeFiles/mp_runtime.dir/runtime/memory_manager.cpp.o.d"
  "CMakeFiles/mp_runtime.dir/runtime/perf_model.cpp.o"
  "CMakeFiles/mp_runtime.dir/runtime/perf_model.cpp.o.d"
  "CMakeFiles/mp_runtime.dir/runtime/platform.cpp.o"
  "CMakeFiles/mp_runtime.dir/runtime/platform.cpp.o.d"
  "CMakeFiles/mp_runtime.dir/runtime/sched_context.cpp.o"
  "CMakeFiles/mp_runtime.dir/runtime/sched_context.cpp.o.d"
  "CMakeFiles/mp_runtime.dir/runtime/task_graph.cpp.o"
  "CMakeFiles/mp_runtime.dir/runtime/task_graph.cpp.o.d"
  "libmp_runtime.a"
  "libmp_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
