file(REMOVE_RECURSE
  "libmp_exec.a"
)
