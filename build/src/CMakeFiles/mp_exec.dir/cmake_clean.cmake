file(REMOVE_RECURSE
  "CMakeFiles/mp_exec.dir/exec/thread_executor.cpp.o"
  "CMakeFiles/mp_exec.dir/exec/thread_executor.cpp.o.d"
  "libmp_exec.a"
  "libmp_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
