# Empty compiler generated dependencies file for mp_exec.
# This may be replaced when dependencies are built.
