file(REMOVE_RECURSE
  "CMakeFiles/mp_sparseqr.dir/apps/sparseqr/dag_builder.cpp.o"
  "CMakeFiles/mp_sparseqr.dir/apps/sparseqr/dag_builder.cpp.o.d"
  "CMakeFiles/mp_sparseqr.dir/apps/sparseqr/generators.cpp.o"
  "CMakeFiles/mp_sparseqr.dir/apps/sparseqr/generators.cpp.o.d"
  "CMakeFiles/mp_sparseqr.dir/apps/sparseqr/sparse_matrix.cpp.o"
  "CMakeFiles/mp_sparseqr.dir/apps/sparseqr/sparse_matrix.cpp.o.d"
  "CMakeFiles/mp_sparseqr.dir/apps/sparseqr/symbolic.cpp.o"
  "CMakeFiles/mp_sparseqr.dir/apps/sparseqr/symbolic.cpp.o.d"
  "libmp_sparseqr.a"
  "libmp_sparseqr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_sparseqr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
