# Empty compiler generated dependencies file for mp_sparseqr.
# This may be replaced when dependencies are built.
