
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/sparseqr/dag_builder.cpp" "src/CMakeFiles/mp_sparseqr.dir/apps/sparseqr/dag_builder.cpp.o" "gcc" "src/CMakeFiles/mp_sparseqr.dir/apps/sparseqr/dag_builder.cpp.o.d"
  "/root/repo/src/apps/sparseqr/generators.cpp" "src/CMakeFiles/mp_sparseqr.dir/apps/sparseqr/generators.cpp.o" "gcc" "src/CMakeFiles/mp_sparseqr.dir/apps/sparseqr/generators.cpp.o.d"
  "/root/repo/src/apps/sparseqr/sparse_matrix.cpp" "src/CMakeFiles/mp_sparseqr.dir/apps/sparseqr/sparse_matrix.cpp.o" "gcc" "src/CMakeFiles/mp_sparseqr.dir/apps/sparseqr/sparse_matrix.cpp.o.d"
  "/root/repo/src/apps/sparseqr/symbolic.cpp" "src/CMakeFiles/mp_sparseqr.dir/apps/sparseqr/symbolic.cpp.o" "gcc" "src/CMakeFiles/mp_sparseqr.dir/apps/sparseqr/symbolic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
