file(REMOVE_RECURSE
  "libmp_sparseqr.a"
)
