file(REMOVE_RECURSE
  "CMakeFiles/fmm_schedule.dir/fmm_schedule.cpp.o"
  "CMakeFiles/fmm_schedule.dir/fmm_schedule.cpp.o.d"
  "fmm_schedule"
  "fmm_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmm_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
