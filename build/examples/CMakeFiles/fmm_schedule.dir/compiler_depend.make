# Empty compiler generated dependencies file for fmm_schedule.
# This may be replaced when dependencies are built.
