# Empty dependencies file for sparseqr_analysis.
# This may be replaced when dependencies are built.
