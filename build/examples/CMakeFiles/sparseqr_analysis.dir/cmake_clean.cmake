file(REMOVE_RECURSE
  "CMakeFiles/sparseqr_analysis.dir/sparseqr_analysis.cpp.o"
  "CMakeFiles/sparseqr_analysis.dir/sparseqr_analysis.cpp.o.d"
  "sparseqr_analysis"
  "sparseqr_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparseqr_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
