# Empty dependencies file for cholesky_sim.
# This may be replaced when dependencies are built.
