file(REMOVE_RECURSE
  "CMakeFiles/cholesky_sim.dir/cholesky_sim.cpp.o"
  "CMakeFiles/cholesky_sim.dir/cholesky_sim.cpp.o.d"
  "cholesky_sim"
  "cholesky_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cholesky_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
