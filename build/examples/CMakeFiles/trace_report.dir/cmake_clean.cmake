file(REMOVE_RECURSE
  "CMakeFiles/trace_report.dir/trace_report.cpp.o"
  "CMakeFiles/trace_report.dir/trace_report.cpp.o.d"
  "trace_report"
  "trace_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
