# Empty dependencies file for trace_report.
# This may be replaced when dependencies are built.
