# Empty dependencies file for test_scored_heap.
# This may be replaced when dependencies are built.
