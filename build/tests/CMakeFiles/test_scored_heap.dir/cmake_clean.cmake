file(REMOVE_RECURSE
  "CMakeFiles/test_scored_heap.dir/test_scored_heap.cpp.o"
  "CMakeFiles/test_scored_heap.dir/test_scored_heap.cpp.o.d"
  "test_scored_heap"
  "test_scored_heap.pdb"
  "test_scored_heap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scored_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
