file(REMOVE_RECURSE
  "CMakeFiles/test_multiprio.dir/test_multiprio.cpp.o"
  "CMakeFiles/test_multiprio.dir/test_multiprio.cpp.o.d"
  "test_multiprio"
  "test_multiprio.pdb"
  "test_multiprio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiprio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
