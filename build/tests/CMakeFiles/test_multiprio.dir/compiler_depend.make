# Empty compiler generated dependencies file for test_multiprio.
# This may be replaced when dependencies are built.
