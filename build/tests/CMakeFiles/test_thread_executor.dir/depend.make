# Empty dependencies file for test_thread_executor.
# This may be replaced when dependencies are built.
