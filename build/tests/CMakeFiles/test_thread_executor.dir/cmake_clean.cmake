file(REMOVE_RECURSE
  "CMakeFiles/test_thread_executor.dir/test_thread_executor.cpp.o"
  "CMakeFiles/test_thread_executor.dir/test_thread_executor.cpp.o.d"
  "test_thread_executor"
  "test_thread_executor.pdb"
  "test_thread_executor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thread_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
