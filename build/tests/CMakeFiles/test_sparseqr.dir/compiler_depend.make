# Empty compiler generated dependencies file for test_sparseqr.
# This may be replaced when dependencies are built.
