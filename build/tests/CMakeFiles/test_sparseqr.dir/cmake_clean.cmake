file(REMOVE_RECURSE
  "CMakeFiles/test_sparseqr.dir/test_sparseqr.cpp.o"
  "CMakeFiles/test_sparseqr.dir/test_sparseqr.cpp.o.d"
  "test_sparseqr"
  "test_sparseqr.pdb"
  "test_sparseqr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparseqr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
