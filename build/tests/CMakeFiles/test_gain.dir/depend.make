# Empty dependencies file for test_gain.
# This may be replaced when dependencies are built.
