
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_gain.cpp" "tests/CMakeFiles/test_gain.dir/test_gain.cpp.o" "gcc" "tests/CMakeFiles/test_gain.dir/test_gain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mp_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mp_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mp_dense.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mp_fmm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mp_sparseqr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
