file(REMOVE_RECURSE
  "CMakeFiles/test_gain.dir/test_gain.cpp.o"
  "CMakeFiles/test_gain.dir/test_gain.cpp.o.d"
  "test_gain"
  "test_gain.pdb"
  "test_gain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
