file(REMOVE_RECURSE
  "CMakeFiles/test_dense_kernels.dir/test_dense_kernels.cpp.o"
  "CMakeFiles/test_dense_kernels.dir/test_dense_kernels.cpp.o.d"
  "test_dense_kernels"
  "test_dense_kernels.pdb"
  "test_dense_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dense_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
