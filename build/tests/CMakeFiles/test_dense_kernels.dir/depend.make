# Empty dependencies file for test_dense_kernels.
# This may be replaced when dependencies are built.
