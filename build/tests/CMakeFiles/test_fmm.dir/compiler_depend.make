# Empty compiler generated dependencies file for test_fmm.
# This may be replaced when dependencies are built.
