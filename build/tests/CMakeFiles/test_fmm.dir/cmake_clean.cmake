file(REMOVE_RECURSE
  "CMakeFiles/test_fmm.dir/test_fmm.cpp.o"
  "CMakeFiles/test_fmm.dir/test_fmm.cpp.o.d"
  "test_fmm"
  "test_fmm.pdb"
  "test_fmm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
