file(REMOVE_RECURSE
  "CMakeFiles/test_dense_builders.dir/test_dense_builders.cpp.o"
  "CMakeFiles/test_dense_builders.dir/test_dense_builders.cpp.o.d"
  "test_dense_builders"
  "test_dense_builders.pdb"
  "test_dense_builders[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dense_builders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
