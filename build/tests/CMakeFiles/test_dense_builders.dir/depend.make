# Empty dependencies file for test_dense_builders.
# This may be replaced when dependencies are built.
