# Empty dependencies file for test_nod.
# This may be replaced when dependencies are built.
