file(REMOVE_RECURSE
  "CMakeFiles/test_nod.dir/test_nod.cpp.o"
  "CMakeFiles/test_nod.dir/test_nod.cpp.o.d"
  "test_nod"
  "test_nod.pdb"
  "test_nod[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
