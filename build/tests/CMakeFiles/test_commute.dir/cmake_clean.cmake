file(REMOVE_RECURSE
  "CMakeFiles/test_commute.dir/test_commute.cpp.o"
  "CMakeFiles/test_commute.dir/test_commute.cpp.o.d"
  "test_commute"
  "test_commute.pdb"
  "test_commute[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_commute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
