# Empty compiler generated dependencies file for test_commute.
# This may be replaced when dependencies are built.
