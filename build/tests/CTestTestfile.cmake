# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_task_graph[1]_include.cmake")
include("/root/repo/build/tests/test_platform[1]_include.cmake")
include("/root/repo/build/tests/test_perf_model[1]_include.cmake")
include("/root/repo/build/tests/test_memory_manager[1]_include.cmake")
include("/root/repo/build/tests/test_scored_heap[1]_include.cmake")
include("/root/repo/build/tests/test_gain[1]_include.cmake")
include("/root/repo/build/tests/test_nod[1]_include.cmake")
include("/root/repo/build/tests/test_locality[1]_include.cmake")
include("/root/repo/build/tests/test_multiprio[1]_include.cmake")
include("/root/repo/build/tests/test_sim_engine[1]_include.cmake")
include("/root/repo/build/tests/test_schedulers[1]_include.cmake")
include("/root/repo/build/tests/test_dense_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_dense_builders[1]_include.cmake")
include("/root/repo/build/tests/test_thread_executor[1]_include.cmake")
include("/root/repo/build/tests/test_fmm[1]_include.cmake")
include("/root/repo/build/tests/test_sparseqr[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_commute[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
