// ThreadExecutor: runs a task graph for real, with one OS thread per
// platform worker and real kernel implementations (cpu_fn / gpu_fn).
//
// This is the functional counterpart of the simulator: the same Scheduler
// implementations plug in unchanged (mutex-guarded), data handles carry real
// buffers, and the numerical results can be validated. Workers tagged GPU
// execute gpu_fn when provided, else fall back to cpu_fn — functional
// emulation of the device (timing heterogeneity is the simulator's job).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fault/fault_plan.hpp"
#include "runtime/memory_manager.hpp"
#include "runtime/perf_model.hpp"
#include "runtime/scheduler.hpp"

namespace mp {

struct ExecConfig {
  /// Fault-injection plan. Transient failures and stragglers match the
  /// simulator's semantics (decided per (task, attempt) from the plan seed);
  /// WorkerLossSpec times are wall-clock seconds since run start, and a loss
  /// takes effect between tasks — a kernel already running is never torn
  /// down mid-flight. A kernel that throws is converted into a transient
  /// failure and retried against the same budget, plan or no plan.
  FaultPlan fault;
  /// Decision-event sink shared with the scheduler (wall-clock timestamps).
  /// The executor adds REPUSH / WORKER_LOST / fault events and, when the
  /// observer exposes a MetricsRegistry, an "exec.pop_latency_s" histogram.
  /// Null disables all recording. Not owned; must be thread-safe (the
  /// provided observers are).
  SchedObserver* observer = nullptr;
  /// Upper bound (seconds) on how long an idle worker stays parked before
  /// re-checking for work — the anti-hang bound that keeps a buggy policy
  /// from wedging the process (the worker retries and the post-run checks
  /// flag lost tasks). Tests shrink it so fault suites finish fast.
  double stall_timeout = 2.0;
};

struct ExecResult {
  double wall_seconds = 0.0;
  std::size_t tasks_executed = 0;
  /// Tasks executed per worker (scheduling-balance diagnostics).
  std::vector<std::size_t> tasks_per_worker;
  /// Fault outcome (failures_injected also counts kernels that threw).
  FaultStats fault;
};

using ExecSchedulerFactory = std::function<std::unique_ptr<Scheduler>(SchedContext)>;

class ThreadExecutor {
 public:
  /// The perf database provides δ priors for the (initially uncalibrated)
  /// history model; measured wall times refine it as the run progresses.
  ThreadExecutor(const TaskGraph& graph, const Platform& platform,
                 const PerfDatabase& perf);

  /// Executes the whole DAG with real kernels. Every codelet reachable on a
  /// CPU worker must have cpu_fn; GPU-only codelets must have gpu_fn or
  /// cpu_fn. Aborts if a popped task has no runnable implementation.
  ExecResult run(const ExecSchedulerFactory& make_scheduler, ExecConfig config = {});

 private:
  const TaskGraph& graph_;
  const Platform& platform_;
  const PerfDatabase& perf_;
};

}  // namespace mp
