#include "exec/thread_executor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/check.hpp"

namespace mp {

namespace {
double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

ThreadExecutor::ThreadExecutor(const TaskGraph& graph, const Platform& platform,
                               const PerfDatabase& perf)
    : graph_(graph), platform_(platform), perf_(perf) {
  platform_.self_check();
  graph_.self_check();
}

ExecResult ThreadExecutor::run(const ExecSchedulerFactory& make_scheduler) {
  HistoryModel history(graph_, perf_);
  MemoryManager memory(graph_, platform_);
  DepCounters deps(graph_);

  std::mutex mu;
  std::condition_variable cv;
  std::uint64_t state_version = 0;
  std::size_t completed = 0;
  const std::size_t total = graph_.num_tasks();
  const double t0 = now_seconds();

  SchedContext ctx;
  ctx.graph = &graph_;
  ctx.platform = &platform_;
  ctx.perf = &history;
  ctx.memory = &memory;
  ctx.now = [t0] { return now_seconds() - t0; };
  ctx.prefetch = nullptr;  // no timed links in real mode
  std::unique_ptr<Scheduler> sched = make_scheduler(std::move(ctx));
  MP_CHECK(sched != nullptr);

  {
    std::lock_guard lock(mu);
    for (TaskId t : graph_.initial_ready()) sched->push(t);
  }

  ExecResult result;
  result.tasks_per_worker.assign(platform_.num_workers(), 0);
  std::vector<bool> executed(total, false);
  // Per-handle mutexes enforcing AccessMode::Commute mutual exclusion.
  std::vector<std::unique_ptr<std::mutex>> commute_mu(graph_.handles().count());
  for (auto& m : commute_mu) m = std::make_unique<std::mutex>();

  auto worker_body = [&](WorkerId w) {
    const ArchType arch = platform_.worker(w).arch;
    std::unique_lock lock(mu);
    while (completed < total) {
      const std::optional<TaskId> popped = sched->pop(w);
      if (!popped) {
        const std::uint64_t seen = state_version;
        // Timed wait: a buggy policy must not hang the process — the worker
        // simply retries, and the post-run checks will flag lost tasks.
        (void)cv.wait_for(lock, std::chrono::seconds(2),
                          [&] { return completed == total || state_version != seen; });
        continue;
      }
      const TaskId t = *popped;
      MP_CHECK_MSG(!executed[t.index()], "task popped twice");
      executed[t.index()] = true;
      // Keep logical data placement in sync so locality heuristics see the
      // same world as in simulation (transfers are free functionally).
      std::vector<TransferOp> ops;
      memory.acquire_for_task(t, platform_.worker(w).node, ops);
      sched->on_task_start(t, w);
      ++state_version;
      cv.notify_all();  // a successful pop changes scheduler state
      lock.unlock();

      const Codelet& cl = graph_.codelet_of(t);
      const KernelFn& fn = (arch == ArchType::GPU && cl.gpu_fn) ? cl.gpu_fn : cl.cpu_fn;
      MP_CHECK_MSG(static_cast<bool>(fn), "no runnable implementation for popped task");
      std::vector<void*> buffers;
      buffers.reserve(graph_.task(t).accesses.size());
      std::vector<std::uint32_t> locks;
      for (const Access& a : graph_.task(t).accesses) {
        buffers.push_back(graph_.handles().get(a.data).user_ptr);
        if (a.mode == AccessMode::Commute) locks.push_back(a.data.value());
      }
      // Commute accesses may race with other commuters of the same handle:
      // hold the handle mutexes for the kernel, locking in sorted order.
      std::sort(locks.begin(), locks.end());
      locks.erase(std::unique(locks.begin(), locks.end()), locks.end());
      for (std::uint32_t d : locks) commute_mu[d]->lock();
      const double start = now_seconds();
      fn(graph_.task(t), buffers);
      const double dur = std::max(1e-9, now_seconds() - start);
      for (auto it = locks.rbegin(); it != locks.rend(); ++it)
        commute_mu[*it]->unlock();

      lock.lock();
      history.record(t, arch, dur);
      ++result.tasks_per_worker[w.index()];
      sched->on_task_end(t, w);
      std::vector<TaskId> newly;
      deps.complete(t, newly);
      for (TaskId nt : newly) sched->push(nt);
      ++completed;
      ++state_version;
      cv.notify_all();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(platform_.num_workers());
  for (std::size_t wi = 0; wi < platform_.num_workers(); ++wi)
    threads.emplace_back(worker_body, WorkerId{wi});
  for (auto& th : threads) th.join();

  MP_CHECK(completed == total);
  MP_CHECK_MSG(sched->pending_count() == 0, "scheduler still holds tasks");
  result.wall_seconds = now_seconds() - t0;
  result.tasks_executed = completed;
  return result;
}

}  // namespace mp
