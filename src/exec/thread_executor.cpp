#include "exec/thread_executor.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <mutex>

#include "common/check.hpp"
#include "core/multiprio.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "verify/controller.hpp"
#include "verify/mutation.hpp"
#include "verify/sync.hpp"

namespace mp {

ThreadExecutor::ThreadExecutor(const TaskGraph& graph, const Platform& platform,
                               const PerfDatabase& perf)
    : graph_(graph), platform_(platform), perf_(perf) {
  platform_.self_check();
  graph_.self_check();
}

ExecResult ThreadExecutor::run(const ExecSchedulerFactory& make_scheduler,
                               ExecConfig config) {
  HistoryModel history(graph_, perf_);
  MemoryManager memory(graph_, platform_);
  DepCounters deps(graph_);
  WorkerLiveness liveness(platform_);
  std::unique_ptr<FaultInjector> injector;
  if (!config.fault.empty())
    injector = std::make_unique<FaultInjector>(config.fault, graph_);
  // Kernel exceptions are retried even without a plan; the default budget
  // of a default-constructed FaultPlan applies then.
  const std::size_t retry_budget = config.fault.retry_budget;
  std::vector<double> lost_at(platform_.num_workers(),
                              std::numeric_limits<double>::infinity());
  for (const WorkerLossSpec& l : config.fault.worker_losses) {
    MP_CHECK_MSG(l.worker.index() < platform_.num_workers(),
                 "fault plan kills a worker the platform does not have");
    lost_at[l.worker.index()] = std::min(lost_at[l.worker.index()], l.time);
  }

  // Shim primitives (src/verify/sync.hpp): plain std:: types in normal
  // builds, controlled by the interleaving explorer under MP_VERIFY.
  //
  // Lock hierarchy (DESIGN.md §12): mu → push_mu → shard locks (ascending)
  // → leaves. `mu` guards the engine bookkeeping (deps, executed/attempts,
  // abandonment, liveness flips, memory placement); `push_mu` serializes
  // the push side of an internally-locked policy (push/push_batch/repush/
  // notify_worker_removed) and the HistoryModel writes its readers key off.
  Mutex mu;
  Mutex push_mu;
  CondVar cv;
  std::uint64_t state_version = 0;
  std::size_t completed = 0;
  std::size_t abandoned = 0;
  // completed + abandoned, readable without `mu` (internal-mode loop
  // condition and wait_for_work cancel predicate; a stale read only costs
  // one extra failed pop).
  RelaxedAtomic<std::size_t> finished{0};
  const std::size_t total = graph_.num_tasks();
  const double t0 = sync_now_seconds();
  auto elapsed = [t0] { return sync_now_seconds() - t0; };

  SchedContext ctx;
  ctx.graph = &graph_;
  ctx.platform = &platform_;
  ctx.perf = &history;
  ctx.memory = &memory;
  ctx.now = elapsed;
  ctx.prefetch = nullptr;  // no timed links in real mode
  ctx.liveness = &liveness;
  ctx.observer = config.observer;
  // Resolve the pop-latency instrument once; per-pop timing is taken only
  // when it resolved (no steady_clock reads on the observer-free path).
  // The registry itself is kept around for the per-(codelet, arch) model
  // audit, whose instrument names are only known per task.
  MetricsRegistry* metrics =
      config.observer != nullptr ? config.observer->metrics() : nullptr;
  Histogram* pop_latency =
      metrics != nullptr ? &metrics->histogram("exec.pop_latency_s") : nullptr;
  std::unique_ptr<Scheduler> sched = make_scheduler(std::move(ctx));
  MP_CHECK(sched != nullptr);
  // Internally-locked policies (sharded MultiPrio) take the thin-lock
  // protocol below; everything else keeps the historical coarse lock.
  const bool internal = sched->concurrency() == SchedConcurrency::Internal;

#ifdef MP_VERIFY
  // Structural-invariant oracle: evaluated on every release of a probed
  // mutex during an active exploration (no-op otherwise). check_invariants()
  // itself takes every shard lock, so it must only run when no suspended
  // thread holds one — verify_quiescent() gates the sharded case (always
  // true for the coarse policy, whose shard locks are never taken).
  auto* probed_multiprio = dynamic_cast<MultiPrioScheduler*>(sched.get());
  auto* probed_recorder = dynamic_cast<RecordingObserver*>(config.observer);
  auto probe_body = [probed_multiprio, probed_recorder] {
    if (probed_multiprio != nullptr && probed_multiprio->verify_quiescent()) {
      std::string why;
      if (!probed_multiprio->check_invariants(&why))
        verify::report_violation("MultiPrio invariant broken: " + why);
    }
    if (probed_recorder != nullptr && !probed_recorder->events().accounting_ok())
      verify::report_violation(
          "EventLog drop accounting out of balance (append race)");
  };
  verify::ScopedProbe invariant_probe(&mu, probe_body);
  verify::ScopedProbe push_probe(&push_mu, probe_body);
  std::vector<std::unique_ptr<verify::ScopedProbe>> shard_probes;
  if (probed_multiprio != nullptr)
    for (const Mutex* sm : probed_multiprio->verify_shard_mutexes())
      shard_probes.push_back(std::make_unique<verify::ScopedProbe>(sm, probe_body));
#endif

  if (internal) {
    std::lock_guard plock(push_mu);
    sched->push_batch(graph_.initial_ready());
  } else {
    std::lock_guard lock(mu);
    for (TaskId t : graph_.initial_ready()) sched->push(t);
  }
  std::vector<WorkerId> dead_at_start;
  for (std::size_t wi = 0; wi < platform_.num_workers(); ++wi)
    if (lost_at[wi] <= 0.0) dead_at_start.push_back(WorkerId{wi});

  ExecResult result;
  result.tasks_per_worker.assign(platform_.num_workers(), 0);
  std::vector<bool> executed(total, false);
  std::vector<bool> abandoned_mask(total, false);
  std::vector<std::size_t> attempts(total, 0);  // failed attempts per task
  // Per-handle mutexes enforcing AccessMode::Commute mutual exclusion.
  std::vector<std::unique_ptr<Mutex>> commute_mu(graph_.handles().count());
  for (auto& m : commute_mu) m = std::make_unique<Mutex>();

  // Executor-side event emission; the observers are thread-safe, so no lock
  // discipline beyond what the call sites already hold. Requires `mu` (the
  // attempt counter read).
  auto emit = [&](SchedEventKind k, TaskId t, WorkerId w) {
    if (config.observer == nullptr) return;
    SchedEvent e;
    e.time = elapsed();
    e.kind = k;
    e.task = t;
    e.worker = w;
    if (w.valid()) e.node = platform_.worker(w).node;
    if (t.valid()) e.attempt = static_cast<std::uint32_t>(attempts[t.index()]);
    config.observer->record(e);
  };

  // Both closures require `mu` to be held by the caller.
  auto abandon = [&](TaskId t) {
    std::vector<TaskId> frontier{t};
    while (!frontier.empty()) {
      const TaskId cur = frontier.back();
      frontier.pop_back();
      if (abandoned_mask[cur.index()]) continue;
      abandoned_mask[cur.index()] = true;
      ++abandoned;
      finished.fetch_add(1);
      emit(SchedEventKind::TaskAbandoned, cur, WorkerId{});
      for (TaskId s : graph_.successors(cur)) frontier.push_back(s);
    }
  };
  auto has_live_capable = [&](TaskId t) {
    for (const Worker& wk : platform_.workers())
      if (liveness.alive(wk.id) && graph_.can_exec(t, wk.arch)) return true;
    return false;
  };

  // Coarse protocol: `mu` held across every policy call, one executor-wide
  // condvar, notify_all on each state change (the historical contract the
  // five mutex-free policies in src/sched/ rely on).
  auto worker_body_coarse = [&](WorkerId w) {
    const ArchType arch = platform_.worker(w).arch;
    std::unique_lock lock(mu);
    while (completed + abandoned < total) {
      if (!liveness.alive(w)) return;  // lost before this thread ever ran
      if (elapsed() >= lost_at[w.index()]) {
        // Fail-stop: this thread retires between tasks. Liveness flips
        // first, then the policy rebuilds and surrenders orphans.
        liveness.mark_dead(w);
        ++result.fault.workers_lost;
        emit(SchedEventKind::WorkerLost, TaskId{}, w);
        for (TaskId t : sched->notify_worker_removed(w)) abandon(t);
        ++state_version;
        cv.notify_all();
        return;
      }
      const double pop_begin = pop_latency != nullptr ? sync_now_seconds() : 0.0;
      // Seeded mutation SkipExecutorLock: drop the executor lock around the
      // pop so two workers can interleave inside the policy's POP path.
      // Compiles to constant-false (dead code) outside MP_VERIFY builds.
      const bool skip_lock =
          verify::mutation_active(verify::Mutation::SkipExecutorLock);
      if (skip_lock) lock.unlock();
      const std::optional<TaskId> popped = sched->pop(w);
      if (skip_lock) lock.lock();
      if (pop_latency != nullptr)
        pop_latency->observe(std::max(0.0, sync_now_seconds() - pop_begin));
      if (!popped) {
        const std::uint64_t seen = state_version;
        // Timed wait: a buggy policy must not hang the process — the worker
        // simply retries, and the post-run checks will flag lost tasks.
        (void)cv.wait_for(lock, std::chrono::duration<double>(config.stall_timeout),
                          [&] {
                            return completed + abandoned == total ||
                                   state_version != seen;
                          });
        continue;
      }
      const TaskId t = *popped;
      MP_CHECK_MSG(!executed[t.index()], "task popped twice");
      const std::size_t attempt = attempts[t.index()];
      // Pop-time δ(t,a) for the model audit — read under the lock, before
      // this task's own completion re-trains the history model.
      const double predicted = metrics != nullptr ? history.estimate(t, arch) : 0.0;
      // Keep logical data placement in sync so locality heuristics see the
      // same world as in simulation (transfers are free functionally).
      std::vector<TransferOp> ops;
      memory.acquire_for_task(t, platform_.worker(w).node, ops);
      sched->on_task_start(t, w);
      ++state_version;
      cv.notify_all();  // a successful pop changes scheduler state
      lock.unlock();

      const Codelet& cl = graph_.codelet_of(t);
      const KernelFn& fn = (arch == ArchType::GPU && cl.gpu_fn) ? cl.gpu_fn : cl.cpu_fn;
      MP_CHECK_MSG(static_cast<bool>(fn), "no runnable implementation for popped task");
      std::vector<void*> buffers;
      buffers.reserve(graph_.task(t).accesses.size());
      std::vector<std::uint32_t> locks;
      for (const Access& a : graph_.task(t).accesses) {
        buffers.push_back(graph_.handles().get(a.data).user_ptr);
        if (a.mode == AccessMode::Commute) locks.push_back(a.data.value());
      }
      // Commute accesses may race with other commuters of the same handle:
      // hold the handle mutexes for the kernel, locking in sorted order.
      std::sort(locks.begin(), locks.end());
      locks.erase(std::unique(locks.begin(), locks.end()), locks.end());
      for (std::uint32_t d : locks) commute_mu[d]->lock();
      const double start = sync_now_seconds();
      bool failed = false;
      try {
        fn(graph_.task(t), buffers);
      } catch (...) {
        failed = true;  // exception-to-retry: treated as a transient failure
      }
      const double dur = std::max(1e-9, sync_now_seconds() - start);
      for (auto it = locks.rbegin(); it != locks.rend(); ++it)
        commute_mu[*it]->unlock();
      bool straggled = false;
      if (!failed && injector != nullptr) {
        if (injector->fail_attempt(t, attempt)) failed = true;
        const double mult = injector->duration_multiplier(t, attempt);
        if (mult > 1.0) {
          // Functional emulation of a straggler: hold the worker as long as
          // the slowdown would have.
          sync_sleep_for(std::chrono::duration<double>(dur * (mult - 1.0)));
          straggled = true;
        }
      }

      lock.lock();
      if (straggled) {
        ++result.fault.stragglers_injected;
        emit(SchedEventKind::FaultStraggler, t, w);
      }
      if (failed) {
        ++result.fault.failures_injected;
        const std::size_t failures = ++attempts[t.index()];
        emit(SchedEventKind::FaultFailure, t, w);
        if (failures > retry_budget) {
          abandon(t);
        } else {
          ++result.fault.retries;
          emit(SchedEventKind::Repush, t, w);
          sched->repush(t);
          for (TaskId ot : sched->drain_unplaced()) abandon(ot);
        }
        ++state_version;
        cv.notify_all();
        continue;
      }
      executed[t.index()] = true;
      history.record(t, arch, dur);
      if (metrics != nullptr) {
        // Same instruments as the simulator, so RunAnalysis-style audits read
        // identically off either engine. dur is clamped ≥ 1e-9 above.
        const std::string suffix =
            graph_.codelet_of(t).name + "." + arch_name(arch);
        metrics->histogram("perf_model.abs_err_s." + suffix)
            .observe(std::abs(predicted - dur));
        metrics->histogram("perf_model.rel_err." + suffix)
            .observe(std::abs(predicted - dur) / dur);
      }
      ++result.tasks_per_worker[w.index()];
      sched->on_task_end(t, w);
      std::vector<TaskId> newly;
      deps.complete(t, newly);
      for (TaskId nt : newly) {
        if (result.fault.workers_lost > 0 && !has_live_capable(nt)) {
          abandon(nt);
        } else {
          sched->push(nt);
        }
      }
      for (TaskId ot : sched->drain_unplaced()) abandon(ot);
      ++completed;
      finished.fetch_add(1);
      ++state_version;
      cv.notify_all();
    }
  };

  // Thin-lock protocol for SchedConcurrency::Internal policies: pops run
  // without any executor lock (the policy shards its own), engine
  // bookkeeping takes `mu` only around its own state, pushes serialize on
  // `push_mu`, and idle workers park on the policy's per-node condvars via
  // the work-epoch protocol (targeted wakeups, no thundering herd).
  auto worker_body_internal = [&](WorkerId w) {
    const ArchType arch = platform_.worker(w).arch;
    auto parked_cancel = [&] { return finished.load() >= total; };
    while (finished.load() < total) {
      {
        std::lock_guard lock(mu);
        if (!liveness.alive(w)) return;  // lost before this thread ever ran
        if (elapsed() >= lost_at[w.index()]) {
          // Fail-stop, same sequence as coarse: liveness flips first, then
          // the policy rebuilds (push-side call → push_mu) and surrenders
          // orphans. interrupt_waiters() below replaces the notify_all.
          liveness.mark_dead(w);
          ++result.fault.workers_lost;
          emit(SchedEventKind::WorkerLost, TaskId{}, w);
          std::vector<TaskId> orphans;
          {
            std::lock_guard plock(push_mu);
            orphans = sched->notify_worker_removed(w);
          }
          for (TaskId t : orphans) abandon(t);
          sched->interrupt_waiters();
          return;
        }
      }
      // Epoch before the pop: any push toward this worker's node after this
      // read bumps it, so the wait below cannot miss a wakeup.
      const std::uint64_t epoch = sched->work_epoch(w);
      const double pop_begin = pop_latency != nullptr ? sync_now_seconds() : 0.0;
      const std::optional<TaskId> popped = sched->pop(w);
      if (pop_latency != nullptr)
        pop_latency->observe(std::max(0.0, sync_now_seconds() - pop_begin));
      if (!popped) {
        sched->wait_for_work(w, epoch, config.stall_timeout, parked_cancel);
        continue;
      }
      const TaskId t = *popped;
      std::size_t attempt = 0;
      {
        std::lock_guard lock(mu);
        MP_CHECK_MSG(!executed[t.index()], "task popped twice");
        attempt = attempts[t.index()];
        std::vector<TransferOp> ops;
        memory.acquire_for_task(t, platform_.worker(w).node, ops);
      }
      double predicted = 0.0;
      if (metrics != nullptr) {
        // δ(t,a) reads race with history.record() — serialize on push_mu,
        // the lock every record() below holds.
        std::lock_guard plock(push_mu);
        predicted = history.estimate(t, arch);
      }
      sched->on_task_start(t, w);  // lock-free per the Internal contract

      const Codelet& cl = graph_.codelet_of(t);
      const KernelFn& fn = (arch == ArchType::GPU && cl.gpu_fn) ? cl.gpu_fn : cl.cpu_fn;
      MP_CHECK_MSG(static_cast<bool>(fn), "no runnable implementation for popped task");
      std::vector<void*> buffers;
      buffers.reserve(graph_.task(t).accesses.size());
      std::vector<std::uint32_t> locks;
      for (const Access& a : graph_.task(t).accesses) {
        buffers.push_back(graph_.handles().get(a.data).user_ptr);
        if (a.mode == AccessMode::Commute) locks.push_back(a.data.value());
      }
      std::sort(locks.begin(), locks.end());
      locks.erase(std::unique(locks.begin(), locks.end()), locks.end());
      for (std::uint32_t d : locks) commute_mu[d]->lock();
      const double start = sync_now_seconds();
      bool failed = false;
      try {
        fn(graph_.task(t), buffers);
      } catch (...) {
        failed = true;  // exception-to-retry: treated as a transient failure
      }
      const double dur = std::max(1e-9, sync_now_seconds() - start);
      for (auto it = locks.rbegin(); it != locks.rend(); ++it)
        commute_mu[*it]->unlock();
      bool straggled = false;
      if (!failed && injector != nullptr) {
        if (injector->fail_attempt(t, attempt)) failed = true;
        const double mult = injector->duration_multiplier(t, attempt);
        if (mult > 1.0) {
          sync_sleep_for(std::chrono::duration<double>(dur * (mult - 1.0)));
          straggled = true;
        }
      }

      if (failed || straggled) {
        std::unique_lock lock(mu);
        if (straggled) {
          ++result.fault.stragglers_injected;
          emit(SchedEventKind::FaultStraggler, t, w);
        }
        if (failed) {
          ++result.fault.failures_injected;
          const std::size_t failures = ++attempts[t.index()];
          emit(SchedEventKind::FaultFailure, t, w);
          if (failures > retry_budget) {
            abandon(t);
            lock.unlock();
            if (finished.load() >= total) sched->interrupt_waiters();
          } else {
            ++result.fault.retries;
            emit(SchedEventKind::Repush, t, w);
            lock.unlock();
            std::vector<TaskId> unplaced;
            {
              std::lock_guard plock(push_mu);
              sched->repush(t);
              unplaced = sched->drain_unplaced();
            }
            if (!unplaced.empty()) {
              // A fail-stop raced the repush and took the last capable
              // worker: account the surrendered tasks as abandoned.
              {
                std::lock_guard relock(mu);
                for (TaskId ot : unplaced) abandon(ot);
              }
              if (finished.load() >= total) sched->interrupt_waiters();
            }
          }
          continue;
        }
      }
      std::vector<TaskId> to_push;
      {
        std::lock_guard lock(mu);
        executed[t.index()] = true;
        if (metrics != nullptr) {
          const std::string suffix =
              graph_.codelet_of(t).name + "." + arch_name(arch);
          metrics->histogram("perf_model.abs_err_s." + suffix)
              .observe(std::abs(predicted - dur));
          metrics->histogram("perf_model.rel_err." + suffix)
              .observe(std::abs(predicted - dur) / dur);
        }
        ++result.tasks_per_worker[w.index()];
        std::vector<TaskId> newly;
        deps.complete(t, newly);
        to_push.reserve(newly.size());
        for (TaskId nt : newly) {
          if (result.fault.workers_lost > 0 && !has_live_capable(nt)) {
            abandon(nt);
          } else {
            to_push.push_back(nt);
          }
        }
        ++completed;
        finished.fetch_add(1);
      }
      sched->on_task_end(t, w);  // lock-free per the Internal contract
      std::vector<TaskId> unplaced;
      {
        // One grouped push per completion: the policy takes each target
        // node's lock once for the whole batch and wakes only those nodes.
        std::lock_guard plock(push_mu);
        history.record(t, arch, dur);
        sched->push_batch(to_push);
        unplaced = sched->drain_unplaced();
      }
      if (!unplaced.empty()) {
        // The liveness screen above ran before a racing fail-stop: the
        // policy surrendered these instead of pushing them anywhere.
        std::lock_guard lock(mu);
        for (TaskId ot : unplaced) abandon(ot);
      }
      if (finished.load() >= total) sched->interrupt_waiters();
    }
  };

  // Losses at t <= 0 are applied before any thread spawns: the run must see
  // them even if the surviving workers finish the DAG before the doomed
  // thread gets scheduled by the OS.
  {
    std::lock_guard lock(mu);
    for (WorkerId w : dead_at_start) {
      liveness.mark_dead(w);
      ++result.fault.workers_lost;
      emit(SchedEventKind::WorkerLost, TaskId{}, w);
      std::vector<TaskId> orphans;
      if (internal) {
        std::lock_guard plock(push_mu);
        orphans = sched->notify_worker_removed(w);
      } else {
        orphans = sched->notify_worker_removed(w);
      }
      for (TaskId t : orphans) abandon(t);
    }
  }

  std::vector<Thread> threads;
  threads.reserve(platform_.num_workers());
  for (std::size_t wi = 0; wi < platform_.num_workers(); ++wi) {
    if (internal)
      threads.emplace_back(worker_body_internal, WorkerId{wi});
    else
      threads.emplace_back(worker_body_coarse, WorkerId{wi});
  }
  for (auto& th : threads) th.join();

  MP_CHECK_MSG(completed + abandoned == total,
               "run ended with tasks neither executed nor abandoned");
  MP_CHECK_MSG(sched->pending_count() == 0, "scheduler still holds tasks");
  result.wall_seconds = sync_now_seconds() - t0;
  result.tasks_executed = completed;
  result.fault.tasks_abandoned = abandoned;
  result.fault.degraded = result.fault.workers_lost > 0 || abandoned > 0;
  return result;
}

}  // namespace mp
