#include "fault/invariants.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "core/multiprio.hpp"

namespace mp {

namespace {

constexpr double kEps = 1e-12;

template <typename... Args>
void report(InvariantReport& r, Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  r.violations.push_back(os.str());
}

}  // namespace

std::string InvariantReport::to_string() const {
  std::ostringstream os;
  if (ok()) return "all fault invariants hold\n";
  os << violations.size() << " invariant violation(s):\n";
  for (const std::string& v : violations) os << "  - " << v << "\n";
  return os.str();
}

InvariantReport check_fault_invariants(const TaskGraph& graph, const Platform& platform,
                                       const FaultPlan& plan, SimEngine& engine,
                                       const SimResult& result) {
  InvariantReport rep;
  const Trace& trace = engine.trace();
  const WorkerLiveness& live = engine.liveness();
  Scheduler& sched = engine.scheduler();

  // Conservation: executed + abandoned covers the graph, with no task
  // executed twice (exec_count > 1) or both executed and abandoned.
  std::vector<std::size_t> exec_count(graph.num_tasks(), 0);
  std::vector<std::int64_t> seg_of(graph.num_tasks(), -1);
  for (std::size_t si = 0; si < trace.segments().size(); ++si) {
    const TraceSegment& s = trace.segments()[si];
    ++exec_count[s.task.index()];
    seg_of[s.task.index()] = static_cast<std::int64_t>(si);
  }
  for (std::size_t ti = 0; ti < graph.num_tasks(); ++ti)
    if (exec_count[ti] > 1)
      report(rep, "task ", ti, " executed ", exec_count[ti], " times");
  if (trace.num_executed() + result.fault.tasks_abandoned != graph.num_tasks())
    report(rep, "conservation broken: ", trace.num_executed(), " executed + ",
           result.fault.tasks_abandoned, " abandoned != ", graph.num_tasks(), " tasks");

  // Legality of every executed segment.
  const double makespan = trace.makespan();
  for (const TraceSegment& s : trace.segments()) {
    if (!graph.can_exec(s.task, platform.worker(s.worker).arch))
      report(rep, "task ", s.task.value(), " ran on incapable worker ",
             s.worker.value());
    for (TaskId p : graph.predecessors(s.task)) {
      if (seg_of[p.index()] < 0) {
        report(rep, "task ", s.task.value(), " executed but predecessor ",
               p.value(), " did not");
        continue;
      }
      const TraceSegment& ps =
          trace.segments()[static_cast<std::size_t>(seg_of[p.index()])];
      if (ps.end > s.fetch_start + kEps)
        report(rep, "dependency violated: ", p.value(), " ends at ", ps.end,
               " after ", s.task.value(), " fetches at ", s.fetch_start);
    }
  }

  // Fail-stop: the earliest configured loss of a worker bounds its activity,
  // and the loss must have left the worker dead.
  std::vector<double> lost_at(platform.num_workers(),
                              std::numeric_limits<double>::infinity());
  for (const WorkerLossSpec& l : plan.worker_losses)
    lost_at[l.worker.index()] = std::min(lost_at[l.worker.index()], l.time);
  for (const TraceSegment& s : trace.segments())
    if (s.end > lost_at[s.worker.index()] + kEps)
      report(rep, "task ", s.task.value(), " finished at ", s.end, " on worker ",
             s.worker.value(), " lost at ", lost_at[s.worker.index()]);
  for (const WorkerLossSpec& l : plan.worker_losses)
    if (live.alive(l.worker))
      report(rep, "worker ", l.worker.value(), " still alive after its loss");
  (void)makespan;

  // Scheduler drain.
  if (sched.pending_count() != 0)
    report(rep, "scheduler still holds ", sched.pending_count(), " tasks");
  if (auto* mp = dynamic_cast<MultiPrioScheduler*>(&sched)) {
    for (std::size_t mi = 0; mi < platform.num_nodes(); ++mi) {
      const MemNodeId m{mi};
      if (mp->best_remaining_work(m) < 0.0)
        report(rep, "best_remaining_work of node ", mi, " is negative: ",
               mp->best_remaining_work(m));
      // Heaps may hold lazily removed (taken) duplicates at the end of a
      // run; what they must not hold is a task still pending — least of all
      // in the heap of a node with no live workers left.
      mp->heap(m).for_top([&](const HeapEntry& e) {
        if (mp->is_pending(e.task))
          report(rep, "pending task ", e.task.value(), " stranded in ",
                 live.live_on_node(m) == 0 ? "dead " : "", "node ", mi, "'s heap");
        return true;
      });
    }
  }

  return rep;
}

}  // namespace mp
