#include "fault/fault_plan.hpp"

#include "common/check.hpp"
#include "common/rng.hpp"

namespace mp {

namespace {

// Distinct salts keep the failure and straggler decision streams independent
// even though they share the plan seed.
constexpr std::uint64_t kTransientSalt = 0x7472'616e'7369'656eull;
constexpr std::uint64_t kStragglerSalt = 0x7374'7261'6767'6c65ull;

/// One uniform draw for (task, attempt), independent across attempts.
[[nodiscard]] double draw(std::uint64_t seed, std::uint64_t salt, TaskId t,
                          std::size_t attempt) {
  Rng rng = Rng::derive(seed ^ salt,
                        static_cast<std::uint64_t>(t.value()) * 1000003ull + attempt);
  return rng.next_double();
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, const TaskGraph& graph)
    : plan_(std::move(plan)), graph_(&graph) {
  for (const TransientFaultSpec& s : plan_.transient)
    MP_CHECK_MSG(s.probability >= 0.0 && s.probability <= 1.0,
                 "transient fault probability out of [0, 1]");
  for (const StragglerSpec& s : plan_.stragglers) {
    MP_CHECK_MSG(s.probability >= 0.0 && s.probability <= 1.0,
                 "straggler probability out of [0, 1]");
    MP_CHECK_MSG(s.multiplier > 0.0, "straggler multiplier must be positive");
  }
  for (const WorkerLossSpec& s : plan_.worker_losses) {
    MP_CHECK_MSG(s.worker.valid(), "worker loss spec names an invalid worker");
    MP_CHECK_MSG(s.time >= 0.0, "worker loss time must be non-negative");
  }
}

const TransientFaultSpec* FaultInjector::transient_for(TaskId t) const {
  const CodeletId c = graph_->task(t).codelet;
  for (const TransientFaultSpec& s : plan_.transient)
    if (!s.codelet.valid() || s.codelet == c) return &s;
  return nullptr;
}

const StragglerSpec* FaultInjector::straggler_for(TaskId t) const {
  const CodeletId c = graph_->task(t).codelet;
  for (const StragglerSpec& s : plan_.stragglers)
    if (!s.codelet.valid() || s.codelet == c) return &s;
  return nullptr;
}

bool FaultInjector::fail_attempt(TaskId t, std::size_t attempt) const {
  const TransientFaultSpec* spec = transient_for(t);
  if (spec == nullptr || spec->probability <= 0.0) return false;
  return draw(plan_.seed, kTransientSalt, t, attempt) < spec->probability;
}

double FaultInjector::duration_multiplier(TaskId t, std::size_t attempt) const {
  const StragglerSpec* spec = straggler_for(t);
  if (spec == nullptr || spec->probability <= 0.0) return 1.0;
  if (draw(plan_.seed, kStragglerSalt, t, attempt) >= spec->probability) return 1.0;
  return spec->multiplier;
}

}  // namespace mp
