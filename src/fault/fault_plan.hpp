// Fault-injection plans: the perturbation layer of the runtime.
//
// A FaultPlan is a declarative, seeded description of everything that can go
// wrong during one run: transient task failures (retried against a fixed
// budget), stragglers (duration multipliers), and fail-stop worker losses at
// configured virtual times. The FaultInjector derives every decision
// deterministically from (seed, task, attempt), so a run with the same plan
// and the same engine seed reproduces bit-for-bit — fault experiments stay
// as replayable as fault-free ones.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.hpp"
#include "runtime/task_graph.hpp"

namespace mp {

/// Transient (retryable) execution failure of matching tasks. The failure
/// surfaces at the end of the attempt: the time is spent, the result is
/// discarded, and the task goes back to the scheduler.
struct TransientFaultSpec {
  /// Codelet to match; an invalid id matches every codelet.
  CodeletId codelet;
  /// Per-attempt failure probability in [0, 1].
  double probability = 0.0;
};

/// Straggler injection: a matching attempt runs `multiplier` times longer
/// than its nominal duration (runtime noise beyond the engine's gaussian).
struct StragglerSpec {
  /// Codelet to match; an invalid id matches every codelet.
  CodeletId codelet;
  /// Per-attempt trigger probability in [0, 1].
  double probability = 0.0;
  /// Duration multiplier applied when triggered (> 1 slows the task down).
  double multiplier = 4.0;
};

/// Fail-stop loss of one worker at a configured time. The worker never comes
/// back; in-flight work is drained back into the scheduler and, when the
/// last worker of a memory node dies, the node's data is evacuated.
struct WorkerLossSpec {
  WorkerId worker;
  double time = 0.0;
};

/// The complete perturbation description for one run.
struct FaultPlan {
  /// Seed of the fault decision streams (independent of the engine seed).
  std::uint64_t seed = 0xFA11;
  /// Retries granted to a task after its first failed attempt; a task whose
  /// failures exceed the budget is abandoned (with its descendants).
  std::size_t retry_budget = 3;
  std::vector<TransientFaultSpec> transient;
  std::vector<StragglerSpec> stragglers;
  std::vector<WorkerLossSpec> worker_losses;

  [[nodiscard]] bool empty() const {
    return transient.empty() && stragglers.empty() && worker_losses.empty();
  }
};

/// Deterministic per-(task, attempt) fault decisions derived from a plan.
/// Stateless after construction: every query recomputes its decision from
/// the seed, so call order cannot perturb outcomes.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, const TaskGraph& graph);

  /// Should attempt number `attempt` (0-based) of `t` fail transiently?
  [[nodiscard]] bool fail_attempt(TaskId t, std::size_t attempt) const;

  /// Duration multiplier for the attempt (1.0 when no straggler triggers).
  [[nodiscard]] double duration_multiplier(TaskId t, std::size_t attempt) const;

  [[nodiscard]] std::size_t retry_budget() const { return plan_.retry_budget; }
  [[nodiscard]] const std::vector<WorkerLossSpec>& worker_losses() const {
    return plan_.worker_losses;
  }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  /// First spec matching the codelet of `t` wins (wildcards come last only
  /// if the user lists them last — document order matters).
  [[nodiscard]] const TransientFaultSpec* transient_for(TaskId t) const;
  [[nodiscard]] const StragglerSpec* straggler_for(TaskId t) const;

  FaultPlan plan_;
  const TaskGraph* graph_;
};

/// Aggregate fault counters, embedded into SimResult / ExecResult.
struct FaultStats {
  std::size_t failures_injected = 0;   ///< transient failures that fired
  std::size_t retries = 0;             ///< re-pushes (transient + loss drain)
  std::size_t stragglers_injected = 0; ///< attempts slowed by a straggler
  std::size_t tasks_abandoned = 0;     ///< never executed (budget/orphaned + descendants)
  std::size_t workers_lost = 0;        ///< fail-stop losses that fired
  /// True when the run lost capacity or tasks (worker loss or abandonment);
  /// transient failures that were successfully retried do not degrade a run.
  bool degraded = false;
};

}  // namespace mp
