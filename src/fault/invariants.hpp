// Post-run invariant audit for (possibly fault-injected) simulations.
//
// The engine's own MP_CHECKs abort on violation mid-run; this checker is the
// forensic counterpart used by tests and the fault bench: it re-derives the
// conservation and consistency properties from the finished run's artefacts
// (trace, scheduler introspection, liveness) and reports every violation
// instead of stopping at the first.
//
// Invariants checked:
//  * conservation — every task either executed exactly once or is accounted
//    for in tasks_abandoned; nothing is silently lost;
//  * legality — every executed segment ran on a capable architecture, after
//    all of its predecessors finished;
//  * fail-stop — no segment finishes on a worker after that worker's
//    configured loss time, and every configured loss left the worker dead;
//  * scheduler drain — pending_count() is zero, and (MultiPrio) no pending
//    task is stranded in any heap and best_remaining_work stayed >= 0.
#pragma once

#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "sim/engine.hpp"

namespace mp {

struct InvariantReport {
  std::vector<std::string> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] std::string to_string() const;
};

/// Audits a finished run of `engine` (run() must have completed) against the
/// plan it was configured with. Non-const engine: scheduler introspection.
InvariantReport check_fault_invariants(const TaskGraph& graph, const Platform& platform,
                                       const FaultPlan& plan, SimEngine& engine,
                                       const SimResult& result);

}  // namespace mp
