// Run comparison: diff two analyzed runs (multiprio vs dmdas, HEAD vs
// baseline) into the per-codelet / per-worker delta tables the run_compare
// CLI prints — the "why did A beat B on this DAG" view.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "obs/analysis.hpp"
#include "sim/report.hpp"

namespace mp {

/// Everything compare_runs needs from one run, detached from the engine so
/// summaries can outlive (or be loaded independently of) the runs they
/// describe.
struct RunSummary {
  std::string label;  ///< scheduler name, git rev, ... — the column header
  double makespan_s = 0.0;
  double gflops = 0.0;
  double area_bound_s = 0.0;
  double cp_bound_s = 0.0;
  double efficiency = 0.0;       ///< vs max(area, cp) bound
  double area_efficiency = 0.0;  ///< vs area bound (the regression-gate ratio)
  std::size_t critical_path_tasks = 0;
  double critical_path_exec_s = 0.0;
  double total_idle_s = 0.0;
  std::array<double, kNumIdleCauses> idle_by_cause{};
  std::vector<WorkerIdleBlame> idle;        ///< per worker, id order
  std::vector<CodeletReport> codelets;      ///< busiest first (TraceReport order)
  std::vector<ModelAccuracy> model;         ///< sorted by (codelet, arch)
  double model_mae_s = 0.0;
  bool events_truncated = false;
};

/// Collapses one analyzed run into a RunSummary.
[[nodiscard]] RunSummary summarize_run(std::string label, const RunAnalysis& analysis,
                                       const TraceReport& report, const Trace& trace);

/// Headline metrics + per-codelet + per-worker + model-accuracy delta tables
/// of two runs (same DAG and platform assumed; bounds are printed for both
/// so a mismatch is visible rather than silent).
[[nodiscard]] std::string compare_runs(const RunSummary& a, const RunSummary& b);

}  // namespace mp
