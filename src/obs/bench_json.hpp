// Machine-readable bench output: BENCH_<name>.json, one JSON array of
// records with the fixed schema
//
//   { "bench": "fig5_dense", "scheduler": "multiprio",
//     "params": {"kernel": "getrf", "n": 20480, ...},
//     "makespan_s": 1.234, "efficiency": 0.87,        // vs the area bound
//     "gflops": 5678.0,                                // optional extras
//     "events": {"PUSH": 100, ..., "dropped": 0} }
//
// The fig benches emit these next to their ASCII tables; CI uploads them as
// artifacts and the bench-smoke job gates on the efficiency field, so the
// perf trajectory of the repo accumulates run over run.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/observer.hpp"

namespace mp {

/// One benchmark measurement. Values are stored pre-rendered as JSON
/// fragments (param() quotes strings, formats numbers), keeping insertion
/// order so emitted files diff cleanly run over run.
class BenchRecord {
 public:
  BenchRecord(std::string bench, std::string scheduler)
      : bench_(std::move(bench)), scheduler_(std::move(scheduler)) {}

  BenchRecord& param(const std::string& name, const std::string& value);
  BenchRecord& param(const std::string& name, const char* value);
  BenchRecord& param(const std::string& name, double value);
  BenchRecord& param(const std::string& name, std::size_t value);

  BenchRecord& makespan_s(double v) { makespan_s_ = v; return *this; }
  BenchRecord& efficiency(double v) { efficiency_ = v; return *this; }
  /// Extra top-level numeric field (gflops, total_idle_s, ...).
  BenchRecord& extra(const std::string& name, double value);

  /// Per-kind event totals + drop count from a run's observer (drop-proof
  /// counts, so they are exact even when the ring truncated).
  BenchRecord& events_from(const EventLog& log);

  [[nodiscard]] std::string to_json() const;

 private:
  std::string bench_;
  std::string scheduler_;
  std::vector<std::pair<std::string, std::string>> params_;  // value = JSON fragment
  double makespan_s_ = 0.0;
  double efficiency_ = 0.0;
  std::vector<std::pair<std::string, std::string>> extra_;
  std::vector<std::pair<std::string, std::uint64_t>> events_;
};

/// Renders the records as one JSON array (stable field order, "\n"-separated
/// records — diffable).
[[nodiscard]] std::string bench_records_json(const std::vector<BenchRecord>& records);

/// Writes bench_records_json to `path` (convention: BENCH_<name>.json at the
/// invoking directory — repo root in CI); false on I/O failure.
[[nodiscard]] bool write_bench_json(const std::string& path,
                                    const std::vector<BenchRecord>& records);

}  // namespace mp
