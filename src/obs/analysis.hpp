// Post-mortem run analysis: why did this run take as long as it did?
//
// RunAnalysis consumes a completed run (execution Trace + optionally the
// RecordingObserver's decision events and the engine's pop-time δ(t,a)
// predictions) and answers the three questions a scheduler comparison needs
// (Beaumont & Marchal, arXiv:1404.3913):
//
//  * bounds — the area lower bound (fractional CPU/GPU allocation LP, solved
//    exactly) and the critical-path lower bound (best-arch weighted longest
//    DAG path), with the makespan reported as an efficiency ratio against
//    them: efficiency 1.0 means no scheduling slack was left on the table;
//  * blame — every idle second of every worker attributed to exactly one of
//    starvation (nothing poppable), eviction (the pop_condition turned the
//    worker away, Section V-D's cost), dependency wait (committed to a task,
//    waiting on its data) or drain (no work will ever come: DAG tail or the
//    worker's own fail-stop loss). The four buckets sum to the worker's
//    total idle exactly, so nothing hides;
//  * model audit — predicted δ(t,a) vs observed duration per (codelet,
//    arch): mean absolute error, mean relative error and signed bias, the
//    numbers that say whether the gain heuristic (Eq. 1) was fed truth.
//
// Lives in obs/ but is compiled into mp_sim (it needs the Trace types), the
// same arrangement as obs/export.*.
#pragma once

#include <array>
#include <span>
#include <string>
#include <vector>

#include "runtime/perf_model.hpp"
#include "runtime/platform.hpp"
#include "runtime/task_graph.hpp"
#include "sim/trace.hpp"

namespace mp {

class RecordingObserver;

/// Where a worker's idle second went.
enum class IdleCause : std::uint8_t {
  Starvation = 0,  ///< popped nothing: no ready task was offered to it
  Eviction,        ///< pop_condition rejections (POP_REJECT/EVICT) in the gap
  DepWait,         ///< committed to a task, waiting for its data/transfers
  Drain,           ///< no work will ever come: DAG tail, or the worker died
};

inline constexpr std::size_t kNumIdleCauses = 4;

[[nodiscard]] constexpr const char* idle_cause_name(IdleCause c) {
  switch (c) {
    case IdleCause::Starvation: return "starvation";
    case IdleCause::Eviction: return "eviction";
    case IdleCause::DepWait: return "dep-wait";
    case IdleCause::Drain: return "drain";
  }
  return "?";
}

/// One worker's idle time, decomposed. The buckets partition the idle
/// intervals arithmetically, so by_cause sums to total_idle_s exactly (to
/// floating-point association error, well under 1e-9).
struct WorkerIdleBlame {
  WorkerId worker;
  std::string name;
  double total_idle_s = 0.0;
  std::array<double, kNumIdleCauses> by_cause{};
};

/// δ(t,a) accuracy for one (codelet, arch) bucket over the executed tasks.
struct ModelAccuracy {
  std::string codelet;
  ArchType arch = ArchType::CPU;
  std::size_t samples = 0;
  double mean_abs_err_s = 0.0;  ///< mean |predicted − observed|
  double mean_rel_err = 0.0;    ///< mean |predicted − observed| / observed
  double bias_s = 0.0;          ///< mean (predicted − observed); > 0 = over-predicts
};

class RunAnalysis {
 public:
  /// `obs` (optional) supplies the decision events the blame decomposition
  /// keys off (POP_REJECT for eviction, WORKER_LOST for loss drain); without
  /// it every non-dep-wait gap falls back to starvation/drain. `predicted`
  /// (optional) is the per-task δ(t, executed arch) the scheduler believed
  /// at pop time — SimEngine::predicted_durations() — and enables the model
  /// audit. All referenced objects must outlive the analysis.
  RunAnalysis(const Trace& trace, const TaskGraph& graph, const Platform& platform,
              const PerfDatabase& perf, const RecordingObserver* obs = nullptr,
              std::span<const double> predicted = {});

  // --- critical path over the *executed* schedule --------------------------

  /// Longest task-end → dependent-start chain of the executed schedule.
  [[nodiscard]] const std::vector<TaskId>& critical_path() const { return cp_tasks_; }
  /// Execution seconds spent on that chain.
  [[nodiscard]] double critical_path_exec_s() const { return cp_exec_s_; }

  // --- lower bounds and efficiency -----------------------------------------

  /// Area bound: optimal makespan of the fractional-allocation relaxation
  /// (each task divisible across its capable archs, no dependencies).
  [[nodiscard]] double area_bound_s() const { return area_bound_s_; }
  /// Critical-path bound: longest DAG path, each task at its best-arch time.
  [[nodiscard]] double cp_bound_s() const { return cp_bound_s_; }
  /// The binding lower bound: max(area, critical path).
  [[nodiscard]] double bound_s() const;

  /// bound_s / makespan in (0, 1]: 1.0 = provably unimprovable schedule.
  [[nodiscard]] double efficiency() const;
  /// area_bound_s / makespan — the ratio the bench regression gate checks.
  [[nodiscard]] double area_efficiency() const;

  // --- idle blame -----------------------------------------------------------

  /// One entry per platform worker, worker id order.
  [[nodiscard]] const std::vector<WorkerIdleBlame>& idle_blame() const { return idle_; }
  [[nodiscard]] double total_idle_s() const { return total_idle_s_; }
  /// Sum of one cause over all workers.
  [[nodiscard]] double idle_cause_total(IdleCause c) const;

  // --- perf-model audit -------------------------------------------------------

  /// Sorted by (codelet, arch); empty when no predictions were supplied.
  [[nodiscard]] const std::vector<ModelAccuracy>& model_accuracy() const {
    return model_;
  }
  /// Mean absolute δ error over every executed task (0 without predictions).
  [[nodiscard]] double model_mean_abs_err_s() const { return model_mae_s_; }

  /// The observer's EventLog overwrote events; the eviction/drain split of
  /// the blame decomposition may be under-attributed (totals still sum).
  [[nodiscard]] bool events_truncated() const { return events_truncated_; }

  /// Human-readable report: bounds, efficiency, blame table, model table.
  [[nodiscard]] std::string to_string() const;

 private:
  void compute_bounds(const TaskGraph& graph, const Platform& platform,
                      const PerfDatabase& perf);
  void compute_critical_path(const TaskGraph& graph);
  void compute_idle_blame(const Platform& platform, const RecordingObserver* obs);
  void compute_model_audit(const TaskGraph& graph, const Platform& platform,
                           std::span<const double> predicted);

  const Trace& trace_;
  std::vector<TaskId> cp_tasks_;
  double cp_exec_s_ = 0.0;
  double area_bound_s_ = 0.0;
  double cp_bound_s_ = 0.0;
  std::vector<WorkerIdleBlame> idle_;
  double total_idle_s_ = 0.0;
  std::vector<ModelAccuracy> model_;
  double model_mae_s_ = 0.0;
  bool events_truncated_ = false;
};

}  // namespace mp
