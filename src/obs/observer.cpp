#include "obs/observer.hpp"

#include <sstream>

#include "common/csv.hpp"

namespace mp {

EventLog::EventLog(std::size_t capacity, bool reserve_upfront)
    : capacity_(capacity ? capacity : 1) {
  ring_.reserve(reserve_upfront ? capacity_
                                : std::min<std::size_t>(capacity_, 4096));
}

void EventLog::append(SchedEvent e) {
  std::lock_guard lock(mu_);
  e.seq = next_seq_++;
  ++counts_[static_cast<std::size_t>(e.kind)];
  if (ring_.size() < capacity_) {
    ring_.push_back(e);
  } else {
    ring_[head_] = e;
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }
}

std::vector<SchedEvent> EventLog::snapshot() const {
  std::lock_guard lock(mu_);
  std::vector<SchedEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  return out;
}

std::size_t EventLog::size() const {
  std::lock_guard lock(mu_);
  return ring_.size();
}

std::size_t EventLog::dropped() const {
  std::lock_guard lock(mu_);
  return dropped_;
}

std::uint64_t EventLog::recorded() const {
  std::lock_guard lock(mu_);
  return next_seq_;
}

std::uint64_t EventLog::count(SchedEventKind k) const {
  std::lock_guard lock(mu_);
  return counts_[static_cast<std::size_t>(k)];
}

bool EventLog::accounting_ok() const {
  std::lock_guard lock(mu_);
  std::uint64_t kind_sum = 0;
  for (std::uint64_t c : counts_) kind_sum += c;
  return kind_sum == next_seq_ &&
         static_cast<std::uint64_t>(ring_.size()) + dropped_ == next_seq_;
}

std::string EventLog::to_csv() const {
  Table t({"seq", "time", "kind", "task", "worker", "node", "gain", "nod", "locality",
           "brw", "heap_depth", "attempt"});
  auto id_cell = [](std::uint32_t v, bool valid) {
    return valid ? std::to_string(v) : std::string();
  };
  for (const SchedEvent& e : snapshot()) {
    t.add_row({std::to_string(e.seq), fmt_double(e.time, 9),
               event_kind_name(e.kind), id_cell(e.task.value(), e.task.valid()),
               id_cell(e.worker.value(), e.worker.valid()),
               id_cell(e.node.value(), e.node.valid()), fmt_double(e.gain, 6),
               fmt_double(e.prio, 6), fmt_double(e.locality, 6),
               fmt_double(e.best_remaining_work, 9), std::to_string(e.heap_depth),
               std::to_string(e.attempt)});
  }
  // Footer: the drop-proof totals. The rows above are only the *retained*
  // window of the ring; the footer states exactly how much is missing and
  // the true per-kind counts, so downstream tooling never mistakes a
  // truncated log for a complete one.
  std::ostringstream os;
  os << t.to_csv();
  std::uint64_t recorded_total = 0;
  std::size_t retained = 0, dropped_total = 0;
  std::array<std::uint64_t, kNumSchedEventKinds> counts{};
  {
    std::lock_guard lock(mu_);
    recorded_total = next_seq_;
    retained = ring_.size();
    dropped_total = dropped_;
    counts = counts_;
  }
  os << "# recorded=" << recorded_total << " retained=" << retained
     << " dropped=" << dropped_total << "\n# totals:";
  for (std::size_t k = 0; k < kNumSchedEventKinds; ++k)
    os << ' ' << event_kind_name(static_cast<SchedEventKind>(k)) << '='
       << counts[k];
  os << '\n';
  return os.str();
}

std::string RecordingObserver::rollup() const {
  std::ostringstream os;
  os << "scheduler events:";
  bool any = false;
  for (std::size_t k = 0; k < kNumSchedEventKinds; ++k) {
    const std::uint64_t n = log_.count(static_cast<SchedEventKind>(k));
    if (n == 0) continue;
    os << ' ' << event_kind_name(static_cast<SchedEventKind>(k)) << '=' << n;
    any = true;
  }
  if (!any) os << " none";
  os << " (retained " << log_.size();
  if (log_.dropped() > 0) os << ", dropped " << log_.dropped();
  os << ")\n";
  os << metrics_.to_string();
  return os.str();
}

}  // namespace mp
