// Trace exporters: Chrome/Perfetto trace.json from an execution Trace plus
// (optionally) the scheduler-decision events and metrics of a
// RecordingObserver.
//
// The JSON follows the Trace Event Format: executed segments become "X"
// duration slices on one track per worker (with their data stalls as
// separate slices), scheduler decisions become "i" instant events — on the
// deciding worker's track when one is involved, on a dedicated "scheduler"
// track otherwise — and every gauge time series becomes a "C" counter
// track (per-node heap depth over time, etc.). Load the file at
// https://ui.perfetto.dev or chrome://tracing.
#pragma once

#include <string>

#include "obs/observer.hpp"
#include "sim/trace.hpp"

namespace mp {

[[nodiscard]] std::string chrome_trace_json(const Trace& trace, const TaskGraph& graph,
                                            const Platform& platform,
                                            const RecordingObserver* obs = nullptr);

/// Writes chrome_trace_json to `path`; false on I/O failure.
[[nodiscard]] bool write_chrome_trace(const std::string& path, const Trace& trace,
                                      const TaskGraph& graph, const Platform& platform,
                                      const RecordingObserver* obs = nullptr);

/// Escapes a string for embedding in a JSON string literal (no quotes).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace mp
