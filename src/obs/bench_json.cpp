#include "obs/bench_json.hpp"

#include <cstdio>
#include <sstream>

#include "obs/export.hpp"

namespace mp {

namespace {

/// Shortest round-trippable rendering; never scientific-only surprises the
/// tooling (jq/python parse both).
std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

BenchRecord& BenchRecord::param(const std::string& name, const std::string& value) {
  params_.emplace_back(name, "\"" + json_escape(value) + "\"");
  return *this;
}

BenchRecord& BenchRecord::param(const std::string& name, const char* value) {
  return param(name, std::string(value));
}

BenchRecord& BenchRecord::param(const std::string& name, double value) {
  params_.emplace_back(name, num(value));
  return *this;
}

BenchRecord& BenchRecord::param(const std::string& name, std::size_t value) {
  params_.emplace_back(name, std::to_string(value));
  return *this;
}

BenchRecord& BenchRecord::extra(const std::string& name, double value) {
  extra_.emplace_back(name, num(value));
  return *this;
}

BenchRecord& BenchRecord::events_from(const EventLog& log) {
  events_.clear();
  for (std::size_t k = 0; k < kNumSchedEventKinds; ++k)
    events_.emplace_back(event_kind_name(static_cast<SchedEventKind>(k)),
                         log.count(static_cast<SchedEventKind>(k)));
  events_.emplace_back("dropped", log.dropped());
  return *this;
}

std::string BenchRecord::to_json() const {
  std::ostringstream os;
  os << "{\"bench\":\"" << json_escape(bench_) << "\",\"scheduler\":\""
     << json_escape(scheduler_) << "\",\"params\":{";
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << json_escape(params_[i].first) << "\":" << params_[i].second;
  }
  os << "},\"makespan_s\":" << num(makespan_s_) << ",\"efficiency\":" << num(efficiency_);
  for (const auto& [name, value] : extra_)
    os << ",\"" << json_escape(name) << "\":" << value;
  os << ",\"events\":{";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << json_escape(events_[i].first) << "\":" << events_[i].second;
  }
  os << "}}";
  return os.str();
}

std::string bench_records_json(const std::vector<BenchRecord>& records) {
  std::ostringstream os;
  os << "[\n";
  for (std::size_t i = 0; i < records.size(); ++i)
    os << "  " << records[i].to_json() << (i + 1 < records.size() ? ",\n" : "\n");
  os << "]\n";
  return os.str();
}

bool write_bench_json(const std::string& path, const std::vector<BenchRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = bench_records_json(records);
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace mp
