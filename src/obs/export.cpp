#include "obs/export.hpp"

#include <cstdint>
#include <cstdio>
#include <sstream>

#include "common/csv.hpp"

namespace mp {

namespace {

constexpr double kUsPerSecond = 1e6;

/// One JSON object per line keeps the file diffable and stream-writable.
class JsonEvents {
 public:
  void add(const std::string& obj) {
    if (!first_) os_ << ",\n";
    first_ = false;
    os_ << "  " << obj;
  }

  [[nodiscard]] std::string finish() const { return os_.str(); }

 private:
  std::ostringstream os_;
  bool first_ = true;
};

std::string num(double v) { return fmt_double(v, 6); }

std::string meta_thread(std::uint32_t tid, const std::string& name, int sort_index) {
  std::ostringstream os;
  os << R"({"ph":"M","name":"thread_name","pid":0,"tid":)" << tid
     << R"(,"args":{"name":")" << json_escape(name) << "\"}}";
  std::ostringstream os2;
  os2 << os.str() << ",\n  " << R"({"ph":"M","name":"thread_sort_index","pid":0,"tid":)"
      << tid << R"(,"args":{"sort_index":)" << sort_index << "}}";
  return os2.str();
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string chrome_trace_json(const Trace& trace, const TaskGraph& graph,
                              const Platform& platform, const RecordingObserver* obs) {
  JsonEvents ev;
  const std::uint32_t sched_tid = static_cast<std::uint32_t>(platform.num_workers());

  ev.add(R"({"ph":"M","name":"process_name","pid":0,"args":{"name":"multiprio"}})");
  for (const Worker& w : platform.workers())
    ev.add(meta_thread(w.id.value(), w.name, static_cast<int>(w.id.value())));
  ev.add(meta_thread(sched_tid, "scheduler", static_cast<int>(sched_tid)));

  // Executed segments: one slice per task, plus its data stall as a
  // separate slice so transfer-bound stretches are visible at a glance.
  for (const TraceSegment& s : trace.segments()) {
    const Task& task = graph.task(s.task);
    const std::string& codelet = graph.codelet_of(s.task).name;
    std::ostringstream os;
    os << R"({"ph":"X","cat":"exec","name":")"
       << json_escape(task.name.empty() ? codelet : task.name) << R"(","pid":0,"tid":)"
       << s.worker.value() << R"(,"ts":)" << num(s.exec_start * kUsPerSecond)
       << R"(,"dur":)" << num((s.end - s.exec_start) * kUsPerSecond)
       << R"(,"args":{"task":)" << s.task.value() << R"(,"codelet":")"
       << json_escape(codelet) << R"(","fetch_start_s":)" << num(s.fetch_start)
       << R"(,"data_stall_s":)" << num(s.data_stall) << "}}";
    ev.add(os.str());
    if (s.data_stall > 0.0) {
      std::ostringstream st;
      st << R"({"ph":"X","cat":"stall","name":"data stall","pid":0,"tid":)"
         << s.worker.value() << R"(,"ts":)"
         << num((s.exec_start - s.data_stall) * kUsPerSecond) << R"(,"dur":)"
         << num(s.data_stall * kUsPerSecond) << R"(,"args":{"task":)" << s.task.value()
         << "}}";
      ev.add(st.str());
    }
  }

  if (obs != nullptr) {
    // Scheduler decisions as instant events carrying their payloads.
    for (const SchedEvent& e : obs->events().snapshot()) {
      std::ostringstream os;
      const bool on_worker = e.worker.valid();
      os << R"({"ph":"i","cat":"sched","name":")" << event_kind_name(e.kind);
      if (e.task.valid()) os << " t" << e.task.value();
      os << R"(","pid":0,"tid":)" << (on_worker ? e.worker.value() : sched_tid)
         << R"(,"ts":)" << num(e.time * kUsPerSecond) << R"(,"s":")"
         << (on_worker ? 't' : 'p') << R"(","args":{"seq":)" << e.seq;
      if (e.task.valid()) os << R"(,"task":)" << e.task.value();
      if (e.node.valid()) os << R"(,"node":)" << e.node.value();
      os << R"(,"gain":)" << num(e.gain) << R"(,"nod":)" << num(e.prio)
         << R"(,"locality":)" << num(e.locality) << R"(,"brw":)"
         << num(e.best_remaining_work) << R"(,"heap_depth":)" << e.heap_depth
         << R"(,"attempt":)" << e.attempt << "}}";
      ev.add(os.str());
    }
    // Gauge time series as counter tracks (heap depth over time, etc.).
    for (const auto& [name, gauge] : obs->metrics_registry().gauges()) {
      for (const GaugeSample& s : gauge->samples()) {
        std::ostringstream os;
        os << R"({"ph":"C","name":")" << json_escape(name)
           << R"(","pid":0,"ts":)" << num(s.time * kUsPerSecond)
           << R"(,"args":{"value":)" << num(s.value) << "}}";
        ev.add(os.str());
      }
    }
  }

  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n" << ev.finish() << "\n]}\n";
  return out.str();
}

bool write_chrome_trace(const std::string& path, const Trace& trace,
                        const TaskGraph& graph, const Platform& platform,
                        const RecordingObserver* obs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = chrome_trace_json(trace, graph, platform, obs);
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace mp
