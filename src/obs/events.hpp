// Typed scheduler-decision events — the observability layer's vocabulary.
//
// Every consequential decision of a policy or engine (heap insertion, pop,
// pop_condition reject, eviction, retry re-push, fail-stop loss, fault
// injection, abandonment) is describable as one SchedEvent carrying the
// decision's payload: the scores that drove it (gain, NOD, LS_SDH²), the
// ledger state it read (best_remaining_work, heap depth) and when it
// happened (virtual time in the simulator, wall-clock in the executor).
// Events are plain values; recording them is the EventLog's job.
#pragma once

#include <cstdint>

#include "common/ids.hpp"

namespace mp {

enum class SchedEventKind : std::uint8_t {
  Push = 0,        ///< task inserted into a policy queue/heap (per node for MultiPrio)
  Pop,             ///< worker took a task
  PopReject,       ///< pop_condition refused the candidate for this worker
  Evict,           ///< task removed from one node's heap (survives elsewhere)
  Repush,          ///< previously popped task re-enqueued (retry / loss drain)
  WorkerLost,      ///< fail-stop worker loss took effect
  FaultFailure,    ///< transient failure fired at the end of an attempt
  FaultStraggler,  ///< straggler multiplier applied to an attempt
  TaskAbandoned,   ///< task will never execute (budget exhausted / orphaned)
};

inline constexpr std::size_t kNumSchedEventKinds = 9;

[[nodiscard]] constexpr const char* event_kind_name(SchedEventKind k) {
  switch (k) {
    case SchedEventKind::Push: return "PUSH";
    case SchedEventKind::Pop: return "POP";
    case SchedEventKind::PopReject: return "POP_REJECT";
    case SchedEventKind::Evict: return "EVICT";
    case SchedEventKind::Repush: return "REPUSH";
    case SchedEventKind::WorkerLost: return "WORKER_LOST";
    case SchedEventKind::FaultFailure: return "FAULT_FAILURE";
    case SchedEventKind::FaultStraggler: return "FAULT_STRAGGLER";
    case SchedEventKind::TaskAbandoned: return "TASK_ABANDONED";
  }
  return "?";
}

/// One recorded decision. Fields that do not apply to a kind stay at their
/// defaults (invalid ids, zero scores); consumers key off `kind`.
struct SchedEvent {
  double time = 0.0;  ///< seconds — virtual (sim) or wall since run start (exec)
  SchedEventKind kind = SchedEventKind::Push;
  TaskId task;
  WorkerId worker;  ///< popper / loser / push-time mapping target
  MemNodeId node;   ///< memory node whose queue/heap was touched
  double gain = 0.0;              ///< score_gain of the entry involved
  double prio = 0.0;              ///< NOD criticality tiebreak score
  double locality = 0.0;          ///< LS_SDH² of the chosen candidate
  double best_remaining_work = 0.0;  ///< brw ledger read/left by the decision
  std::uint32_t heap_depth = 0;   ///< queue/heap size after the decision
  std::uint32_t attempt = 0;      ///< POP tries so far / failed attempts so far
  std::uint64_t seq = 0;          ///< global order, assigned by the EventLog
};

}  // namespace mp
