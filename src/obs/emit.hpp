// Inline helpers for policies/engines that emit scheduler events.
//
// Usage pattern (the null fast path must stay branch-only):
//
//   if (obs_enabled(ctx_)) {
//     SchedEvent e = make_event(ctx_, SchedEventKind::Pop, t);
//     e.worker = w;
//     ctx_.observer->record(e);
//   }
#pragma once

#include "obs/observer.hpp"
#include "runtime/scheduler.hpp"

namespace mp {

[[nodiscard]] inline bool obs_enabled(const SchedContext& ctx) {
  return ctx.observer != nullptr;
}

[[nodiscard]] inline double obs_now(const SchedContext& ctx) {
  return ctx.now ? ctx.now() : 0.0;
}

[[nodiscard]] inline SchedEvent make_event(const SchedContext& ctx, SchedEventKind k,
                                           TaskId t) {
  SchedEvent e;
  e.time = obs_now(ctx);
  e.kind = k;
  e.task = t;
  return e;
}

}  // namespace mp
