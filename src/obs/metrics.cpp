#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/csv.hpp"

namespace mp {

void Gauge::sample(double time, double value) {
  std::lock_guard lock(mu_);
  last_ = value;
  if (ring_.size() < capacity_) {
    ring_.push_back(GaugeSample{time, value});
  } else {
    ring_[head_] = GaugeSample{time, value};
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }
}

double Gauge::last() const {
  std::lock_guard lock(mu_);
  return last_;
}

std::size_t Gauge::dropped() const {
  std::lock_guard lock(mu_);
  return dropped_;
}

std::vector<GaugeSample> Gauge::samples() const {
  std::lock_guard lock(mu_);
  std::vector<GaugeSample> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  return out;
}

std::size_t Histogram::bucket_of(double v) {
  if (!(v > 0.0)) return 0;
  // Bucket b holds (2^(b-33), 2^(b-32)]: b=0 spans everything ≤ 2⁻³² s
  // (~0.23 ns), the top bucket is unbounded.
  const int e = static_cast<int>(std::ceil(std::log2(v)));
  const long b = static_cast<long>(e) + 32;
  return static_cast<std::size_t>(std::clamp(b, 0L, static_cast<long>(kBuckets) - 1));
}

double Histogram::bucket_upper(std::size_t b) {
  return std::ldexp(1.0, static_cast<int>(b) - 32);
}

void Histogram::observe(double v) {
  std::lock_guard lock(mu_);
  ++buckets_[bucket_of(v)];
  ++count_;
  sum_ += v;
  if (count_ == 1) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
}

std::uint64_t Histogram::count() const {
  std::lock_guard lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard lock(mu_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard lock(mu_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard lock(mu_);
  return max_;
}

double Histogram::mean() const {
  std::lock_guard lock(mu_);
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

double Histogram::quantile(double q) const {
  std::lock_guard lock(mu_);
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= rank && seen > 0) return std::min(bucket_upper(b), max_);
  }
  return max_;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name, std::size_t capacity) {
  std::lock_guard lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>(capacity);
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<std::pair<std::string, const Counter*>> MetricsRegistry::counters() const {
  std::lock_guard lock(mu_);
  std::vector<std::pair<std::string, const Counter*>> out;
  for (const auto& [name, c] : counters_) out.emplace_back(name, c.get());
  return out;
}

std::vector<std::pair<std::string, const Gauge*>> MetricsRegistry::gauges() const {
  std::lock_guard lock(mu_);
  std::vector<std::pair<std::string, const Gauge*>> out;
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g.get());
  return out;
}

std::vector<std::pair<std::string, const Histogram*>> MetricsRegistry::histograms()
    const {
  std::lock_guard lock(mu_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h.get());
  return out;
}

std::string MetricsRegistry::to_string() const {
  std::ostringstream os;
  for (const auto& [name, c] : counters())
    os << "counter " << name << " = " << c->value() << "\n";
  for (const auto& [name, g] : gauges()) {
    const auto samples = g->samples();
    os << "gauge " << name << " = " << fmt_double(g->last(), 3) << " ("
       << samples.size() << " samples";
    if (g->dropped() > 0) os << ", " << g->dropped() << " dropped";
    os << ")\n";
  }
  for (const auto& [name, h] : histograms()) {
    os << "histogram " << name << ": n=" << h->count() << " mean="
       << fmt_double(h->mean(), 9) << " p50≤" << fmt_double(h->quantile(0.5), 9)
       << " p99≤" << fmt_double(h->quantile(0.99), 9) << " max="
       << fmt_double(h->max(), 9) << "\n";
  }
  return os.str();
}

}  // namespace mp
