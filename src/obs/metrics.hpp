// MetricsRegistry: named counters, gauges and histograms for the runtime.
//
// Built for the observability hot path: a Counter increment is one relaxed
// atomic add; Gauge samples and Histogram observations take a per-instrument
// mutex (they are off the per-event fast path — policies sample gauges only
// when an observer is attached). Instrument references returned by the
// registry are stable for the registry's lifetime, so call sites resolve
// names once (at scheduler construction) and pay no map lookups afterwards.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "verify/sync.hpp"

namespace mp {

/// Monotonic event count (lock-free).
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  Atomic<std::uint64_t> value_{0};
};

struct GaugeSample {
  double time = 0.0;
  double value = 0.0;
};

/// A value tracked over time (e.g. per-node heap depth). Keeps a bounded
/// ring of the most recent samples plus the last value; older samples are
/// dropped (counted) rather than growing without bound.
class Gauge {
 public:
  explicit Gauge(std::size_t capacity = 65536) : capacity_(capacity ? capacity : 1) {}

  void sample(double time, double value);

  [[nodiscard]] double last() const;
  [[nodiscard]] std::size_t dropped() const;
  /// Retained samples in recording order (oldest first).
  [[nodiscard]] std::vector<GaugeSample> samples() const;

 private:
  mutable Mutex mu_;
  std::size_t capacity_;
  std::vector<GaugeSample> ring_;
  std::size_t head_ = 0;  // next overwrite position once full
  std::size_t dropped_ = 0;
  double last_ = 0.0;
};

/// Log₂-bucketed histogram of positive values (latencies in seconds). Exact
/// count/sum/min/max; quantiles are bucket-resolution estimates, which is
/// plenty to tell a 2 µs pop from a 2 ms one.
class Histogram {
 public:
  void observe(double v);

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;
  [[nodiscard]] double min() const;  ///< 0 when empty
  [[nodiscard]] double max() const;  ///< 0 when empty
  [[nodiscard]] double mean() const;
  /// Upper bound of the bucket holding the q-quantile (q in [0,1]).
  [[nodiscard]] double quantile(double q) const;

  /// Number of log₂ buckets; bucket 0 holds v ≤ 2⁻³², the last is unbounded.
  static constexpr std::size_t kBuckets = 64;

 private:
  [[nodiscard]] static std::size_t bucket_of(double v);
  [[nodiscard]] static double bucket_upper(std::size_t b);

  mutable Mutex mu_;
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Name → instrument registry. Thread-safe creation/lookup; instruments are
/// never removed, and references stay valid until the registry dies.
class MetricsRegistry {
 public:
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name, std::size_t capacity = 65536);
  [[nodiscard]] Histogram& histogram(const std::string& name);

  /// Sorted snapshots (name order) for reporting/export.
  [[nodiscard]] std::vector<std::pair<std::string, const Counter*>> counters() const;
  [[nodiscard]] std::vector<std::pair<std::string, const Gauge*>> gauges() const;
  [[nodiscard]] std::vector<std::pair<std::string, const Histogram*>> histograms() const;

  /// Human-readable dump, one instrument per line.
  [[nodiscard]] std::string to_string() const;

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace mp
