#include "obs/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "common/csv.hpp"
#include "obs/observer.hpp"

namespace mp {

namespace {

/// Best-arch duration of `t` over the archs it can actually run on (an
/// implementation exists and the platform has a worker of that arch).
/// Returns 0 for tasks no worker could ever run (abandoned before push).
double best_duration(const TaskGraph& graph, const Platform& platform,
                     const PerfDatabase& perf, TaskId t) {
  double best = 0.0;
  for (std::size_t ai = 0; ai < kNumArchTypes; ++ai) {
    const auto a = static_cast<ArchType>(ai);
    if (!graph.can_exec(t, a) || platform.worker_count(a) == 0) continue;
    const double d = perf.ground_truth(graph, t, a);
    if (best == 0.0 || d < best) best = d;
  }
  return best;
}

}  // namespace

RunAnalysis::RunAnalysis(const Trace& trace, const TaskGraph& graph,
                         const Platform& platform, const PerfDatabase& perf,
                         const RecordingObserver* obs, std::span<const double> predicted)
    : trace_(trace) {
  compute_bounds(graph, platform, perf);
  compute_critical_path(graph);
  compute_idle_blame(platform, obs);
  compute_model_audit(graph, platform, predicted);
  if (obs != nullptr && obs->events().dropped() > 0) events_truncated_ = true;
}

void RunAnalysis::compute_bounds(const TaskGraph& graph, const Platform& platform,
                                 const PerfDatabase& perf) {
  const std::size_t n = graph.num_tasks();

  // Critical-path bound: longest path through the DAG with every task at its
  // best-arch analytic time — no schedule can beat the chain it must
  // serialize. Task ids are topological (STF: dependencies point backwards),
  // so one reverse sweep computes the downward rank exactly.
  std::vector<double> down(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    const TaskId t{i};
    double tail = 0.0;
    for (TaskId s : graph.successors(t)) tail = std::max(tail, down[s.index()]);
    down[i] = best_duration(graph, platform, perf, t) + tail;
    cp_bound_s_ = std::max(cp_bound_s_, down[i]);
  }

  // Area bound: the makespan of the dependency-free fractional relaxation —
  // each task divisible across its capable archs, each arch a a pool of
  // n_a identical workers (Beaumont & Marchal's heterogeneous area bound).
  // With two arch classes the LP solves exactly by bisection on T: the
  // feasibility check is a fractional knapsack (fill the GPU pool with the
  // tasks saving the most CPU seconds per GPU second).
  const std::size_t n_cpu = platform.worker_count(ArchType::CPU);
  const std::size_t n_gpu = platform.worker_count(ArchType::GPU);
  double fixed_cpu = 0.0, fixed_gpu = 0.0;
  struct DualTask {
    double d_cpu, d_gpu;
  };
  std::vector<DualTask> dual;
  for (std::size_t i = 0; i < n; ++i) {
    const TaskId t{i};
    const bool on_cpu = n_cpu > 0 && graph.can_exec(t, ArchType::CPU);
    const bool on_gpu = n_gpu > 0 && graph.can_exec(t, ArchType::GPU);
    if (on_cpu && on_gpu) {
      dual.push_back(DualTask{perf.ground_truth(graph, t, ArchType::CPU),
                              perf.ground_truth(graph, t, ArchType::GPU)});
    } else if (on_cpu) {
      fixed_cpu += perf.ground_truth(graph, t, ArchType::CPU);
    } else if (on_gpu) {
      fixed_gpu += perf.ground_truth(graph, t, ArchType::GPU);
    }
  }
  if (n_cpu == 0 && n_gpu == 0) return;
  if (n_cpu == 0 || n_gpu == 0) {
    double load = n_cpu == 0 ? fixed_gpu : fixed_cpu;
    for (const DualTask& d : dual) load += n_cpu == 0 ? d.d_gpu : d.d_cpu;
    area_bound_s_ = load / static_cast<double>(std::max<std::size_t>(1, n_cpu + n_gpu));
    return;
  }
  // CPU seconds saved per GPU second spent, best savers first.
  std::sort(dual.begin(), dual.end(), [](const DualTask& a, const DualTask& b) {
    return a.d_cpu * b.d_gpu > b.d_cpu * a.d_gpu;
  });
  const auto feasible = [&](double T) {
    const double cap_cpu = static_cast<double>(n_cpu) * T - fixed_cpu;
    double gpu_left = static_cast<double>(n_gpu) * T - fixed_gpu;
    if (cap_cpu < 0.0 || gpu_left < 0.0) return false;
    double need_cpu = 0.0;  // minimal CPU load given the GPU capacity
    for (const DualTask& d : dual) {
      if (gpu_left >= d.d_gpu) {
        gpu_left -= d.d_gpu;
      } else {
        const double gpu_frac = d.d_gpu > 0.0 ? gpu_left / d.d_gpu : 1.0;
        need_cpu += d.d_cpu * (1.0 - gpu_frac);
        gpu_left = 0.0;
      }
    }
    return need_cpu <= cap_cpu;
  };
  // Upper bound: everything on its faster arch is one feasible point.
  double hi_cpu = fixed_cpu, hi_gpu = fixed_gpu;
  for (const DualTask& d : dual) (d.d_gpu < d.d_cpu ? hi_gpu : hi_cpu) += std::min(d.d_cpu, d.d_gpu);
  double hi = std::max(hi_cpu / static_cast<double>(n_cpu),
                       hi_gpu / static_cast<double>(n_gpu));
  double lo = 0.0;
  for (int iter = 0; iter < 100 && hi - lo > 0.0; ++iter) {
    const double mid = 0.5 * (lo + hi);
    (feasible(mid) ? hi : lo) = mid;
  }
  area_bound_s_ = hi;
}

void RunAnalysis::compute_critical_path(const TaskGraph& graph) {
  cp_tasks_ = trace_.practical_critical_path();
  std::vector<double> exec_s(graph.num_tasks(), 0.0);
  for (const TraceSegment& s : trace_.segments())
    exec_s[s.task.index()] = s.end - s.exec_start;
  for (TaskId t : cp_tasks_) cp_exec_s_ += exec_s[t.index()];
}

void RunAnalysis::compute_idle_blame(const Platform& platform,
                                     const RecordingObserver* obs) {
  const double makespan = trace_.makespan();
  const std::size_t nw = platform.num_workers();

  // Per-worker decision context from the event log: pop_condition reject
  // times (→ eviction blame) and the fail-stop loss time (→ drain).
  std::vector<std::vector<double>> rejects(nw);
  std::vector<double> lost_at(nw, makespan + 1.0);
  if (obs != nullptr) {
    for (const SchedEvent& e : obs->events().snapshot()) {
      if (!e.worker.valid() || e.worker.index() >= nw) continue;
      if (e.kind == SchedEventKind::PopReject) rejects[e.worker.index()].push_back(e.time);
      if (e.kind == SchedEventKind::WorkerLost)
        lost_at[e.worker.index()] = std::min(lost_at[e.worker.index()], e.time);
    }
    for (auto& r : rejects) std::sort(r.begin(), r.end());
  }

  struct Seg {
    double start, end, stall;
  };
  std::vector<std::vector<Seg>> segs(nw);
  double last_exec_start = 0.0;  // platform-wide: when runnable work last remained
  for (const TraceSegment& s : trace_.segments()) {
    segs[s.worker.index()].push_back(Seg{s.exec_start, s.end, s.data_stall});
    last_exec_start = std::max(last_exec_start, s.exec_start);
  }
  for (auto& v : segs)
    std::sort(v.begin(), v.end(), [](const Seg& a, const Seg& b) { return a.start < b.start; });

  idle_.resize(nw);
  for (std::size_t wi = 0; wi < nw; ++wi) {
    WorkerIdleBlame& blame = idle_[wi];
    blame.worker = WorkerId{wi};
    blame.name = platform.worker(blame.worker).name;
    blame.total_idle_s = std::max(0.0, makespan - trace_.busy_time(blame.worker));
    total_idle_s_ += blame.total_idle_s;

    // Attribute one idle gap [g0, g1): loss-drain tail first, then the
    // dep-wait tail the next task's data stall covers, then the remainder
    // goes to eviction, starvation or drain. Reject evidence is searched
    // from `win0` — the *previous* segment's exec start — not g0: the
    // engines pipeline pops, so the refusals explaining a gap often fire
    // while the worker is still finishing its last task. And once MultiPrio
    // evicts, the task leaves this worker's heap for good, so the refusals
    // stop while the parking persists: a reject-evidenced terminal gap stays
    // eviction for as long as the platform still had work starting, and only
    // the true tail (nothing left to start anywhere) counts as drain.
    const auto attribute = [&](double g0, double g1, const Seg* next, double win0) {
      if (lost_at[wi] < g1) {
        const double cut = std::max(g0, lost_at[wi]);
        blame.by_cause[static_cast<std::size_t>(IdleCause::Drain)] += g1 - cut;
        g1 = cut;
      }
      if (g1 <= g0) return;
      if (next != nullptr) {
        const double dep = std::min(next->stall, g1 - g0);
        blame.by_cause[static_cast<std::size_t>(IdleCause::DepWait)] += dep;
        g1 -= dep;
        if (g1 <= g0) return;
      }
      const auto& rj = rejects[wi];
      const auto first = std::lower_bound(rj.begin(), rj.end(), win0);
      const auto last = std::upper_bound(first, rj.end(), g1);
      if (first == last) {
        const IdleCause c = next != nullptr ? IdleCause::Starvation : IdleCause::Drain;
        blame.by_cause[static_cast<std::size_t>(c)] += g1 - g0;
      } else if (next != nullptr) {
        blame.by_cause[static_cast<std::size_t>(IdleCause::Eviction)] += g1 - g0;
      } else {
        // Terminal gap: eviction-parked up to the later of the last refusal
        // and the platform's last task start, drained after.
        const double parked = std::max(*std::prev(last), last_exec_start);
        const double split = std::clamp(parked, g0, g1);
        blame.by_cause[static_cast<std::size_t>(IdleCause::Eviction)] += split - g0;
        blame.by_cause[static_cast<std::size_t>(IdleCause::Drain)] += g1 - split;
      }
    };

    double cursor = 0.0;
    double win0 = 0.0;
    for (const Seg& s : segs[wi]) {
      if (s.start > cursor) attribute(cursor, s.start, &s, win0);
      cursor = std::max(cursor, s.end);
      win0 = std::max(win0, s.start);
    }
    if (makespan > cursor) attribute(cursor, makespan, nullptr, win0);
  }
}

void RunAnalysis::compute_model_audit(const TaskGraph& graph, const Platform& platform,
                                      std::span<const double> predicted) {
  if (predicted.empty()) return;
  struct Acc {
    std::size_t n = 0;
    double abs_err = 0.0, rel_err = 0.0, signed_err = 0.0;
  };
  std::map<std::pair<std::string, std::size_t>, Acc> by_bucket;
  double total_abs = 0.0;
  std::size_t total_n = 0;
  for (const TraceSegment& s : trace_.segments()) {
    if (s.task.index() >= predicted.size()) continue;
    const double pred = predicted[s.task.index()];
    if (!(pred > 0.0)) continue;  // never popped through the history model
    const double observed = s.end - s.exec_start;
    const ArchType arch = platform.worker(s.worker).arch;
    Acc& acc = by_bucket[{graph.codelet_of(s.task).name, arch_index(arch)}];
    ++acc.n;
    acc.abs_err += std::abs(pred - observed);
    if (observed > 0.0) acc.rel_err += std::abs(pred - observed) / observed;
    acc.signed_err += pred - observed;
    total_abs += std::abs(pred - observed);
    ++total_n;
  }
  for (const auto& [key, acc] : by_bucket) {
    ModelAccuracy m;
    m.codelet = key.first;
    m.arch = static_cast<ArchType>(key.second);
    m.samples = acc.n;
    m.mean_abs_err_s = acc.abs_err / static_cast<double>(acc.n);
    m.mean_rel_err = acc.rel_err / static_cast<double>(acc.n);
    m.bias_s = acc.signed_err / static_cast<double>(acc.n);
    model_.push_back(m);
  }
  if (total_n > 0) model_mae_s_ = total_abs / static_cast<double>(total_n);
}

double RunAnalysis::bound_s() const { return std::max(area_bound_s_, cp_bound_s_); }

double RunAnalysis::efficiency() const {
  const double mk = trace_.makespan();
  return mk > 0.0 ? bound_s() / mk : 0.0;
}

double RunAnalysis::area_efficiency() const {
  const double mk = trace_.makespan();
  return mk > 0.0 ? area_bound_s_ / mk : 0.0;
}

double RunAnalysis::idle_cause_total(IdleCause c) const {
  double sum = 0.0;
  for (const WorkerIdleBlame& b : idle_) sum += b.by_cause[static_cast<std::size_t>(c)];
  return sum;
}

std::string RunAnalysis::to_string() const {
  std::ostringstream os;
  const double mk = trace_.makespan();
  os << "makespan " << fmt_double(mk, 4) << " s; lower bounds: area "
     << fmt_double(area_bound_s_, 4) << " s, critical path " << fmt_double(cp_bound_s_, 4)
     << " s\n";
  os << "efficiency vs bound " << fmt_double(efficiency(), 3) << " (area "
     << fmt_double(area_efficiency(), 3) << ", cp "
     << fmt_double(mk > 0.0 ? cp_bound_s_ / mk : 0.0, 3) << ")\n";
  os << "executed critical path: " << cp_tasks_.size() << " tasks, "
     << fmt_double(cp_exec_s_, 4) << " s exec ("
     << fmt_percent(mk > 0.0 ? cp_exec_s_ / mk : 0.0) << " of makespan)\n";
  if (events_truncated_)
    os << "WARNING: event log truncated; eviction/drain attribution is partial\n";

  Table bt({"worker", "idle (s)", "starvation", "eviction", "dep-wait", "drain"});
  for (const WorkerIdleBlame& b : idle_) {
    bt.add_row({b.name, fmt_double(b.total_idle_s, 4),
                fmt_double(b.by_cause[0], 4), fmt_double(b.by_cause[1], 4),
                fmt_double(b.by_cause[2], 4), fmt_double(b.by_cause[3], 4)});
  }
  bt.add_row({"TOTAL", fmt_double(total_idle_s_, 4),
              fmt_double(idle_cause_total(IdleCause::Starvation), 4),
              fmt_double(idle_cause_total(IdleCause::Eviction), 4),
              fmt_double(idle_cause_total(IdleCause::DepWait), 4),
              fmt_double(idle_cause_total(IdleCause::Drain), 4)});
  os << "idle blame:\n" << bt.to_ascii();

  if (!model_.empty()) {
    Table mt({"codelet", "arch", "samples", "MAE (s)", "mean rel err", "bias (s)"});
    for (const ModelAccuracy& m : model_) {
      mt.add_row({m.codelet, arch_name(m.arch), std::to_string(m.samples),
                  fmt_double(m.mean_abs_err_s, 6), fmt_double(m.mean_rel_err, 4),
                  fmt_double(m.bias_s, 6)});
    }
    os << "perf-model accuracy (predicted vs observed):\n" << mt.to_ascii();
    os << "overall MAE " << fmt_double(model_mae_s_, 6) << " s\n";
  }
  return os.str();
}

}  // namespace mp
