#include "obs/compare.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/csv.hpp"

namespace mp {

namespace {

std::string delta_percent(double a, double b) {
  if (a == 0.0) return "n/a";
  return fmt_percent((b - a) / a, 1);
}

}  // namespace

RunSummary summarize_run(std::string label, const RunAnalysis& analysis,
                         const TraceReport& report, const Trace& trace) {
  RunSummary s;
  s.label = std::move(label);
  s.makespan_s = trace.makespan();
  s.gflops = trace.gflops();
  s.area_bound_s = analysis.area_bound_s();
  s.cp_bound_s = analysis.cp_bound_s();
  s.efficiency = analysis.efficiency();
  s.area_efficiency = analysis.area_efficiency();
  s.critical_path_tasks = analysis.critical_path().size();
  s.critical_path_exec_s = analysis.critical_path_exec_s();
  s.total_idle_s = analysis.total_idle_s();
  for (std::size_t c = 0; c < kNumIdleCauses; ++c)
    s.idle_by_cause[c] = analysis.idle_cause_total(static_cast<IdleCause>(c));
  s.idle = analysis.idle_blame();
  s.codelets = report.codelets();
  s.model = analysis.model_accuracy();
  s.model_mae_s = analysis.model_mean_abs_err_s();
  s.events_truncated = analysis.events_truncated();
  return s;
}

std::string compare_runs(const RunSummary& a, const RunSummary& b) {
  std::ostringstream os;
  os << "== " << a.label << " vs " << b.label << " ==\n";
  if (a.events_truncated || b.events_truncated)
    os << "WARNING: truncated event log in "
       << (a.events_truncated ? a.label : b.label) << "; blame split is partial\n";

  Table head({"metric", a.label, b.label, "delta"});
  head.add_row({"makespan (s)", fmt_double(a.makespan_s, 4), fmt_double(b.makespan_s, 4),
                delta_percent(a.makespan_s, b.makespan_s)});
  head.add_row({"GFlop/s", fmt_double(a.gflops, 1), fmt_double(b.gflops, 1),
                delta_percent(a.gflops, b.gflops)});
  head.add_row({"area bound (s)", fmt_double(a.area_bound_s, 4),
                fmt_double(b.area_bound_s, 4), ""});
  head.add_row({"critical-path bound (s)", fmt_double(a.cp_bound_s, 4),
                fmt_double(b.cp_bound_s, 4), ""});
  head.add_row({"efficiency vs bound", fmt_double(a.efficiency, 3),
                fmt_double(b.efficiency, 3), ""});
  head.add_row({"efficiency vs area", fmt_double(a.area_efficiency, 3),
                fmt_double(b.area_efficiency, 3), ""});
  head.add_row({"critical path (tasks)", std::to_string(a.critical_path_tasks),
                std::to_string(b.critical_path_tasks), ""});
  head.add_row({"critical path exec (s)", fmt_double(a.critical_path_exec_s, 4),
                fmt_double(b.critical_path_exec_s, 4),
                delta_percent(a.critical_path_exec_s, b.critical_path_exec_s)});
  head.add_row({"total idle (s)", fmt_double(a.total_idle_s, 4),
                fmt_double(b.total_idle_s, 4),
                delta_percent(a.total_idle_s, b.total_idle_s)});
  for (std::size_t c = 0; c < kNumIdleCauses; ++c) {
    const auto cause = static_cast<IdleCause>(c);
    head.add_row({std::string("  idle: ") + idle_cause_name(cause),
                  fmt_double(a.idle_by_cause[c], 4), fmt_double(b.idle_by_cause[c], 4),
                  delta_percent(a.idle_by_cause[c], b.idle_by_cause[c])});
  }
  if (!a.model.empty() || !b.model.empty())
    head.add_row({"model MAE (s)", fmt_double(a.model_mae_s, 6),
                  fmt_double(b.model_mae_s, 6), ""});
  os << head.to_ascii();

  // Per-codelet placement/busy deltas, union of both runs, name order.
  std::map<std::string, std::pair<const CodeletReport*, const CodeletReport*>> by_name;
  for (const CodeletReport& c : a.codelets) by_name[c.codelet].first = &c;
  for (const CodeletReport& c : b.codelets) by_name[c.codelet].second = &c;
  const CodeletReport empty_codelet;
  Table ct({"codelet", a.label + " cpu/gpu", b.label + " cpu/gpu",
            a.label + " busy (s)", b.label + " busy (s)", "busy delta"});
  for (const auto& [name, pair] : by_name) {
    const CodeletReport& ca = pair.first != nullptr ? *pair.first : empty_codelet;
    const CodeletReport& cb = pair.second != nullptr ? *pair.second : empty_codelet;
    const double busy_a = ca.busy_cpu_s + ca.busy_gpu_s;
    const double busy_b = cb.busy_cpu_s + cb.busy_gpu_s;
    ct.add_row({name, std::to_string(ca.count_cpu) + "/" + std::to_string(ca.count_gpu),
                std::to_string(cb.count_cpu) + "/" + std::to_string(cb.count_gpu),
                fmt_double(busy_a, 4), fmt_double(busy_b, 4),
                delta_percent(busy_a, busy_b)});
  }
  os << "per-codelet:\n" << ct.to_ascii();

  // Per-worker idle/blame deltas (same platform ⇒ same worker set; extra
  // workers of the longer list are printed against zeros).
  const std::size_t nw = std::max(a.idle.size(), b.idle.size());
  const WorkerIdleBlame empty_blame;
  Table wt({"worker", a.label + " idle (s)", b.label + " idle (s)", "idle delta",
            a.label + " dominant", b.label + " dominant"});
  const auto dominant = [](const WorkerIdleBlame& w) -> std::string {
    if (w.total_idle_s <= 0.0) return "-";
    std::size_t best = 0;
    for (std::size_t c = 1; c < kNumIdleCauses; ++c)
      if (w.by_cause[c] > w.by_cause[best]) best = c;
    return idle_cause_name(static_cast<IdleCause>(best));
  };
  for (std::size_t wi = 0; wi < nw; ++wi) {
    const WorkerIdleBlame& wa = wi < a.idle.size() ? a.idle[wi] : empty_blame;
    const WorkerIdleBlame& wb = wi < b.idle.size() ? b.idle[wi] : empty_blame;
    wt.add_row({!wa.name.empty() ? wa.name : wb.name, fmt_double(wa.total_idle_s, 4),
                fmt_double(wb.total_idle_s, 4),
                delta_percent(wa.total_idle_s, wb.total_idle_s), dominant(wa),
                dominant(wb)});
  }
  os << "per-worker idle:\n" << wt.to_ascii();

  // δ(t,a) accuracy side by side (same predictions feed both schedulers'
  // gain computations, but each run only exercises the placements it chose).
  if (!a.model.empty() || !b.model.empty()) {
    std::map<std::pair<std::string, std::size_t>,
             std::pair<const ModelAccuracy*, const ModelAccuracy*>> model_by_key;
    for (const ModelAccuracy& m : a.model)
      model_by_key[{m.codelet, arch_index(m.arch)}].first = &m;
    for (const ModelAccuracy& m : b.model)
      model_by_key[{m.codelet, arch_index(m.arch)}].second = &m;
    Table mt({"codelet", "arch", a.label + " MAE (s)", b.label + " MAE (s)",
              a.label + " bias (s)", b.label + " bias (s)"});
    for (const auto& [key, pair] : model_by_key) {
      const auto cell = [](const ModelAccuracy* m, double ModelAccuracy::* field) {
        return m != nullptr ? fmt_double(m->*field, 6) : std::string("-");
      };
      mt.add_row({key.first, arch_name(static_cast<ArchType>(key.second)),
                  cell(pair.first, &ModelAccuracy::mean_abs_err_s),
                  cell(pair.second, &ModelAccuracy::mean_abs_err_s),
                  cell(pair.first, &ModelAccuracy::bias_s),
                  cell(pair.second, &ModelAccuracy::bias_s)});
    }
    os << "perf-model accuracy:\n" << mt.to_ascii();
  }
  return os.str();
}

}  // namespace mp
