// SchedObserver: the hook the engines thread through SchedContext so
// policies and runtimes can report their decisions.
//
// The contract is built around a null fast path: a SchedContext with
// observer == nullptr costs exactly one pointer test per decision site —
// no event is even constructed. When an observer is attached, events go to
// a bounded, thread-safe EventLog (drop-oldest ring with per-kind totals
// that survive drops) and instruments live in a MetricsRegistry.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "verify/sync.hpp"

namespace mp {

/// Bounded, thread-safe event sink. Keeps the most recent `capacity` events
/// (a full log drops its oldest entries, never blocks) and counts every
/// appended event per kind regardless of drops, so aggregate checks like
/// "EVICT events == eviction_total()" hold even on over-long runs.
class EventLog {
 public:
  /// `reserve_upfront` pre-allocates the full ring at construction instead
  /// of growing it lazily. Lazy growth keeps idle logs tiny, but each
  /// vector regrow happens *inside* append()'s lock and stalls every
  /// concurrent emitter — measurement-grade runs (bench_overhead) pay the
  /// memory up front to keep append() allocation-free.
  explicit EventLog(std::size_t capacity = kDefaultCapacity,
                    bool reserve_upfront = false);

  /// Records the event, stamping a globally ordered seq.
  void append(SchedEvent e);

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<SchedEvent> snapshot() const;

  [[nodiscard]] std::size_t size() const;      ///< retained
  [[nodiscard]] std::size_t dropped() const;   ///< overwritten by the ring
  [[nodiscard]] std::uint64_t recorded() const;  ///< total appended ever
  /// Total appended events of `k` (drop-proof).
  [[nodiscard]] std::uint64_t count(SchedEventKind k) const;

  /// CSV of the retained events (one row per event, full payload).
  [[nodiscard]] std::string to_csv() const;

  /// Drop accounting consistency: retained + dropped == recorded, and the
  /// per-kind totals sum to recorded. Always true unless appends raced —
  /// one of the structural invariants the verification oracle evaluates.
  [[nodiscard]] bool accounting_ok() const;

  static constexpr std::size_t kDefaultCapacity = 1u << 20;

 private:
  mutable Mutex mu_;
  std::size_t capacity_;
  std::vector<SchedEvent> ring_;
  std::size_t head_ = 0;  // next overwrite position once full
  std::size_t dropped_ = 0;
  std::uint64_t next_seq_ = 0;
  std::array<std::uint64_t, kNumSchedEventKinds> counts_{};
};

/// The interface threaded through SchedContext. Implementations must be
/// safe to call from concurrent worker threads (the ThreadExecutor emits
/// under its own lock, but metrics instruments are touched outside it).
class SchedObserver {
 public:
  virtual ~SchedObserver() = default;
  virtual void record(const SchedEvent& e) = 0;
  /// Registry for named instruments; nullptr when the observer keeps none.
  [[nodiscard]] virtual MetricsRegistry* metrics() { return nullptr; }
};

/// Accepts and discards everything — the "observer attached but disabled"
/// configuration used to bound the instrumentation overhead (bench_overhead
/// compares it against the observer-absent baseline).
class NullObserver final : public SchedObserver {
 public:
  void record(const SchedEvent&) override {}
};

/// The standard observer: bounded EventLog + MetricsRegistry.
class RecordingObserver final : public SchedObserver {
 public:
  explicit RecordingObserver(std::size_t event_capacity = EventLog::kDefaultCapacity,
                             bool reserve_upfront = false)
      : log_(event_capacity, reserve_upfront) {}

  void record(const SchedEvent& e) override { log_.append(e); }
  [[nodiscard]] MetricsRegistry* metrics() override { return &metrics_; }

  [[nodiscard]] const EventLog& events() const { return log_; }
  [[nodiscard]] const MetricsRegistry& metrics_registry() const { return metrics_; }

  /// Human-readable rollup: per-kind event totals, drops, every instrument.
  [[nodiscard]] std::string rollup() const;

 private:
  EventLog log_;
  MetricsRegistry metrics_;
};

}  // namespace mp
