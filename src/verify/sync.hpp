// mp::sync — the concurrency shim every concurrency-bearing layer of the
// runtime builds on.
//
// In normal builds (MP_VERIFY off) the names below are plain aliases of the
// std primitives: zero code, zero overhead, identical semantics. Under
// -DMP_VERIFY=1 they become *controlled* primitives that route every
// acquire/release/load/store through mp::verify::Controller, the
// deterministic interleaving explorer (src/verify/controller.hpp): exactly
// one managed thread runs at a time, the explorer picks who proceeds at
// every visible operation, and structural-invariant probes fire whenever a
// mutex is released. Outside an active exploration the controlled types
// fall back to their embedded std primitives, so a verify build still runs
// the ordinary test suite correctly.
//
// The custom lint (tools/lint.sh) rejects naked std::mutex / std::thread /
// std::atomic anywhere in src/ outside this directory — all runtime code
// must go through this header so the explorer sees every synchronization
// event.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <tuple>
#include <utility>

#ifdef MP_VERIFY

namespace mp {

class VMutex;
class VCondVar;

namespace verify {

/// Visible-operation kinds, the alphabet of a schedule trace.
enum class OpKind {
  MutexLock,
  MutexUnlock,
  CvWait,
  CvNotify,
  AtomicLoad,
  AtomicStore,
  AtomicRmw,
  Yield,
  ThreadSpawn,
  ThreadJoin,
  ThreadExit,
  TimeRead,
  Sleep,
};

/// True when the calling thread is managed by an active exploration (and is
/// not currently inside an invariant probe). All shim fast paths branch on
/// this single predicate.
[[nodiscard]] bool managed();

/// True when some managed thread currently holds `m` (the managed-mode view;
/// always false outside an exploration). Probe-context helper: invariant
/// oracles that audit state guarded by locks *finer* than the probe's own
/// guard use it as a quiescence gate — skip the audit while a suspended
/// thread sits inside one of those critical sections.
[[nodiscard]] bool mutex_is_held(const VMutex& m);

/// Announce + possibly preempt before a non-blocking visible op.
void op_point(OpKind kind, const void* obj, const char* what);

// Blocking-op entry points (implemented by the Controller).
void ctl_mutex_lock(VMutex* m);
bool ctl_mutex_try_lock(VMutex* m);
void ctl_mutex_unlock(VMutex* m);
void ctl_cv_wait(VCondVar* cv, VMutex* m);
/// Timed wait; returns false when the wake was a (modelled) timeout.
bool ctl_cv_wait_timed(VCondVar* cv, VMutex* m);
void ctl_cv_notify(VCondVar* cv, bool all);
[[nodiscard]] double ctl_now_seconds();
void ctl_sleep(double seconds);

struct ManagedThread;  // opaque handle (controller-internal)
ManagedThread* ctl_thread_spawn(std::function<void()> fn);
void ctl_thread_join(ManagedThread* t);

}  // namespace verify

/// Controlled std::mutex. Managed mode never touches `real_`: mutual
/// exclusion is enforced by the controller's one-runnable-thread token, and
/// `v_held_`/`v_owner_` only exist so the explorer can tell who may proceed
/// (and so a double-unlock or an unlock by a non-owner is a violation, not
/// silent UB).
class VMutex {
 public:
  VMutex() = default;
  VMutex(const VMutex&) = delete;
  VMutex& operator=(const VMutex&) = delete;

  void lock() {
    if (verify::managed()) {
      verify::ctl_mutex_lock(this);
      return;
    }
    real_.lock();
  }
  bool try_lock() {
    if (verify::managed()) return verify::ctl_mutex_try_lock(this);
    return real_.try_lock();
  }
  void unlock() {
    if (verify::managed()) {
      verify::ctl_mutex_unlock(this);
      return;
    }
    real_.unlock();
  }

 private:
  friend class verify_controller_access;
  std::mutex real_;
  // Managed-mode state, guarded by the controller's own lock.
  bool v_held_ = false;
  std::uint32_t v_owner_ = 0;
};

/// Controlled condition variable over VMutex. The unmanaged path uses
/// condition_variable_any (VMutex is a BasicLockable, not std::mutex).
class VCondVar {
 public:
  VCondVar() = default;
  VCondVar(const VCondVar&) = delete;
  VCondVar& operator=(const VCondVar&) = delete;

  void notify_one() {
    if (verify::managed()) {
      verify::ctl_cv_notify(this, false);
      return;
    }
    real_.notify_one();
  }
  void notify_all() {
    if (verify::managed()) {
      verify::ctl_cv_notify(this, true);
      return;
    }
    real_.notify_all();
  }

  void wait(std::unique_lock<VMutex>& lk) {
    if (verify::managed()) {
      verify::ctl_cv_wait(this, lk.mutex());
      return;
    }
    real_.wait(lk);
  }

  template <typename Pred>
  void wait(std::unique_lock<VMutex>& lk, Pred pred) {
    while (!pred()) wait(lk);
  }

  /// Timed predicate wait. Managed mode has no wall clock: the "timeout"
  /// fires exactly when the explorer decides no untimed progress is
  /// possible, which both models arbitrarily slow threads and keeps
  /// exploration deadlock-free for code that uses timed retries.
  template <typename Rep, typename Period, typename Pred>
  bool wait_for(std::unique_lock<VMutex>& lk,
                const std::chrono::duration<Rep, Period>& dur, Pred pred) {
    if (verify::managed()) {
      while (!pred()) {
        if (!verify::ctl_cv_wait_timed(this, lk.mutex())) return pred();
      }
      return true;
    }
    return real_.wait_for(lk, dur, std::move(pred));
  }

 private:
  friend class verify_controller_access;
  std::condition_variable_any real_;
};

/// Controlled atomic. Managed mode performs the operation with the token
/// held (single runnable thread), so a relaxed op on the embedded atomic is
/// enough; the value stays genuinely atomic for unmanaged (real-thread) use.
template <typename T>
class VAtomic {
 public:
  VAtomic() noexcept : v_(T{}) {}
  explicit VAtomic(T v) noexcept : v_(v) {}
  VAtomic(const VAtomic&) = delete;
  VAtomic& operator=(const VAtomic&) = delete;

  T load(std::memory_order mo = std::memory_order_seq_cst) const {
    if (verify::managed()) {
      verify::op_point(verify::OpKind::AtomicLoad, this, "atomic.load");
      return v_.load(std::memory_order_relaxed);
    }
    return v_.load(mo);
  }
  void store(T v, std::memory_order mo = std::memory_order_seq_cst) {
    if (verify::managed()) {
      verify::op_point(verify::OpKind::AtomicStore, this, "atomic.store");
      v_.store(v, std::memory_order_relaxed);
      return;
    }
    v_.store(v, mo);
  }
  T fetch_add(T d, std::memory_order mo = std::memory_order_seq_cst) {
    if (verify::managed()) {
      verify::op_point(verify::OpKind::AtomicRmw, this, "atomic.fetch_add");
      return v_.fetch_add(d, std::memory_order_relaxed);
    }
    return v_.fetch_add(d, mo);
  }
  T exchange(T v, std::memory_order mo = std::memory_order_seq_cst) {
    if (verify::managed()) {
      verify::op_point(verify::OpKind::AtomicRmw, this, "atomic.exchange");
      return v_.exchange(v, std::memory_order_relaxed);
    }
    return v_.exchange(v, mo);
  }
  operator T() const { return load(); }  // NOLINT(google-explicit-constructor)
  T operator++() { return fetch_add(T{1}) + T{1}; }
  T operator++(int) { return fetch_add(T{1}); }
  T operator+=(T d) { return fetch_add(d) + d; }

 private:
  std::atomic<T> v_;
};

/// Controlled thread. Created by a managed thread → registered with the
/// controller (spawn/join are visible ops); created outside an exploration
/// → a plain std::thread.
class VThread {
 public:
  VThread() noexcept = default;

  explicit VThread(std::function<void()> fn) {
    if (verify::managed()) {
      managed_ = verify::ctl_thread_spawn(std::move(fn));
    } else {
      real_ = std::thread(std::move(fn));
    }
  }

  template <typename F, typename... Args,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, VThread> &&
                                        !std::is_same_v<std::decay_t<F>, std::function<void()>>>>
  explicit VThread(F&& f, Args&&... args)
      : VThread(std::function<void()>(
            [fn = std::forward<F>(f),
             tup = std::make_tuple(std::forward<Args>(args)...)]() mutable {
              std::apply(fn, tup);
            })) {}

  VThread(VThread&& o) noexcept
      : real_(std::move(o.real_)), managed_(std::exchange(o.managed_, nullptr)) {}
  VThread& operator=(VThread&& o) noexcept {
    if (this != &o) {
      real_ = std::move(o.real_);
      managed_ = std::exchange(o.managed_, nullptr);
    }
    return *this;
  }
  VThread(const VThread&) = delete;
  VThread& operator=(const VThread&) = delete;
  ~VThread() = default;  // managed threads are reaped by the controller

  [[nodiscard]] bool joinable() const { return managed_ != nullptr || real_.joinable(); }
  void join() {
    if (managed_ != nullptr) {
      verify::ctl_thread_join(std::exchange(managed_, nullptr));
      return;
    }
    real_.join();
  }

 private:
  std::thread real_;
  verify::ManagedThread* managed_ = nullptr;
};

using Mutex = VMutex;
using CondVar = VCondVar;
template <typename T>
using Atomic = VAtomic<T>;
using Thread = VThread;

/// Explicit yield point: a place the explorer may preempt even though no
/// sync primitive is touched — the hooks that make a *skipped* lock
/// observable (a correctly locked region never yields here: the controller
/// suppresses preemption while the caller holds a shim mutex).
inline void verify_point(const char* what, const void* obj = nullptr) {
  if (verify::managed()) verify::op_point(verify::OpKind::Yield, obj, what);
}

/// Wall clock in normal builds, the deterministic logical clock during an
/// exploration (every visible op advances it by a fixed quantum).
inline double sync_now_seconds() {
  if (verify::managed()) return verify::ctl_now_seconds();
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

template <typename Rep, typename Period>
void sync_sleep_for(const std::chrono::duration<Rep, Period>& dur) {
  if (verify::managed()) {
    verify::ctl_sleep(std::chrono::duration<double>(dur).count());
    return;
  }
  std::this_thread::sleep_for(dur);
}

}  // namespace mp

#else  // !MP_VERIFY ------------------------------------------------------

namespace mp {

using Mutex = std::mutex;
using CondVar = std::condition_variable;
template <typename T>
using Atomic = std::atomic<T>;
using Thread = std::thread;

inline void verify_point(const char* /*what*/, const void* /*obj*/ = nullptr) {}

inline double sync_now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

template <typename Rep, typename Period>
void sync_sleep_for(const std::chrono::duration<Rep, Period>& dur) {
  std::this_thread::sleep_for(dur);
}

}  // namespace mp

#endif  // MP_VERIFY

// --- RelaxedAtomic: shared by both build modes ------------------------------
//
// A deliberately *relaxed* atomic that is INVISIBLE to the interleaving
// explorer: no op_point, no preemption, identical code under MP_VERIFY and
// normal builds. It exists for racy-by-design state whose correctness is
// argued structurally and checked by quiescent-point oracles rather than by
// exploring every load/store interleaving — the sharded scheduler's
// best_remaining_work ledger, per-task take flags, ready counters and shard
// epochs (cf. the relaxed multi-queue schedulers of Postnikova et al., where
// statistical state tolerates bounded staleness). Using it for state that
// *does* need happens-before ordering would silently shrink the explored
// space — that is what mp::Atomic is for.
namespace mp {

template <typename T>
class RelaxedAtomic {
 public:
  RelaxedAtomic() noexcept : v_(T{}) {}
  explicit RelaxedAtomic(T v) noexcept : v_(v) {}
  RelaxedAtomic(const RelaxedAtomic&) = delete;
  RelaxedAtomic& operator=(const RelaxedAtomic&) = delete;
  // Movable so containers can be sized at construction; a move is NOT atomic
  // and must only happen before the object is shared between threads.
  RelaxedAtomic(RelaxedAtomic&& o) noexcept
      : v_(o.v_.load(std::memory_order_relaxed)) {}
  RelaxedAtomic& operator=(RelaxedAtomic&& o) noexcept {
    v_.store(o.v_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    return *this;
  }

  [[nodiscard]] T load() const { return v_.load(std::memory_order_relaxed); }
  void store(T v) { v_.store(v, std::memory_order_relaxed); }
  /// Acquire/release pair for one-way publication (grow-only stores whose
  /// readers must see the published element fully initialized — the
  /// MemoryManager's handle-state directory). Still explorer-invisible:
  /// publication is monotonic, so every interleaving of these is benign.
  [[nodiscard]] T load_acquire() const { return v_.load(std::memory_order_acquire); }
  void store_release(T v) { v_.store(v, std::memory_order_release); }
  T exchange(T v) { return v_.exchange(v, std::memory_order_relaxed); }
  bool compare_exchange(T& expected, T desired) {
    return v_.compare_exchange_strong(expected, desired,
                                      std::memory_order_relaxed,
                                      std::memory_order_relaxed);
  }
  T fetch_add(T d) { return v_.fetch_add(d, std::memory_order_relaxed); }
  T fetch_sub(T d) { return v_.fetch_sub(d, std::memory_order_relaxed); }
  T fetch_and(T d) { return v_.fetch_and(d, std::memory_order_relaxed); }
  T fetch_or(T d) { return v_.fetch_or(d, std::memory_order_relaxed); }

  /// CAS-loop add for types without lock-free fetch_add (double). The
  /// arithmetic matches a plain `x += d`, so coarse and sharded modes of a
  /// policy produce bit-identical ledgers in single-threaded engines.
  T add(T d) {
    T cur = load();
    while (!compare_exchange(cur, cur + d)) {
    }
    return cur + d;
  }
  /// CAS-loop subtract clamped at zero (best_remaining_work debit: diversion
  /// debits may legally exceed the outstanding credits).
  T sub_clamped(T d) {
    T cur = load();
    T next;
    do {
      next = cur - d;
      if (next < T{}) next = T{};
    } while (!compare_exchange(cur, next));
    return next;
  }

 private:
  std::atomic<T> v_;
};

}  // namespace mp
