// Seeded-mutation hooks: deliberately re-introducible concurrency bugs that
// prove the interleaving explorer's detector actually detects.
//
// Each Mutation names one specific bug the verification suite must catch
// within its exploration budget:
//  - SkipExecutorLock: ThreadExecutor calls Scheduler::pop() without holding
//    the executor mutex — two workers can interleave inside MultiPrio's POP.
//  - SkipBrwDecrement: MultiPrioScheduler::take() skips the
//    best_remaining_work debit — the ledger drifts above the sum of the
//    pending PUSH credits.
//  - SkipNodeLock: the sharded MultiPrioScheduler's POP path skips acquiring
//    its memory node's shard lock — two workers of the same node can
//    interleave inside candidate selection / eviction / take against each
//    other and against a locked PUSH.
//
// The hooks are compiled to constant-false outside MP_VERIFY builds, so
// production binaries carry no mutation code path at all.
#pragma once

namespace mp::verify {

enum class Mutation {
  None,
  SkipExecutorLock,
  SkipBrwDecrement,
  SkipNodeLock,
};

#ifdef MP_VERIFY

void set_active_mutation(Mutation m);
[[nodiscard]] Mutation active_mutation();
[[nodiscard]] inline bool mutation_active(Mutation m) {
  return active_mutation() == m;
}

/// RAII arm/disarm for tests.
class ScopedMutation {
 public:
  explicit ScopedMutation(Mutation m) { set_active_mutation(m); }
  ~ScopedMutation() { set_active_mutation(Mutation::None); }
  ScopedMutation(const ScopedMutation&) = delete;
  ScopedMutation& operator=(const ScopedMutation&) = delete;
};

#else

inline void set_active_mutation(Mutation /*m*/) {}
[[nodiscard]] constexpr Mutation active_mutation() { return Mutation::None; }
[[nodiscard]] constexpr bool mutation_active(Mutation /*m*/) { return false; }

class ScopedMutation {
 public:
  explicit ScopedMutation(Mutation /*m*/) {}
  ScopedMutation(const ScopedMutation&) = delete;
  ScopedMutation& operator=(const ScopedMutation&) = delete;
};

#endif

}  // namespace mp::verify
