// Explorer API pieces shared by both build flavours. The controlled
// scheduler itself lives in controller.cpp (MP_VERIFY builds); without
// MP_VERIFY this TU provides the inert stubs so callers compile uniformly.
#include "verify/explore.hpp"

#include <sstream>

namespace mp::verify {

std::string ExploreResult::summary() const {
  std::ostringstream os;
  os << "explored " << schedules << " schedule" << (schedules == 1 ? "" : "s");
  if (exhausted) os << " (exhaustive: schedule space fully covered)";
  if (truncated > 0) os << ", " << truncated << " truncated by the step budget";
  if (violation) {
    os << "\nVIOLATION: " << violation_message << '\n' << violation_trace;
  } else {
    os << ", no violation";
  }
  return os.str();
}

#ifndef MP_VERIFY

bool exploration_supported() { return false; }

ExploreResult explore(const std::function<void()>& /*body*/,
                      const ExploreConfig& /*cfg*/) {
  return ExploreResult{};  // inert without -DMP_VERIFY=1
}

#endif

}  // namespace mp::verify
