// Controlled-scheduler implementation (MP_VERIFY builds only; normal builds
// compile this TU to nothing). See controller.hpp for the model.
#ifdef MP_VERIFY

#include "verify/controller.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "verify/explore.hpp"
#include "verify/mutation.hpp"
#include "verify/sync.hpp"

namespace mp {

/// Grants the controller access to the shim types' managed-mode fields.
class verify_controller_access {
 public:
  static bool& held(VMutex& m) { return m.v_held_; }
  static std::uint32_t& owner(VMutex& m) { return m.v_owner_; }
  static bool held_value(const VMutex& m) { return m.v_held_; }
};

namespace verify {

// v_held_ is guarded by the controller's big lock; probes run on the
// releasing thread with that lock held, so this read is race-free in the
// only context it is meant for. Outside an exploration it is always false.
bool mutex_is_held(const VMutex& m) {
  return verify_controller_access::held_value(m);
}

namespace {

using access = verify_controller_access;

/// Internal unwind for a schedule that overran its step budget.
struct RunAbort {};

constexpr double kTimeQuantum = 1e-6;  // logical seconds per visible op

const char* op_name(OpKind k) {
  switch (k) {
    case OpKind::MutexLock: return "lock";
    case OpKind::MutexUnlock: return "unlock";
    case OpKind::CvWait: return "cv-wait";
    case OpKind::CvNotify: return "cv-notify";
    case OpKind::AtomicLoad: return "a-load";
    case OpKind::AtomicStore: return "a-store";
    case OpKind::AtomicRmw: return "a-rmw";
    case OpKind::Yield: return "yield";
    case OpKind::ThreadSpawn: return "spawn";
    case OpKind::ThreadJoin: return "join";
    case OpKind::ThreadExit: return "exit";
    case OpKind::TimeRead: return "time";
    case OpKind::Sleep: return "sleep";
  }
  return "?";
}

bool op_is_read(OpKind k) {
  return k == OpKind::AtomicLoad || k == OpKind::TimeRead || k == OpKind::Yield;
}

/// Partial-order independence: ops on different objects always commute;
/// on the same object only two reads do. Objectless ops are thread-local.
bool ops_independent(OpKind k1, const void* o1, OpKind k2, const void* o2) {
  if (o1 == nullptr || o2 == nullptr) return true;
  if (o1 != o2) return true;
  return op_is_read(k1) && op_is_read(k2);
}

}  // namespace

struct ManagedThread {
  enum class Status { Runnable, BlockedMutex, BlockedCv, BlockedCvTimed, BlockedJoin, Finished };

  std::uint32_t id = 0;
  Status status = Status::Runnable;
  const void* wait_obj = nullptr;
  bool timed_out = false;  ///< last cv wake was a modelled timeout
  bool active = false;     ///< holds the run token
  int mutexes_held = 0;
  // The published pending op (about to execute).
  OpKind pk = OpKind::Yield;
  const void* pobj = nullptr;
  const char* pwhat = "thread.start";
  std::function<void()> body;
  std::thread os;
  double priority = 0.0;  // PCT
};

namespace {

class Controller;
Controller* g_active = nullptr;           // set for the duration of explore()
thread_local ManagedThread* tls_self = nullptr;
thread_local bool tls_in_probe = false;
Mutation g_mutation = Mutation::None;

class Controller {
 public:
  explicit Controller(const ExploreConfig& cfg) : cfg_(cfg) {}

  ExploreResult run_all(const std::function<void()>& body) {
    ExploreResult res;
    for (std::size_t i = 0; i < cfg_.max_schedules; ++i) {
      run_one(body, i);
      ++res.schedules;
      if (violation_) {
        res.violation = true;
        res.violation_message = violation_msg_;
        res.violation_trace = format_trace();
        break;
      }
      if (truncated_) ++res.truncated;
      if (cfg_.mode == ExploreConfig::Mode::Exhaustive && !advance_dfs()) {
        res.exhausted = true;
        break;
      }
    }
    return res;
  }

  // ---- shim entry points (called by the active managed thread) -----------

  void op_point(OpKind k, const void* obj, const char* what) {
    std::unique_lock lk(big_);
    ManagedThread* self = tls_self;
    check_unwind();
    // Explicit yield points preempt only outside critical sections: a
    // correctly locked region must not explode the schedule tree, while a
    // *skipped* lock leaves these points preemptible — which is exactly how
    // the skipped-lock mutation becomes observable.
    if (k == OpKind::Yield && self->mutexes_held > 0) return;
    publish(self, k, obj, what);
    yield_token(lk, self);
    execute_record(self);
  }

  void mutex_lock(VMutex* m) {
    std::unique_lock lk(big_);
    ManagedThread* self = tls_self;
    check_unwind();
    publish(self, OpKind::MutexLock, m, "mutex.lock");
    yield_token(lk, self);
    acquire_locked(lk, self, m);
    execute_record(self);
  }

  bool mutex_try_lock(VMutex* m) {
    std::unique_lock lk(big_);
    ManagedThread* self = tls_self;
    check_unwind();
    publish(self, OpKind::MutexLock, m, "mutex.try_lock");
    yield_token(lk, self);
    const bool ok = !access::held(*m);
    if (ok) {
      access::held(*m) = true;
      access::owner(*m) = self->id;
      ++self->mutexes_held;
    }
    execute_record(self);
    return ok;
  }

  void mutex_unlock(VMutex* m) {
    std::unique_lock lk(big_);
    ManagedThread* self = tls_self;
    // Unlike every other visible op, an unlock must not throw while the run
    // is being torn down: it is reached from unique_lock/lock_guard
    // destructors during ViolationUnwind/RunAbort unwinding, where a second
    // exception would escalate straight to std::terminate. Release the
    // managed state silently instead.
    if (stop_ || abort_run_) {
      if (access::held(*m) && access::owner(*m) == self->id)
        release_locked(self, m);
      return;
    }
    publish(self, OpKind::MutexUnlock, m, "mutex.unlock");
    // No pre-unlock preemption: an unlock only enables behaviour, and every
    // op of another thread commutes with it (sleep sets would prune the
    // duplicate order anyway).
    if (!access::held(*m) || access::owner(*m) != self->id)
      violation_and_throw(lk, "unlock of a mutex this thread does not hold");
    release_locked(self, m);
    execute_record(self);
    try {
      run_probes(lk, m);
    } catch (ViolationUnwind&) {
      // A probe tripped at this unlock. The violation and stop_ are already
      // recorded (set_violation_locked ran inside the probe), but this unlock
      // may be a lock_guard/unique_lock destructor, where letting the
      // exception continue would hit std::terminate. Return normally instead:
      // every managed thread — including this one — unwinds at its next
      // visible op via check_unwind, from a throw-safe context.
    }
  }

  void cv_wait(VCondVar* cv, VMutex* m, bool timed, bool* timeout_out) {
    std::unique_lock lk(big_);
    ManagedThread* self = tls_self;
    check_unwind();
    publish(self, OpKind::CvWait, cv, timed ? "cv.wait_for" : "cv.wait");
    yield_token(lk, self);
    if (!access::held(*m) || access::owner(*m) != self->id)
      violation_and_throw(lk, "condition wait without holding the mutex");
    execute_record(self);
    release_locked(self, m);
    run_probes(lk, m);
    self->status = timed ? ManagedThread::Status::BlockedCvTimed
                         : ManagedThread::Status::BlockedCv;
    self->wait_obj = cv;
    self->timed_out = false;
    transfer_away(lk, self);
    const bool timeout = self->timed_out;
    self->timed_out = false;
    // Reacquire the mutex before returning, as a real condition wait does.
    publish(self, OpKind::MutexLock, m, "cv.reacquire");
    acquire_locked(lk, self, m);
    execute_record(self);
    if (timeout_out != nullptr) *timeout_out = timeout;
  }

  void cv_notify(VCondVar* cv, bool all) {
    std::unique_lock lk(big_);
    ManagedThread* self = tls_self;
    check_unwind();
    publish(self, OpKind::CvNotify, cv, all ? "cv.notify_all" : "cv.notify_one");
    yield_token(lk, self);
    execute_record(self);
    for (auto& t : threads_) {
      if (t->wait_obj != cv) continue;
      if (t->status != ManagedThread::Status::BlockedCv &&
          t->status != ManagedThread::Status::BlockedCvTimed)
        continue;
      t->status = ManagedThread::Status::Runnable;
      t->wait_obj = nullptr;
      t->timed_out = false;
      if (!all) break;
    }
  }

  ManagedThread* thread_spawn(std::function<void()> fn) {
    std::unique_lock lk(big_);
    ManagedThread* self = tls_self;
    check_unwind();
    publish(self, OpKind::ThreadSpawn, nullptr, "thread.spawn");
    yield_token(lk, self);
    auto t = std::make_unique<ManagedThread>();
    t->id = next_tid_++;
    t->body = std::move(fn);
    t->priority = next_priority();
    ManagedThread* raw = t.get();
    threads_.push_back(std::move(t));
    raw->os = std::thread([this, raw] { thread_main(raw); });
    execute_record(self);
    return raw;
  }

  void thread_join(ManagedThread* target) {
    std::unique_lock lk(big_);
    ManagedThread* self = tls_self;
    check_unwind();
    publish(self, OpKind::ThreadJoin, target, "thread.join");
    yield_token(lk, self);
    while (target->status != ManagedThread::Status::Finished) {
      self->status = ManagedThread::Status::BlockedJoin;
      self->wait_obj = target;
      transfer_away(lk, self);
    }
    execute_record(self);
  }

  double now_seconds() {
    std::unique_lock lk(big_);
    ManagedThread* self = tls_self;
    check_unwind();
    publish(self, OpKind::TimeRead, nullptr, "clock.read");
    yield_token(lk, self);
    execute_record(self);
    return logical_time_;
  }

  void sleep_for(double seconds) {
    std::unique_lock lk(big_);
    ManagedThread* self = tls_self;
    check_unwind();
    publish(self, OpKind::Sleep, nullptr, "thread.sleep");
    yield_token(lk, self);
    execute_record(self);
    logical_time_ += seconds;
  }

  // ---- probes and violations ---------------------------------------------

  std::uint64_t add_probe(const VMutex* guard, std::function<void()> check) {
    std::lock_guard lk(big_);
    probes_.push_back(Probe{++next_probe_id_, guard, std::move(check)});
    return next_probe_id_;
  }

  void remove_probe(std::uint64_t id) {
    std::lock_guard lk(big_);
    std::erase_if(probes_, [id](const Probe& p) { return p.id == id; });
  }

  /// Requires big_ held (or called from probe context on the active thread).
  void set_violation_locked(const std::string& msg) {
    if (!violation_) {
      violation_ = true;
      violation_msg_ = msg;
    }
    stop_ = true;
    cv_.notify_all();
  }

  void violation_from_thread(const std::string& msg, bool big_held) {
    if (big_held) {
      set_violation_locked(msg);
    } else {
      std::lock_guard lk(big_);
      set_violation_locked(msg);
    }
    throw ViolationUnwind{};
  }

  [[nodiscard]] bool in_probe() const { return tls_in_probe; }

 private:
  struct Probe {
    std::uint64_t id;
    const VMutex* guard;
    std::function<void()> check;
  };

  struct Node {
    std::vector<std::uint32_t> enabled;  // runnable tids, ascending
    std::set<std::uint32_t> sleep;       // choices proven redundant/explored
    std::uint32_t chosen = 0;
  };

  // ---- per-schedule driver -----------------------------------------------

  void run_one(const std::function<void()>& body, std::size_t index) {
    {
      std::unique_lock lk(big_);
      threads_.clear();  // previous run's threads were joined below
      next_tid_ = 0;
      steps_.clear();
      step_count_ = 0;
      logical_time_ = 0.0;
      branch_idx_ = 0;
      sleep_now_.clear();
      stop_ = false;
      abort_run_ = false;
      truncated_ = false;
      run_done_ = false;
      if (cfg_.mode == ExploreConfig::Mode::Pct) {
        rng_.seed(cfg_.seed + index);
        next_demoted_ = -1.0;
        change_points_.clear();
        const std::size_t horizon = std::max<std::size_t>(
            64, last_run_steps_ > 0 ? last_run_steps_ : 4096);
        for (std::size_t i = 1; i < cfg_.pct_depth; ++i)
          change_points_.insert(rng_() % horizon + 1);
      }
      auto root = std::make_unique<ManagedThread>();
      root->id = next_tid_++;
      root->body = body;
      root->priority = next_priority();
      ManagedThread* raw = root.get();
      threads_.push_back(std::move(root));
      raw->os = std::thread([this, raw] { thread_main(raw); });
      raw->active = true;  // initial token
      cv_.notify_all();
      cv_.wait(lk, [this] { return run_done_; });
      last_run_steps_ = step_count_;
    }
    for (auto& t : threads_)
      if (t->os.joinable()) t->os.join();
  }

  void thread_main(ManagedThread* self) {
    tls_self = self;
    bool run_body = false;
    {
      std::unique_lock lk(big_);
      cv_.wait(lk, [&] { return self->active || stop_ || abort_run_; });
      run_body = !stop_ && !abort_run_;
    }
    if (run_body) {
      try {
        self->body();
      } catch (ViolationUnwind&) {     // unwound by the controller
      } catch (RunAbort&) {            // step budget exceeded
      } catch (const std::exception& e) {
        std::lock_guard lk(big_);
        set_violation_locked(std::string("unhandled exception in managed thread: ") +
                             e.what());
      } catch (...) {
        std::lock_guard lk(big_);
        set_violation_locked("unhandled non-std exception in managed thread");
      }
    }
    thread_exit(self);
    tls_self = nullptr;
  }

  void thread_exit(ManagedThread* self) {
    std::unique_lock lk(big_);
    self->status = ManagedThread::Status::Finished;
    self->active = false;
    if (!stop_ && !abort_run_) {
      publish(self, OpKind::ThreadExit, self, "thread.exit");
      record_step(self);
      for (auto& t : threads_) {
        if (t->status == ManagedThread::Status::BlockedJoin && t->wait_obj == self) {
          t->status = ManagedThread::Status::Runnable;
          t->wait_obj = nullptr;
        }
      }
      ManagedThread* next = nullptr;
      try {
        next = pick_next(nullptr);
      } catch (...) {
        // strategy_choose flagged a replay divergence; the violation is
        // recorded and stop_ is set — nothing to dispatch.
      }
      if (next != nullptr) {
        next->active = true;
        cv_.notify_all();
      } else if (!stop_ && !all_finished()) {
        set_violation_locked(deadlock_message());
      }
    }
    if (all_finished()) {
      run_done_ = true;
      cv_.notify_all();
    }
  }

  // ---- token passing ------------------------------------------------------

  void check_unwind() {
    if (stop_) throw ViolationUnwind{};
    if (abort_run_) throw RunAbort{};
  }

  void publish(ManagedThread* self, OpKind k, const void* obj, const char* what) {
    self->pk = k;
    self->pobj = obj;
    self->pwhat = what;
  }

  /// Scheduling decision; may hand the token to another thread and block
  /// until it comes back. On return the caller holds the token.
  void yield_token(std::unique_lock<std::mutex>& lk, ManagedThread* self) {
    ManagedThread* next = decide(lk, self);
    if (next == self) return;
    next->active = true;
    self->active = false;
    cv_.notify_all();
    cv_.wait(lk, [&] {
      return (self->active && self->status == ManagedThread::Status::Runnable) ||
             stop_ || abort_run_;
    });
    check_unwind();
  }

  /// Gives up the token while `self` is blocked; returns once `self` is
  /// Runnable again and re-scheduled.
  void transfer_away(std::unique_lock<std::mutex>& lk, ManagedThread* self) {
    self->active = false;
    ManagedThread* next = pick_next(nullptr);
    if (next != nullptr) {
      next->active = true;
      cv_.notify_all();
    } else if (!stop_ && !abort_run_ && !all_finished()) {
      set_violation_locked(deadlock_message());
    }
    cv_.wait(lk, [&] {
      return (self->active && self->status == ManagedThread::Status::Runnable) ||
             stop_ || abort_run_;
    });
    check_unwind();
  }

  void acquire_locked(std::unique_lock<std::mutex>& lk, ManagedThread* self,
                      VMutex* m) {
    while (access::held(*m)) {
      self->status = ManagedThread::Status::BlockedMutex;
      self->wait_obj = m;
      transfer_away(lk, self);
    }
    access::held(*m) = true;
    access::owner(*m) = self->id;
    ++self->mutexes_held;
  }

  void release_locked(ManagedThread* self, VMutex* m) {
    access::held(*m) = false;
    --self->mutexes_held;
    for (auto& t : threads_) {
      if (t->status == ManagedThread::Status::BlockedMutex && t->wait_obj == m) {
        t->status = ManagedThread::Status::Runnable;
        t->wait_obj = nullptr;
      }
    }
  }

  [[noreturn]] void violation_and_throw(std::unique_lock<std::mutex>& lk,
                                        const std::string& msg) {
    set_violation_locked(msg);
    lk.unlock();
    throw ViolationUnwind{};
  }

  /// Invariant probes for `m` run on the releasing thread, with the shim in
  /// passthrough mode (tls_in_probe) so probe code may use shim primitives
  /// without re-entering the controller.
  void run_probes(std::unique_lock<std::mutex>& /*lk — held, unwinds on throw*/,
                  const VMutex* m) {
    for (const Probe& p : probes_) {
      if (p.guard != m) continue;
      tls_in_probe = true;
      try {
        p.check();
      } catch (...) {
        // A failing probe threw ViolationUnwind (via report_violation or a
        // tripped MP_CHECK); `lk` unwinds big_ in the caller's scope.
        tls_in_probe = false;
        throw;
      }
      tls_in_probe = false;
    }
  }

  // ---- scheduling strategies ---------------------------------------------

  [[nodiscard]] bool all_finished() const {
    for (const auto& t : threads_)
      if (t->status != ManagedThread::Status::Finished) return false;
    return true;
  }

  std::vector<ManagedThread*> runnable_threads() {
    std::vector<ManagedThread*> out;
    for (auto& t : threads_)
      if (t->status == ManagedThread::Status::Runnable) out.push_back(t.get());
    return out;
  }

  /// Next thread to run when the current one cannot continue (or exited).
  /// Models cv timeouts: when nothing is runnable but timed waiters exist,
  /// they all time out (the explorer then branches over who proceeds).
  ManagedThread* pick_next(ManagedThread* /*hint*/) {
    auto r = runnable_threads();
    if (r.empty()) {
      bool woke = false;
      for (auto& t : threads_) {
        if (t->status == ManagedThread::Status::BlockedCvTimed) {
          t->status = ManagedThread::Status::Runnable;
          t->wait_obj = nullptr;
          t->timed_out = true;
          woke = true;
        }
      }
      if (woke) r = runnable_threads();
    }
    if (r.empty()) return nullptr;
    if (r.size() == 1) return r.front();
    return strategy_choose(r);
  }

  /// Decision point taken by the running thread itself.
  ManagedThread* decide(std::unique_lock<std::mutex>& lk, ManagedThread* self) {
    auto r = runnable_threads();
    if (r.size() <= 1) return self;
    ManagedThread* next = strategy_choose(r);
    (void)lk;
    return next;
  }

  ManagedThread* strategy_choose(const std::vector<ManagedThread*>& runnable) {
    if (cfg_.mode == ExploreConfig::Mode::Pct) {
      ManagedThread* best = runnable.front();
      for (ManagedThread* t : runnable)
        if (t->priority > best->priority) best = t;
      return best;
    }
    // Partial-order reduction: a pending objectless op (clock read, spawn,
    // thread start) is independent with every other transition — see
    // ops_independent — so running it first is a singleton persistent set
    // and needs no DFS branch. This collapses the orderings of thread-local
    // steps, which otherwise dominate the schedule tree. (The logical clock
    // is shared, but it is a modelling device: its value never feeds back
    // into explored control flow, so clock reads count as thread-local.)
    for (ManagedThread* t : runnable)
      if (t->pobj == nullptr) return t;
    // Exhaustive DFS over branching points.
    std::vector<std::uint32_t> enabled;
    enabled.reserve(runnable.size());
    for (ManagedThread* t : runnable) enabled.push_back(t->id);
    std::sort(enabled.begin(), enabled.end());
    std::uint32_t chosen;
    if (branch_idx_ < tree_.size()) {
      Node& n = tree_[branch_idx_];
      if (n.enabled != enabled) {
        set_violation_locked(
            "internal: schedule replay diverged (body is nondeterministic "
            "beyond thread interleaving)");
        throw ViolationUnwind{};
      }
      sleep_now_ = n.sleep;
      chosen = n.chosen;
    } else {
      Node n;
      n.enabled = enabled;
      n.sleep = sleep_now_;
      chosen = enabled.front();
      for (std::uint32_t tid : enabled) {
        if (sleep_now_.count(tid) == 0) {
          chosen = tid;
          break;
        }
      }
      n.chosen = chosen;
      tree_.push_back(std::move(n));
    }
    ++branch_idx_;
    for (ManagedThread* t : runnable)
      if (t->id == chosen) return t;
    set_violation_locked("internal: chosen thread not runnable at replay");
    throw ViolationUnwind{};
  }

  /// DFS backtrack: put the finished choice to sleep, pick the next sibling
  /// not yet proven redundant; false once the whole tree is explored.
  bool advance_dfs() {
    while (!tree_.empty()) {
      Node& n = tree_.back();
      n.sleep.insert(n.chosen);
      for (std::uint32_t tid : n.enabled) {
        if (n.sleep.count(tid) == 0) {
          n.chosen = tid;
          return true;
        }
      }
      tree_.pop_back();
    }
    return false;
  }

  // ---- executed-op bookkeeping -------------------------------------------

  void record_step(ManagedThread* self) {
    steps_.push_back(Step{self->id, self->pk, self->pobj, self->pwhat});
  }

  void execute_record(ManagedThread* self) {
    record_step(self);
    ++step_count_;
    logical_time_ += kTimeQuantum;
    if (step_count_ > cfg_.max_steps) {
      truncated_ = true;
      abort_run_ = true;
      cv_.notify_all();
      throw RunAbort{};
    }
    if (cfg_.mode == ExploreConfig::Mode::Exhaustive && !sleep_now_.empty()) {
      // Sleep-set propagation: the executed transition wakes every sleeping
      // choice it does not commute with.
      sleep_now_.erase(self->id);
      for (auto it = sleep_now_.begin(); it != sleep_now_.end();) {
        const ManagedThread* q = thread_by_id(*it);
        if (q != nullptr &&
            !ops_independent(q->pk, q->pobj, self->pk, self->pobj)) {
          it = sleep_now_.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (cfg_.mode == ExploreConfig::Mode::Pct &&
        change_points_.count(step_count_) != 0) {
      self->priority = next_demoted_;
      next_demoted_ -= 1.0;
    }
  }

  [[nodiscard]] const ManagedThread* thread_by_id(std::uint32_t id) const {
    for (const auto& t : threads_)
      if (t->id == id) return t.get();
    return nullptr;
  }

  double next_priority() {
    if (cfg_.mode != ExploreConfig::Mode::Pct) return 0.0;
    return static_cast<double>(rng_() % 1000003) + 1.0;
  }

  std::string deadlock_message() {
    std::ostringstream os;
    os << "deadlock: no runnable thread (";
    for (const auto& t : threads_) {
      os << 't' << t->id << '=';
      switch (t->status) {
        case ManagedThread::Status::Runnable: os << "runnable"; break;
        case ManagedThread::Status::BlockedMutex: os << "mutex"; break;
        case ManagedThread::Status::BlockedCv: os << "cv"; break;
        case ManagedThread::Status::BlockedCvTimed: os << "cv-timed"; break;
        case ManagedThread::Status::BlockedJoin: os << "join"; break;
        case ManagedThread::Status::Finished: os << "done"; break;
      }
      os << ' ';
    }
    os << ')';
    return os.str();
  }

  std::string format_trace() {
    std::ostringstream os;
    os << "schedule trace (" << steps_.size() << " visible ops):\n";
    for (std::size_t i = 0; i < steps_.size(); ++i) {
      const Step& s = steps_[i];
      os << "  #" << i << " t" << s.tid << ' ' << op_name(s.k) << ' ' << s.what;
      if (s.obj != nullptr) os << " obj=" << s.obj;
      os << '\n';
    }
    return os.str();
  }

  struct Step {
    std::uint32_t tid;
    OpKind k;
    const void* obj;
    const char* what;
  };

  ExploreConfig cfg_;
  std::mutex big_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<ManagedThread>> threads_;
  std::uint32_t next_tid_ = 0;
  bool stop_ = false;       // violation: unwind everything
  bool abort_run_ = false;  // budget overrun: unwind, not a violation
  bool truncated_ = false;
  bool run_done_ = false;
  bool violation_ = false;
  std::string violation_msg_;
  std::vector<Step> steps_;
  std::size_t step_count_ = 0;
  std::size_t last_run_steps_ = 0;
  double logical_time_ = 0.0;
  // Exhaustive mode.
  std::vector<Node> tree_;
  std::size_t branch_idx_ = 0;
  std::set<std::uint32_t> sleep_now_;
  // PCT mode.
  std::mt19937_64 rng_{1};
  std::set<std::size_t> change_points_;
  double next_demoted_ = -1.0;
  // Probes.
  std::vector<Probe> probes_;
  std::uint64_t next_probe_id_ = 0;
};

}  // namespace

// ---- shim glue -------------------------------------------------------------

bool managed() {
  return g_active != nullptr && tls_self != nullptr && !tls_in_probe;
}

void op_point(OpKind kind, const void* obj, const char* what) {
  g_active->op_point(kind, obj, what);
}
void ctl_mutex_lock(VMutex* m) { g_active->mutex_lock(m); }
bool ctl_mutex_try_lock(VMutex* m) { return g_active->mutex_try_lock(m); }
void ctl_mutex_unlock(VMutex* m) { g_active->mutex_unlock(m); }
void ctl_cv_wait(VCondVar* cv, VMutex* m) { g_active->cv_wait(cv, m, false, nullptr); }
bool ctl_cv_wait_timed(VCondVar* cv, VMutex* m) {
  bool timeout = false;
  g_active->cv_wait(cv, m, true, &timeout);
  return !timeout;
}
void ctl_cv_notify(VCondVar* cv, bool all) { g_active->cv_notify(cv, all); }
double ctl_now_seconds() { return g_active->now_seconds(); }
void ctl_sleep(double seconds) { g_active->sleep_for(seconds); }
ManagedThread* ctl_thread_spawn(std::function<void()> fn) {
  return g_active->thread_spawn(std::move(fn));
}
void ctl_thread_join(ManagedThread* t) { g_active->thread_join(t); }

// ---- probes / violations ----------------------------------------------------

ScopedProbe::ScopedProbe(const VMutex* guard, std::function<void()> check) {
  if (g_active != nullptr) id_ = g_active->add_probe(guard, std::move(check));
}

ScopedProbe::~ScopedProbe() {
  if (g_active != nullptr && id_ != 0) g_active->remove_probe(id_);
}

void report_violation(const std::string& msg) {
  if (g_active != nullptr && tls_self != nullptr) {
    g_active->violation_from_thread(msg, tls_in_probe);
  }
  std::fprintf(stderr, "verification violation: %s\n", msg.c_str());
  std::abort();
}

void check_fail_hook(const char* expr, const char* file, int line, const char* msg) {
  if (g_active != nullptr && tls_self != nullptr) {
    std::ostringstream os;
    os << "MP_CHECK failed: " << expr << " at " << file << ':' << line;
    if (msg != nullptr && msg[0] != '\0') os << " — " << msg;
    g_active->violation_from_thread(os.str(), tls_in_probe);
  }
  std::fprintf(stderr, "MP_CHECK failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg != nullptr ? msg : "");
  std::abort();
}

// ---- mutations --------------------------------------------------------------

void set_active_mutation(Mutation m) { g_mutation = m; }
Mutation active_mutation() { return g_mutation; }

// ---- explorer entry ---------------------------------------------------------

bool exploration_supported() { return true; }

ExploreResult explore(const std::function<void()>& body, const ExploreConfig& cfg) {
  if (g_active != nullptr) {
    std::fprintf(stderr, "explore() is not reentrant\n");
    std::abort();
  }
  Controller ctl(cfg);
  g_active = &ctl;
  ExploreResult res = ctl.run_all(body);
  g_active = nullptr;
  return res;
}

}  // namespace verify
}  // namespace mp

#endif  // MP_VERIFY
