// The interleaving explorer's public API.
//
// explore(body, cfg) runs `body` — typically "build a DAG, run
// ThreadExecutor + MultiPrio end-to-end" — over and over under the
// controlled scheduler, one thread interleaving per run, until the schedule
// space is exhausted (Exhaustive mode), the budget is spent, or a violation
// is found. On violation the result carries the full schedule trace (every
// visible op of every managed thread, in execution order), which is enough
// to replay the interleaving by hand.
//
// The API is available in every build so tests compile uniformly;
// exploration_supported() is false without -DMP_VERIFY=1 and explore() then
// returns an empty result without running the body.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace mp::verify {

struct ExploreConfig {
  enum class Mode {
    Exhaustive,  ///< bounded DFS + sleep-set pruning (tiny fixtures)
    Pct,         ///< seeded randomized-priority schedules (larger runs)
  };
  Mode mode = Mode::Exhaustive;
  /// Hard cap on schedules (both modes; Exhaustive may finish earlier).
  std::size_t max_schedules = 10000;
  /// Per-schedule step cap; an overrun aborts that schedule (counted in
  /// `truncated`, never reported as a violation).
  std::size_t max_steps = 200000;
  /// Base seed for Pct (schedule i uses seed + i).
  std::uint64_t seed = 1;
  /// PCT depth d: d − 1 priority-change points per schedule.
  std::size_t pct_depth = 3;
};

struct ExploreResult {
  std::size_t schedules = 0;       ///< schedules actually run
  bool exhausted = false;          ///< DFS proved there is nothing left
  std::size_t truncated = 0;       ///< schedules cut off by max_steps
  bool violation = false;
  std::string violation_message;   ///< what broke (probe / check / deadlock)
  std::string violation_trace;     ///< full schedule, one visible op per line

  [[nodiscard]] std::string summary() const;
};

/// Is the controlled scheduler compiled in (-DMP_VERIFY=1)?
[[nodiscard]] bool exploration_supported();

/// Explores interleavings of `body`. The body must be re-runnable from
/// scratch (each schedule runs it once, start to finish) and perform all
/// its synchronization through the mp::sync shim. Must not be called from
/// inside another exploration.
ExploreResult explore(const std::function<void()>& body,
                      const ExploreConfig& cfg = {});

}  // namespace mp::verify
