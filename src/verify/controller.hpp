// The controlled scheduler behind mp::sync under MP_VERIFY.
//
// One Controller is active per exploration (explore.hpp drives it, one
// schedule at a time). Managed threads are real OS threads, but exactly one
// holds the run token at any instant; every visible operation (see
// verify::OpKind in sync.hpp) first publishes itself as the thread's
// *pending* op and then asks the controller who runs next. That single
// choice point is where the two exploration strategies plug in:
//
//  - Exhaustive: depth-first over all choices at every branching point
//    (≥ 2 runnable threads), with sleep-set pruning — after a choice's
//    subtree is fully explored the choice is put to sleep, and the sleep set
//    propagates to children across transitions it is independent with
//    (different object, or both reads). Sound for the tiny fixtures it is
//    meant for (2–3 workers, 4–8 tasks).
//  - Pct: randomized priority scheduling à la PCT (Burckhardt et al.):
//    threads get random priorities from a seeded RNG, d−1 priority-change
//    points demote the running thread at random step indices, and the
//    highest-priority runnable thread always runs. Each schedule is fully
//    determined by (seed, schedule index).
//
// Violations — a failed invariant probe, an MP_CHECK tripping inside a
// managed thread, a deadlock, an unlock by a non-owner — capture the full
// schedule trace and unwind every managed thread via ViolationUnwind; the
// explorer returns them as data instead of aborting the process.
#pragma once

#ifdef MP_VERIFY

#include <cstdint>
#include <functional>
#include <string>

namespace mp {
class VMutex;
}

namespace mp::verify {

/// Thrown inside managed threads to unwind them on violation or run abort.
/// User code may pass it through a `catch (...)` (the executor's kernel
/// retry does); every subsequent visible op rethrows until the thread's
/// wrapper catches it.
struct ViolationUnwind {};

/// Registers an invariant probe for the current exploration (no-op when no
/// exploration is active). The probe runs every time `guard` is released
/// (unlock or a condition wait) — the moments the guarded state is
/// externally visible — on the releasing thread, with the shim in
/// passthrough mode so the probe can read observer/metrics state freely.
/// The probe calls report_violation() (or lets an MP_CHECK fire) to flag
/// a broken invariant.
class ScopedProbe {
 public:
  ScopedProbe(const VMutex* guard, std::function<void()> check);
  ~ScopedProbe();
  ScopedProbe(const ScopedProbe&) = delete;
  ScopedProbe& operator=(const ScopedProbe&) = delete;

 private:
  std::uint64_t id_ = 0;
};

/// Flags a violation from probe or test code: when an exploration is
/// active, records the message plus the schedule trace and unwinds;
/// otherwise prints and aborts.
[[noreturn]] void report_violation(const std::string& msg);

/// MP_CHECK / MP_ASSERT failures land here in verify builds (see
/// common/check.hpp): inside an exploration they become violations with a
/// schedule trace; outside they abort exactly like a normal build.
[[noreturn]] void check_fail_hook(const char* expr, const char* file, int line,
                                  const char* msg);

}  // namespace mp::verify

#endif  // MP_VERIFY
