#include "sim/platform_presets.hpp"

#include "common/check.hpp"

namespace mp {

namespace {

constexpr std::size_t GiB = std::size_t{1} << 30;

/// Per-kernel rate rows: {name, cpu_gflops, gpu_gflops, gpu_flops_half}.
struct KernelRow {
  const char* name;
  double cpu_gflops;
  double gpu_gflops;
  double gpu_flops_half;
};

void fill_rates(PerfDatabase& db, const KernelRow* rows, std::size_t n,
                double cpu_scale, double gpu_scale, double gpu_overhead_s) {
  for (std::size_t i = 0; i < n; ++i) {
    const KernelRow& r = rows[i];
    db.set_rate(r.name, ArchType::CPU, RateSpec{r.cpu_gflops * cpu_scale, 1e-6, 0.0, 0.0});
    if (r.gpu_gflops > 0.0) {
      db.set_rate(r.name, ArchType::GPU,
                  RateSpec{r.gpu_gflops * gpu_scale, gpu_overhead_s, 0.0,
                           r.gpu_flops_half * gpu_scale});
    }
  }
}

// Baseline (V100-class) sustained per-kernel rates. CPU numbers are per
// Xeon-6142 core; GPU numbers whole-device. flops_half encodes how badly a
// kernel needs volume to reach peak (panel factorizations barely scale).
constexpr KernelRow kKernels[] = {
    // dense tiles
    {"gemm", 45.0, 5200.0, 2.0e9},
    {"syrk", 40.0, 4200.0, 2.0e9},
    {"trsm", 38.0, 2600.0, 2.5e9},
    {"potrf", 34.0, 420.0, 4.0e9},
    {"getrf", 33.0, 380.0, 4.0e9},
    {"geqrt", 28.0, 90.0, 6.0e9},
    {"tsqrt", 26.0, 140.0, 6.0e9},
    {"ormqr", 36.0, 2900.0, 2.5e9},
    {"tsmqr", 36.0, 3100.0, 2.5e9},
    // FMM operators (P2P is dense particle-particle interaction: very
    // GPU-friendly; M2L moderately; tree transfers are CPU-only).
    {"P2P", 28.0, 3300.0, 1.0e9},
    // M2L's irregular interaction-list gathers run far below GPU peak
    // (TBFMM reports modest M2L GPU efficiency); CPUs are competitive.
    {"M2L", 24.0, 280.0, 1.0e9},
    {"P2M", 20.0, -1.0, 0.0},
    {"M2M", 20.0, -1.0, 0.0},
    {"L2L", 20.0, -1.0, 0.0},
    {"L2P", 20.0, -1.0, 0.0},
    // sparse-QR extras (front init/assembly are memory-bound scatter ops).
    {"init_front", 8.0, -1.0, 0.0},
    {"assemble", 10.0, -1.0, 0.0},
};
constexpr std::size_t kNumKernels = sizeof(kKernels) / sizeof(kKernels[0]);

void add_cpu_and_gpus(Platform& p, std::size_t cpu_workers, std::size_t gpus,
                      std::size_t gpu_mem_bytes, double pcie_bytes_per_s,
                      double pcie_latency_s, std::size_t streams_per_gpu) {
  MP_CHECK(streams_per_gpu >= 1);
  p.add_workers(ArchType::CPU, p.ram_node(), cpu_workers);
  for (std::size_t g = 0; g < gpus; ++g) {
    const MemNodeId node =
        p.add_gpu_node(gpu_mem_bytes, pcie_bytes_per_s, pcie_latency_s);
    p.add_workers(ArchType::GPU, node, streams_per_gpu);
  }
}

}  // namespace

PlatformPreset intel_v100(std::size_t streams_per_gpu) {
  PlatformPreset preset;
  preset.name = "Intel-V100";
  // 2× 16 cores; 2 cores drive the 2 GPUs -> 30 CPU workers.
  add_cpu_and_gpus(preset.platform, 30, 2, 16 * GiB, 12.5e9, 10e-6, streams_per_gpu);
  fill_rates(preset.perf, kKernels, kNumKernels, /*cpu_scale=*/1.0,
             /*gpu_scale=*/1.0, /*gpu_overhead_s=*/8e-6);
  preset.perf.set_default(ArchType::CPU, RateSpec{30.0, 1e-6, 0.0, 0.0});
  preset.perf.set_default(ArchType::GPU, RateSpec{1500.0, 8e-6, 0.0, 2.0e9});
  return preset;
}

PlatformPreset amd_a100(std::size_t streams_per_gpu) {
  PlatformPreset preset;
  preset.name = "AMD-A100";
  // 2× 32 cores, each ~2× slower than the Xeon cores; A100s ~3× faster than
  // V100s; PCIe4 and 40 GB device memory.
  add_cpu_and_gpus(preset.platform, 62, 2, 40 * GiB, 24.0e9, 8e-6, streams_per_gpu);
  fill_rates(preset.perf, kKernels, kNumKernels, /*cpu_scale=*/0.5,
             /*gpu_scale=*/3.0, /*gpu_overhead_s=*/8e-6);
  preset.perf.set_default(ArchType::CPU, RateSpec{15.0, 1e-6, 0.0, 0.0});
  preset.perf.set_default(ArchType::GPU, RateSpec{4500.0, 8e-6, 0.0, 6.0e9});
  return preset;
}

PlatformPreset fig4_node() {
  PlatformPreset preset;
  preset.name = "Fig4-1GPU-6CPU";
  add_cpu_and_gpus(preset.platform, 6, 1, 16 * GiB, 12.5e9, 10e-6, 1);
  fill_rates(preset.perf, kKernels, kNumKernels, 1.0, 1.0, 8e-6);
  preset.perf.set_default(ArchType::CPU, RateSpec{30.0, 1e-6, 0.0, 0.0});
  preset.perf.set_default(ArchType::GPU, RateSpec{1500.0, 8e-6, 0.0, 2.0e9});
  return preset;
}

PlatformPreset test_node() {
  PlatformPreset preset;
  preset.name = "Test-1GPU-2CPU";
  add_cpu_and_gpus(preset.platform, 2, 1, 256 << 20, 10.0e9, 5e-6, 1);
  fill_rates(preset.perf, kKernels, kNumKernels, 1.0, 1.0, 8e-6);
  preset.perf.set_default(ArchType::CPU, RateSpec{30.0, 1e-6, 0.0, 0.0});
  preset.perf.set_default(ArchType::GPU, RateSpec{1500.0, 8e-6, 0.0, 2.0e9});
  return preset;
}

}  // namespace mp
