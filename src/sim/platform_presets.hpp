// Simulated platform presets calibrated to the paper's two machines
// (Section VI) plus the small node of the Fig. 4 eviction study.
//
//  * Intel-V100: 2× Xeon Gold 6142 (32 cores), 2× Nvidia V100 16 GB, PCIe3.
//  * AMD-A100:  2× EPYC 7513 (64 cores, each ~2× slower than the Xeon
//    cores), 2× Nvidia A100 40 GB (much faster), PCIe4.
//
// Worker layout follows StarPU: one CPU core per GPU is dedicated to
// driving the device, the rest are CPU workers; `streams_per_gpu` workers
// share each GPU memory node (concurrent CUDA streams, varied in Fig. 6).
//
// Kernel rate tables cover the codelet names used by the bundled
// applications (dense tiles, FMM operators, sparse-QR fronts). Rates are
// per-worker sustained GFlop/s; GPUs additionally have launch overhead and
// a saturation term so small tasks run far below peak.
#pragma once

#include <string>

#include "runtime/perf_model.hpp"
#include "runtime/platform.hpp"

namespace mp {

struct PlatformPreset {
  std::string name;
  Platform platform;
  PerfDatabase perf;
};

/// The Intel-V100 node of the paper (32 cores, 2 V100): 30 CPU workers +
/// `streams_per_gpu` GPU workers per device.
[[nodiscard]] PlatformPreset intel_v100(std::size_t streams_per_gpu = 1);

/// The AMD-A100 node of the paper (64 cores, 2 A100): 62 CPU workers +
/// `streams_per_gpu` GPU workers per device.
[[nodiscard]] PlatformPreset amd_a100(std::size_t streams_per_gpu = 1);

/// The small node of Fig. 4: 1 GPU + 6 CPUs (V100-like rates).
[[nodiscard]] PlatformPreset fig4_node();

/// A tiny 1-GPU + 2-CPU node for fast unit tests.
[[nodiscard]] PlatformPreset test_node();

}  // namespace mp
