// Post-mortem analysis of an execution trace: per-codelet and per-node
// breakdowns of where the time went — the numbers one reads off a StarVZ
// trace when debugging a scheduler decision.
#pragma once

#include <string>
#include <vector>

#include "sim/trace.hpp"

namespace mp {

class RecordingObserver;

/// Aggregated execution statistics for one codelet type.
struct CodeletReport {
  std::string codelet;
  std::size_t count_cpu = 0;
  std::size_t count_gpu = 0;
  double busy_cpu_s = 0.0;
  double busy_gpu_s = 0.0;
  double stall_s = 0.0;  ///< data stalls attributed to this codelet
};

/// Aggregated statistics for one memory node's workers.
struct NodeReport {
  MemNodeId node;
  std::string name;
  std::size_t tasks = 0;
  double busy_s = 0.0;
  double idle_fraction = 0.0;
};

class TraceReport {
 public:
  /// `obs`, when given, contributes its scheduler-event rollup and metrics
  /// to to_string(); the execution statistics never depend on it.
  TraceReport(const Trace& trace, const TaskGraph& graph, const Platform& platform,
              const RecordingObserver* obs = nullptr);

  [[nodiscard]] const std::vector<CodeletReport>& codelets() const { return codelets_; }
  [[nodiscard]] const std::vector<NodeReport>& nodes() const { return nodes_; }

  /// Fraction of all executed task-seconds spent on each architecture.
  [[nodiscard]] double work_share(ArchType a) const;

  /// Length (in seconds of execution) of the practical critical path — the
  /// lower bound the makespan is judged against.
  [[nodiscard]] double critical_path_seconds() const { return critical_path_s_; }

  /// Ratio makespan / max(critical path, work/width): 1.0 = no scheduling
  /// slack left on this trace.
  [[nodiscard]] double efficiency_bound_ratio() const;

  /// Human-readable summary table.
  [[nodiscard]] std::string to_string() const;

 private:
  const Trace& trace_;
  const Platform& platform_;
  const RecordingObserver* obs_ = nullptr;
  std::vector<CodeletReport> codelets_;
  std::vector<NodeReport> nodes_;
  double busy_total_[kNumArchTypes] = {0.0, 0.0};
  double critical_path_s_ = 0.0;
  double work_bound_s_ = 0.0;
};

}  // namespace mp
