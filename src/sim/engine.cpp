#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/multiprio.hpp"
#include "obs/observer.hpp"

namespace mp {

SimEngine::SimEngine(const TaskGraph& graph, const Platform& platform,
                     const PerfDatabase& perf, SimConfig config)
    : graph_(graph), platform_(platform), perf_(perf), cfg_(config) {
  platform_.self_check();
  graph_.self_check();
  link_free_at_.assign(platform.num_nodes(), 0.0);
  pipeline_free_at_.assign(platform.num_workers(), 0.0);
  worker_busy_.assign(platform.num_workers(), false);
  pending_.assign(platform.num_workers(), {});
  trypop_pending_.assign(platform.num_workers(), false);
  exec_end_.assign(graph.num_tasks(), 0.0);
  exec_duration_.assign(graph.num_tasks(), 0.0);
  predicted_.assign(graph.num_tasks(), 0.0);
  attempts_.assign(graph.num_tasks(), 0);
  abandoned_.assign(graph.num_tasks(), false);
  attempt_on_.resize(platform.num_workers());
}

const Trace& SimEngine::trace() const {
  MP_CHECK_MSG(trace_ != nullptr, "run() first");
  return *trace_;
}

const MemoryManager& SimEngine::memory() const {
  MP_CHECK_MSG(memory_ != nullptr, "run() first");
  return *memory_;
}

const HistoryModel& SimEngine::history() const {
  MP_CHECK_MSG(history_ != nullptr, "run() first");
  return *history_;
}

Scheduler& SimEngine::scheduler() {
  MP_CHECK_MSG(sched_ != nullptr, "run() first");
  return *sched_;
}

const WorkerLiveness& SimEngine::liveness() const {
  MP_CHECK_MSG(liveness_ != nullptr, "run() first");
  return *liveness_;
}

void SimEngine::request_prefetch(DataId data, MemNodeId node) {
  if (!running_) return;
  // Prefetching onto a retired device would strand the copy.
  if (platform_.node(node).kind == MemNodeKind::Gpu &&
      liveness_->live_on_node(node) == 0)
    return;
  std::vector<TransferOp> ops;
  memory_->prefetch(data, node, ops);
  (void)charge_transfers(ops, now_);
}

void SimEngine::emit(SchedEventKind kind, TaskId t, WorkerId w) {
  if (cfg_.observer == nullptr) return;
  SchedEvent e;
  e.time = now_;
  e.kind = kind;
  e.task = t;
  e.worker = w;
  if (w.valid()) e.node = platform_.worker(w).node;
  if (t.valid() && t.index() < attempts_.size())
    e.attempt = static_cast<std::uint32_t>(attempts_[t.index()]);
  cfg_.observer->record(e);
}

void SimEngine::schedule_try_pop(WorkerId w, double time) {
  if (!liveness_->alive(w)) return;
  if (trypop_pending_[w.index()]) return;
  trypop_pending_[w.index()] = true;
  event_heap_.push_back(Event{time, next_seq_++, Event::Kind::TryPop, w, TaskId{}});
  std::push_heap(event_heap_.begin(), event_heap_.end(),
                 [](const Event& a, const Event& b) { return a.after(b); });
}

void SimEngine::wake_idle_workers() {
  // Rotate the wake order so no worker class systematically outraces the
  // others to freshly pushed tasks (real workers poll concurrently).
  const std::size_t n = platform_.num_workers();
  for (std::size_t off = 0; off < n; ++off) {
    const std::size_t wi = (wake_rotor_ + off) % n;
    const WorkerId w{wi};
    if (!liveness_->alive(w)) continue;
    const bool slots_free = pending_[wi].size() < cfg_.pipeline_depth;
    const bool wants_work =
        (!worker_busy_[wi] && pending_[wi].empty()) ||
        (worker_busy_[wi] && cfg_.pipeline_depth > 0 && slots_free);
    if (wants_work && sched_->has_work_hint(w)) schedule_try_pop(w, now_);
  }
  wake_rotor_ = (wake_rotor_ + 1) % std::max<std::size_t>(1, n);
}

void SimEngine::push_ready(TaskId t) {
  // After a loss, a newly released task may have no surviving capable
  // worker; handing it to the scheduler would only strand it there.
  if (fstats_.workers_lost > 0 && !has_live_capable_worker(t)) {
    abandon(t);
    return;
  }
  sched_->push(t);
}

bool SimEngine::has_live_capable_worker(TaskId t) const {
  for (const Worker& w : platform_.workers())
    if (liveness_->alive(w.id) && graph_.can_exec(t, w.arch)) return true;
  return false;
}

void SimEngine::abandon(TaskId t) {
  // The whole descendant closure goes with `t`: none of its successors can
  // ever satisfy their dependencies. abandoned_ doubles as the visited set.
  std::vector<TaskId> frontier{t};
  while (!frontier.empty()) {
    const TaskId cur = frontier.back();
    frontier.pop_back();
    if (abandoned_[cur.index()]) continue;
    abandoned_[cur.index()] = true;
    ++fstats_.tasks_abandoned;
    emit(SchedEventKind::TaskAbandoned, cur, WorkerId{});
    for (TaskId s : graph_.successors(cur)) frontier.push_back(s);
  }
}

double SimEngine::charge_transfers(const std::vector<TransferOp>& ops, double start) {
  double done = start;
  for (const TransferOp& op : ops) {
    // A transfer crosses the link of every GPU endpoint it touches; GPU→GPU
    // hops through RAM and serializes on both device links.
    double t = start;
    for (MemNodeId endpoint : {op.from, op.to}) {
      const MemNode& n = platform_.node(endpoint);
      if (n.kind != MemNodeKind::Gpu) continue;
      const double begin = std::max(t, link_free_at_[endpoint.index()]);
      const double wire =
          n.latency_s + static_cast<double>(op.bytes) / n.bandwidth_bytes_per_s;
      link_free_at_[endpoint.index()] = begin + wire;
      t = begin + wire;
    }
    done = std::max(done, t);
  }
  return done;
}

bool SimEngine::fill_pending(WorkerId w) {
  const std::optional<TaskId> popped = sched_->pop(w);
  if (!popped) {
    ++failed_pops_;
    return false;
  }
  const TaskId t = *popped;
  const Worker& worker = platform_.worker(w);
  MP_CHECK_MSG(graph_.can_exec(t, worker.arch), "scheduler mapped task to wrong arch");
  // The δ the scheduler believed when it committed this placement — captured
  // now, because completions keep re-training the history model.
  predicted_[t.index()] = history_->estimate(t, worker.arch);
  std::vector<TransferOp> ops;
  memory_->acquire_for_task(t, worker.node, ops);
  const double ready = charge_transfers(ops, now_);
  memory_->pin_task_data(t, worker.node);

  double duration = perf_.ground_truth(graph_, t, worker.arch);
  if (cfg_.noise_sigma > 0.0) {
    Rng rng = Rng::derive(cfg_.seed, t.value());
    duration *= std::max(0.05, 1.0 + cfg_.noise_sigma * rng.next_normal());
  }
  if (injector_ != nullptr) {
    const double mult = injector_->duration_multiplier(t, attempts_[t.index()]);
    if (mult != 1.0) {
      duration *= mult;
      ++fstats_.stragglers_injected;
      emit(SchedEventKind::FaultStraggler, t, w);
    }
  }

  // Commute mutual exclusion: reserve the handles' serialization points at
  // the task's exact predicted start (durations are deterministic, so the
  // pipeline drain prediction is exact).
  double start_floor = 0.0;
  bool has_commute = false;
  for (const Access& a : graph_.task(t).accesses)
    has_commute = has_commute || a.mode == AccessMode::Commute;
  double& pfa = pipeline_free_at_[w.index()];
  double start = std::max({pfa, now_, ready});
  if (has_commute) {
    for (const Access& a : graph_.task(t).accesses) {
      if (a.mode != AccessMode::Commute) continue;
      auto it = commute_free_at_.find(a.data);
      if (it != commute_free_at_.end()) start = std::max(start, it->second);
    }
    for (const Access& a : graph_.task(t).accesses) {
      if (a.mode == AccessMode::Commute) commute_free_at_[a.data] = start + duration;
    }
    start_floor = start;
  }
  pfa = start + duration;

  pending_[w.index()].push_back(PendingTask{t, now_, ready, start_floor, duration});
  return true;
}

void SimEngine::start_pending(WorkerId w) {
  MP_ASSERT(!pending_[w.index()].empty() && !worker_busy_[w.index()]);
  const PendingTask p = pending_[w.index()].front();
  pending_[w.index()].erase(pending_[w.index()].begin());
  worker_busy_[w.index()] = true;

  const double exec_start = std::max({now_, p.data_ready_at, p.start_floor});
  const double duration = p.duration;
  const double end = exec_start + duration;
  exec_end_[p.task.index()] = end;
  exec_duration_[p.task.index()] = duration;

  // Stall the worker actually observed: it was free at now_, data landed at
  // data_ready_at; pipelined transfers that finished during the previous
  // execution cost nothing. The trace is recorded at *completion* (a failed
  // or interrupted attempt must never appear as an execution), so stash what
  // the record will need.
  const double stall = std::max(0.0, p.data_ready_at - now_);
  attempt_on_[w.index()] = RunningAttempt{p, exec_start, stall};
  sched_->on_task_start(p.task, w);

  event_heap_.push_back(Event{end, next_seq_++, Event::Kind::Complete, w, p.task});
  std::push_heap(event_heap_.begin(), event_heap_.end(),
                 [](const Event& a, const Event& b) { return a.after(b); });
}

void SimEngine::handle_try_pop(WorkerId w) {
  trypop_pending_[w.index()] = false;
  if (!liveness_->alive(w)) return;  // queued before the worker's loss
  bool took_something = false;
  if (!worker_busy_[w.index()]) {
    // Start work: either the pipelined pending task or a fresh pop.
    if (!pending_[w.index()].empty() || fill_pending(w)) {
      start_pending(w);
      took_something = true;
    }
  } else if (cfg_.pipeline_depth > 0 &&
             pending_[w.index()].size() < cfg_.pipeline_depth) {
    // Pipeline: a busy worker with a free slot pops an upcoming task so its
    // data transfers overlap with the current execution (as StarPU's worker
    // prefetch pipeline does). One fill per event — further fills are
    // deferred so idle peers get to start their own tasks first.
    took_something = fill_pending(w);
  }
  if (took_something) {
    if (worker_busy_[w.index()] && pending_[w.index()].size() < cfg_.pipeline_depth) {
      schedule_try_pop(w, now_);  // deferred next pipeline fill
    }
    // A successful pop changes scheduler state (queues, remaining-work
    // ledgers): parked workers re-evaluate.
    wake_idle_workers();
  }
}

void SimEngine::handle_complete(const Event& e) {
  const std::size_t wi = e.worker.index();
  // A Complete queued by an attempt that was drained off a lost worker.
  if (!liveness_->alive(e.worker)) return;
  MP_ASSERT(worker_busy_[wi] && attempt_on_[wi].p.task == e.task);
  const RunningAttempt run = attempt_on_[wi];
  const Worker& worker = platform_.worker(e.worker);
  memory_->unpin_task_data(e.task, worker.node);
  worker_busy_[wi] = false;

  if (injector_ != nullptr &&
      injector_->fail_attempt(e.task, attempts_[e.task.index()])) {
    // Transient failure: the attempt's time is spent, its result discarded.
    // Data stays coherent (the acquire already happened); the retry simply
    // re-acquires at its next pop, wherever that lands.
    ++fstats_.failures_injected;
    const std::size_t failures = ++attempts_[e.task.index()];
    emit(SchedEventKind::FaultFailure, e.task, e.worker);
    if (failures > injector_->retry_budget()) {
      abandon(e.task);
    } else {
      ++fstats_.retries;
      emit(SchedEventKind::Repush, e.task, e.worker);
      sched_->repush(e.task);
    }
    schedule_try_pop(e.worker, now_);
    wake_idle_workers();
    return;
  }

  // Feed the history model with the measured duration (includes noise and
  // straggler slowdown), as StarPU's calibration does.
  history_->record(e.task, worker.arch, std::max(1e-12, run.p.duration));
  // Model audit: pop-time prediction vs realized duration, bucketed per
  // (codelet, arch) so the report can call out which δ(t,a) entries lied.
  if (cfg_.observer != nullptr) {
    if (MetricsRegistry* mx = cfg_.observer->metrics()) {
      const double pred = predicted_[e.task.index()];
      const double obs = run.p.duration;
      const std::string suffix =
          graph_.codelet_of(e.task).name + "." + arch_name(worker.arch);
      mx->histogram("perf_model.abs_err_s." + suffix).observe(std::abs(pred - obs));
      if (obs > 0.0)
        mx->histogram("perf_model.rel_err." + suffix).observe(std::abs(pred - obs) / obs);
    }
  }
  trace_->record(TraceSegment{e.task, e.worker, run.p.popped_at, run.exec_start,
                              e.time, run.stall});

  // Notify completion before pushing the released successors so policies
  // with push-site locality (LWS) know which worker produced them.
  sched_->on_task_end(e.task, e.worker);
  std::vector<TaskId> newly;
  deps_->complete(e.task, newly);
  for (TaskId t : newly) push_ready(t);

  schedule_try_pop(e.worker, now_);
  wake_idle_workers();
}

void SimEngine::handle_worker_loss(const Event& e) {
  const WorkerId w = e.worker;
  if (!liveness_->alive(w)) return;  // duplicate loss spec
  const Worker& worker = platform_.worker(w);
  liveness_->mark_dead(w);
  ++fstats_.workers_lost;
  emit(SchedEventKind::WorkerLost, TaskId{}, w);

  // Drain the interrupted attempt and the pipelined pops. Their pins go
  // before any evacuation; their stale Complete/TryPop events are ignored by
  // the liveness guards at the handlers' entry. Commute reservations of the
  // drained attempts are left standing — stale reservations only
  // over-serialize, they cannot violate mutual exclusion.
  std::vector<TaskId> drained;
  if (worker_busy_[w.index()]) {
    drained.push_back(attempt_on_[w.index()].p.task);
    worker_busy_[w.index()] = false;
  }
  for (const PendingTask& p : pending_[w.index()]) drained.push_back(p.task);
  pending_[w.index()].clear();
  for (TaskId t : drained) memory_->unpin_task_data(t, worker.node);

  // Last worker of a GPU node: retire the device gracefully, migrating sole
  // authoritative copies back to RAM while the link still exists.
  if (platform_.node(worker.node).kind == MemNodeKind::Gpu &&
      liveness_->live_on_node(worker.node) == 0) {
    std::vector<TransferOp> ops;
    memory_->evacuate_node(worker.node, ops);
    (void)charge_transfers(ops, now_);
  }

  // Liveness is already flipped: the policy rebuilds against the surviving
  // platform and surrenders tasks nobody can run any more.
  std::vector<TaskId> orphans = sched_->notify_worker_removed(w);
  for (TaskId t : drained) {
    if (has_live_capable_worker(t)) {
      ++fstats_.retries;
      emit(SchedEventKind::Repush, t, w);
      sched_->repush(t);
    } else {
      orphans.push_back(t);
    }
  }
  for (TaskId t : orphans) abandon(t);
  wake_idle_workers();
}

std::string SimEngine::stall_diagnostic(std::size_t processed) const {
  std::ostringstream os;
  os << "simulation stalled: " << processed << " events processed (cap "
     << "reached) at t=" << now_ << "\n  scheduler " << sched_->name()
     << ": pending_count=" << sched_->pending_count()
     << ", failed_pops=" << failed_pops_ << "\n";
  for (std::size_t wi = 0; wi < platform_.num_workers(); ++wi) {
    os << "  worker " << wi << " (" << platform_.worker(WorkerId{wi}).name
       << "): " << (liveness_->alive(WorkerId{wi}) ? "alive" : "DEAD")
       << (worker_busy_[wi] ? ", busy" : ", idle")
       << ", pipeline=" << pending_[wi].size() << "\n";
  }
  if (const auto* mp = dynamic_cast<const MultiPrioScheduler*>(sched_.get())) {
    for (std::size_t mi = 0; mi < platform_.num_nodes(); ++mi)
      os << "  node " << mi << ": heap=" << mp->heap(MemNodeId{mi}).size()
         << ", ready=" << mp->ready_tasks_count(MemNodeId{mi})
         << ", brw=" << mp->best_remaining_work(MemNodeId{mi}) << "\n";
  }
  std::vector<bool> executed(graph_.num_tasks(), false);
  for (const TraceSegment& s : trace_->segments()) executed[s.task.index()] = true;
  std::size_t stuck = 0;
  os << "  stuck tasks:";
  for (std::size_t ti = 0; ti < graph_.num_tasks(); ++ti) {
    if (executed[ti] || abandoned_[ti]) continue;
    if (++stuck <= 16) os << ' ' << ti;
  }
  os << (stuck > 16 ? " ...\n" : "\n") << "  stuck total: " << stuck << "\n";
  return os.str();
}

SimResult SimEngine::run(const SchedulerFactory& make_scheduler) {
  MP_CHECK_MSG(!running_ && trace_ == nullptr, "engine is single-shot");
  history_ = std::make_unique<HistoryModel>(graph_, perf_);
  if (cfg_.calibrated) history_->seed_from_truth(cfg_.calibration_bias_sigma, cfg_.seed);
  memory_ = std::make_unique<MemoryManager>(graph_, platform_);
  trace_ = std::make_unique<Trace>(graph_, platform_);
  deps_ = std::make_unique<DepCounters>(graph_);
  liveness_ = std::make_unique<WorkerLiveness>(platform_);
  if (!cfg_.fault.empty()) {
    injector_ = std::make_unique<FaultInjector>(cfg_.fault, graph_);
    for (const WorkerLossSpec& l : injector_->worker_losses())
      MP_CHECK_MSG(l.worker.index() < platform_.num_workers(),
                   "fault plan kills a worker the platform does not have");
  }

  SchedContext ctx;
  ctx.graph = &graph_;
  ctx.platform = &platform_;
  ctx.perf = history_.get();
  ctx.memory = memory_.get();
  ctx.now = [this] { return now_; };
  ctx.prefetch = this;
  ctx.liveness = liveness_.get();
  ctx.observer = cfg_.observer;
  sched_ = make_scheduler(std::move(ctx));
  MP_CHECK(sched_ != nullptr);
  running_ = true;

  // Loss events enter the heap first so a loss scheduled at t=0 outraces the
  // initial pop attempts (lower seq wins among simultaneous events).
  if (injector_ != nullptr) {
    for (const WorkerLossSpec& l : injector_->worker_losses()) {
      event_heap_.push_back(
          Event{l.time, next_seq_++, Event::Kind::WorkerLoss, l.worker, TaskId{}});
      std::push_heap(event_heap_.begin(), event_heap_.end(),
                     [](const Event& a, const Event& b) { return a.after(b); });
    }
  }
  for (TaskId t : graph_.initial_ready()) push_ready(t);
  for (std::size_t wi = 0; wi < platform_.num_workers(); ++wi)
    schedule_try_pop(WorkerId{wi}, 0.0);

  const std::size_t max_events =
      cfg_.max_events > 0 ? cfg_.max_events
                          : 1000 + graph_.num_tasks() * (20 + 4 * platform_.num_workers());
  std::size_t processed = 0;
  while (!event_heap_.empty()) {
    std::pop_heap(event_heap_.begin(), event_heap_.end(),
                  [](const Event& a, const Event& b) { return a.after(b); });
    const Event e = event_heap_.back();
    event_heap_.pop_back();
    MP_CHECK(e.time >= now_ - 1e-12);
    now_ = std::max(now_, e.time);
    switch (e.kind) {
      case Event::Kind::TryPop: handle_try_pop(e.worker); break;
      case Event::Kind::Complete: handle_complete(e); break;
      case Event::Kind::WorkerLoss: handle_worker_loss(e); break;
    }
    if (++processed > max_events) {
      std::fputs(stall_diagnostic(processed).c_str(), stderr);
      MP_CHECK_MSG(false, "event explosion: scheduler livelock or engine bug");
    }
  }
  running_ = false;
  fstats_.degraded = fstats_.workers_lost > 0 || fstats_.tasks_abandoned > 0;

  // Conservation: every task either executed exactly once or was explicitly
  // abandoned; nothing is stranded inside the scheduler or a worker queue.
  if (injector_ == nullptr) {
    MP_CHECK_MSG(trace_->num_executed() == graph_.num_tasks(),
                 "simulation ended with unexecuted tasks (scheduler lost tasks?)");
  } else {
    MP_CHECK_MSG(trace_->num_executed() + fstats_.tasks_abandoned == graph_.num_tasks(),
                 "fault run lost tasks (neither executed nor abandoned)");
  }
  MP_CHECK_MSG(sched_->pending_count() == 0, "scheduler still holds tasks");
  for (std::size_t wi = 0; wi < platform_.num_workers(); ++wi)
    MP_ASSERT(!worker_busy_[wi] && pending_[wi].empty());
  trace_->validate(/*require_all=*/injector_ == nullptr);

  SimResult r;
  r.makespan = trace_->makespan();
  r.gflops = trace_->gflops();
  r.tasks_executed = trace_->num_executed();
  for (const MemNode& n : platform_.nodes()) {
    if (n.kind != MemNodeKind::Gpu) continue;
    r.bytes_to_gpus += memory_->total_bytes_to(n.id);
    r.bytes_from_gpus += memory_->total_bytes_from(n.id);
  }
  r.evictions = memory_->eviction_count();
  r.failed_pops = failed_pops_;
  r.fault = fstats_;
  r.idle_per_node.resize(platform_.num_nodes());
  for (std::size_t mi = 0; mi < platform_.num_nodes(); ++mi)
    r.idle_per_node[mi] = trace_->idle_fraction_node(MemNodeId{mi});
  return r;
}

SimResult simulate(const TaskGraph& graph, const Platform& platform,
                   const PerfDatabase& perf, const SchedulerFactory& make_scheduler,
                   SimConfig config) {
  SimEngine engine(graph, platform, perf, config);
  return engine.run(make_scheduler);
}

}  // namespace mp
