// Discrete-event simulator of a heterogeneous node running a task DAG under
// a pluggable scheduling policy — the role StarPU-over-SimGrid plays in the
// paper's Fig. 4 and, here, the substrate for every figure's experiments.
//
// Model:
//  * virtual clock; events are worker pop attempts and task completions;
//  * each GPU memory node has a PCIe-like link; transfers serialize on the
//    links they cross (latency + bytes/bandwidth), including prefetches;
//  * task duration = ground-truth analytic time × (1 + σ·noise), noise
//    drawn per task from a seeded generator;
//  * the scheduler sees δ(t,a) through the history model (pre-seeded
//    "calibrated" by default, like the paper's warmed-up StarPU models).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "obs/events.hpp"
#include "runtime/memory_manager.hpp"
#include "runtime/perf_model.hpp"
#include "runtime/scheduler.hpp"
#include "sim/trace.hpp"

namespace mp {

struct SimConfig {
  /// Relative stddev of execution-time noise (0 = deterministic).
  double noise_sigma = 0.0;
  std::uint64_t seed = 42;
  /// Pre-seed the history model with analytic truth (calibrated regime).
  bool calibrated = true;
  /// Systematic per-bucket calibration error applied when seeding (see
  /// HistoryModel::seed_from_truth). 0 = omniscient estimates.
  double calibration_bias_sigma = 0.0;
  /// Worker task pipelining, as in StarPU: a busy worker pops its next
  /// task(s) early so their data transfers overlap with the current
  /// execution. 0 disables (POP-time-mapping schedulers then pay every
  /// fetch serially); StarPU prefetches a couple of tasks ahead.
  std::size_t pipeline_depth = 1;
  /// Safety valve for buggy schedulers: abort (with a stall diagnostic of
  /// stuck tasks, per-worker queues and heap sizes) if the count explodes.
  std::size_t max_events = 0;  // 0 = derived from task count
  /// Fault-injection plan; an empty plan leaves every engine path unchanged.
  FaultPlan fault;
  /// Decision-event sink handed to the scheduler via SchedContext; the engine
  /// itself adds REPUSH / WORKER_LOST / fault events. Null disables all
  /// recording (observer-free fast path). Not owned.
  SchedObserver* observer = nullptr;
};

struct SimResult {
  double makespan = 0.0;
  double gflops = 0.0;
  std::size_t tasks_executed = 0;
  std::size_t bytes_to_gpus = 0;
  std::size_t bytes_from_gpus = 0;
  std::size_t evictions = 0;           // memory-manager capacity evictions
  std::size_t failed_pops = 0;         // pop() calls returning nothing
  std::vector<double> idle_per_node;   // idle fraction per memory node
  /// Fault-injection outcome (failures_injected, retries, tasks_abandoned,
  /// workers_lost, degraded); all zero/false on fault-free runs.
  FaultStats fault;
};

/// A scheduler factory: the engine owns construction so it can hand the
/// policy a fully wired SchedContext.
using SchedulerFactory = std::function<std::unique_ptr<Scheduler>(SchedContext)>;

class SimEngine : public PrefetchSink {
 public:
  SimEngine(const TaskGraph& graph, const Platform& platform, const PerfDatabase& perf,
            SimConfig config = {});

  /// Runs the whole DAG to completion under the policy; returns aggregate
  /// results. The detailed trace is available via trace() afterwards.
  SimResult run(const SchedulerFactory& make_scheduler);

  [[nodiscard]] const Trace& trace() const;
  [[nodiscard]] const MemoryManager& memory() const;
  [[nodiscard]] const HistoryModel& history() const;
  [[nodiscard]] Scheduler& scheduler();
  /// Worker liveness after the run (fail-stop losses applied).
  [[nodiscard]] const WorkerLiveness& liveness() const;
  /// Pop-time δ(t, executed arch) per task: what the scheduler believed when
  /// it committed each placement (0 for never-executed tasks). Captured
  /// before the completion feeds the history model, so it is the honest
  /// input to RunAnalysis's perf-model audit.
  [[nodiscard]] std::span<const double> predicted_durations() const {
    return predicted_;
  }

  // PrefetchSink (Dmdas-style push-time prefetch).
  void request_prefetch(DataId data, MemNodeId node) override;

 private:
  struct Event {
    double time = 0.0;
    std::uint64_t seq = 0;  // FIFO among simultaneous events
    enum class Kind { TryPop, Complete, WorkerLoss } kind = Kind::TryPop;
    WorkerId worker;
    TaskId task;

    [[nodiscard]] bool after(const Event& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  /// Engine-side event emission (REPUSH, WORKER_LOST, fault kinds); no-op
  /// without an observer.
  void emit(SchedEventKind kind, TaskId t, WorkerId w);
  void schedule_try_pop(WorkerId w, double time);
  void wake_idle_workers();
  void handle_try_pop(WorkerId w);
  void handle_complete(const Event& e);
  void handle_worker_loss(const Event& e);
  /// Marks `t` and its whole descendant closure abandoned (their
  /// dependencies can never be satisfied once `t` will not execute).
  void abandon(TaskId t);
  [[nodiscard]] bool has_live_capable_worker(TaskId t) const;
  /// Human-readable state dump for the max_events safety valve.
  [[nodiscard]] std::string stall_diagnostic(std::size_t processed) const;
  /// Charges transfer ops to the link timelines; returns when all complete.
  double charge_transfers(const std::vector<TransferOp>& ops, double start);
  void push_ready(TaskId t);
  /// Pops a task for `w` and acquires its data; returns false if the
  /// scheduler had nothing. The task lands in the worker's pending slot.
  bool fill_pending(WorkerId w);
  /// Starts executing the worker's pending task (must exist).
  void start_pending(WorkerId w);

  const TaskGraph& graph_;
  const Platform& platform_;
  const PerfDatabase& perf_;
  SimConfig cfg_;

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::vector<Event> event_heap_;

  std::unique_ptr<HistoryModel> history_;
  std::unique_ptr<MemoryManager> memory_;
  std::unique_ptr<Trace> trace_;
  std::unique_ptr<Scheduler> sched_;
  std::unique_ptr<DepCounters> deps_;

  /// Popped-but-not-started tasks of a worker (the pipeline queue).
  struct PendingTask {
    TaskId task;
    double popped_at = 0.0;
    double data_ready_at = 0.0;
    /// Earliest start honouring per-handle commute mutual exclusion (0 when
    /// the task has no commute accesses).
    double start_floor = 0.0;
    double duration = 0.0;  // fixed at pop time (deterministic noise)
  };

  /// The attempt currently executing on a worker (valid iff worker_busy_).
  /// The trace is recorded only when the attempt *completes successfully*, so
  /// failed and interrupted attempts never appear as executions.
  struct RunningAttempt {
    PendingTask p;
    double exec_start = 0.0;
    double stall = 0.0;
  };

  std::vector<double> link_free_at_;     // per memory node
  /// Predicted drain time of a worker's running + pending tasks; exact
  /// because durations are fixed at pop time. Basis of the commute
  /// reservations below.
  std::vector<double> pipeline_free_at_;
  /// Per-handle serialization point for AccessMode::Commute.
  std::unordered_map<DataId, double> commute_free_at_;
  std::vector<bool> worker_busy_;
  std::vector<std::vector<PendingTask>> pending_;  // per worker, FIFO
  std::vector<bool> trypop_pending_;     // dedup of queued TryPop events
  std::size_t wake_rotor_ = 0;           // rotating wake order start
  std::vector<double> exec_end_;         // per task
  std::vector<double> exec_duration_;    // per task (for history recording)
  std::vector<double> predicted_;        // per task, δ(t, arch) at pop time
  std::size_t failed_pops_ = 0;
  bool running_ = false;

  // --- fault machinery (inert when cfg_.fault is empty) ---------------------
  std::unique_ptr<WorkerLiveness> liveness_;
  std::unique_ptr<FaultInjector> injector_;  // null on fault-free runs
  FaultStats fstats_;
  std::vector<std::size_t> attempts_;    // failed attempts so far, per task
  std::vector<bool> abandoned_;          // per task
  std::vector<RunningAttempt> attempt_on_;  // per worker
};

/// Convenience wrapper: build everything, run once, return the result.
SimResult simulate(const TaskGraph& graph, const Platform& platform,
                   const PerfDatabase& perf, const SchedulerFactory& make_scheduler,
                   SimConfig config = {});

}  // namespace mp
