#include "sim/report.hpp"

#include <algorithm>
#include <map>

#include "common/csv.hpp"
#include "obs/observer.hpp"

namespace mp {

TraceReport::TraceReport(const Trace& trace, const TaskGraph& graph,
                         const Platform& platform, const RecordingObserver* obs)
    : trace_(trace), platform_(platform), obs_(obs) {
  std::map<std::string, CodeletReport> by_codelet;
  std::map<std::uint32_t, NodeReport> by_node;

  for (const TraceSegment& s : trace.segments()) {
    const Worker& w = platform.worker(s.worker);
    const double busy = s.end - s.exec_start;
    CodeletReport& cr = by_codelet[graph.codelet_of(s.task).name];
    cr.codelet = graph.codelet_of(s.task).name;
    if (w.arch == ArchType::GPU) {
      ++cr.count_gpu;
      cr.busy_gpu_s += busy;
    } else {
      ++cr.count_cpu;
      cr.busy_cpu_s += busy;
    }
    cr.stall_s += s.data_stall;
    busy_total_[arch_index(w.arch)] += busy;

    NodeReport& nr = by_node[w.node.value()];
    nr.node = w.node;
    nr.name = platform.node(w.node).name;
    ++nr.tasks;
    nr.busy_s += busy;
  }

  for (auto& [_, cr] : by_codelet) codelets_.push_back(cr);
  std::sort(codelets_.begin(), codelets_.end(), [](const auto& a, const auto& b) {
    return a.busy_cpu_s + a.busy_gpu_s > b.busy_cpu_s + b.busy_gpu_s;
  });
  for (auto& [_, nr] : by_node) {
    nr.idle_fraction = trace.idle_fraction_node(nr.node);
    nodes_.push_back(nr);
  }

  // Practical critical path in execution seconds.
  for (TaskId t : trace.practical_critical_path()) {
    for (const TraceSegment& s : trace.segments()) {
      if (s.task == t) {
        critical_path_s_ += s.end - s.exec_start;
        break;
      }
    }
  }
  const double total_busy = busy_total_[0] + busy_total_[1];
  work_bound_s_ =
      platform.num_workers() > 0 ? total_busy / static_cast<double>(platform.num_workers())
                                 : 0.0;
}

double TraceReport::work_share(ArchType a) const {
  const double total = busy_total_[0] + busy_total_[1];
  return total > 0.0 ? busy_total_[arch_index(a)] / total : 0.0;
}

double TraceReport::efficiency_bound_ratio() const {
  const double bound = std::max(critical_path_s_, work_bound_s_);
  return bound > 0.0 ? trace_.makespan() / bound : 0.0;
}

std::string TraceReport::to_string() const {
  std::string out;
  Table ct({"codelet", "on CPU", "on GPU", "CPU busy (s)", "GPU busy (s)", "stall (s)"});
  for (const CodeletReport& c : codelets_) {
    ct.add_row({c.codelet, std::to_string(c.count_cpu), std::to_string(c.count_gpu),
                fmt_double(c.busy_cpu_s, 3), fmt_double(c.busy_gpu_s, 3),
                fmt_double(c.stall_s, 3)});
  }
  out += ct.to_ascii();
  Table nt({"node", "tasks", "busy (s)", "idle"});
  for (const NodeReport& n : nodes_) {
    nt.add_row({n.name, std::to_string(n.tasks), fmt_double(n.busy_s, 3),
                fmt_percent(n.idle_fraction)});
  }
  out += nt.to_ascii();
  out += "makespan " + fmt_double(trace_.makespan(), 4) + " s, critical path " +
         fmt_double(critical_path_s_, 4) + " s, bound ratio " +
         fmt_double(efficiency_bound_ratio(), 2) + "\n";
  if (obs_ != nullptr) out += obs_->rollup();
  return out;
}

}  // namespace mp
