// Execution traces and their analysis (the StarVZ-style quantities of
// Fig. 4: makespan, idle % per resource, practical critical path).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "runtime/platform.hpp"
#include "runtime/task_graph.hpp"

namespace mp {

/// One executed task instance.
struct TraceSegment {
  TaskId task;
  WorkerId worker;
  double fetch_start = 0.0;  ///< when the worker committed to the task
  double exec_start = 0.0;   ///< when data was in place and execution began
  double end = 0.0;
  /// Time the worker truly waited on data (excludes pipelined overlap).
  double data_stall = 0.0;
};

class Trace {
 public:
  Trace(const TaskGraph& graph, const Platform& platform);

  void record(TraceSegment seg);

  [[nodiscard]] const std::vector<TraceSegment>& segments() const { return segments_; }
  [[nodiscard]] std::size_t num_executed() const { return segments_.size(); }

  /// Completion time of the whole DAG.
  [[nodiscard]] double makespan() const;

  /// Busy time (exec only) of one worker.
  [[nodiscard]] double busy_time(WorkerId w) const;

  /// Idle fraction of one worker over the makespan (1 − busy/makespan).
  [[nodiscard]] double idle_fraction(WorkerId w) const;

  /// Mean idle fraction over the workers of `m` (Fig. 4's per-resource idle %).
  [[nodiscard]] double idle_fraction_node(MemNodeId m) const;

  /// Time spent stalled on data transfers, summed over workers.
  [[nodiscard]] double total_fetch_stall() const;

  /// Achieved GFlop/s (graph total flops / makespan).
  [[nodiscard]] double gflops() const;

  /// Practical critical path: walks back from the last-finishing task
  /// through the predecessor that finished last; returns the chain in
  /// execution order (StarVZ's highlighted chain in Fig. 4).
  [[nodiscard]] std::vector<TaskId> practical_critical_path() const;

  /// Validation: every task executed exactly once, on a capable arch, with
  /// every predecessor finishing before the task starts fetching. Aborts on
  /// violation; used heavily in tests. `require_all = false` (degraded fault
  /// runs) skips the everyone-executed check but still requires each executed
  /// task's predecessors to have executed first.
  void validate(bool require_all = true) const;

  /// CSV export: one row per segment.
  [[nodiscard]] std::string to_csv() const;

  /// Compact ASCII Gantt (for examples / quick looks), one row per worker.
  [[nodiscard]] std::string ascii_gantt(std::size_t columns = 80) const;

 private:
  const TaskGraph& graph_;
  const Platform& platform_;
  std::vector<TraceSegment> segments_;
  std::vector<double> busy_;                  // per worker
  std::vector<std::int64_t> exec_index_;      // per task -> segment index or -1
  double makespan_ = 0.0;
  double fetch_stall_ = 0.0;
};

}  // namespace mp
