#include "sim/trace.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "common/csv.hpp"

namespace mp {

Trace::Trace(const TaskGraph& graph, const Platform& platform)
    : graph_(graph), platform_(platform) {
  busy_.assign(platform.num_workers(), 0.0);
  exec_index_.assign(graph.num_tasks(), -1);
}

void Trace::record(TraceSegment seg) {
  MP_CHECK(seg.task.valid() && seg.task.index() < graph_.num_tasks());
  MP_CHECK(seg.worker.valid() && seg.worker.index() < platform_.num_workers());
  MP_CHECK(seg.fetch_start <= seg.exec_start && seg.exec_start <= seg.end);
  MP_CHECK_MSG(exec_index_[seg.task.index()] < 0, "task executed twice");
  exec_index_[seg.task.index()] = static_cast<std::int64_t>(segments_.size());
  busy_[seg.worker.index()] += seg.end - seg.exec_start;
  fetch_stall_ += seg.data_stall;
  makespan_ = std::max(makespan_, seg.end);
  segments_.push_back(seg);
}

double Trace::makespan() const { return makespan_; }

double Trace::busy_time(WorkerId w) const {
  MP_CHECK(w.index() < busy_.size());
  return busy_[w.index()];
}

double Trace::idle_fraction(WorkerId w) const {
  if (makespan_ <= 0.0) return 0.0;
  return 1.0 - busy_time(w) / makespan_;
}

double Trace::idle_fraction_node(MemNodeId m) const {
  const auto& ws = platform_.workers_of_node(m);
  if (ws.empty() || makespan_ <= 0.0) return 0.0;
  double idle = 0.0;
  for (WorkerId w : ws) idle += idle_fraction(w);
  return idle / static_cast<double>(ws.size());
}

double Trace::total_fetch_stall() const { return fetch_stall_; }

double Trace::gflops() const {
  if (makespan_ <= 0.0) return 0.0;
  return graph_.total_flops() / makespan_ / 1e9;
}

std::vector<TaskId> Trace::practical_critical_path() const {
  std::vector<TaskId> path;
  if (segments_.empty()) return path;
  // Start from the last-finishing task.
  const TraceSegment* cur = &segments_.front();
  for (const TraceSegment& s : segments_)
    if (s.end > cur->end) cur = &s;
  while (true) {
    path.push_back(cur->task);
    const TraceSegment* next = nullptr;
    for (TaskId p : graph_.predecessors(cur->task)) {
      const std::int64_t idx = exec_index_[p.index()];
      if (idx < 0) continue;
      const TraceSegment& ps = segments_[static_cast<std::size_t>(idx)];
      if (next == nullptr || ps.end > next->end) next = &ps;
    }
    if (next == nullptr) break;
    cur = next;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

void Trace::validate(bool require_all) const {
  MP_CHECK_MSG(!require_all || segments_.size() == graph_.num_tasks(),
               "not every task executed");
  for (const TraceSegment& s : segments_) {
    const ArchType a = platform_.worker(s.worker).arch;
    MP_CHECK_MSG(graph_.can_exec(s.task, a), "task ran on an incapable arch");
    for (TaskId p : graph_.predecessors(s.task)) {
      const std::int64_t idx = exec_index_[p.index()];
      MP_CHECK_MSG(idx >= 0, "predecessor never executed");
      const TraceSegment& ps = segments_[static_cast<std::size_t>(idx)];
      MP_CHECK_MSG(ps.end <= s.fetch_start + 1e-12, "dependency violated");
    }
  }
}

std::string Trace::to_csv() const {
  Table t({"task", "name", "codelet", "worker", "arch", "fetch_start", "exec_start", "end"});
  for (const TraceSegment& s : segments_) {
    const Task& task = graph_.task(s.task);
    t.add_row({std::to_string(s.task.value()), task.name, graph_.codelet_of(s.task).name,
               std::to_string(s.worker.value()),
               arch_name(platform_.worker(s.worker).arch), fmt_double(s.fetch_start, 9),
               fmt_double(s.exec_start, 9), fmt_double(s.end, 9)});
  }
  return t.to_csv();
}

std::string Trace::ascii_gantt(std::size_t columns) const {
  std::ostringstream os;
  if (makespan_ <= 0.0 || columns == 0) return os.str();
  const double dt = makespan_ / static_cast<double>(columns);
  for (std::size_t wi = 0; wi < platform_.num_workers(); ++wi) {
    std::string row(columns, '.');
    for (const TraceSegment& s : segments_) {
      if (s.worker.index() != wi) continue;
      auto col = [&](double t) {
        return std::min(columns - 1, static_cast<std::size_t>(t / dt));
      };
      // Dashes mark true data stalls only (pipelined waits are idle time).
      for (std::size_t c = col(std::max(0.0, s.exec_start - s.data_stall));
           c <= col(s.exec_start); ++c)
        row[c] = '-';
      for (std::size_t c = col(s.exec_start); c <= col(s.end - 1e-15); ++c) row[c] = '#';
    }
    os << platform_.worker(WorkerId{wi}).name << " |" << row << "|\n";
  }
  return os.str();
}

}  // namespace mp
