#include <deque>
#include <vector>

#include "common/check.hpp"
#include "obs/emit.hpp"
#include "sched/schedulers.hpp"

namespace mp {

namespace {

/// Locality work stealing (StarPU's lws): released tasks land on the deque
/// of the worker that produced them; pops are LIFO locally (hot data) and
/// FIFO when stealing from the nearest non-empty neighbour. The paper
/// excludes lws from its comparison because it treats CPUs and GPUs as
/// identical resources — this implementation keeps that (deliberate) flaw.
class LwsScheduler final : public Scheduler {
 public:
  explicit LwsScheduler(SchedContext ctx) : Scheduler(std::move(ctx)) {
    queues_.resize(ctx_.platform->num_workers());
  }

  void push(TaskId t) override {
    std::size_t home =
        last_finisher_.valid() ? last_finisher_.index() : std::size_t{0};
    if (!worker_alive(ctx_, WorkerId{home})) home = first_live_worker();
    queues_[home].push_back(t);
    ++pending_;
    if (obs_enabled(ctx_)) {
      SchedEvent e = make_event(ctx_, SchedEventKind::Push, t);
      e.worker = WorkerId{home};
      e.node = ctx_.platform->worker(WorkerId{home}).node;
      e.heap_depth = static_cast<std::uint32_t>(queues_[home].size());
      ctx_.observer->record(e);
    }
  }

  std::optional<TaskId> pop(WorkerId w) override {
    const ArchType a = ctx_.platform->worker(w).arch;
    // Local pop: most recently produced task first.
    if (auto t = take(queues_[w.index()], a, /*lifo=*/true)) {
      --pending_;
      emit_pop(*t, w, /*steal_offset=*/0);
      return t;
    }
    // Steal: ring scan from the next worker, oldest task first.
    const std::size_t n = ctx_.platform->num_workers();
    for (std::size_t off = 1; off < n; ++off) {
      auto& victim = queues_[(w.index() + off) % n];
      if (auto t = take(victim, a, /*lifo=*/false)) {
        --pending_;
        emit_pop(*t, w, off);
        return t;
      }
    }
    return std::nullopt;
  }

  void on_task_end(TaskId, WorkerId w) override { last_finisher_ = w; }

  std::vector<TaskId> notify_worker_removed(WorkerId w) override {
    if (last_finisher_ == w) last_finisher_ = WorkerId{};
    // Move the dead worker's deque to a live home (steals would eventually
    // drain it, but a live home keeps the LIFO-hot ordering meaningful), and
    // purge tasks that no live worker can serve from every queue — e.g.
    // GPU-only tasks stranded in a CPU deque once the GPUs die.
    std::vector<TaskId> orphans;
    std::deque<TaskId> stranded;
    stranded.swap(queues_[w.index()]);
    const std::size_t home = first_live_worker();
    for (TaskId t : stranded) queues_[home].push_back(t);
    for (auto& q : queues_) {
      for (auto it = q.begin(); it != q.end();) {
        if (!task_has_live_worker(ctx_, *it)) {
          orphans.push_back(*it);
          --pending_;
          it = q.erase(it);
        } else {
          ++it;
        }
      }
    }
    return orphans;
  }

  [[nodiscard]] std::string name() const override { return "lws"; }
  [[nodiscard]] std::size_t pending_count() const override { return pending_; }
  [[nodiscard]] bool has_work_hint(WorkerId) const override { return pending_ > 0; }

 private:
  /// attempt = ring-scan offset: 0 is a local LIFO pop, >0 a steal.
  void emit_pop(TaskId t, WorkerId w, std::size_t steal_offset) {
    if (!obs_enabled(ctx_)) return;
    SchedEvent e = make_event(ctx_, SchedEventKind::Pop, t);
    e.worker = w;
    e.node = ctx_.platform->worker(w).node;
    e.attempt = static_cast<std::uint32_t>(steal_offset);
    e.heap_depth = static_cast<std::uint32_t>(queues_[w.index()].size());
    ctx_.observer->record(e);
  }

  [[nodiscard]] std::size_t first_live_worker() const {
    for (std::size_t wi = 0; wi < queues_.size(); ++wi)
      if (worker_alive(ctx_, WorkerId{wi})) return wi;
    return 0;  // everyone is dead; the queue is unreachable either way
  }

  std::optional<TaskId> take(std::deque<TaskId>& q, ArchType a, bool lifo) {
    if (lifo) {
      for (auto it = q.rbegin(); it != q.rend(); ++it) {
        if (ctx_.graph->can_exec(*it, a)) {
          const TaskId t = *it;
          q.erase(std::next(it).base());
          return t;
        }
      }
    } else {
      for (auto it = q.begin(); it != q.end(); ++it) {
        if (ctx_.graph->can_exec(*it, a)) {
          const TaskId t = *it;
          q.erase(it);
          return t;
        }
      }
    }
    return std::nullopt;
  }

  std::vector<std::deque<TaskId>> queues_;
  WorkerId last_finisher_;
  std::size_t pending_ = 0;
};

}  // namespace

std::unique_ptr<Scheduler> make_lws(SchedContext ctx) {
  return std::make_unique<LwsScheduler>(std::move(ctx));
}

}  // namespace mp
