#include <deque>

#include "common/check.hpp"
#include "obs/emit.hpp"
#include "sched/schedulers.hpp"

namespace mp {

namespace {

/// StarPU's "eager" policy: one central queue; the highest user priority is
/// served first, FIFO among equals. A worker skips tasks its architecture
/// cannot execute.
class EagerScheduler final : public Scheduler {
 public:
  explicit EagerScheduler(SchedContext ctx) : Scheduler(std::move(ctx)) {}

  void push(TaskId t) override {
    const std::int64_t prio = ctx_.graph->task(t).user_priority;
    // Insert before the first entry with strictly lower priority (stable).
    auto it = queue_.begin();
    while (it != queue_.end() && ctx_.graph->task(*it).user_priority >= prio) ++it;
    queue_.insert(it, t);
    if (obs_enabled(ctx_)) {
      SchedEvent e = make_event(ctx_, SchedEventKind::Push, t);
      e.prio = static_cast<double>(prio);
      e.heap_depth = static_cast<std::uint32_t>(queue_.size());
      ctx_.observer->record(e);
    }
  }

  std::optional<TaskId> pop(WorkerId w) override {
    const ArchType a = ctx_.platform->worker(w).arch;
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (ctx_.graph->can_exec(*it, a)) {
        const TaskId t = *it;
        queue_.erase(it);
        if (obs_enabled(ctx_)) {
          SchedEvent e = make_event(ctx_, SchedEventKind::Pop, t);
          e.worker = w;
          e.heap_depth = static_cast<std::uint32_t>(queue_.size());
          ctx_.observer->record(e);
        }
        return t;
      }
    }
    return std::nullopt;
  }

  std::vector<TaskId> notify_worker_removed(WorkerId /*w*/) override {
    // The central queue survives any loss; only tasks whose every capable
    // worker died must be surrendered (they would sit unpoppable forever).
    std::vector<TaskId> orphans;
    for (auto it = queue_.begin(); it != queue_.end();) {
      if (!task_has_live_worker(ctx_, *it)) {
        orphans.push_back(*it);
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    return orphans;
  }

  [[nodiscard]] std::string name() const override { return "eager"; }
  [[nodiscard]] std::size_t pending_count() const override { return queue_.size(); }
  [[nodiscard]] bool has_work_hint(WorkerId) const override { return !queue_.empty(); }

 private:
  std::deque<TaskId> queue_;
};

}  // namespace

std::unique_ptr<Scheduler> make_eager(SchedContext ctx) {
  return std::make_unique<EagerScheduler>(std::move(ctx));
}

}  // namespace mp
