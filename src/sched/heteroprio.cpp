#include <algorithm>
#include <array>
#include <deque>
#include <vector>

#include "common/check.hpp"
#include "obs/emit.hpp"
#include "sched/schedulers.hpp"

namespace mp {

namespace {

/// Automatic HeteroPrio [3,9]: ready tasks are dispatched to buckets by
/// codelet type. Each architecture consumes the buckets in its own order,
/// derived automatically from the mean GPU speedup of the type: CPUs scan
/// buckets by ascending speedup (take what GPUs gain least from), GPUs by
/// descending speedup. FIFO within a bucket. This is the per-*type*
/// priority scheme whose loss of per-task information motivates MultiPrio.
class HeteroPrioScheduler final : public Scheduler {
 public:
  explicit HeteroPrioScheduler(SchedContext ctx) : Scheduler(std::move(ctx)) {
    const std::size_t n = ctx_.graph->num_codelets();
    buckets_.resize(n);
    stats_.resize(n);
  }

  void push(TaskId t) override {
    const CodeletId c = ctx_.graph->task(t).codelet;
    MP_CHECK(c.index() < buckets_.size());
    buckets_[c.index()].push_back(t);
    ++pending_;

    // Update the running mean speedup of the type from the δ estimates.
    Stats& s = stats_[c.index()];
    const Codelet& cl = ctx_.graph->codelet(c);
    if (cl.can_exec(ArchType::CPU) && live_worker_count(ctx_, ArchType::CPU) > 0) {
      s.add(s.cpu, ctx_.perf->estimate(t, ArchType::CPU));
    }
    if (cl.can_exec(ArchType::GPU) && live_worker_count(ctx_, ArchType::GPU) > 0) {
      s.add(s.gpu, ctx_.perf->estimate(t, ArchType::GPU));
    }
    const ArchType best = best_arch_for(ctx_, t);
    backlog_[arch_index(best)] += ctx_.perf->estimate(t, best);
    if (obs_enabled(ctx_)) {
      SchedEvent e = make_event(ctx_, SchedEventKind::Push, t);
      e.gain = speedup(c.index());  // type-level speedup after this update
      e.best_remaining_work = backlog_[arch_index(best)];
      e.heap_depth = static_cast<std::uint32_t>(buckets_[c.index()].size());
      ctx_.observer->record(e);
    }
  }

  std::optional<TaskId> pop(WorkerId w) override {
    const ArchType a = ctx_.platform->worker(w).arch;
    // Non-empty buckets the worker can serve, in this arch's order.
    std::vector<std::size_t> order;
    for (std::size_t c = 0; c < buckets_.size(); ++c) {
      if (buckets_[c].empty()) continue;
      if (!ctx_.graph->codelet(CodeletId{c}).can_exec(a)) continue;
      order.push_back(c);
    }
    if (order.empty()) return std::nullopt;
    std::stable_sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
      const double sx = speedup(x);
      const double sy = speedup(y);
      return a == ArchType::CPU ? sx < sy : sx > sy;
    });
    for (std::size_t c : order) {
      auto& bucket = buckets_[c];
      const TaskId t = bucket.front();
      const ArchType best = best_arch_for(ctx_, t);
      if (best != a) {
        // Slowdown guard of HeteroPrio [3,9]: a non-preferred worker takes
        // the task only when the preferred workers have more queued work
        // per worker than this worker needs to run it.
        const double per_worker =
            backlog_[arch_index(best)] /
            static_cast<double>(std::max<std::size_t>(1, live_worker_count(ctx_, best)));
        if (per_worker <= ctx_.perf->estimate(t, a)) continue;
      }
      bucket.pop_front();
      --pending_;
      double& b = backlog_[arch_index(best)];
      b -= ctx_.perf->estimate(t, a);  // over-debit on steals throttles them
      if (b < 0.0) b = 0.0;
      if (obs_enabled(ctx_)) {
        SchedEvent e = make_event(ctx_, SchedEventKind::Pop, t);
        e.worker = w;
        e.node = ctx_.platform->worker(w).node;
        e.gain = speedup(c);
        e.best_remaining_work = b;
        e.heap_depth = static_cast<std::uint32_t>(bucket.size());
        ctx_.observer->record(e);
      }
      return t;
    }
    return std::nullopt;
  }

  std::vector<TaskId> notify_worker_removed(WorkerId /*w*/) override {
    // Buckets are arch-agnostic, so surviving workers keep consuming them;
    // only tasks with no live capable worker must leave. A fully dead
    // architecture also surrenders its backlog — the slowdown guard must not
    // keep steering work toward capacity that no longer exists.
    std::vector<TaskId> orphans;
    for (auto& bucket : buckets_) {
      for (auto it = bucket.begin(); it != bucket.end();) {
        if (!task_has_live_worker(ctx_, *it)) {
          orphans.push_back(*it);
          --pending_;
          it = bucket.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (std::size_t ai = 0; ai < kNumArchTypes; ++ai) {
      if (live_worker_count(ctx_, static_cast<ArchType>(ai)) == 0) backlog_[ai] = 0.0;
    }
    return orphans;
  }

  [[nodiscard]] std::string name() const override { return "heteroprio"; }
  [[nodiscard]] std::size_t pending_count() const override { return pending_; }
  [[nodiscard]] bool has_work_hint(WorkerId w) const override {
    const ArchType a = ctx_.platform->worker(w).arch;
    for (std::size_t c = 0; c < buckets_.size(); ++c)
      if (!buckets_[c].empty() && ctx_.graph->codelet(CodeletId{c}).can_exec(a))
        return true;
    return false;
  }

 private:
  struct Mean {
    double sum = 0.0;
    std::size_t count = 0;
    [[nodiscard]] double value() const { return count ? sum / static_cast<double>(count) : 0.0; }
  };
  struct Stats {
    Mean cpu, gpu;
    static void add(Mean& m, double v) {
      m.sum += v;
      ++m.count;
    }
  };

  /// Mean GPU speedup of a codelet type: δ_cpu/δ_gpu; 0 for CPU-only types
  /// (CPUs grab them first, GPUs last), +inf-ish for GPU-only types.
  [[nodiscard]] double speedup(std::size_t c) const {
    const Stats& s = stats_[c];
    if (s.gpu.count == 0) return 0.0;
    if (s.cpu.count == 0) return 1e30;
    const double g = s.gpu.value();
    return g > 0.0 ? s.cpu.value() / g : 1e30;
  }

  std::vector<std::deque<TaskId>> buckets_;
  std::vector<Stats> stats_;
  std::array<double, kNumArchTypes> backlog_{};  // queued work per best arch
  std::size_t pending_ = 0;
};

}  // namespace

std::unique_ptr<Scheduler> make_heteroprio(SchedContext ctx) {
  return std::make_unique<HeteroPrioScheduler>(std::move(ctx));
}

}  // namespace mp
