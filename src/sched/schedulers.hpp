// Baseline scheduling policies (the paper's comparison set, Section II/VI)
// and the name-based registry used by benches and examples.
//
//  * eager      — single central queue ordered by user priority (StarPU's
//                 default "eager" policy).
//  * random     — push-time assignment to a uniformly random capable worker.
//  * lws        — locality work stealing: per-worker deques, LIFO local pop,
//                 FIFO steal from neighbours (StarPU's lws).
//  * dm         — deque model: push-time mapping to the worker with the
//                 minimum expected completion time (HEFT-like) [18].
//  * dmda       — dm + data transfer time in the fitness + prefetch.
//  * dmdas      — dmda + per-worker queues sorted by user priority, with
//                 preference for data-local tasks among equal priorities.
//  * heteroprio — automatic HeteroPrio [3,9]: per-codelet-type buckets,
//                 CPUs scan buckets by ascending GPU speedup, GPUs by
//                 descending speedup.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/multiprio.hpp"
#include "runtime/scheduler.hpp"

namespace mp {

[[nodiscard]] std::unique_ptr<Scheduler> make_eager(SchedContext ctx);
[[nodiscard]] std::unique_ptr<Scheduler> make_random(SchedContext ctx, std::uint64_t seed = 1);
[[nodiscard]] std::unique_ptr<Scheduler> make_lws(SchedContext ctx);

enum class DmVariant { Dm, Dmda, Dmdas };
[[nodiscard]] std::unique_ptr<Scheduler> make_dm_family(SchedContext ctx, DmVariant v);

[[nodiscard]] std::unique_ptr<Scheduler> make_heteroprio(SchedContext ctx);

/// Factory by policy name. Known names: eager, random, lws, dm, dmda,
/// dmdas, heteroprio, multiprio, multiprio-noevict, multiprio-nolocality,
/// multiprio-nonod, multiprio-brwnorm. Aborts on unknown names.
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler_by_name(const std::string& name,
                                                                SchedContext ctx);

/// All registered policy names (for sweep benches).
[[nodiscard]] std::vector<std::string> scheduler_names();

}  // namespace mp
