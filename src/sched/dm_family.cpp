#include <deque>
#include <limits>
#include <vector>

#include "common/check.hpp"
#include "obs/emit.hpp"
#include "sched/schedulers.hpp"

namespace mp {

namespace {

/// StarPU's deque-model (heft-tm) family [18]. Mapping happens at PUSH: the
/// task goes to the worker minimizing the expected completion time
/// (per-worker expected-end ledger + execution estimate, plus the data
/// transfer estimate for the data-aware variants). Dmda/Dmdas additionally
/// prefetch the task's data to the chosen node. Dmdas keeps each worker
/// queue sorted by user priority and, among equal priorities, serves the
/// task with the most data already on the node.
class DmFamilyScheduler final : public Scheduler {
 public:
  DmFamilyScheduler(SchedContext ctx, DmVariant variant)
      : Scheduler(std::move(ctx)), variant_(variant) {
    queues_.resize(ctx_.platform->num_workers());
    expected_end_.assign(ctx_.platform->num_workers(), 0.0);
  }

  void push(TaskId t) override {
    map_and_enqueue(t);
    ++pending_;
  }

  std::optional<TaskId> pop(WorkerId w) override {
    auto& q = queues_[w.index()];
    if (q.empty()) return std::nullopt;
    std::size_t pick = 0;
    if (variant_ == DmVariant::Dmdas) {
      // Data-aware choice among the leading equal-priority run.
      const std::int64_t prio = ctx_.graph->task(q.front()).user_priority;
      std::size_t best_missing = std::numeric_limits<std::size_t>::max();
      const MemNodeId node = ctx_.platform->worker(w).node;
      for (std::size_t i = 0; i < q.size() && i < kDataAwareWindow; ++i) {
        if (ctx_.graph->task(q[i]).user_priority != prio) break;
        const std::size_t missing = ctx_.memory->bytes_missing(q[i], node);
        if (missing < best_missing) {
          best_missing = missing;
          pick = i;
          if (missing == 0) break;
        }
      }
    }
    const TaskId t = q[pick];
    q.erase(q.begin() + static_cast<std::ptrdiff_t>(pick));
    --pending_;
    if (obs_enabled(ctx_)) {
      SchedEvent e = make_event(ctx_, SchedEventKind::Pop, t);
      e.worker = w;
      e.node = ctx_.platform->worker(w).node;
      e.attempt = static_cast<std::uint32_t>(pick);  // data-aware window index
      e.heap_depth = static_cast<std::uint32_t>(q.size());
      ctx_.observer->record(e);
    }
    return t;
  }

  // Note: StarPU's dm family does not resynchronize its expected-end
  // ledger against observed completions; mispredictions persist until the
  // queue drains (push() clamps the base to now()). We model the same.

  std::vector<TaskId> notify_worker_removed(WorkerId w) override {
    // Push-time mapping is the policy's weakness under loss: everything the
    // dead worker had queued must be remapped onto the survivors.
    std::vector<TaskId> orphans;
    std::deque<TaskId> stranded;
    stranded.swap(queues_[w.index()]);
    expected_end_[w.index()] = 0.0;
    for (TaskId t : stranded) {
      if (task_has_live_worker(ctx_, t)) {
        map_and_enqueue(t);  // pending_ already counts the task
      } else {
        orphans.push_back(t);
        --pending_;
      }
    }
    return orphans;
  }

  [[nodiscard]] std::string name() const override {
    switch (variant_) {
      case DmVariant::Dm: return "dm";
      case DmVariant::Dmda: return "dmda";
      case DmVariant::Dmdas: return "dmdas";
    }
    return "dm?";
  }
  [[nodiscard]] std::size_t pending_count() const override { return pending_; }
  [[nodiscard]] bool has_work_hint(WorkerId w) const override {
    return !queues_[w.index()].empty();
  }

 private:
  static constexpr double kAlpha = 1.0;  // StarPU's default exec weight
  static constexpr double kBeta = 1.0;   // StarPU's default transfer weight
  static constexpr std::size_t kDataAwareWindow = 16;

  /// HEFT mapping over the live workers + enqueue + prefetch; the caller
  /// accounts pending_ (push counts the task, a remap after loss does not).
  void map_and_enqueue(TaskId t) {
    const double now = ctx_.now ? ctx_.now() : 0.0;
    double best_fitness = std::numeric_limits<double>::infinity();
    std::size_t best_w = 0;
    bool found = false;
    for (const Worker& w : ctx_.platform->workers()) {
      if (!ctx_.graph->can_exec(t, w.arch) || !worker_alive(ctx_, w.id)) continue;
      const double start = std::max(now, expected_end_[w.id.index()]);
      const double exec = ctx_.perf->estimate(t, w.arch);
      const double transfer =
          variant_ == DmVariant::Dm
              ? 0.0
              : ctx_.memory->estimated_transfer_time(t, w.node);
      const double fitness = start + kAlpha * exec + kBeta * transfer;
      if (fitness < best_fitness ||
          (fitness == best_fitness && queues_[w.id.index()].size() < queues_[best_w].size())) {
        best_fitness = fitness;
        best_w = w.id.index();
        found = true;
      }
    }
    MP_CHECK_MSG(found, "task has no capable worker");

    expected_end_[best_w] = best_fitness;
    insert_sorted(queues_[best_w], t);
    if (obs_enabled(ctx_)) {
      SchedEvent e = make_event(ctx_, SchedEventKind::Push, t);
      e.worker = WorkerId{best_w};
      e.node = ctx_.platform->worker(WorkerId{best_w}).node;
      e.prio = static_cast<double>(ctx_.graph->task(t).user_priority);
      e.best_remaining_work = best_fitness;  // expected completion time
      e.heap_depth = static_cast<std::uint32_t>(queues_[best_w].size());
      ctx_.observer->record(e);
    }

    // Push-time mapping enables early data prefetch to the target node —
    // the advantage the paper credits Dmdas with on transfer-bound runs.
    if (variant_ != DmVariant::Dm && ctx_.prefetch != nullptr) {
      const MemNodeId node = ctx_.platform->worker(WorkerId{best_w}).node;
      for (const Access& a : ctx_.graph->task(t).accesses) {
        if (mode_reads(a.mode)) ctx_.prefetch->request_prefetch(a.data, node);
      }
    }
  }

  void insert_sorted(std::deque<TaskId>& q, TaskId t) {
    if (variant_ != DmVariant::Dmdas) {
      q.push_back(t);
      return;
    }
    const std::int64_t prio = ctx_.graph->task(t).user_priority;
    auto it = q.begin();
    while (it != q.end() && ctx_.graph->task(*it).user_priority >= prio) ++it;
    q.insert(it, t);
  }

  DmVariant variant_;
  std::vector<std::deque<TaskId>> queues_;
  std::vector<double> expected_end_;
  std::size_t pending_ = 0;
};

}  // namespace

std::unique_ptr<Scheduler> make_dm_family(SchedContext ctx, DmVariant v) {
  return std::make_unique<DmFamilyScheduler>(std::move(ctx), v);
}

}  // namespace mp
