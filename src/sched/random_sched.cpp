#include <deque>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "obs/emit.hpp"
#include "sched/schedulers.hpp"

namespace mp {

namespace {

/// Push-time assignment to a uniformly random capable worker; each worker
/// drains its own FIFO. The classic do-nothing baseline.
class RandomScheduler final : public Scheduler {
 public:
  RandomScheduler(SchedContext ctx, std::uint64_t seed)
      : Scheduler(std::move(ctx)), rng_(seed) {
    queues_.resize(ctx_.platform->num_workers());
  }

  void push(TaskId t) override {
    std::vector<WorkerId> capable;
    for (const Worker& w : ctx_.platform->workers())
      if (ctx_.graph->can_exec(t, w.arch) && worker_alive(ctx_, w.id))
        capable.push_back(w.id);
    MP_CHECK_MSG(!capable.empty(), "task has no capable worker");
    const std::size_t pick =
        static_cast<std::size_t>(rng_.next_in(0, capable.size() - 1));
    queues_[capable[pick].index()].push_back(t);
    ++pending_;
    if (obs_enabled(ctx_)) {
      SchedEvent e = make_event(ctx_, SchedEventKind::Push, t);
      e.worker = capable[pick];  // push-time assignment target
      e.node = ctx_.platform->worker(capable[pick]).node;
      e.heap_depth = static_cast<std::uint32_t>(queues_[capable[pick].index()].size());
      ctx_.observer->record(e);
    }
  }

  std::optional<TaskId> pop(WorkerId w) override {
    auto& q = queues_[w.index()];
    if (q.empty()) return std::nullopt;
    const TaskId t = q.front();
    q.pop_front();
    --pending_;
    if (obs_enabled(ctx_)) {
      SchedEvent e = make_event(ctx_, SchedEventKind::Pop, t);
      e.worker = w;
      e.heap_depth = static_cast<std::uint32_t>(q.size());
      ctx_.observer->record(e);
    }
    return t;
  }

  std::vector<TaskId> notify_worker_removed(WorkerId w) override {
    // Re-draw an assignment for everything stranded on the dead worker.
    std::vector<TaskId> orphans;
    std::deque<TaskId> stranded;
    stranded.swap(queues_[w.index()]);
    for (TaskId t : stranded) {
      --pending_;  // push() below re-counts the survivors
      if (task_has_live_worker(ctx_, t)) {
        push(t);
      } else {
        orphans.push_back(t);
      }
    }
    return orphans;
  }

  [[nodiscard]] std::string name() const override { return "random"; }
  [[nodiscard]] std::size_t pending_count() const override { return pending_; }
  [[nodiscard]] bool has_work_hint(WorkerId w) const override {
    return !queues_[w.index()].empty();
  }

 private:
  Rng rng_;
  std::vector<std::deque<TaskId>> queues_;
  std::size_t pending_ = 0;
};

}  // namespace

std::unique_ptr<Scheduler> make_random(SchedContext ctx, std::uint64_t seed) {
  return std::make_unique<RandomScheduler>(std::move(ctx), seed);
}

}  // namespace mp
