#include "common/check.hpp"
#include "sched/schedulers.hpp"

namespace mp {

std::unique_ptr<Scheduler> make_scheduler_by_name(const std::string& name,
                                                  SchedContext ctx) {
  if (name == "eager") return make_eager(std::move(ctx));
  if (name == "random") return make_random(std::move(ctx));
  if (name == "lws") return make_lws(std::move(ctx));
  if (name == "dm") return make_dm_family(std::move(ctx), DmVariant::Dm);
  if (name == "dmda") return make_dm_family(std::move(ctx), DmVariant::Dmda);
  if (name == "dmdas") return make_dm_family(std::move(ctx), DmVariant::Dmdas);
  if (name == "heteroprio") return make_heteroprio(std::move(ctx));
  if (name == "multiprio")
    return std::make_unique<MultiPrioScheduler>(std::move(ctx), MultiPrioConfig{});
  if (name == "multiprio-coarse") {
    // Same policy under the engine's coarse lock (SchedConcurrency::
    // ExternalLock) — the contention baseline the sharded default is
    // benchmarked against, and the fixture the coarse-protocol mutation
    // tests pin.
    MultiPrioConfig cfg;
    cfg.sharded = false;
    return std::make_unique<MultiPrioScheduler>(std::move(ctx), cfg);
  }
  if (name == "multiprio-noevict") {
    MultiPrioConfig cfg;
    cfg.use_eviction = false;
    return std::make_unique<MultiPrioScheduler>(std::move(ctx), cfg);
  }
  if (name == "multiprio-nolocality") {
    MultiPrioConfig cfg;
    cfg.use_locality = false;
    return std::make_unique<MultiPrioScheduler>(std::move(ctx), cfg);
  }
  if (name == "multiprio-nonod") {
    MultiPrioConfig cfg;
    cfg.use_nod = false;
    return std::make_unique<MultiPrioScheduler>(std::move(ctx), cfg);
  }
  if (name == "multiprio-rawbrw") {
    MultiPrioConfig cfg;
    cfg.normalize_brw_by_workers = false;
    return std::make_unique<MultiPrioScheduler>(std::move(ctx), cfg);
  }
  MP_CHECK_MSG(false, ("unknown scheduler name: " + name).c_str());
  return nullptr;
}

std::vector<std::string> scheduler_names() {
  return {"eager",     "random",          "lws",
          "dm",        "dmda",            "dmdas",
          "heteroprio", "multiprio",      "multiprio-coarse",
          "multiprio-noevict", "multiprio-nolocality", "multiprio-nonod",
          "multiprio-rawbrw"};
}

}  // namespace mp
