#include "runtime/platform.hpp"

#include "common/check.hpp"

namespace mp {

Platform::Platform() {
  MemNode ram;
  ram.id = MemNodeId{std::uint32_t{0}};
  ram.kind = MemNodeKind::Ram;
  ram.name = "RAM";
  nodes_.push_back(std::move(ram));
  node_workers_.emplace_back();
}

MemNodeId Platform::add_gpu_node(std::size_t capacity_bytes, double bandwidth_bytes_per_s,
                                 double latency_s, std::string name) {
  MP_CHECK(bandwidth_bytes_per_s > 0.0);
  MemNode n;
  n.id = MemNodeId{nodes_.size()};
  n.kind = MemNodeKind::Gpu;
  n.capacity_bytes = capacity_bytes;
  n.bandwidth_bytes_per_s = bandwidth_bytes_per_s;
  n.latency_s = latency_s;
  n.name = name.empty() ? ("GPU" + std::to_string(nodes_.size() - 1)) : std::move(name);
  nodes_.push_back(std::move(n));
  node_workers_.emplace_back();
  return nodes_.back().id;
}

void Platform::add_workers(ArchType arch, MemNodeId node, std::size_t count) {
  MP_CHECK(node.valid() && node.index() < nodes_.size());
  // A memory node hosts workers of one architecture only (paper assumption
  // behind get_memory_node_arch_type).
  if (!node_workers_[node.index()].empty()) {
    MP_CHECK_MSG(worker(node_workers_[node.index()].front()).arch == arch,
                 "a memory node hosts a single worker architecture");
  }
  for (std::size_t i = 0; i < count; ++i) {
    Worker w;
    w.id = WorkerId{workers_.size()};
    w.arch = arch;
    w.node = node;
    w.name = std::string(arch_name(arch)) + "#" + std::to_string(w.id.value());
    node_workers_[node.index()].push_back(w.id);
    workers_.push_back(std::move(w));
    ++arch_worker_count_[arch_index(arch)];
  }
  auto& an = arch_nodes_[arch_index(arch)];
  bool known = false;
  for (MemNodeId m : an) known = known || (m == node);
  if (!known) an.push_back(node);
}

const MemNode& Platform::node(MemNodeId m) const {
  MP_CHECK(m.valid() && m.index() < nodes_.size());
  return nodes_[m.index()];
}

const Worker& Platform::worker(WorkerId w) const {
  MP_CHECK(w.valid() && w.index() < workers_.size());
  return workers_[w.index()];
}

ArchType Platform::node_arch(MemNodeId m) const {
  const auto& ws = workers_of_node(m);
  MP_CHECK_MSG(!ws.empty(), "node has no workers");
  return worker(ws.front()).arch;
}

const std::vector<WorkerId>& Platform::workers_of_node(MemNodeId m) const {
  MP_CHECK(m.valid() && m.index() < node_workers_.size());
  return node_workers_[m.index()];
}

std::size_t Platform::worker_count(ArchType a) const {
  return arch_worker_count_[arch_index(a)];
}

const std::vector<MemNodeId>& Platform::nodes_of_arch(ArchType a) const {
  return arch_nodes_[arch_index(a)];
}

double Platform::transfer_time(std::size_t bytes, MemNodeId from, MemNodeId to) const {
  if (from == to) return 0.0;
  double time = 0.0;
  const MemNode& f = node(from);
  const MemNode& t = node(to);
  if (f.kind == MemNodeKind::Gpu)
    time += f.latency_s + static_cast<double>(bytes) / f.bandwidth_bytes_per_s;
  if (t.kind == MemNodeKind::Gpu)
    time += t.latency_s + static_cast<double>(bytes) / t.bandwidth_bytes_per_s;
  return time;
}

void Platform::self_check() const {
  MP_CHECK(!nodes_.empty());
  MP_CHECK(nodes_.front().kind == MemNodeKind::Ram);
  for (const Worker& w : workers_) {
    MP_CHECK(w.node.index() < nodes_.size());
    const MemNodeKind k = nodes_[w.node.index()].kind;
    if (w.arch == ArchType::GPU) MP_CHECK(k == MemNodeKind::Gpu);
    if (w.arch == ArchType::CPU) MP_CHECK(k == MemNodeKind::Ram);
  }
}

}  // namespace mp
