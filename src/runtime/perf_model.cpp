#include "runtime/perf_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

#include "common/check.hpp"

namespace mp {

namespace {
constexpr double kMinTime = 1e-9;  // never report a zero/negative duration

[[nodiscard]] double apply_rate(const RateSpec& r, double flops, double bytes) {
  double t = r.overhead_s + (flops + r.flops_half) / (r.gflops * 1e9);
  if (r.bytes_per_s > 0.0) t += bytes / r.bytes_per_s;
  return std::max(t, kMinTime);
}
}  // namespace

void PerfDatabase::set_rate(const std::string& codelet_name, ArchType arch, RateSpec spec) {
  MP_CHECK(spec.gflops > 0.0);
  rates_[codelet_name][arch_index(arch)] = spec;
}

void PerfDatabase::set_default(ArchType arch, RateSpec spec) {
  MP_CHECK(spec.gflops > 0.0);
  defaults_[arch_index(arch)] = spec;
}

const RateSpec& PerfDatabase::rate(const std::string& codelet_name, ArchType arch) const {
  auto it = rates_.find(codelet_name);
  if (it != rates_.end() && it->second[arch_index(arch)].has_value())
    return *it->second[arch_index(arch)];
  return defaults_[arch_index(arch)];
}

double PerfDatabase::ground_truth(const TaskGraph& graph, TaskId t, ArchType a) const {
  const Task& task = graph.task(t);
  const Codelet& cl = graph.codelet_of(t);
  MP_CHECK_MSG(cl.can_exec(a), "no implementation for this arch");
  return apply_rate(rate(cl.name, a), task.flops,
                    static_cast<double>(task.footprint_bytes));
}

HistoryModel::HistoryModel(const TaskGraph& graph, const PerfDatabase& truth)
    : graph_(graph), truth_(truth) {}

std::uint64_t HistoryModel::key(TaskId t, ArchType a) const {
  const Task& task = graph_.task(t);
  // (codelet, arch, footprint) — StarPU keys history models by a hash of the
  // data sizes; the footprint byte count plays that role here.
  std::uint64_t h = task.codelet.value();
  h = h * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(arch_index(a));
  h = h * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(task.footprint_bytes);
  return h;
}

double HistoryModel::estimate(TaskId t, ArchType a) const {
  auto it = buckets_.find(key(t, a));
  if (it != buckets_.end() && it->second.count >= calibration_min_)
    return it->second.mean;
  // Uncalibrated prior: default-rate estimate from the task's flops.
  const Task& task = graph_.task(t);
  return apply_rate(truth_.rate("", a), task.flops,
                    static_cast<double>(task.footprint_bytes));
}

bool HistoryModel::is_calibrated(TaskId t, ArchType a) const {
  auto it = buckets_.find(key(t, a));
  return it != buckets_.end() && it->second.count >= calibration_min_;
}

void HistoryModel::record(TaskId t, ArchType a, double measured_s) {
  MP_CHECK(measured_s > 0.0);
  Bucket& b = buckets_[key(t, a)];
  ++b.count;
  b.mean += (measured_s - b.mean) / static_cast<double>(b.count);
}

void HistoryModel::seed_from_truth(double bias_sigma, std::uint64_t bias_seed) {
  for (std::size_t i = 0; i < graph_.num_tasks(); ++i) {
    const TaskId t{i};
    const Codelet& cl = graph_.codelet_of(t);
    for (std::size_t ai = 0; ai < kNumArchTypes; ++ai) {
      const auto a = static_cast<ArchType>(ai);
      if (!cl.can_exec(a)) continue;
      const std::uint64_t k = key(t, a);
      Bucket& b = buckets_[k];
      if (b.count == 0) {
        b.count = calibration_min_;
        b.mean = truth_.ground_truth(graph_, t, a);
        if (bias_sigma > 0.0) {
          Rng rng = Rng::derive(bias_seed, k);
          b.mean *= std::exp(bias_sigma * rng.next_normal());
        }
      }
    }
  }
}

}  // namespace mp
