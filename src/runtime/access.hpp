// Data access modes, as in StarPU's STF model.
#pragma once

#include <cstdint>

namespace mp {

enum class AccessMode : std::uint8_t {
  Read = 0,       ///< task reads the data (RAW dependency on last writer)
  Write = 1,      ///< task overwrites the data entirely (WAR/WAW dependencies)
  ReadWrite = 2,  ///< task reads then updates the data
  /// Commutative update (StarPU's STARPU_COMMUTE): updates may run in any
  /// order but not concurrently. Commuting tasks carry no DAG edges among
  /// themselves; the execution engines enforce per-handle mutual exclusion.
  /// TBFMM's local/potential accumulations and qr_mumps' assembly use this.
  Commute = 3,
};

[[nodiscard]] constexpr bool mode_reads(AccessMode m) {
  return m == AccessMode::Read || m == AccessMode::ReadWrite || m == AccessMode::Commute;
}

[[nodiscard]] constexpr bool mode_writes(AccessMode m) {
  return m == AccessMode::Write || m == AccessMode::ReadWrite || m == AccessMode::Commute;
}

[[nodiscard]] constexpr const char* mode_name(AccessMode m) {
  switch (m) {
    case AccessMode::Read: return "R";
    case AccessMode::Write: return "W";
    case AccessMode::ReadWrite: return "RW";
    case AccessMode::Commute: return "C";
  }
  return "?";
}

}  // namespace mp
