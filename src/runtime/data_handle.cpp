#include "runtime/data_handle.hpp"

#include "common/check.hpp"

namespace mp {

DataId HandleRegistry::register_data(std::size_t bytes, MemNodeId home, void* user_ptr,
                                     std::string name) {
  MP_CHECK_MSG(home.valid(), "data must have a home memory node");
  const DataId id{handles_.size()};
  handles_.push_back(DataHandle{id, bytes, home, user_ptr, std::move(name)});
  return id;
}

const DataHandle& HandleRegistry::get(DataId id) const {
  MP_CHECK(id.valid() && id.index() < handles_.size());
  return handles_[id.index()];
}

}  // namespace mp
