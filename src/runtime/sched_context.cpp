#include "runtime/scheduler.hpp"

#include <limits>

#include "common/check.hpp"

namespace mp {

bool worker_alive(const SchedContext& ctx, WorkerId w) {
  return ctx.liveness == nullptr || ctx.liveness->alive(w);
}

std::size_t live_worker_count(const SchedContext& ctx, ArchType a) {
  return ctx.liveness != nullptr ? ctx.liveness->live_count(a)
                                 : ctx.platform->worker_count(a);
}

std::size_t live_workers_of_node(const SchedContext& ctx, MemNodeId m) {
  return ctx.liveness != nullptr ? ctx.liveness->live_on_node(m)
                                 : ctx.platform->workers_of_node(m).size();
}

bool task_has_live_worker(const SchedContext& ctx, TaskId t) {
  for (std::size_t ai = 0; ai < kNumArchTypes; ++ai) {
    const auto a = static_cast<ArchType>(ai);
    if (ctx.graph->can_exec(t, a) && live_worker_count(ctx, a) > 0) return true;
  }
  return false;
}

std::vector<ArchType> enabled_archs(const SchedContext& ctx, TaskId t) {
  std::vector<ArchType> out;
  for (std::size_t ai = 0; ai < kNumArchTypes; ++ai) {
    const auto a = static_cast<ArchType>(ai);
    if (ctx.graph->can_exec(t, a) && live_worker_count(ctx, a) > 0) out.push_back(a);
  }
  return out;
}

ArchType best_arch_for(const SchedContext& ctx, TaskId t) {
  double best = std::numeric_limits<double>::infinity();
  std::optional<ArchType> best_a;
  for (ArchType a : enabled_archs(ctx, t)) {
    const double d = ctx.perf->estimate(t, a);
    if (d < best) {
      best = d;
      best_a = a;
    }
  }
  MP_CHECK_MSG(best_a.has_value(), "task has no enabled architecture");
  return *best_a;
}

std::optional<ArchType> second_arch_for(const SchedContext& ctx, TaskId t) {
  const ArchType first = best_arch_for(ctx, t);
  double best = std::numeric_limits<double>::infinity();
  std::optional<ArchType> second;
  for (ArchType a : enabled_archs(ctx, t)) {
    if (a == first) continue;
    const double d = ctx.perf->estimate(t, a);
    if (d < best) {
      best = d;
      second = a;
    }
  }
  return second;
}

double normalized_speedup(const SchedContext& ctx, TaskId t, ArchType a) {
  const ArchType best = best_arch_for(ctx, t);
  if (best == a) return 1.0;
  return ctx.perf->estimate(t, best) / ctx.perf->estimate(t, a);
}

}  // namespace mp
