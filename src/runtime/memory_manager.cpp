#include "runtime/memory_manager.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace mp {

namespace {
[[nodiscard]] std::uint64_t pin_key(DataId d, MemNodeId m) {
  return (static_cast<std::uint64_t>(d.value()) << 32) | m.value();
}
[[nodiscard]] std::uint64_t nbit(MemNodeId m) { return std::uint64_t{1} << m.index(); }
[[nodiscard]] std::uint64_t nbit(std::size_t i) { return std::uint64_t{1} << i; }
}  // namespace

MemoryManager::MemoryManager(const TaskGraph& graph, const Platform& platform)
    : graph_(graph), platform_(platform) {
  const std::size_t n_nodes = platform.num_nodes();
  MP_CHECK_MSG(n_nodes <= 64, "DataState::valid is a uint64 bitmask (max 64 memory nodes)");
  nodes_.resize(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i)
    nodes_[i].capacity = platform.node(MemNodeId{i}).capacity_bytes;
  chunk_storage_.resize(kMaxChunks);
  chunk_dir_ = std::vector<RelaxedAtomic<DataState*>>(kMaxChunks);
  sync_new_handles();
}

void MemoryManager::sync_new_handles() const {
  const std::size_t total = graph_.handles().count();
  if (synced_count_.load() >= total) return;
  // Growth is serialized: the engine already funnels every mutating entry
  // point through its bookkeeping lock, and sync_mu_ makes the grow path
  // independently safe. Chunks never move once published, and the count is
  // released only after an entry is fully initialized, so the lock-free
  // readers (which never call this) always see consistent state.
  std::lock_guard<Mutex> lock(sync_mu_);
  std::size_t n = synced_count_.load();
  while (n < total) {
    const DataId id{n};
    const DataHandle& h = graph_.handles().get(id);
    const std::size_t chunk = n >> kChunkShift;
    MP_CHECK_MSG(chunk < kMaxChunks,
                 "handle count exceeds the MemoryManager chunk directory "
                 "(raise kMaxChunks)");
    if (chunk_storage_[chunk] == nullptr) {
      chunk_storage_[chunk] = std::make_unique<DataState[]>(kChunkSize);
      chunk_dir_[chunk].store_release(chunk_storage_[chunk].get());
    }
    DataState& ds = data_state(n);
    ds.valid.store(nbit(h.home));
    ds.owner = h.home;
    // Home copies consume space on their node (matters only for GPU-homed
    // data, which is unusual; RAM is unlimited).
    NodeState& ns = nodes_[h.home.index()];
    ns.where[id] = ns.lru.insert(ns.lru.end(), id);
    ns.used += h.bytes;
    ++n;
    synced_count_.store_release(n);
  }
}

bool MemoryManager::is_valid_on(DataId d, MemNodeId node) const {
  // Lock-free (scheduler POP-path) query: a handle past the published count
  // has exactly one copy, at home — the state sync_new_handles() installs.
  if (d.index() >= synced_count_.load_acquire())
    return node == graph_.handles().get(d).home;
  return (data_state(d.index()).valid.load() & nbit(node)) != 0;
}

std::size_t MemoryManager::bytes_missing(TaskId t, MemNodeId node) const {
  std::size_t missing = 0;
  for (const Access& a : graph_.task(t).accesses) {
    if (!is_valid_on(a.data, node)) missing += graph_.handles().get(a.data).bytes;
  }
  return missing;
}

double MemoryManager::estimated_transfer_time(TaskId t, MemNodeId node) const {
  const std::size_t synced = synced_count_.load_acquire();
  double time = 0.0;
  for (const Access& a : graph_.task(t).accesses) {
    const std::uint64_t mask = a.data.index() < synced
                                   ? data_state(a.data.index()).valid.load()
                                   : nbit(graph_.handles().get(a.data).home);
    if ((mask & nbit(node)) != 0) continue;
    const MemNodeId src = any_valid_node(mask);
    time += platform_.transfer_time(graph_.handles().get(a.data).bytes, src, node);
  }
  return time;
}

MemNodeId MemoryManager::any_valid_node(std::uint64_t mask) const {
  // Prefer RAM as the source (cheapest single hop), else the first valid node.
  if ((mask & nbit(platform_.ram_node())) != 0) return platform_.ram_node();
  for (std::size_t i = 0; i < platform_.num_nodes(); ++i)
    if ((mask & nbit(i)) != 0) return MemNodeId{i};
  MP_CHECK_MSG(false, "data handle has no valid copy anywhere");
  return MemNodeId{};
}

void MemoryManager::touch(DataId d, MemNodeId node) {
  NodeState& ns = nodes_[node.index()];
  auto it = ns.where.find(d);
  if (it != ns.where.end()) {
    ns.lru.erase(it->second);
    it->second = ns.lru.insert(ns.lru.end(), d);
  } else {
    ns.where[d] = ns.lru.insert(ns.lru.end(), d);
  }
}

void MemoryManager::drop_copy(DataId d, MemNodeId node) {
  NodeState& ns = nodes_[node.index()];
  auto it = ns.where.find(d);
  if (it == ns.where.end()) return;
  ns.lru.erase(it->second);
  ns.where.erase(it);
  const std::size_t bytes = graph_.handles().get(d).bytes;
  MP_ASSERT(ns.used >= bytes);
  ns.used -= bytes;
  data_state(d.index()).valid.fetch_and(~nbit(node));
}

bool MemoryManager::evict_until_fits(std::size_t need, MemNodeId node,
                                     std::vector<TransferOp>& ops) {
  NodeState& ns = nodes_[node.index()];
  if (ns.capacity == 0) return true;  // unlimited
  auto it = ns.lru.begin();
  while (ns.used + need > ns.capacity && it != ns.lru.end()) {
    const DataId victim = *it;
    ++it;
    auto pin = pin_count_.find(pin_key(victim, node));
    if (pin != pin_count_.end() && pin->second > 0) continue;
    DataState& ds = data_state(victim.index());
    const std::size_t bytes = graph_.handles().get(victim).bytes;
    const bool only_copy_here = ds.valid.load() == nbit(node);
    if (only_copy_here) {
      // Write the authoritative copy back to RAM before dropping it.
      const MemNodeId ram = platform_.ram_node();
      ops.push_back(TransferOp{victim, node, ram, bytes, true});
      ns.bytes_out += bytes;
      nodes_[ram.index()].bytes_in += bytes;
      ds.valid.fetch_or(nbit(ram));
      touch(victim, ram);  // RAM is unlimited; no recursion
      ds.owner = ram;
    }
    ++eviction_count_;
    drop_copy(victim, node);
  }
  if (ns.used + need > ns.capacity) {
    ++capacity_overflows_;
    return false;
  }
  return true;
}

void MemoryManager::make_resident(DataId d, MemNodeId node, std::vector<TransferOp>& ops) {
  DataState& ds = data_state(d.index());
  if ((ds.valid.load() & nbit(node)) != 0) {
    touch(d, node);
    return;
  }
  const std::size_t bytes = graph_.handles().get(d).bytes;
  (void)evict_until_fits(bytes, node, ops);  // overflow counted, run continues
  const MemNodeId src = any_valid_node(ds.valid.load());
  ops.push_back(TransferOp{d, src, node, bytes, false});
  nodes_[src.index()].bytes_out += bytes;
  nodes_[node.index()].bytes_in += bytes;
  ds.valid.fetch_or(nbit(node));
  nodes_[node.index()].used += bytes;
  touch(d, node);
}

void MemoryManager::acquire_for_task(TaskId t, MemNodeId node, std::vector<TransferOp>& ops) {
  sync_new_handles();
  for (const Access& a : graph_.task(t).accesses) {
    if (mode_reads(a.mode)) {
      make_resident(a.data, node, ops);
    } else {
      // Write-only: no fetch needed, just allocation on the node.
      DataState& ds = data_state(a.data.index());
      if ((ds.valid.load() & nbit(node)) == 0) {
        const std::size_t bytes = graph_.handles().get(a.data).bytes;
        (void)evict_until_fits(bytes, node, ops);
        ds.valid.fetch_or(nbit(node));
        nodes_[node.index()].used += bytes;
      }
      touch(a.data, node);
    }
    if (mode_writes(a.mode)) {
      // Invalidate every other copy; this node becomes the owner.
      DataState& ds = data_state(a.data.index());
      const std::uint64_t others = ds.valid.load() & ~nbit(node);
      for (std::size_t i = 0; i < platform_.num_nodes(); ++i) {
        if ((others & nbit(i)) == 0) continue;
        drop_copy(a.data, MemNodeId{i});
      }
      ds.dirty = (node != graph_.handles().get(a.data).home);
      ds.owner = node;
    }
  }
}

void MemoryManager::prefetch(DataId d, MemNodeId node, std::vector<TransferOp>& ops) {
  sync_new_handles();
  DataState& ds = data_state(d.index());
  if ((ds.valid.load() & nbit(node)) != 0) return;
  const std::size_t bytes = graph_.handles().get(d).bytes;
  std::vector<TransferOp> evictions;
  if (!evict_until_fits(bytes, node, evictions)) {
    // Not worth forcing room for a prefetch; drop it (evictions already
    // performed stand, as in a real runtime's best-effort prefetch).
    ops.insert(ops.end(), evictions.begin(), evictions.end());
    return;
  }
  ops.insert(ops.end(), evictions.begin(), evictions.end());
  const MemNodeId src = any_valid_node(ds.valid.load());
  ops.push_back(TransferOp{d, src, node, bytes, false});
  nodes_[src.index()].bytes_out += bytes;
  nodes_[node.index()].bytes_in += bytes;
  ds.valid.fetch_or(nbit(node));
  nodes_[node.index()].used += bytes;
  touch(d, node);
}

void MemoryManager::evacuate_node(MemNodeId node, std::vector<TransferOp>& ops) {
  sync_new_handles();
  const MemNodeId ram = platform_.ram_node();
  if (node == ram) return;  // RAM loss is unsurvivable and not modelled
  const std::size_t synced = synced_count_.load();
  for (std::size_t di = 0; di < synced; ++di) {
    const DataId d{di};
    DataState& ds = data_state(di);
    if ((ds.valid.load() & nbit(node)) == 0) continue;
    MP_ASSERT(pin_count_.find(pin_key(d, node)) == pin_count_.end());
    if (ds.valid.load() == nbit(node)) {
      // Sole copy: migrate it to RAM while the link still exists.
      const std::size_t bytes = graph_.handles().get(d).bytes;
      ops.push_back(TransferOp{d, node, ram, bytes, true});
      nodes_[node.index()].bytes_out += bytes;
      nodes_[ram.index()].bytes_in += bytes;
      ds.valid.fetch_or(nbit(ram));
      touch(d, ram);
      ds.owner = ram;
    }
    drop_copy(d, node);
  }
}

void MemoryManager::pin_task_data(TaskId t, MemNodeId node) {
  for (const Access& a : graph_.task(t).accesses) ++pin_count_[pin_key(a.data, node)];
}

void MemoryManager::unpin_task_data(TaskId t, MemNodeId node) {
  for (const Access& a : graph_.task(t).accesses) {
    auto it = pin_count_.find(pin_key(a.data, node));
    MP_ASSERT(it != pin_count_.end() && it->second > 0);
    if (--it->second == 0) pin_count_.erase(it);
  }
}

std::size_t MemoryManager::total_bytes_to(MemNodeId node) const {
  return nodes_[node.index()].bytes_in;
}

std::size_t MemoryManager::total_bytes_from(MemNodeId node) const {
  return nodes_[node.index()].bytes_out;
}

std::size_t MemoryManager::used_bytes(MemNodeId node) const {
  return nodes_[node.index()].used;
}

}  // namespace mp
