// MemoryManager: MSI data coherence over memory nodes, with device-memory
// capacity tracking and LRU eviction — the data-management half of StarPU
// that schedulers interact with (data locality queries, prefetch,
// transfer-volume accounting).
//
// State-change semantics are commit-at-start: when the engine decides a task
// (or a prefetch) will fetch data to a node, the coherence state is updated
// immediately and the returned TransferOps carry the byte counts the engine
// must charge to the link timeline. STF dependencies guarantee no
// conflicting accesses overlap, so no in-flight states are needed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "runtime/platform.hpp"
#include "runtime/task_graph.hpp"
#include "verify/sync.hpp"

namespace mp {

/// One data movement the engine must account for on the link timeline.
struct TransferOp {
  DataId data;
  MemNodeId from;
  MemNodeId to;
  std::size_t bytes = 0;
  /// True when this is a capacity-eviction writeback rather than a fetch.
  bool writeback = false;
};

class MemoryManager {
 public:
  MemoryManager(const TaskGraph& graph, const Platform& platform);

  /// Makes every access of `t` valid on `node` (fetching missing copies,
  /// invalidating remote copies for writes), evicting LRU data if the node
  /// is capacity-limited. Appends the required movements to `ops`.
  void acquire_for_task(TaskId t, MemNodeId node, std::vector<TransferOp>& ops);

  /// Fetches a read-only copy of `d` onto `node` ahead of time (Dmdas-style
  /// prefetch). No-op if already valid there or if eviction cannot make room.
  void prefetch(DataId d, MemNodeId node, std::vector<TransferOp>& ops);

  /// Pin/unpin the accesses of a running task so eviction skips them.
  void pin_task_data(TaskId t, MemNodeId node);
  void unpin_task_data(TaskId t, MemNodeId node);

  /// Graceful device retirement (fail-stop loss of a node's last worker):
  /// writes every sole authoritative copy held on `node` back to RAM and
  /// drops all of the node's copies, appending the writeback movements to
  /// `ops`. The caller must have unpinned everything on the node first.
  void evacuate_node(MemNodeId node, std::vector<TransferOp>& ops);

  // --- queries used by schedulers ----------------------------------------

  [[nodiscard]] bool is_valid_on(DataId d, MemNodeId node) const;

  /// Bytes of `t`'s accesses *not* yet valid on `node` — the demand-fetch
  /// volume a scheduler should expect (Dmda's transfer-cost term).
  [[nodiscard]] std::size_t bytes_missing(TaskId t, MemNodeId node) const;

  /// Estimated wire time to satisfy `t` on `node` given current placement.
  [[nodiscard]] double estimated_transfer_time(TaskId t, MemNodeId node) const;

  // --- statistics ----------------------------------------------------------

  [[nodiscard]] std::size_t total_bytes_to(MemNodeId node) const;
  [[nodiscard]] std::size_t total_bytes_from(MemNodeId node) const;
  [[nodiscard]] std::size_t used_bytes(MemNodeId node) const;
  /// Number of times an allocation had to exceed the node capacity because
  /// everything resident was pinned (should stay 0 in healthy runs).
  [[nodiscard]] std::size_t capacity_overflows() const { return capacity_overflows_; }
  [[nodiscard]] std::size_t eviction_count() const { return eviction_count_; }

 private:
  struct DataState {
    /// Validity bitmask, bit = node index (the platform is capped at 64
    /// memory nodes). Relaxed-atomic because internally-locked schedulers
    /// read locality (is_valid_on via LS_SDH²) from their POP path while the
    /// engine commits placement changes under its own lock; a locality score
    /// judged one transfer stale is an acceptable heuristic error.
    RelaxedAtomic<std::uint64_t> valid;
    bool dirty = false;       // some node holds a newer copy than home
    MemNodeId owner;          // node holding the authoritative copy if dirty
  };

  // Per-handle state lives in fixed-size chunks behind a directory of
  // published pointers: growth (serialized under sync_mu_) never moves an
  // existing DataState, so the lock-free reader paths can index entries
  // below synced_count_ while a mutator appends new ones.
  static constexpr std::size_t kChunkShift = 10;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
  static constexpr std::size_t kMaxChunks = 1024;  // 1M handles

  struct NodeState {
    std::size_t capacity = 0;  // 0 = unlimited
    std::size_t used = 0;
    std::list<DataId> lru;  // front = least recently used
    std::unordered_map<DataId, std::list<DataId>::iterator> where;
    std::size_t bytes_in = 0;
    std::size_t bytes_out = 0;
  };

  /// Appends per-handle state for handles registered after construction
  /// (STF graphs may keep growing). Called only by the *mutating* entry
  /// points, which the engine serializes; growth itself is additionally
  /// guarded by sync_mu_. The lock-free query paths (is_valid_on & friends,
  /// read from scheduler POP paths) never call this: they treat handles at
  /// or above the published synced count as valid-at-home — exactly the
  /// state this function would install — so they never observe growth.
  void sync_new_handles() const;

  /// Indexed access into the chunked store; `i` must be below the published
  /// synced count (readers) or the lock-held growth frontier (mutators).
  [[nodiscard]] DataState& data_state(std::size_t i) const {
    return chunk_dir_[i >> kChunkShift].load_acquire()[i & (kChunkSize - 1)];
  }

  void make_resident(DataId d, MemNodeId node, std::vector<TransferOp>& ops);
  void touch(DataId d, MemNodeId node);
  void drop_copy(DataId d, MemNodeId node);
  /// Frees at least `need` bytes on `node` by LRU eviction; returns false if
  /// pinned data prevented it.
  bool evict_until_fits(std::size_t need, MemNodeId node, std::vector<TransferOp>& ops);
  /// Preferred source node among the copies of a validity mask.
  [[nodiscard]] MemNodeId any_valid_node(std::uint64_t valid_mask) const;

  const TaskGraph& graph_;
  const Platform& platform_;
  /// Serializes sync_new_handles() growth (belt to the engine's own
  /// serialization of the mutating entry points).
  mutable Mutex sync_mu_;
  /// Handles with initialized DataState, published with release after the
  /// entry is fully written; readers load-acquire and fall back to
  /// valid-at-home for anything newer.
  mutable RelaxedAtomic<std::size_t> synced_count_;
  mutable std::vector<std::unique_ptr<DataState[]>> chunk_storage_;  // owner; under sync_mu_
  mutable std::vector<RelaxedAtomic<DataState*>> chunk_dir_;         // published pointers
  mutable std::vector<NodeState> nodes_;
  std::unordered_map<std::uint64_t, int> pin_count_;  // (data,node) -> pins
  std::size_t capacity_overflows_ = 0;
  std::size_t eviction_count_ = 0;
};

}  // namespace mp
