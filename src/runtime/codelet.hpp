// Codelets: multi-implementation task functions, as in StarPU.
#pragma once

#include <array>
#include <bitset>
#include <functional>
#include <span>
#include <string>

#include "common/ids.hpp"

namespace mp {

struct Task;

/// Real implementation signature used by the threaded executor. `buffers[i]`
/// is the storage of the i-th data access of the task.
using KernelFn = std::function<void(const Task&, std::span<void* const>)>;

/// A codelet describes one *type* of task: its name (keyed by performance
/// models and by HeteroPrio's buckets), which architectures it can run on,
/// and optional real implementations.
struct Codelet {
  CodeletId id;
  std::string name;
  /// where_mask[arch_index(a)] == true iff an implementation exists for a.
  std::bitset<kNumArchTypes> where_mask;
  /// Real implementations (may be empty for simulation-only workloads). A
  /// GPU-capable codelet without gpu_fn falls back to cpu_fn in the threaded
  /// executor: worker threads tagged GPU emulate the device functionally.
  KernelFn cpu_fn;
  KernelFn gpu_fn;

  [[nodiscard]] bool can_exec(ArchType a) const { return where_mask[arch_index(a)]; }
  [[nodiscard]] bool single_arch() const { return where_mask.count() == 1; }
};

}  // namespace mp
