// Platform description: memory nodes, processing units / workers, links.
//
// Mirrors StarPU's machine model: one RAM node hosting the CPU workers, one
// memory node per GPU hosting that GPU's worker(s) (several workers per GPU
// model concurrent CUDA streams), and a PCIe-like link per GPU node.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "common/ids.hpp"

namespace mp {

enum class MemNodeKind : std::uint8_t { Ram = 0, Gpu = 1 };

struct MemNode {
  MemNodeId id;
  MemNodeKind kind = MemNodeKind::Ram;
  /// Device memory capacity in bytes; 0 means unlimited (RAM).
  std::size_t capacity_bytes = 0;
  /// Link to/from RAM. RAM itself has no link (fields unused).
  double bandwidth_bytes_per_s = 0.0;
  double latency_s = 0.0;
  std::string name;
};

struct Worker {
  WorkerId id;
  ArchType arch = ArchType::CPU;
  MemNodeId node;
  std::string name;
};

class Platform {
 public:
  /// Creates a platform with a single RAM node (node 0).
  Platform();

  /// Adds a GPU memory node with the given link characteristics; returns its id.
  MemNodeId add_gpu_node(std::size_t capacity_bytes, double bandwidth_bytes_per_s,
                         double latency_s, std::string name = {});

  /// Adds `count` workers of architecture `arch` attached to `node`.
  void add_workers(ArchType arch, MemNodeId node, std::size_t count);

  [[nodiscard]] MemNodeId ram_node() const { return MemNodeId{std::uint32_t{0}}; }
  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] std::size_t num_workers() const { return workers_.size(); }
  [[nodiscard]] const MemNode& node(MemNodeId m) const;
  [[nodiscard]] const Worker& worker(WorkerId w) const;
  [[nodiscard]] const std::vector<Worker>& workers() const { return workers_; }
  [[nodiscard]] const std::vector<MemNode>& nodes() const { return nodes_; }

  /// Architecture of the workers attached to `m` (the paper's
  /// get_memory_node_arch_type). A node hosts workers of a single arch.
  [[nodiscard]] ArchType node_arch(MemNodeId m) const;

  /// Workers attached to `m` (the paper's P_m as worker set W_m).
  [[nodiscard]] const std::vector<WorkerId>& workers_of_node(MemNodeId m) const;

  /// Number of workers of architecture `a` (paper's get_worker_count(a)).
  [[nodiscard]] std::size_t worker_count(ArchType a) const;

  /// Memory nodes whose workers are of architecture `a`.
  [[nodiscard]] const std::vector<MemNodeId>& nodes_of_arch(ArchType a) const;

  /// Estimated wire time to move `bytes` between `from` and `to`. Transfers
  /// between two GPU nodes hop through RAM (cost of both links). Zero if
  /// from == to.
  [[nodiscard]] double transfer_time(std::size_t bytes, MemNodeId from, MemNodeId to) const;

  void self_check() const;

 private:
  std::vector<MemNode> nodes_;
  std::vector<Worker> workers_;
  std::vector<std::vector<WorkerId>> node_workers_;
  std::array<std::vector<MemNodeId>, kNumArchTypes> arch_nodes_;
  std::array<std::size_t, kNumArchTypes> arch_worker_count_{};
};

}  // namespace mp
