// Data handles: the unit of dependency inference and data movement.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/ids.hpp"

namespace mp {

/// A registered piece of application data. The runtime tracks where valid
/// copies live (MemoryManager); the handle itself is immutable metadata.
struct DataHandle {
  DataId id;
  std::size_t bytes = 0;
  /// Memory node holding the initial (home) copy; almost always the RAM node.
  MemNodeId home;
  /// Optional pointer to real storage, used by the threaded executor.
  void* user_ptr = nullptr;
  std::string name;
};

/// Owns all data handles of an application run.
class HandleRegistry {
 public:
  /// Registers a piece of data living on `home`. `user_ptr` may be null for
  /// simulation-only workloads.
  DataId register_data(std::size_t bytes, MemNodeId home, void* user_ptr = nullptr,
                       std::string name = {});

  [[nodiscard]] const DataHandle& get(DataId id) const;
  [[nodiscard]] std::size_t count() const { return handles_.size(); }

  [[nodiscard]] const std::vector<DataHandle>& all() const { return handles_; }

 private:
  std::vector<DataHandle> handles_;
};

}  // namespace mp
