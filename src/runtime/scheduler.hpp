// The pluggable scheduling-policy interface (StarPU's PUSH/POP contract).
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "common/ids.hpp"
#include "runtime/memory_manager.hpp"
#include "runtime/perf_model.hpp"
#include "runtime/platform.hpp"
#include "runtime/task_graph.hpp"

namespace mp {

/// Engine-provided hook a policy can use to request data prefetch (Dmdas
/// maps tasks at PUSH time and prefetches their data to the target node).
class PrefetchSink {
 public:
  virtual ~PrefetchSink() = default;
  virtual void request_prefetch(DataId data, MemNodeId node) = 0;
};

/// Everything a policy may inspect — the scheduler-visible surface of the
/// runtime (graph topology, platform, δ(t,a) estimates, data placement).
struct SchedContext {
  const TaskGraph* graph = nullptr;
  const Platform* platform = nullptr;
  HistoryModel* perf = nullptr;
  MemoryManager* memory = nullptr;
  /// Current (virtual or wall-clock) time in seconds.
  std::function<double()> now;
  /// May be null when the engine does not support prefetching.
  PrefetchSink* prefetch = nullptr;
};

/// A scheduling policy. The engine calls push() when a task becomes ready
/// and pop() when a worker is idle. pop() returning nullopt parks the worker
/// until the engine wakes it on the next state change (push, completion, or
/// a successful pop by another worker).
class Scheduler {
 public:
  explicit Scheduler(SchedContext ctx) : ctx_(std::move(ctx)) {}
  virtual ~Scheduler() = default;

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  virtual void push(TaskId t) = 0;
  [[nodiscard]] virtual std::optional<TaskId> pop(WorkerId w) = 0;

  /// Notifications (optional for policies that track load).
  virtual void on_task_start(TaskId /*t*/, WorkerId /*w*/) {}
  virtual void on_task_end(TaskId /*t*/, WorkerId /*w*/) {}

  [[nodiscard]] virtual std::string name() const = 0;

  /// Number of tasks pushed but not yet popped (for engine sanity checks).
  [[nodiscard]] virtual std::size_t pending_count() const = 0;

  /// Cheap hint: could pop(w) possibly return a task right now? Engines use
  /// it to avoid waking workers that have nothing to look at. Must never
  /// return false when a pop would succeed; returning true spuriously only
  /// costs a failed pop.
  [[nodiscard]] virtual bool has_work_hint(WorkerId /*w*/) const { return true; }

 protected:
  [[nodiscard]] const SchedContext& ctx() const { return ctx_; }
  SchedContext ctx_;
};

// --- helpers shared by several policies ------------------------------------

/// Architectures that both have an implementation of `t` and at least one
/// worker on the platform, i.e. the archs the task can actually run on.
[[nodiscard]] std::vector<ArchType> enabled_archs(const SchedContext& ctx, TaskId t);

/// Fastest enabled arch for `t` according to δ(t,a); requires ≥1 enabled.
[[nodiscard]] ArchType best_arch_for(const SchedContext& ctx, TaskId t);

/// Second-fastest enabled arch, or nullopt when only one arch is enabled.
[[nodiscard]] std::optional<ArchType> second_arch_for(const SchedContext& ctx, TaskId t);

/// 1.0 when `a` is the fastest enabled arch for `t`, < 1.0 otherwise
/// (δ(t,best)/δ(t,a)) — the paper's normalized_speedup(t,a).
[[nodiscard]] double normalized_speedup(const SchedContext& ctx, TaskId t, ArchType a);

}  // namespace mp
