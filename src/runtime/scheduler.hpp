// The pluggable scheduling-policy interface (StarPU's PUSH/POP contract).
#pragma once

#include <array>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "runtime/memory_manager.hpp"
#include "runtime/perf_model.hpp"
#include "runtime/platform.hpp"
#include "runtime/task_graph.hpp"

namespace mp {

/// Observability hook (src/obs/): typed decision events + metrics. Kept as
/// a forward declaration so the runtime layer stays link-independent of
/// mp_obs; policies that emit include obs/observer.hpp themselves.
class SchedObserver;

/// Engine-provided hook a policy can use to request data prefetch (Dmdas
/// maps tasks at PUSH time and prefetches their data to the target node).
class PrefetchSink {
 public:
  virtual ~PrefetchSink() = default;
  virtual void request_prefetch(DataId data, MemNodeId node) = 0;
};

/// Which workers are still alive. Engines that support fail-stop worker loss
/// own one and flip it *before* notifying the policy; a null liveness in the
/// SchedContext means every worker of the platform is alive.
class WorkerLiveness {
 public:
  explicit WorkerLiveness(const Platform& platform)
      : platform_(&platform),
        alive_(platform.num_workers(), true),
        node_live_(platform.num_nodes(), 0) {
    for (const Worker& w : platform.workers()) {
      ++node_live_[w.node.index()];
      ++arch_live_[arch_index(w.arch)];
    }
  }

  [[nodiscard]] bool alive(WorkerId w) const { return alive_[w.index()]; }
  [[nodiscard]] std::size_t live_count(ArchType a) const {
    return arch_live_[arch_index(a)];
  }
  [[nodiscard]] std::size_t live_on_node(MemNodeId m) const {
    return node_live_[m.index()];
  }
  [[nodiscard]] std::size_t total_live() const {
    std::size_t n = 0;
    for (std::size_t c : arch_live_) n += c;
    return n;
  }

  /// Fail-stop: idempotent, never reversed.
  void mark_dead(WorkerId w) {
    if (!alive_[w.index()]) return;
    alive_[w.index()] = false;
    const Worker& wk = platform_->worker(w);
    --node_live_[wk.node.index()];
    --arch_live_[arch_index(wk.arch)];
  }

 private:
  const Platform* platform_;
  std::vector<bool> alive_;
  std::vector<std::size_t> node_live_;
  std::array<std::size_t, kNumArchTypes> arch_live_{};
};

/// Everything a policy may inspect — the scheduler-visible surface of the
/// runtime (graph topology, platform, δ(t,a) estimates, data placement).
struct SchedContext {
  const TaskGraph* graph = nullptr;
  const Platform* platform = nullptr;
  HistoryModel* perf = nullptr;
  MemoryManager* memory = nullptr;
  /// Current (virtual or wall-clock) time in seconds.
  std::function<double()> now;
  /// May be null when the engine does not support prefetching.
  PrefetchSink* prefetch = nullptr;
  /// May be null when the engine does not support worker loss (= all alive).
  const WorkerLiveness* liveness = nullptr;
  /// Decision-event sink. Null (the default) disables observability at the
  /// cost of one pointer test per decision site — policies must not even
  /// construct an event when it is null.
  SchedObserver* observer = nullptr;
};

/// A scheduling policy. The engine calls push() when a task becomes ready
/// and pop() when a worker is idle. pop() returning nullopt parks the worker
/// until the engine wakes it on the next state change (push, completion, or
/// a successful pop by another worker).
class Scheduler {
 public:
  explicit Scheduler(SchedContext ctx) : ctx_(std::move(ctx)) {}
  virtual ~Scheduler() = default;

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  virtual void push(TaskId t) = 0;
  [[nodiscard]] virtual std::optional<TaskId> pop(WorkerId w) = 0;

  /// Re-enqueues a previously popped task whose execution did not complete —
  /// a transient failure being retried, or work drained off a dead worker.
  /// Policies whose push() tolerates re-insertion inherit this default;
  /// policies with pop-time bookkeeping (MultiPrio's taken-set) override it.
  virtual void repush(TaskId t) { push(t); }

  /// Fail-stop removal of `w`. The engine flips the SchedContext's liveness
  /// mask *before* calling this. The policy must drop per-worker state and
  /// keep every pending task reachable from a live worker; tasks that no
  /// longer have any live capable worker are returned so the engine can
  /// account for their abandonment. Tasks in flight on the dead worker are
  /// the engine's problem (drained and repush()ed afterwards, without a
  /// matching on_task_end for the interrupted on_task_start).
  [[nodiscard]] virtual std::vector<TaskId> notify_worker_removed(WorkerId /*w*/) {
    return {};
  }

  /// Notifications (optional for policies that track load).
  virtual void on_task_start(TaskId /*t*/, WorkerId /*w*/) {}
  virtual void on_task_end(TaskId /*t*/, WorkerId /*w*/) {}

  [[nodiscard]] virtual std::string name() const = 0;

  /// Number of tasks pushed but not yet popped (for engine sanity checks).
  [[nodiscard]] virtual std::size_t pending_count() const = 0;

  /// Cheap hint: could pop(w) possibly return a task right now? Engines use
  /// it to avoid waking workers that have nothing to look at. Must never
  /// return false when a pop would succeed; returning true spuriously only
  /// costs a failed pop.
  [[nodiscard]] virtual bool has_work_hint(WorkerId /*w*/) const { return true; }

 protected:
  [[nodiscard]] const SchedContext& ctx() const { return ctx_; }
  SchedContext ctx_;
};

// --- helpers shared by several policies ------------------------------------
// All of these are liveness-aware: with a WorkerLiveness in the context,
// dead workers do not count as capacity, so after a device loss "best arch"
// verdicts and speedups are judged against the surviving platform.

/// Is `w` alive (always true without a liveness mask)?
[[nodiscard]] bool worker_alive(const SchedContext& ctx, WorkerId w);

/// Live workers of architecture `a`.
[[nodiscard]] std::size_t live_worker_count(const SchedContext& ctx, ArchType a);

/// Live workers attached to memory node `m`.
[[nodiscard]] std::size_t live_workers_of_node(const SchedContext& ctx, MemNodeId m);

/// Can any live worker execute `t`? False means the task is orphaned.
[[nodiscard]] bool task_has_live_worker(const SchedContext& ctx, TaskId t);

/// Architectures that both have an implementation of `t` and at least one
/// live worker on the platform, i.e. the archs the task can actually run on.
[[nodiscard]] std::vector<ArchType> enabled_archs(const SchedContext& ctx, TaskId t);

/// Fastest enabled arch for `t` according to δ(t,a); requires ≥1 enabled.
[[nodiscard]] ArchType best_arch_for(const SchedContext& ctx, TaskId t);

/// Second-fastest enabled arch, or nullopt when only one arch is enabled.
[[nodiscard]] std::optional<ArchType> second_arch_for(const SchedContext& ctx, TaskId t);

/// 1.0 when `a` is the fastest enabled arch for `t`, < 1.0 otherwise
/// (δ(t,best)/δ(t,a)) — the paper's normalized_speedup(t,a).
[[nodiscard]] double normalized_speedup(const SchedContext& ctx, TaskId t, ArchType a);

}  // namespace mp
