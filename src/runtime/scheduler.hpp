// The pluggable scheduling-policy interface (StarPU's PUSH/POP contract).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "runtime/memory_manager.hpp"
#include "runtime/perf_model.hpp"
#include "runtime/platform.hpp"
#include "runtime/task_graph.hpp"
#include "verify/sync.hpp"

namespace mp {

/// Observability hook (src/obs/): typed decision events + metrics. Kept as
/// a forward declaration so the runtime layer stays link-independent of
/// mp_obs; policies that emit include obs/observer.hpp themselves.
class SchedObserver;

/// Engine-provided hook a policy can use to request data prefetch (Dmdas
/// maps tasks at PUSH time and prefetches their data to the target node).
class PrefetchSink {
 public:
  virtual ~PrefetchSink() = default;
  virtual void request_prefetch(DataId data, MemNodeId node) = 0;
};

/// Which workers are still alive. Engines that support fail-stop worker loss
/// own one and flip it *before* notifying the policy; a null liveness in the
/// SchedContext means every worker of the platform is alive.
///
/// Counters are RelaxedAtomics: an internally-locked policy's POP path reads
/// live counts under only its shard lock while the engine flips them under
/// its own bookkeeping lock. A pop may therefore judge against a count that
/// is one death stale — a transient the subsequent notify_worker_removed()
/// rebuild (fully serialized) supersedes.
class WorkerLiveness {
 public:
  explicit WorkerLiveness(const Platform& platform)
      : platform_(&platform),
        alive_(platform.num_workers()),
        node_live_(platform.num_nodes()) {
    for (const Worker& w : platform.workers()) {
      alive_[w.id.index()].store(1);
      node_live_[w.node.index()].fetch_add(1);
      arch_live_[arch_index(w.arch)].fetch_add(1);
    }
  }

  [[nodiscard]] bool alive(WorkerId w) const {
    return alive_[w.index()].load() != 0;
  }
  [[nodiscard]] std::size_t live_count(ArchType a) const {
    return arch_live_[arch_index(a)].load();
  }
  [[nodiscard]] std::size_t live_on_node(MemNodeId m) const {
    return node_live_[m.index()].load();
  }
  [[nodiscard]] std::size_t total_live() const {
    std::size_t n = 0;
    for (const auto& c : arch_live_) n += c.load();
    return n;
  }

  /// Fail-stop: idempotent, never reversed. Callers serialize marking (the
  /// engines flip liveness under their bookkeeping lock).
  void mark_dead(WorkerId w) {
    if (alive_[w.index()].load() == 0) return;
    alive_[w.index()].store(0);
    const Worker& wk = platform_->worker(w);
    node_live_[wk.node.index()].fetch_sub(1);
    arch_live_[arch_index(wk.arch)].fetch_sub(1);
  }

 private:
  const Platform* platform_;
  std::vector<RelaxedAtomic<std::uint8_t>> alive_;
  std::vector<RelaxedAtomic<std::size_t>> node_live_;
  std::array<RelaxedAtomic<std::size_t>, kNumArchTypes> arch_live_{};
};

/// Everything a policy may inspect — the scheduler-visible surface of the
/// runtime (graph topology, platform, δ(t,a) estimates, data placement).
struct SchedContext {
  const TaskGraph* graph = nullptr;
  const Platform* platform = nullptr;
  HistoryModel* perf = nullptr;
  MemoryManager* memory = nullptr;
  /// Current (virtual or wall-clock) time in seconds.
  std::function<double()> now;
  /// May be null when the engine does not support prefetching.
  PrefetchSink* prefetch = nullptr;
  /// May be null when the engine does not support worker loss (= all alive).
  const WorkerLiveness* liveness = nullptr;
  /// Decision-event sink. Null (the default) disables observability at the
  /// cost of one pointer test per decision site — policies must not even
  /// construct an event when it is null.
  SchedObserver* observer = nullptr;
};

/// How a policy expects to be synchronized by a threaded engine.
enum class SchedConcurrency {
  /// The engine serializes *every* policy call under one coarse lock (the
  /// historical contract; all the simple mutex-free policies keep it).
  ExternalLock,
  /// The policy locks internally (e.g. one lock per memory-node heap):
  ///  - pop() / work_epoch() / wait_for_work() / interrupt_waiters() are
  ///    thread-safe against everything, including each other;
  ///  - push() / push_batch() / repush() / notify_worker_removed() must be
  ///    serialized *against each other* by the engine (a single push-side
  ///    lock) but may run concurrently with pops;
  ///  - on_task_start() / on_task_end() may be called without any lock and
  ///    must therefore be thread-safe.
  Internal,
};

/// A scheduling policy. The engine calls push() when a task becomes ready
/// and pop() when a worker is idle. pop() returning nullopt parks the worker
/// until the engine wakes it on the next state change (push, completion, or
/// a successful pop by another worker).
class Scheduler {
 public:
  explicit Scheduler(SchedContext ctx) : ctx_(std::move(ctx)) {}
  virtual ~Scheduler() = default;

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  virtual void push(TaskId t) = 0;
  [[nodiscard]] virtual std::optional<TaskId> pop(WorkerId w) = 0;

  /// Locking contract this policy implements (see SchedConcurrency).
  [[nodiscard]] virtual SchedConcurrency concurrency() const {
    return SchedConcurrency::ExternalLock;
  }

  /// Batched dependency release: all tasks a completion made ready at once.
  /// Internally-locked policies override this to take each target node's
  /// lock once per batch instead of once per task.
  virtual void push_batch(const std::vector<TaskId>& ts) {
    for (TaskId t : ts) push(t);
  }

  // --- Internal-concurrency wait protocol -----------------------------------
  // A worker that saw an empty pop() parks in wait_for_work() until work
  // that *its node* could pop may have appeared. The epoch is read before
  // the pop; any push toward the worker's node afterwards bumps it, so the
  // wait predicate closes the classic lost-wakeup window. ExternalLock
  // policies keep the engine's own condvar protocol and never see these.

  /// Monotonic per-worker-node push counter (relaxed read; 0 by default).
  [[nodiscard]] virtual std::uint64_t work_epoch(WorkerId /*w*/) const { return 0; }

  /// Block until the worker's node epoch moves past `seen`, `cancel()` turns
  /// true, or `timeout_s` elapses (the anti-hang bound — spurious returns
  /// are always safe, the caller just retries its pop).
  virtual void wait_for_work(WorkerId /*w*/, std::uint64_t /*seen*/,
                             double /*timeout_s*/,
                             const std::function<bool()>& /*cancel*/) {}

  /// Wake every worker parked in wait_for_work() (shutdown, abandonment,
  /// worker loss — any engine-side state change the epochs cannot see).
  virtual void interrupt_waiters() {}

  /// Re-enqueues a previously popped task whose execution did not complete —
  /// a transient failure being retried, or work drained off a dead worker.
  /// Policies whose push() tolerates re-insertion inherit this default;
  /// policies with pop-time bookkeeping (MultiPrio's taken-set) override it.
  virtual void repush(TaskId t) { push(t); }

  /// Fail-stop removal of `w`. The engine flips the SchedContext's liveness
  /// mask *before* calling this. The policy must drop per-worker state and
  /// keep every pending task reachable from a live worker; tasks that no
  /// longer have any live capable worker are returned so the engine can
  /// account for their abandonment. Tasks in flight on the dead worker are
  /// the engine's problem (drained and repush()ed afterwards, without a
  /// matching on_task_end for the interrupted on_task_start).
  [[nodiscard]] virtual std::vector<TaskId> notify_worker_removed(WorkerId /*w*/) {
    return {};
  }

  /// Tasks a push-side call could not place anywhere because every capable
  /// worker died in the window between the engine's liveness screen and the
  /// push (fail-stop racing an internally-locked push — impossible under
  /// ExternalLock, where liveness flips and pushes share one lock). The
  /// engine drains this after each push-side call and abandons the tasks;
  /// they were never made pending. Same serialization contract as push().
  [[nodiscard]] virtual std::vector<TaskId> drain_unplaced() { return {}; }

  /// Notifications (optional for policies that track load).
  virtual void on_task_start(TaskId /*t*/, WorkerId /*w*/) {}
  virtual void on_task_end(TaskId /*t*/, WorkerId /*w*/) {}

  [[nodiscard]] virtual std::string name() const = 0;

  /// Number of tasks pushed but not yet popped (for engine sanity checks).
  [[nodiscard]] virtual std::size_t pending_count() const = 0;

  /// Cheap hint: could pop(w) possibly return a task right now? Engines use
  /// it to avoid waking workers that have nothing to look at. Must never
  /// return false when a pop would succeed; returning true spuriously only
  /// costs a failed pop.
  [[nodiscard]] virtual bool has_work_hint(WorkerId /*w*/) const { return true; }

 protected:
  [[nodiscard]] const SchedContext& ctx() const { return ctx_; }
  SchedContext ctx_;
};

// --- helpers shared by several policies ------------------------------------
// All of these are liveness-aware: with a WorkerLiveness in the context,
// dead workers do not count as capacity, so after a device loss "best arch"
// verdicts and speedups are judged against the surviving platform.

/// Is `w` alive (always true without a liveness mask)?
[[nodiscard]] bool worker_alive(const SchedContext& ctx, WorkerId w);

/// Live workers of architecture `a`.
[[nodiscard]] std::size_t live_worker_count(const SchedContext& ctx, ArchType a);

/// Live workers attached to memory node `m`.
[[nodiscard]] std::size_t live_workers_of_node(const SchedContext& ctx, MemNodeId m);

/// Can any live worker execute `t`? False means the task is orphaned.
[[nodiscard]] bool task_has_live_worker(const SchedContext& ctx, TaskId t);

/// Architectures that both have an implementation of `t` and at least one
/// live worker on the platform, i.e. the archs the task can actually run on.
[[nodiscard]] std::vector<ArchType> enabled_archs(const SchedContext& ctx, TaskId t);

/// Fastest enabled arch for `t` according to δ(t,a); requires ≥1 enabled.
[[nodiscard]] ArchType best_arch_for(const SchedContext& ctx, TaskId t);

/// Second-fastest enabled arch, or nullopt when only one arch is enabled.
[[nodiscard]] std::optional<ArchType> second_arch_for(const SchedContext& ctx, TaskId t);

/// 1.0 when `a` is the fastest enabled arch for `t`, < 1.0 otherwise
/// (δ(t,best)/δ(t,a)) — the paper's normalized_speedup(t,a).
[[nodiscard]] double normalized_speedup(const SchedContext& ctx, TaskId t, ArchType a);

}  // namespace mp
