// TaskGraph: STF (sequential task flow) DAG construction, as in StarPU.
//
// Applications submit tasks in sequential order; the graph infers RAW, WAR
// and WAW dependencies from the data access modes, exactly like StarPU's STF
// model. Schedulers and execution engines then consume the explicit DAG.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "runtime/codelet.hpp"
#include "runtime/data_handle.hpp"
#include "runtime/task.hpp"

namespace mp {

/// Options for one task submission.
struct SubmitOptions {
  double flops = 0.0;
  std::int64_t user_priority = 0;
  std::array<std::int64_t, 4> iparams{0, 0, 0, 0};
  std::string name;
};

class TaskGraph {
 public:
  explicit TaskGraph(MemNodeId ram_node = MemNodeId{std::uint32_t{0}});

  // --- construction ------------------------------------------------------

  /// Registers a codelet type. `where` is a list of architectures that have
  /// an implementation.
  CodeletId add_codelet(std::string name, std::initializer_list<ArchType> where,
                        KernelFn cpu_fn = nullptr, KernelFn gpu_fn = nullptr);

  /// Registers application data (home copy on the RAM node by default).
  DataId add_data(std::size_t bytes, void* user_ptr = nullptr, std::string name = {});
  DataId add_data_on(std::size_t bytes, MemNodeId home, void* user_ptr = nullptr,
                     std::string name = {});

  /// Submits a task accessing `accesses` in order; dependencies on earlier
  /// tasks are inferred from the access modes (STF semantics).
  TaskId submit(CodeletId codelet, std::span<const Access> accesses,
                SubmitOptions opts = {});
  TaskId submit(CodeletId codelet, std::initializer_list<Access> accesses,
                SubmitOptions opts = {});

  // --- queries ------------------------------------------------------------

  [[nodiscard]] std::size_t num_tasks() const { return tasks_.size(); }
  [[nodiscard]] const Task& task(TaskId t) const;
  [[nodiscard]] const Codelet& codelet_of(TaskId t) const;
  [[nodiscard]] const Codelet& codelet(CodeletId c) const;
  [[nodiscard]] std::size_t num_codelets() const { return codelets_.size(); }

  [[nodiscard]] const HandleRegistry& handles() const { return handles_; }

  /// Direct successors λ+(t) / predecessors λ−(t) in the inferred DAG.
  [[nodiscard]] std::span<const TaskId> successors(TaskId t) const;
  [[nodiscard]] std::span<const TaskId> predecessors(TaskId t) const;

  [[nodiscard]] bool can_exec(TaskId t, ArchType a) const;

  /// Number of direct predecessors (|λ−(t)|).
  [[nodiscard]] std::size_t in_degree(TaskId t) const;

  /// Tasks with no predecessors — the initially ready set.
  [[nodiscard]] std::vector<TaskId> initial_ready() const;

  /// Total flops over all tasks (for GFlop/s reporting).
  [[nodiscard]] double total_flops() const { return total_flops_; }

  /// Overrides the expert priority of a task after submission (used by the
  /// expert-priority assignment of the dense workloads).
  void set_user_priority(TaskId t, std::int64_t priority);

  /// Upward rank of every task: flops(t) + max over successors — the exact
  /// flop-weighted critical-path-to-sink measure. Plays the role of the
  /// offline expert priorities Chameleon feeds Dmdas.
  [[nodiscard]] std::vector<double> upward_rank_flops() const;

  /// Validates basic DAG sanity (acyclicity is guaranteed by construction;
  /// this checks edge symmetry and id ranges). Aborts on violation.
  void self_check() const;

 private:
  struct PerData {
    /// The tasks owning the latest value: a single writer, or the whole
    /// commuter set once a reader closed a commute epoch.
    std::vector<TaskId> last_writers;
    std::vector<TaskId> readers;    // readers since the last write/commute
    std::vector<TaskId> commuters;  // pending commutative updaters
  };

  void add_edge(TaskId from, TaskId to);

  MemNodeId ram_node_;
  HandleRegistry handles_;
  std::vector<Codelet> codelets_;
  std::vector<Task> tasks_;
  std::vector<std::vector<TaskId>> succ_;
  std::vector<std::vector<TaskId>> pred_;
  std::vector<PerData> per_data_;
  double total_flops_ = 0.0;
};

/// Mutable remaining-predecessor counters for one execution of a graph.
/// The engine owns one; completing a task releases its successors.
class DepCounters {
 public:
  explicit DepCounters(const TaskGraph& graph);

  /// Marks `t` complete and appends newly ready successors to `out`.
  void complete(TaskId t, std::vector<TaskId>& out);

  [[nodiscard]] bool is_ready(TaskId t) const { return remaining_[t.index()] == 0; }
  [[nodiscard]] std::size_t num_completed() const { return completed_; }

 private:
  const TaskGraph& graph_;
  std::vector<std::uint32_t> remaining_;
  std::size_t completed_ = 0;
};

}  // namespace mp
