// Performance models.
//
// Two layers, mirroring the paper's setting:
//  * PerfDatabase — analytic *ground truth* per (codelet, arch): the time a
//    kernel actually takes on the simulated platform (rate tables calibrated
//    to the published throughput of the paper's machines). The simulator
//    draws actual durations from it (plus optional noise).
//  * HistoryModel — what the *scheduler* sees: δ(t,a) estimated from the
//    history of measured executions keyed by (codelet, arch, footprint),
//    exactly like StarPU's history-based models [21,22]. Benches run it
//    pre-seeded ("calibrated"), tests also exercise the cold path.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/ids.hpp"
#include "runtime/task_graph.hpp"

namespace mp {

/// Analytic kernel timing:
///   time = overhead + (flops + flops_half)/(gflops·1e9) + bytes/bytes_per_s.
/// `flops_half` is a device-saturation term (the flop count at which the
/// effective rate reaches half the peak): small kernels on a big GPU run far
/// below peak, which is what makes CPUs competitive on small tiles. A zero
/// `bytes_per_s` disables the memory-bound term.
struct RateSpec {
  double gflops = 1.0;
  double overhead_s = 0.0;
  double bytes_per_s = 0.0;
  double flops_half = 0.0;
};

class PerfDatabase {
 public:
  /// Ground-truth rate for a codelet name on an arch.
  void set_rate(const std::string& codelet_name, ArchType arch, RateSpec spec);

  /// Fallback rate for codelets without a specific entry.
  void set_default(ArchType arch, RateSpec spec);

  [[nodiscard]] const RateSpec& rate(const std::string& codelet_name, ArchType arch) const;

  /// Expected execution time of `t` on architecture `a` (seconds, > 0).
  [[nodiscard]] double ground_truth(const TaskGraph& graph, TaskId t, ArchType a) const;

 private:
  std::unordered_map<std::string, std::array<std::optional<RateSpec>, kNumArchTypes>> rates_;
  std::array<RateSpec, kNumArchTypes> defaults_{RateSpec{}, RateSpec{}};
};

/// History-based estimator: the scheduler-visible δ(t,a).
class HistoryModel {
 public:
  HistoryModel(const TaskGraph& graph, const PerfDatabase& truth);

  /// δ(t,a). Calibrated entries return the running mean of measurements;
  /// uncalibrated entries fall back to the database's default-rate prior so
  /// schedulers always have a usable number (StarPU force-calibrates
  /// instead; the convergence behaviour is the same).
  [[nodiscard]] double estimate(TaskId t, ArchType a) const;

  [[nodiscard]] bool is_calibrated(TaskId t, ArchType a) const;

  /// Feeds one measured execution time into the history.
  void record(TaskId t, ArchType a, double measured_s);

  /// Pre-seeds every (codelet, arch, footprint) bucket that appears in the
  /// graph with its analytic expectation — the "already calibrated" regime
  /// the paper's experiments run in. `bias_sigma` > 0 applies a
  /// deterministic log-normal factor per bucket (seeded by `bias_seed`):
  /// systematic calibration error, as real history models trained under
  /// different contention exhibit. All schedulers see the same estimates.
  void seed_from_truth(double bias_sigma = 0.0, std::uint64_t bias_seed = 1);

  /// Minimum sample count before a bucket counts as calibrated.
  void set_calibration_min(std::uint32_t n) { calibration_min_ = n; }

 private:
  struct Bucket {
    std::uint32_t count = 0;
    double mean = 0.0;
  };

  [[nodiscard]] std::uint64_t key(TaskId t, ArchType a) const;

  const TaskGraph& graph_;
  const PerfDatabase& truth_;
  std::uint32_t calibration_min_ = 1;
  std::unordered_map<std::uint64_t, Bucket> buckets_;
};

}  // namespace mp
