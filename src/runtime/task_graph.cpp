#include "runtime/task_graph.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace mp {

TaskGraph::TaskGraph(MemNodeId ram_node) : ram_node_(ram_node) {}

CodeletId TaskGraph::add_codelet(std::string name, std::initializer_list<ArchType> where,
                                 KernelFn cpu_fn, KernelFn gpu_fn) {
  MP_CHECK_MSG(where.size() > 0, "codelet needs at least one implementation");
  Codelet c;
  c.id = CodeletId{codelets_.size()};
  c.name = std::move(name);
  for (ArchType a : where) c.where_mask.set(arch_index(a));
  c.cpu_fn = std::move(cpu_fn);
  c.gpu_fn = std::move(gpu_fn);
  codelets_.push_back(std::move(c));
  return codelets_.back().id;
}

DataId TaskGraph::add_data(std::size_t bytes, void* user_ptr, std::string name) {
  return add_data_on(bytes, ram_node_, user_ptr, std::move(name));
}

DataId TaskGraph::add_data_on(std::size_t bytes, MemNodeId home, void* user_ptr,
                              std::string name) {
  const DataId id = handles_.register_data(bytes, home, user_ptr, std::move(name));
  per_data_.emplace_back();
  return id;
}

TaskId TaskGraph::submit(CodeletId codelet, std::initializer_list<Access> accesses,
                         SubmitOptions opts) {
  return submit(codelet, std::span<const Access>(accesses.begin(), accesses.size()),
                std::move(opts));
}

TaskId TaskGraph::submit(CodeletId codelet, std::span<const Access> accesses,
                         SubmitOptions opts) {
  MP_CHECK(codelet.valid() && codelet.index() < codelets_.size());
  const TaskId id{tasks_.size()};

  Task t;
  t.id = id;
  t.codelet = codelet;
  t.accesses.assign(accesses.begin(), accesses.end());
  t.flops = opts.flops;
  t.user_priority = opts.user_priority;
  t.iparams = opts.iparams;
  t.name = std::move(opts.name);
  for (const Access& acc : t.accesses) {
    MP_CHECK(acc.data.valid() && acc.data.index() < handles_.count());
    t.footprint_bytes += handles_.get(acc.data).bytes;
  }
  total_flops_ += t.flops;

  tasks_.push_back(std::move(t));
  succ_.emplace_back();
  pred_.emplace_back();

  // STF dependency inference. For each access:
  //   R:  depends on the last writer (RAW).
  //   W/RW: depends on the last writer (WAW) and on every reader since that
  //         write (WAR); then becomes the new last writer and clears readers.
  for (const Access& acc : tasks_.back().accesses) {
    PerData& pd = per_data_[acc.data.index()];
    if (acc.mode == AccessMode::Read) {
      // RAW on whoever owns the latest value. A read closes a commute
      // epoch: the commuter set becomes the (multi-)writer the epoch's
      // successors depend on, and pre-epoch readers are already covered.
      if (!pd.commuters.empty()) {
        pd.last_writers = std::move(pd.commuters);
        pd.commuters.clear();
        pd.readers.clear();
      }
      for (TaskId w : pd.last_writers) add_edge(w, id);
      pd.readers.push_back(id);
    } else if (acc.mode == AccessMode::Commute) {
      // Ordered after earlier readers (or the latest writers); unordered
      // among commuters — the execution engines serialize those per handle.
      if (!pd.readers.empty()) {
        for (TaskId r : pd.readers) add_edge(r, id);
      } else {
        for (TaskId w : pd.last_writers) add_edge(w, id);
      }
      pd.commuters.push_back(id);
    } else {  // Write / ReadWrite
      if (!pd.readers.empty() || !pd.commuters.empty()) {
        // WAR edges plus a barrier after every pending commuter. Readers
        // and commuters are already ordered after the last writers, so
        // direct WAW/RAW edges would be redundant and would inflate the
        // in-degrees that NOD's denominators count.
        for (TaskId r : pd.readers) add_edge(r, id);
        for (TaskId c : pd.commuters) add_edge(c, id);
      } else {
        for (TaskId w : pd.last_writers) add_edge(w, id);
      }
      pd.last_writers.assign(1, id);
      pd.readers.clear();
      pd.commuters.clear();
    }
  }
  return id;
}

void TaskGraph::add_edge(TaskId from, TaskId to) {
  MP_ASSERT(from.valid() && to.valid());
  // A task may touch the same handle through several accesses (e.g. read it
  // under one mode and update it under another); it never depends on itself.
  if (from == to) return;
  auto& s = succ_[from.index()];
  // Duplicate edges arise when a task reuses the same handle or reads then
  // writes two handles last touched by the same task; keep edges unique so
  // dependency counters stay correct. Submission order makes `to` the
  // largest id seen, so checking the tail is usually enough, but a task may
  // gain edges from many sources — do a full scan (lists are short).
  if (std::find(s.begin(), s.end(), to) != s.end()) return;
  s.push_back(to);
  pred_[to.index()].push_back(from);
}

const Task& TaskGraph::task(TaskId t) const {
  MP_CHECK(t.valid() && t.index() < tasks_.size());
  return tasks_[t.index()];
}

const Codelet& TaskGraph::codelet_of(TaskId t) const {
  return codelets_[task(t).codelet.index()];
}

const Codelet& TaskGraph::codelet(CodeletId c) const {
  MP_CHECK(c.valid() && c.index() < codelets_.size());
  return codelets_[c.index()];
}

std::span<const TaskId> TaskGraph::successors(TaskId t) const {
  MP_CHECK(t.valid() && t.index() < succ_.size());
  return succ_[t.index()];
}

std::span<const TaskId> TaskGraph::predecessors(TaskId t) const {
  MP_CHECK(t.valid() && t.index() < pred_.size());
  return pred_[t.index()];
}

bool TaskGraph::can_exec(TaskId t, ArchType a) const {
  return codelet_of(t).can_exec(a);
}

std::size_t TaskGraph::in_degree(TaskId t) const {
  MP_CHECK(t.valid() && t.index() < pred_.size());
  return pred_[t.index()].size();
}

void TaskGraph::set_user_priority(TaskId t, std::int64_t priority) {
  MP_CHECK(t.valid() && t.index() < tasks_.size());
  tasks_[t.index()].user_priority = priority;
}

std::vector<double> TaskGraph::upward_rank_flops() const {
  std::vector<double> rank(tasks_.size(), 0.0);
  // STF ids are a topological order; sweep backwards.
  for (std::size_t i = tasks_.size(); i-- > 0;) {
    double best = 0.0;
    for (TaskId s : succ_[i]) best = std::max(best, rank[s.index()]);
    rank[i] = tasks_[i].flops + best;
  }
  return rank;
}

std::vector<TaskId> TaskGraph::initial_ready() const {
  std::vector<TaskId> out;
  for (const Task& t : tasks_)
    if (pred_[t.id.index()].empty()) out.push_back(t.id);
  return out;
}

void TaskGraph::self_check() const {
  MP_CHECK(succ_.size() == tasks_.size());
  MP_CHECK(pred_.size() == tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    for (TaskId s : succ_[i]) {
      MP_CHECK(s.index() < tasks_.size());
      // STF submission order implies edges go forward.
      MP_CHECK(s.index() > i);
      const auto& p = pred_[s.index()];
      MP_CHECK(std::find(p.begin(), p.end(), TaskId{i}) != p.end());
    }
  }
}

DepCounters::DepCounters(const TaskGraph& graph) : graph_(graph) {
  remaining_.resize(graph.num_tasks());
  for (std::size_t i = 0; i < graph.num_tasks(); ++i)
    remaining_[i] = static_cast<std::uint32_t>(graph.in_degree(TaskId{i}));
}

void DepCounters::complete(TaskId t, std::vector<TaskId>& out) {
  MP_ASSERT(remaining_[t.index()] == 0);
  ++completed_;
  for (TaskId s : graph_.successors(t)) {
    MP_ASSERT(remaining_[s.index()] > 0);
    if (--remaining_[s.index()] == 0) out.push_back(s);
  }
}

}  // namespace mp
