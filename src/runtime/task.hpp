// Tasks: vertices of the application DAG.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "runtime/access.hpp"

namespace mp {

/// One data access of a task.
struct Access {
  DataId data;
  AccessMode mode = AccessMode::Read;
};

/// A task instance. Tasks are created through TaskGraph::submit and owned by
/// the graph; schedulers and engines refer to them by TaskId.
struct Task {
  TaskId id;
  CodeletId codelet;
  std::vector<Access> accesses;

  /// Work estimate in floating-point operations; drives analytic timing
  /// models (time = overhead + flops / rate).
  double flops = 0.0;

  /// Expert-provided priority (used by Dmdas when the application sets it,
  /// e.g. Chameleon dense kernels). 0 when the application provides none.
  std::int64_t user_priority = 0;

  /// Small integer parameters available to real kernel implementations
  /// (e.g. tile indices). Interpretation is codelet-specific.
  std::array<std::int64_t, 4> iparams{0, 0, 0, 0};

  /// Sum of access sizes in bytes (filled by TaskGraph::submit); the
  /// footprint key for history-based performance models.
  std::size_t footprint_bytes = 0;

  /// Optional label for traces.
  std::string name;
};

}  // namespace mp
