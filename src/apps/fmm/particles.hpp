// Particle sets for the FMM workload (paper Section VI-B: TBFMM).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mp::fmm {

struct Particle {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;
  double q = 0.0;  ///< charge / mass
};

/// Uniform distribution in the unit cube.
[[nodiscard]] std::vector<Particle> uniform_cube(std::size_t n, std::uint64_t seed);

/// Clustered (Plummer-like) distribution mapped into the unit cube — the
/// irregular case that stresses load balancing.
[[nodiscard]] std::vector<Particle> clustered_sphere(std::size_t n, std::uint64_t seed);

/// Reference O(n²) direct summation of the 1/r potential (validation).
[[nodiscard]] std::vector<double> direct_potentials(const std::vector<Particle>& parts);

}  // namespace mp::fmm
