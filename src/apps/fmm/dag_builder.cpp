#include "apps/fmm/dag_builder.hpp"

#include <map>

#include "common/check.hpp"

namespace mp::fmm {

namespace {

// Per-operation flop weights (drive the analytic timing models). Sized for
// an order-5-ish expansion, as TBFMM runs in the paper: the multipole /
// local coefficients make the tree operators and especially M2L much
// heavier per element than our order-2 demonstration kernels.
constexpr double kFlopP2M = 200.0;       // per particle
constexpr double kFlopM2M = 1000.0;      // per (parent, child) cell pair
constexpr double kFlopM2L = 2000.0;      // per cell pair
constexpr double kFlopL2L = 1000.0;      // per child cell
constexpr double kFlopL2P = 200.0;       // per particle
constexpr double kFlopP2P = 22.0;        // per particle pair

struct Kernels {
  CodeletId p2m, m2m, m2l, l2l, l2p, p2p;
};

Kernels register_codelets(TaskGraph& graph, Octree& tree) {
  Octree* oct = &tree;
  const std::size_t leaf = tree.leaf_level();

  Kernels k;
  k.p2m = graph.add_codelet(
      "P2M", {ArchType::CPU}, [oct, leaf](const Task& t, std::span<void* const>) {
        const auto& g = oct->groups(leaf)[static_cast<std::size_t>(t.iparams[1])];
        for (std::size_t c = g.cbegin; c < g.cend; ++c)
          p2m(oct->cell_particles(c), oct->center_of(leaf, c), oct->multipole(leaf, c));
      });

  k.m2m = graph.add_codelet(
      "M2M", {ArchType::CPU}, [oct](const Task& t, std::span<void* const>) {
        const auto l = static_cast<std::size_t>(t.iparams[0]);
        const auto& g = oct->groups(l)[static_cast<std::size_t>(t.iparams[1])];
        for (std::size_t c = g.cbegin; c < g.cend; ++c) {
          const auto [cb, ce] = oct->children_of(l, c);
          for (std::size_t ch = cb; ch < ce; ++ch)
            m2m(oct->multipole(l + 1, ch), oct->center_of(l + 1, ch), oct->center_of(l, c),
                oct->multipole(l, c));
        }
      });

  k.m2l = graph.add_codelet(
      "M2L", {ArchType::CPU, ArchType::GPU},
      [oct](const Task& t, std::span<void* const>) {
        const auto l = static_cast<std::size_t>(t.iparams[0]);
        const auto& gt = oct->groups(l)[static_cast<std::size_t>(t.iparams[1])];
        const auto& gs = oct->groups(l)[static_cast<std::size_t>(t.iparams[2])];
        for (std::size_t c = gt.cbegin; c < gt.cend; ++c) {
          for (std::uint32_t s : oct->m2l_list(l, c)) {
            if (s < gs.cbegin || s >= gs.cend) continue;
            m2l(oct->multipole(l, s), oct->center_of(l, s), oct->center_of(l, c),
                oct->local(l, c));
          }
        }
      });

  k.l2l = graph.add_codelet(
      "L2L", {ArchType::CPU}, [oct](const Task& t, std::span<void* const>) {
        const auto l = static_cast<std::size_t>(t.iparams[0]);  // parent level
        const auto& gc = oct->groups(l + 1)[static_cast<std::size_t>(t.iparams[1])];
        for (std::size_t c = gc.cbegin; c < gc.cend; ++c) {
          const std::uint64_t pm = oct->cells(l + 1)[c].morton >> 3;
          const auto p = oct->find_cell(l, pm);
          MP_ASSERT(p.has_value());
          l2l(oct->local(l, *p), oct->center_of(l, *p), oct->center_of(l + 1, c),
              oct->local(l + 1, c));
        }
      });

  k.l2p = graph.add_codelet(
      "L2P", {ArchType::CPU}, [oct, leaf](const Task& t, std::span<void* const>) {
        const auto& g = oct->groups(leaf)[static_cast<std::size_t>(t.iparams[1])];
        for (std::size_t c = g.cbegin; c < g.cend; ++c)
          l2p(oct->local(leaf, c), oct->center_of(leaf, c), oct->cell_particles(c),
              oct->cell_potentials(c));
      });

  k.p2p = graph.add_codelet(
      "P2P", {ArchType::CPU, ArchType::GPU},
      [oct, leaf](const Task& t, std::span<void* const>) {
        const auto gi = static_cast<std::size_t>(t.iparams[1]);
        const auto gj = static_cast<std::size_t>(t.iparams[2]);
        const auto& ga = oct->groups(leaf)[gi];
        const auto& gb = oct->groups(leaf)[gj];
        if (gi == gj) {
          for (std::size_t c = ga.cbegin; c < ga.cend; ++c) {
            p2p_inner(oct->cell_particles(c), oct->cell_potentials(c));
            for (std::uint32_t n : oct->p2p_list(c)) {
              if (n >= ga.cend) continue;  // cross-group pairs handled elsewhere
              p2p(oct->cell_particles(c), oct->cell_particles(n), oct->cell_potentials(c));
              p2p(oct->cell_particles(n), oct->cell_particles(c), oct->cell_potentials(n));
            }
          }
        } else {
          for (std::size_t c = ga.cbegin; c < ga.cend; ++c) {
            for (std::uint32_t n : oct->p2p_list(c)) {
              if (n < gb.cbegin || n >= gb.cend) continue;
              p2p(oct->cell_particles(c), oct->cell_particles(n), oct->cell_potentials(c));
              p2p(oct->cell_particles(n), oct->cell_particles(c), oct->cell_potentials(n));
            }
          }
        }
      });
  return k;
}

}  // namespace

FmmBuildStats build_fmm(TaskGraph& graph, Octree& tree, FmmBuildOptions opts) {
  const AccessMode accum =
      opts.commute_accumulations ? AccessMode::Commute : AccessMode::ReadWrite;
  tree.register_handles(graph);
  const Kernels k = register_codelets(graph, tree);
  const std::size_t leaf = tree.leaf_level();
  FmmBuildStats stats;

  auto ip = [](std::size_t a, std::size_t b, std::size_t c) {
    return std::array<std::int64_t, 4>{static_cast<std::int64_t>(a),
                                       static_cast<std::int64_t>(b),
                                       static_cast<std::int64_t>(c), 0};
  };

  // ---- upward pass: P2M then M2M --------------------------------------
  for (std::size_t gi = 0; gi < tree.groups(leaf).size(); ++gi) {
    const auto& g = tree.groups(leaf)[gi];
    SubmitOptions o;
    o.flops = kFlopP2M * static_cast<double>(tree.group_particle_count(g));
    o.iparams = ip(leaf, gi, 0);
    o.name = "P2M#" + std::to_string(gi);
    graph.submit(k.p2m,
                 {Access{g.particles, AccessMode::Read},
                  Access{g.multipole, AccessMode::Write}},
                 o);
    ++stats.p2m;
  }
  for (std::size_t l = leaf; l-- > 2;) {
    for (std::size_t gi = 0; gi < tree.groups(l).size(); ++gi) {
      const auto& g = tree.groups(l)[gi];
      // Child groups overlapped by the children of this group's cells.
      const auto [cb0, ce0] = tree.children_of(l, g.cbegin);
      const auto [cb1, ce1] = tree.children_of(l, g.cend - 1);
      (void)ce0;
      (void)cb1;
      const std::size_t g_first = tree.group_of_cell(l + 1, cb0);
      const std::size_t g_last = tree.group_of_cell(l + 1, ce1 - 1);
      std::vector<Access> acc;
      acc.push_back(Access{g.multipole, AccessMode::Write});
      double cell_pairs = 0.0;
      for (std::size_t cg = g_first; cg <= g_last; ++cg)
        acc.push_back(Access{tree.groups(l + 1)[cg].multipole, AccessMode::Read});
      for (std::size_t c = g.cbegin; c < g.cend; ++c) {
        const auto [cb, ce] = tree.children_of(l, c);
        cell_pairs += static_cast<double>(ce - cb);
      }
      SubmitOptions o;
      o.flops = kFlopM2M * cell_pairs;
      o.iparams = ip(l, gi, 0);
      o.name = "M2M@" + std::to_string(l) + "#" + std::to_string(gi);
      graph.submit(k.m2m, std::span<const Access>(acc), o);
      ++stats.m2m;
    }
  }

  // ---- transfer pass: M2L per (level, target group, source group) -----
  for (std::size_t l = 2; l <= leaf; ++l) {
    const std::size_t ngroups = tree.groups(l).size();
    // Aggregate cell interaction pairs into group pairs.
    std::map<std::pair<std::size_t, std::size_t>, double> pairs;
    for (std::size_t gi = 0; gi < ngroups; ++gi) {
      const auto& gt = tree.groups(l)[gi];
      for (std::size_t c = gt.cbegin; c < gt.cend; ++c)
        for (std::uint32_t s : tree.m2l_list(l, c))
          pairs[{gi, tree.group_of_cell(l, s)}] += 1.0;
    }
    for (const auto& [key, count] : pairs) {
      const auto& gt = tree.groups(l)[key.first];
      const auto& gs = tree.groups(l)[key.second];
      SubmitOptions o;
      o.flops = kFlopM2L * count;
      o.iparams = ip(l, key.first, key.second);
      o.name = "M2L@" + std::to_string(l);
      graph.submit(k.m2l,
                   {Access{gs.multipole, AccessMode::Read},
                    Access{gt.local, accum}},
                   o);
      ++stats.m2l;
    }
  }

  // ---- downward pass: L2L then L2P -------------------------------------
  for (std::size_t l = 2; l < leaf; ++l) {
    for (std::size_t gi = 0; gi < tree.groups(l + 1).size(); ++gi) {
      const auto& gc = tree.groups(l + 1)[gi];
      // Parent groups overlapped by this group's cells' parents.
      const auto first_parent = tree.find_cell(l, tree.cells(l + 1)[gc.cbegin].morton >> 3);
      const auto last_parent =
          tree.find_cell(l, tree.cells(l + 1)[gc.cend - 1].morton >> 3);
      MP_CHECK(first_parent && last_parent);
      const std::size_t g_first = tree.group_of_cell(l, *first_parent);
      const std::size_t g_last = tree.group_of_cell(l, *last_parent);
      std::vector<Access> acc;
      acc.push_back(Access{gc.local, AccessMode::ReadWrite});
      for (std::size_t pg = g_first; pg <= g_last; ++pg)
        acc.push_back(Access{tree.groups(l)[pg].local, AccessMode::Read});
      SubmitOptions o;
      o.flops = kFlopL2L * static_cast<double>(gc.cend - gc.cbegin);
      o.iparams = ip(l, gi, 0);
      o.name = "L2L@" + std::to_string(l) + "#" + std::to_string(gi);
      graph.submit(k.l2l, std::span<const Access>(acc), o);
      ++stats.l2l;
    }
  }
  for (std::size_t gi = 0; gi < tree.groups(leaf).size(); ++gi) {
    const auto& g = tree.groups(leaf)[gi];
    SubmitOptions o;
    o.flops = kFlopL2P * static_cast<double>(tree.group_particle_count(g));
    o.iparams = ip(leaf, gi, 0);
    o.name = "L2P#" + std::to_string(gi);
    graph.submit(k.l2p,
                 {Access{g.local, AccessMode::Read}, Access{g.particles, AccessMode::Read},
                  Access{g.potentials, AccessMode::ReadWrite}},
                 o);
    ++stats.l2p;
  }

  // ---- direct pass: P2P ------------------------------------------------
  {
    const auto& leaves = tree.cells(leaf);
    const std::size_t ngroups = tree.groups(leaf).size();
    auto npart = [&](std::size_t c) {
      return static_cast<double>(leaves[c].pend - leaves[c].pbegin);
    };
    // inner tasks
    std::vector<double> inner_pairs(ngroups, 0.0);
    std::map<std::pair<std::size_t, std::size_t>, double> cross;
    for (std::size_t c = 0; c < leaves.size(); ++c) {
      const std::size_t gc = tree.group_of_cell(leaf, c);
      inner_pairs[gc] += npart(c) * (npart(c) - 1.0) / 2.0;
      for (std::uint32_t n : tree.p2p_list(c)) {
        const std::size_t gn = tree.group_of_cell(leaf, n);
        if (gn == gc) {
          inner_pairs[gc] += npart(c) * npart(n);
        } else {
          cross[{std::min(gc, gn), std::max(gc, gn)}] += npart(c) * npart(n);
        }
      }
    }
    for (std::size_t gi = 0; gi < ngroups; ++gi) {
      const auto& g = tree.groups(leaf)[gi];
      SubmitOptions o;
      o.flops = kFlopP2P * inner_pairs[gi];
      o.iparams = ip(leaf, gi, gi);
      o.name = "P2Pi#" + std::to_string(gi);
      graph.submit(k.p2p,
                   {Access{g.particles, AccessMode::Read},
                    Access{g.potentials, accum}},
                   o);
      ++stats.p2p;
    }
    for (const auto& [key, count] : cross) {
      const auto& ga = tree.groups(leaf)[key.first];
      const auto& gb = tree.groups(leaf)[key.second];
      SubmitOptions o;
      o.flops = kFlopP2P * count;
      o.iparams = ip(leaf, key.first, key.second);
      o.name = "P2Px";
      graph.submit(k.p2p,
                   {Access{ga.particles, AccessMode::Read},
                    Access{gb.particles, AccessMode::Read},
                    Access{ga.potentials, accum},
                    Access{gb.potentials, accum}},
                   o);
      ++stats.p2p;
    }
  }
  return stats;
}

void run_fmm_serial(Octree& tree) {
  const std::size_t leaf = tree.leaf_level();
  for (std::size_t c = 0; c < tree.cells(leaf).size(); ++c)
    p2m(tree.cell_particles(c), tree.center_of(leaf, c), tree.multipole(leaf, c));
  for (std::size_t l = leaf; l-- > 2;) {
    for (std::size_t c = 0; c < tree.cells(l).size(); ++c) {
      const auto [cb, ce] = tree.children_of(l, c);
      for (std::size_t ch = cb; ch < ce; ++ch)
        m2m(tree.multipole(l + 1, ch), tree.center_of(l + 1, ch), tree.center_of(l, c),
            tree.multipole(l, c));
    }
  }
  for (std::size_t l = 2; l <= leaf; ++l) {
    for (std::size_t c = 0; c < tree.cells(l).size(); ++c)
      for (std::uint32_t s : tree.m2l_list(l, c))
        m2l(tree.multipole(l, s), tree.center_of(l, s), tree.center_of(l, c),
            tree.local(l, c));
  }
  for (std::size_t l = 2; l < leaf; ++l) {
    for (std::size_t c = 0; c < tree.cells(l + 1).size(); ++c) {
      const auto p = tree.find_cell(l, tree.cells(l + 1)[c].morton >> 3);
      l2l(tree.local(l, *p), tree.center_of(l, *p), tree.center_of(l + 1, c),
          tree.local(l + 1, c));
    }
  }
  for (std::size_t c = 0; c < tree.cells(leaf).size(); ++c) {
    l2p(tree.local(leaf, c), tree.center_of(leaf, c), tree.cell_particles(c),
        tree.cell_potentials(c));
    p2p_inner(tree.cell_particles(c), tree.cell_potentials(c));
    for (std::uint32_t n : tree.p2p_list(c)) {
      p2p(tree.cell_particles(c), tree.cell_particles(n), tree.cell_potentials(c));
      p2p(tree.cell_particles(n), tree.cell_particles(c), tree.cell_potentials(n));
    }
  }
}

}  // namespace mp::fmm
