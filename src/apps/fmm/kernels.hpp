// FMM operators: Cartesian Taylor expansions of the 1/r kernel.
//
// Multipole: monopole + dipole + (symmetric) quadrupole about the cell
// center. Local: value + gradient. With the standard well-separated
// interaction lists this yields relative errors around 1e-2–1e-3 — ample
// for a scheduling workload and validated against direct summation.
#pragma once

#include <cstddef>
#include <span>

#include "apps/fmm/particles.hpp"

namespace mp::fmm {

/// Order-2 Cartesian multipole. Q is symmetric: xx, yy, zz, xy, xz, yz.
struct Multipole {
  double q = 0.0;
  double d[3] = {0.0, 0.0, 0.0};
  double quad[6] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
};

/// Order-1 local (Taylor) expansion of the far field.
struct LocalExp {
  double l0 = 0.0;
  double l1[3] = {0.0, 0.0, 0.0};
};

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;
};

/// Accumulates the particles into a multipole about `center`.
void p2m(std::span<const Particle> parts, Vec3 center, Multipole& out);

/// Translates a child multipole (about `child_center`) into the parent
/// expansion (about `parent_center`), accumulating.
void m2m(const Multipole& child, Vec3 child_center, Vec3 parent_center, Multipole& parent);

/// Evaluates the far-field of a multipole at `local_center`, accumulating
/// value and gradient into the local expansion.
void m2l(const Multipole& m, Vec3 m_center, Vec3 l_center, LocalExp& out);

/// Shifts a parent local expansion to a child center, accumulating.
void l2l(const LocalExp& parent, Vec3 parent_center, Vec3 child_center, LocalExp& child);

/// Evaluates the local expansion at each particle, accumulating potentials.
void l2p(const LocalExp& l, Vec3 center, std::span<const Particle> parts,
         std::span<double> potentials);

/// Direct interaction: potentials of `targets` from `sources` (disjoint sets).
void p2p(std::span<const Particle> targets, std::span<const Particle> sources,
         std::span<double> target_potentials);

/// Direct interaction within one set (mutual, no self-interaction).
void p2p_inner(std::span<const Particle> parts, std::span<double> potentials);

}  // namespace mp::fmm
