#include "apps/fmm/kernels.hpp"

#include <cmath>

namespace mp::fmm {

void p2m(std::span<const Particle> parts, Vec3 center, Multipole& out) {
  for (const Particle& p : parts) {
    const double ax = p.x - center.x;
    const double ay = p.y - center.y;
    const double az = p.z - center.z;
    out.q += p.q;
    out.d[0] += p.q * ax;
    out.d[1] += p.q * ay;
    out.d[2] += p.q * az;
    out.quad[0] += p.q * ax * ax;
    out.quad[1] += p.q * ay * ay;
    out.quad[2] += p.q * az * az;
    out.quad[3] += p.q * ax * ay;
    out.quad[4] += p.q * ax * az;
    out.quad[5] += p.q * ay * az;
  }
}

void m2m(const Multipole& child, Vec3 child_center, Vec3 parent_center,
         Multipole& parent) {
  const double sx = child_center.x - parent_center.x;
  const double sy = child_center.y - parent_center.y;
  const double sz = child_center.z - parent_center.z;
  parent.q += child.q;
  parent.d[0] += child.d[0] + child.q * sx;
  parent.d[1] += child.d[1] + child.q * sy;
  parent.d[2] += child.d[2] + child.q * sz;
  parent.quad[0] += child.quad[0] + 2.0 * child.d[0] * sx + child.q * sx * sx;
  parent.quad[1] += child.quad[1] + 2.0 * child.d[1] * sy + child.q * sy * sy;
  parent.quad[2] += child.quad[2] + 2.0 * child.d[2] * sz + child.q * sz * sz;
  parent.quad[3] += child.quad[3] + child.d[0] * sy + child.d[1] * sx + child.q * sx * sy;
  parent.quad[4] += child.quad[4] + child.d[0] * sz + child.d[2] * sx + child.q * sx * sz;
  parent.quad[5] += child.quad[5] + child.d[1] * sz + child.d[2] * sy + child.q * sy * sz;
}

void m2l(const Multipole& m, Vec3 m_center, Vec3 l_center, LocalExp& out) {
  const double rx = l_center.x - m_center.x;
  const double ry = l_center.y - m_center.y;
  const double rz = l_center.z - m_center.z;
  const double r2 = rx * rx + ry * ry + rz * rz;
  const double r = std::sqrt(r2);
  const double inv_r = 1.0 / r;
  const double inv_r3 = inv_r / r2;
  const double inv_r5 = inv_r3 / r2;
  const double inv_r7 = inv_r5 / r2;

  const double dR = m.d[0] * rx + m.d[1] * ry + m.d[2] * rz;
  // (Q·R) with symmetric Q stored as xx, yy, zz, xy, xz, yz.
  const double qr_x = m.quad[0] * rx + m.quad[3] * ry + m.quad[4] * rz;
  const double qr_y = m.quad[3] * rx + m.quad[1] * ry + m.quad[5] * rz;
  const double qr_z = m.quad[4] * rx + m.quad[5] * ry + m.quad[2] * rz;
  const double rqr = rx * qr_x + ry * qr_y + rz * qr_z;
  const double tr = m.quad[0] + m.quad[1] + m.quad[2];

  out.l0 += m.q * inv_r + dR * inv_r3 + 0.5 * (3.0 * rqr - tr * r2) * inv_r5;

  const double mono = -m.q * inv_r3;
  const double dip_r = -3.0 * dR * inv_r5;
  const double quad_r = -2.5 * (3.0 * rqr - tr * r2) * inv_r7;
  out.l1[0] += mono * rx + m.d[0] * inv_r3 + dip_r * rx +
               (3.0 * qr_x - tr * rx) * inv_r5 + quad_r * rx;
  out.l1[1] += mono * ry + m.d[1] * inv_r3 + dip_r * ry +
               (3.0 * qr_y - tr * ry) * inv_r5 + quad_r * ry;
  out.l1[2] += mono * rz + m.d[2] * inv_r3 + dip_r * rz +
               (3.0 * qr_z - tr * rz) * inv_r5 + quad_r * rz;
}

void l2l(const LocalExp& parent, Vec3 parent_center, Vec3 child_center, LocalExp& child) {
  const double tx = child_center.x - parent_center.x;
  const double ty = child_center.y - parent_center.y;
  const double tz = child_center.z - parent_center.z;
  child.l0 += parent.l0 + parent.l1[0] * tx + parent.l1[1] * ty + parent.l1[2] * tz;
  child.l1[0] += parent.l1[0];
  child.l1[1] += parent.l1[1];
  child.l1[2] += parent.l1[2];
}

void l2p(const LocalExp& l, Vec3 center, std::span<const Particle> parts,
         std::span<double> potentials) {
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const double ax = parts[i].x - center.x;
    const double ay = parts[i].y - center.y;
    const double az = parts[i].z - center.z;
    potentials[i] += l.l0 + l.l1[0] * ax + l.l1[1] * ay + l.l1[2] * az;
  }
}

void p2p(std::span<const Particle> targets, std::span<const Particle> sources,
         std::span<double> target_potentials) {
  for (std::size_t i = 0; i < targets.size(); ++i) {
    double acc = 0.0;
    for (const Particle& s : sources) {
      const double dx = targets[i].x - s.x;
      const double dy = targets[i].y - s.y;
      const double dz = targets[i].z - s.z;
      acc += s.q / std::sqrt(dx * dx + dy * dy + dz * dz);
    }
    target_potentials[i] += acc;
  }
}

void p2p_inner(std::span<const Particle> parts, std::span<double> potentials) {
  for (std::size_t i = 0; i < parts.size(); ++i) {
    for (std::size_t j = i + 1; j < parts.size(); ++j) {
      const double dx = parts[i].x - parts[j].x;
      const double dy = parts[i].y - parts[j].y;
      const double dz = parts[i].z - parts[j].z;
      const double inv = 1.0 / std::sqrt(dx * dx + dy * dy + dz * dz);
      potentials[i] += parts[j].q * inv;
      potentials[j] += parts[i].q * inv;
    }
  }
}

}  // namespace mp::fmm
