// STF DAG builder for the task-based FMM (the paper's TBFMM workload).
//
// Task set per FMM pass: P2M per leaf group, M2M up the tree, M2L per
// (level, target-group, source-group) pair, L2L down the tree, L2P and P2P
// at the leaves. P2P and M2L carry CPU+GPU implementations (TBFMM's GPU
// kernels); the tree transfer operators are CPU-only. No user priorities —
// exactly the paper's FMM setting.
//
// Note on access modes: TBFMM/StarPU use commutative writes for the M2L and
// P2P accumulations; this runtime serializes them through ReadWrite chains,
// identically for every scheduler under comparison (documented in DESIGN.md).
#pragma once

#include <memory>

#include "apps/fmm/octree.hpp"
#include "runtime/task_graph.hpp"

namespace mp::fmm {

struct FmmBuildStats {
  std::size_t p2m = 0;
  std::size_t m2m = 0;
  std::size_t m2l = 0;
  std::size_t l2l = 0;
  std::size_t l2p = 0;
  std::size_t p2p = 0;
  [[nodiscard]] std::size_t total() const { return p2m + m2m + m2l + l2l + l2p + p2p; }
};

struct FmmBuildOptions {
  /// Submit the M2L local and P2P potential accumulations with
  /// AccessMode::Commute, as TBFMM does on StarPU (STARPU_COMMUTE): the
  /// updates carry no ordering edges and the engines enforce per-handle
  /// mutual exclusion. OFF by default here: our simulator grants commute
  /// handles in pop order (a worker that popped a blocked commuter waits),
  /// which is more conservative than StarPU's arbitered locks and makes
  /// ReadWrite chains the faster encoding on this engine — see
  /// test_commute.cpp and DESIGN.md.
  bool commute_accumulations = false;
};

/// Builds the FMM DAG over `tree` (handles are registered here). The octree
/// must outlive any real execution of the graph.
FmmBuildStats build_fmm(TaskGraph& graph, Octree& tree, FmmBuildOptions opts = {});

/// Convenience: full real FMM pass executed serially (reference for tests).
void run_fmm_serial(Octree& tree);

}  // namespace mp::fmm
