// Group octree for the task-based FMM (TBFMM's "group tree"): cells of a
// uniform-depth octree, Morton-sorted, packed into fixed-size groups that
// are the task/data granularity. Only non-empty cells are kept, so a
// clustered particle distribution yields an irregular tree and an irregular
// DAG — the property the paper's FMM evaluation relies on.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "apps/fmm/kernels.hpp"
#include "apps/fmm/particles.hpp"
#include "common/ids.hpp"
#include "runtime/task_graph.hpp"

namespace mp::fmm {

[[nodiscard]] std::uint64_t morton_encode(std::uint32_t x, std::uint32_t y, std::uint32_t z);
void morton_decode(std::uint64_t code, std::uint32_t& x, std::uint32_t& y, std::uint32_t& z);

struct OctreeOptions {
  std::size_t height = 5;      ///< number of levels incl. root (leaf = height-1)
  std::size_t group_size = 64; ///< cells per group (task granularity)
  bool allocate = true;        ///< false = structure only (simulation DAGs)
};

class Octree {
 public:
  struct Cell {
    std::uint64_t morton = 0;
    std::uint32_t pbegin = 0;  ///< particle range (leaf level only)
    std::uint32_t pend = 0;
  };

  struct Group {
    std::uint32_t cbegin = 0;  ///< cell index range within the level
    std::uint32_t cend = 0;
    DataId multipole;          ///< per-level group expansions
    DataId local;
    DataId particles;          ///< leaf groups only
    DataId potentials;         ///< leaf groups only
  };

  Octree(std::vector<Particle> parts, OctreeOptions opts);

  [[nodiscard]] std::size_t height() const { return opts_.height; }
  [[nodiscard]] std::size_t leaf_level() const { return opts_.height - 1; }
  [[nodiscard]] bool allocated() const { return opts_.allocate; }

  [[nodiscard]] const std::vector<Cell>& cells(std::size_t level) const;
  [[nodiscard]] const std::vector<Group>& groups(std::size_t level) const;
  [[nodiscard]] std::size_t group_of_cell(std::size_t level, std::size_t cell) const;

  /// Geometric center of a cell.
  [[nodiscard]] Vec3 center_of(std::size_t level, std::size_t cell) const;

  /// Index of the cell with this Morton code at `level`, if it exists.
  [[nodiscard]] std::optional<std::size_t> find_cell(std::size_t level,
                                                     std::uint64_t morton) const;

  /// Children of cell `cell` of level `level` as a [begin, end) index range
  /// at level+1 (contiguous thanks to Morton ordering).
  [[nodiscard]] std::pair<std::size_t, std::size_t> children_of(std::size_t level,
                                                                std::size_t cell) const;

  /// M2L interaction list of a cell (indices at the same level): children of
  /// the parent's neighbours that are not neighbours of the cell itself.
  [[nodiscard]] const std::vector<std::uint32_t>& m2l_list(std::size_t level,
                                                           std::size_t cell) const;

  /// Adjacent leaf cells with higher index (each neighbour pair listed once).
  [[nodiscard]] const std::vector<std::uint32_t>& p2p_list(std::size_t cell) const;

  /// Registers one data handle per group (multipoles/locals, plus particle
  /// and potential slices at the leaf level).
  void register_handles(TaskGraph& graph);

  // --- storage (allocate = true) -------------------------------------------
  [[nodiscard]] const std::vector<Particle>& particles() const { return parts_; }
  [[nodiscard]] std::span<const Particle> cell_particles(std::size_t cell) const;
  [[nodiscard]] std::span<double> cell_potentials(std::size_t cell);
  [[nodiscard]] Multipole& multipole(std::size_t level, std::size_t cell);
  [[nodiscard]] LocalExp& local(std::size_t level, std::size_t cell);
  [[nodiscard]] const std::vector<double>& potentials() const { return potentials_; }
  /// Potentials reordered back to the original particle submission order.
  [[nodiscard]] std::vector<double> potentials_original_order() const;

  /// Total particles in a group (flop accounting).
  [[nodiscard]] std::size_t group_particle_count(const Group& g) const;

 private:
  void build_levels();
  void build_groups(TaskGraph* graph);
  void build_interaction_lists();

  OctreeOptions opts_;
  std::vector<Particle> parts_;          // Morton-sorted
  std::vector<std::uint32_t> orig_index_;  // sorted position -> original index
  std::vector<std::vector<Cell>> levels_;
  std::vector<std::vector<Group>> groups_;
  std::vector<std::vector<std::vector<std::uint32_t>>> m2l_;  // [level][cell]
  std::vector<std::vector<std::uint32_t>> p2p_;               // [leaf cell]
  std::vector<double> potentials_;
  std::vector<std::vector<Multipole>> multipoles_;
  std::vector<std::vector<LocalExp>> locals_;
};

}  // namespace mp::fmm
