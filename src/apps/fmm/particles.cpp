#include "apps/fmm/particles.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace mp::fmm {

std::vector<Particle> uniform_cube(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Particle> parts(n);
  for (Particle& p : parts) {
    p.x = rng.next_double();
    p.y = rng.next_double();
    p.z = rng.next_double();
    p.q = rng.next_real(0.1, 1.0);
  }
  return parts;
}

std::vector<Particle> clustered_sphere(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Particle> parts(n);
  for (Particle& p : parts) {
    // Plummer-like radius, clamped, then mapped into the unit cube.
    const double m = rng.next_real(1e-3, 0.999);
    double r = 0.15 / std::sqrt(std::pow(m, -2.0 / 3.0) - 1.0 + 1e-9);
    r = std::min(r, 0.49);
    const double theta = std::acos(rng.next_real(-1.0, 1.0));
    const double phi = rng.next_real(0.0, 2.0 * 3.14159265358979323846);
    p.x = 0.5 + r * std::sin(theta) * std::cos(phi);
    p.y = 0.5 + r * std::sin(theta) * std::sin(phi);
    p.z = 0.5 + r * std::cos(theta);
    p.q = rng.next_real(0.1, 1.0);
  }
  return parts;
}

std::vector<double> direct_potentials(const std::vector<Particle>& parts) {
  const std::size_t n = parts.size();
  std::vector<double> pot(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = parts[i].x - parts[j].x;
      const double dy = parts[i].y - parts[j].y;
      const double dz = parts[i].z - parts[j].z;
      const double inv = 1.0 / std::sqrt(dx * dx + dy * dy + dz * dz);
      pot[i] += parts[j].q * inv;
      pot[j] += parts[i].q * inv;
    }
  }
  return pot;
}

}  // namespace mp::fmm
