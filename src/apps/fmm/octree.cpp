#include "apps/fmm/octree.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace mp::fmm {

namespace {
/// Spreads the low 21 bits of v to every third bit.
[[nodiscard]] std::uint64_t spread3(std::uint64_t v) {
  v &= 0x1fffff;
  v = (v | (v << 32)) & 0x1f00000000ffffULL;
  v = (v | (v << 16)) & 0x1f0000ff0000ffULL;
  v = (v | (v << 8)) & 0x100f00f00f00f00fULL;
  v = (v | (v << 4)) & 0x10c30c30c30c30c3ULL;
  v = (v | (v << 2)) & 0x1249249249249249ULL;
  return v;
}

[[nodiscard]] std::uint32_t compact3(std::uint64_t v) {
  v &= 0x1249249249249249ULL;
  v = (v ^ (v >> 2)) & 0x10c30c30c30c30c3ULL;
  v = (v ^ (v >> 4)) & 0x100f00f00f00f00fULL;
  v = (v ^ (v >> 8)) & 0x1f0000ff0000ffULL;
  v = (v ^ (v >> 16)) & 0x1f00000000ffffULL;
  v = (v ^ (v >> 32)) & 0x1fffff;
  return static_cast<std::uint32_t>(v);
}
}  // namespace

std::uint64_t morton_encode(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
  return spread3(x) | (spread3(y) << 1) | (spread3(z) << 2);
}

void morton_decode(std::uint64_t code, std::uint32_t& x, std::uint32_t& y,
                   std::uint32_t& z) {
  x = compact3(code);
  y = compact3(code >> 1);
  z = compact3(code >> 2);
}

Octree::Octree(std::vector<Particle> parts, OctreeOptions opts)
    : opts_(opts), parts_(std::move(parts)) {
  MP_CHECK_MSG(opts_.height >= 3, "FMM needs at least 3 levels");
  MP_CHECK(opts_.group_size >= 1);
  MP_CHECK(!parts_.empty());
  build_levels();
  build_interaction_lists();
  build_groups(nullptr);
  if (opts_.allocate) {
    potentials_.assign(parts_.size(), 0.0);
    multipoles_.resize(opts_.height);
    locals_.resize(opts_.height);
    for (std::size_t l = 0; l < opts_.height; ++l) {
      multipoles_[l].assign(levels_[l].size(), Multipole{});
      locals_[l].assign(levels_[l].size(), LocalExp{});
    }
  }
}

void Octree::build_levels() {
  const std::size_t leaf = opts_.height - 1;
  const auto side = static_cast<std::uint32_t>(1u << leaf);

  // Leaf Morton code per particle, then sort particles by it.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> keyed(parts_.size());
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    auto clampc = [&](double v) {
      const double scaled = v * static_cast<double>(side);
      const auto c = static_cast<std::int64_t>(scaled);
      return static_cast<std::uint32_t>(std::clamp<std::int64_t>(c, 0, side - 1));
    };
    keyed[i] = {morton_encode(clampc(parts_[i].x), clampc(parts_[i].y),
                              clampc(parts_[i].z)),
                static_cast<std::uint32_t>(i)};
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<Particle> sorted(parts_.size());
  orig_index_.resize(parts_.size());
  for (std::size_t i = 0; i < keyed.size(); ++i) {
    sorted[i] = parts_[keyed[i].second];
    orig_index_[i] = keyed[i].second;
  }
  parts_ = std::move(sorted);

  levels_.resize(opts_.height);
  // Leaf cells with particle ranges.
  auto& leaves = levels_[leaf];
  for (std::size_t i = 0; i < keyed.size();) {
    std::size_t j = i;
    while (j < keyed.size() && keyed[j].first == keyed[i].first) ++j;
    leaves.push_back(Cell{keyed[i].first, static_cast<std::uint32_t>(i),
                          static_cast<std::uint32_t>(j)});
    i = j;
  }
  // Upper levels: unique parents.
  for (std::size_t l = leaf; l-- > 0;) {
    auto& up = levels_[l];
    for (const Cell& c : levels_[l + 1]) {
      const std::uint64_t pm = c.morton >> 3;
      if (up.empty() || up.back().morton != pm) up.push_back(Cell{pm, 0, 0});
    }
  }
}

const std::vector<Octree::Cell>& Octree::cells(std::size_t level) const {
  MP_CHECK(level < levels_.size());
  return levels_[level];
}

const std::vector<Octree::Group>& Octree::groups(std::size_t level) const {
  MP_CHECK(level < groups_.size());
  return groups_[level];
}

std::size_t Octree::group_of_cell(std::size_t level, std::size_t cell) const {
  MP_CHECK(cell < levels_[level].size());
  return cell / opts_.group_size;
}

Vec3 Octree::center_of(std::size_t level, std::size_t cell) const {
  std::uint32_t x = 0;
  std::uint32_t y = 0;
  std::uint32_t z = 0;
  morton_decode(levels_[level][cell].morton, x, y, z);
  const double w = 1.0 / static_cast<double>(1u << level);
  return Vec3{(x + 0.5) * w, (y + 0.5) * w, (z + 0.5) * w};
}

std::optional<std::size_t> Octree::find_cell(std::size_t level,
                                             std::uint64_t morton) const {
  const auto& cs = levels_[level];
  auto it = std::lower_bound(cs.begin(), cs.end(), morton,
                             [](const Cell& c, std::uint64_t m) { return c.morton < m; });
  if (it == cs.end() || it->morton != morton) return std::nullopt;
  return static_cast<std::size_t>(it - cs.begin());
}

std::pair<std::size_t, std::size_t> Octree::children_of(std::size_t level,
                                                        std::size_t cell) const {
  MP_CHECK(level + 1 < levels_.size());
  const std::uint64_t base = levels_[level][cell].morton << 3;
  const auto& cs = levels_[level + 1];
  auto lo = std::lower_bound(cs.begin(), cs.end(), base,
                             [](const Cell& c, std::uint64_t m) { return c.morton < m; });
  auto hi = std::lower_bound(cs.begin(), cs.end(), base + 8,
                             [](const Cell& c, std::uint64_t m) { return c.morton < m; });
  return {static_cast<std::size_t>(lo - cs.begin()), static_cast<std::size_t>(hi - cs.begin())};
}

void Octree::build_interaction_lists() {
  const std::size_t leaf = opts_.height - 1;
  m2l_.resize(opts_.height);

  auto neighbours_exist = [&](std::size_t level, std::uint64_t morton,
                              std::vector<std::uint64_t>& out) {
    out.clear();
    std::uint32_t x = 0;
    std::uint32_t y = 0;
    std::uint32_t z = 0;
    morton_decode(morton, x, y, z);
    const auto side = static_cast<std::int64_t>(1u << level);
    for (int dx = -1; dx <= 1; ++dx)
      for (int dy = -1; dy <= 1; ++dy)
        for (int dz = -1; dz <= 1; ++dz) {
          const std::int64_t nx = static_cast<std::int64_t>(x) + dx;
          const std::int64_t ny = static_cast<std::int64_t>(y) + dy;
          const std::int64_t nz = static_cast<std::int64_t>(z) + dz;
          if (nx < 0 || ny < 0 || nz < 0 || nx >= side || ny >= side || nz >= side)
            continue;
          out.push_back(morton_encode(static_cast<std::uint32_t>(nx),
                                      static_cast<std::uint32_t>(ny),
                                      static_cast<std::uint32_t>(nz)));
        }
  };

  std::vector<std::uint64_t> own_nbrs;
  std::vector<std::uint64_t> parent_nbrs;
  for (std::size_t l = 2; l < opts_.height; ++l) {
    m2l_[l].resize(levels_[l].size());
    for (std::size_t ci = 0; ci < levels_[l].size(); ++ci) {
      const std::uint64_t m = levels_[l][ci].morton;
      neighbours_exist(l, m, own_nbrs);
      neighbours_exist(l - 1, m >> 3, parent_nbrs);
      auto& list = m2l_[l][ci];
      for (std::uint64_t pn : parent_nbrs) {
        for (std::uint64_t child = pn << 3; child < (pn << 3) + 8; ++child) {
          if (child == m) continue;
          if (std::find(own_nbrs.begin(), own_nbrs.end(), child) != own_nbrs.end())
            continue;
          if (auto idx = find_cell(l, child)) list.push_back(static_cast<std::uint32_t>(*idx));
        }
      }
    }
  }

  // P2P: adjacent leaves, each unordered pair once (higher index only).
  p2p_.resize(levels_[leaf].size());
  for (std::size_t ci = 0; ci < levels_[leaf].size(); ++ci) {
    neighbours_exist(leaf, levels_[leaf][ci].morton, own_nbrs);
    for (std::uint64_t nm : own_nbrs) {
      if (nm == levels_[leaf][ci].morton) continue;
      if (auto idx = find_cell(leaf, nm)) {
        if (*idx > ci) p2p_[ci].push_back(static_cast<std::uint32_t>(*idx));
      }
    }
  }
}

void Octree::build_groups(TaskGraph*) {
  groups_.resize(opts_.height);
  for (std::size_t l = 0; l < opts_.height; ++l) {
    const std::size_t n = levels_[l].size();
    for (std::size_t b = 0; b < n; b += opts_.group_size) {
      Group g;
      g.cbegin = static_cast<std::uint32_t>(b);
      g.cend = static_cast<std::uint32_t>(std::min(n, b + opts_.group_size));
      groups_[l].push_back(g);
    }
  }
}

const std::vector<std::uint32_t>& Octree::m2l_list(std::size_t level,
                                                   std::size_t cell) const {
  MP_CHECK(level >= 2 && level < m2l_.size());
  return m2l_[level][cell];
}

const std::vector<std::uint32_t>& Octree::p2p_list(std::size_t cell) const {
  MP_CHECK(cell < p2p_.size());
  return p2p_[cell];
}

void Octree::register_handles(TaskGraph& graph) {
  const std::size_t leaf = opts_.height - 1;
  for (std::size_t l = 0; l < opts_.height; ++l) {
    for (Group& g : groups_[l]) {
      const std::size_t ncells = g.cend - g.cbegin;
      void* mp_ptr = opts_.allocate ? static_cast<void*>(&multipoles_[l][g.cbegin]) : nullptr;
      void* lo_ptr = opts_.allocate ? static_cast<void*>(&locals_[l][g.cbegin]) : nullptr;
      g.multipole = graph.add_data(ncells * sizeof(Multipole), mp_ptr,
                                   "M[" + std::to_string(l) + "]");
      g.local = graph.add_data(ncells * sizeof(LocalExp), lo_ptr,
                               "L[" + std::to_string(l) + "]");
      if (l == leaf) {
        const std::size_t pbegin = levels_[leaf][g.cbegin].pbegin;
        const std::size_t pend = levels_[leaf][g.cend - 1].pend;
        void* pp = opts_.allocate ? static_cast<void*>(&parts_[pbegin]) : nullptr;
        void* pot = opts_.allocate ? static_cast<void*>(&potentials_[pbegin]) : nullptr;
        g.particles = graph.add_data((pend - pbegin) * sizeof(Particle), pp, "P");
        g.potentials = graph.add_data((pend - pbegin) * sizeof(double), pot, "phi");
      }
    }
  }
}

std::span<const Particle> Octree::cell_particles(std::size_t cell) const {
  const Cell& c = levels_[opts_.height - 1][cell];
  return std::span<const Particle>(parts_.data() + c.pbegin, c.pend - c.pbegin);
}

std::span<double> Octree::cell_potentials(std::size_t cell) {
  MP_CHECK(opts_.allocate);
  const Cell& c = levels_[opts_.height - 1][cell];
  return std::span<double>(potentials_.data() + c.pbegin, c.pend - c.pbegin);
}

Multipole& Octree::multipole(std::size_t level, std::size_t cell) {
  MP_CHECK(opts_.allocate);
  return multipoles_[level][cell];
}

LocalExp& Octree::local(std::size_t level, std::size_t cell) {
  MP_CHECK(opts_.allocate);
  return locals_[level][cell];
}

std::vector<double> Octree::potentials_original_order() const {
  MP_CHECK(opts_.allocate);
  std::vector<double> out(potentials_.size(), 0.0);
  for (std::size_t i = 0; i < potentials_.size(); ++i)
    out[orig_index_[i]] = potentials_[i];
  return out;
}

std::size_t Octree::group_particle_count(const Group& g) const {
  const auto& leaves = levels_[opts_.height - 1];
  std::size_t n = 0;
  for (std::size_t c = g.cbegin; c < g.cend; ++c) n += leaves[c].pend - leaves[c].pbegin;
  return n;
}

}  // namespace mp::fmm
