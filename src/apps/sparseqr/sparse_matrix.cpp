#include "apps/sparseqr/sparse_matrix.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace mp::sqr {

void SparseMatrix::self_check() const {
  MP_CHECK(col_ptr.size() == cols + 1);
  MP_CHECK(col_ptr.front() == 0 && col_ptr.back() == row_idx.size());
  for (std::size_t j = 0; j < cols; ++j) {
    MP_CHECK(col_ptr[j] <= col_ptr[j + 1]);
    for (std::size_t k = col_ptr[j]; k + 1 < col_ptr[j + 1]; ++k)
      MP_CHECK(row_idx[k] < row_idx[k + 1]);
    for (std::size_t k = col_ptr[j]; k < col_ptr[j + 1]; ++k)
      MP_CHECK(row_idx[k] < rows);
  }
}

SparseMatrix SparseMatrix::transposed() const {
  SparseMatrix t;
  t.rows = cols;
  t.cols = rows;
  t.col_ptr.assign(rows + 1, 0);
  for (std::uint32_t r : row_idx) ++t.col_ptr[r + 1];
  for (std::size_t i = 0; i < rows; ++i) t.col_ptr[i + 1] += t.col_ptr[i];
  t.row_idx.resize(row_idx.size());
  std::vector<std::size_t> cursor(t.col_ptr.begin(), t.col_ptr.end() - 1);
  for (std::size_t j = 0; j < cols; ++j)
    for (std::size_t k = col_ptr[j]; k < col_ptr[j + 1]; ++k)
      t.row_idx[cursor[row_idx[k]]++] = static_cast<std::uint32_t>(j);
  return t;
}

std::vector<std::uint32_t> SparseMatrix::leftmost_col_per_row() const {
  std::vector<std::uint32_t> leftmost(rows, static_cast<std::uint32_t>(cols));
  for (std::size_t j = 0; j < cols; ++j)
    for (std::size_t k = col_ptr[j]; k < col_ptr[j + 1]; ++k)
      leftmost[row_idx[k]] =
          std::min(leftmost[row_idx[k]], static_cast<std::uint32_t>(j));
  return leftmost;
}

SparseMatrix tall_orientation(const SparseMatrix& a) {
  return a.rows >= a.cols ? a : a.transposed();
}

SparseMatrix from_coo(std::size_t rows, std::size_t cols,
                      std::vector<std::pair<std::uint32_t, std::uint32_t>> coo) {
  // Sort by (col, row) and dedupe.
  std::sort(coo.begin(), coo.end(),
            [](const auto& a, const auto& b) {
              return a.second != b.second ? a.second < b.second : a.first < b.first;
            });
  coo.erase(std::unique(coo.begin(), coo.end()), coo.end());
  SparseMatrix m;
  m.rows = rows;
  m.cols = cols;
  m.col_ptr.assign(cols + 1, 0);
  m.row_idx.reserve(coo.size());
  for (const auto& [r, c] : coo) {
    MP_CHECK(r < rows && c < cols);
    ++m.col_ptr[c + 1];
    m.row_idx.push_back(r);
  }
  for (std::size_t j = 0; j < cols; ++j) m.col_ptr[j + 1] += m.col_ptr[j];
  return m;
}

}  // namespace mp::sqr
