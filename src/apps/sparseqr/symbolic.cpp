#include "apps/sparseqr/symbolic.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"

namespace mp::sqr {

std::vector<std::uint32_t> column_etree(const SparseMatrix& a) {
  const std::size_t n = a.cols;
  constexpr std::uint32_t kNone = 0xffffffffu;
  std::vector<std::uint32_t> parent(n, kNone);
  std::vector<std::uint32_t> ancestor(n, kNone);
  // prev[r]: last column whose pattern contains row r (Gilbert–Ng–Peyton).
  std::vector<std::uint32_t> prev(a.rows, kNone);
  for (std::uint32_t j = 0; j < n; ++j) {
    for (std::size_t k = a.col_ptr[j]; k < a.col_ptr[j + 1]; ++k) {
      std::uint32_t i = prev[a.row_idx[k]];
      // Climb the partial etree with path compression.
      while (i != kNone && i < j) {
        const std::uint32_t inext = ancestor[i];
        ancestor[i] = j;
        if (inext == kNone) parent[i] = j;
        i = inext;
      }
      prev[a.row_idx[k]] = j;
    }
  }
  for (std::uint32_t j = 0; j < n; ++j)
    if (parent[j] == kNone) parent[j] = j;  // root marker
  return parent;
}

std::vector<std::uint32_t> postorder(const std::vector<std::uint32_t>& parent) {
  const std::size_t n = parent.size();
  std::vector<std::vector<std::uint32_t>> children(n);
  std::vector<std::uint32_t> roots;
  for (std::uint32_t j = 0; j < n; ++j) {
    if (parent[j] == j) {
      roots.push_back(j);
    } else {
      MP_CHECK_MSG(parent[j] > j, "etree parents must follow children");
      children[parent[j]].push_back(j);
    }
  }
  std::vector<std::uint32_t> post;
  post.reserve(n);
  // Iterative DFS emitting children before parents.
  struct Item {
    std::uint32_t node;
    std::uint32_t next_child;
  };
  std::vector<Item> stack;
  for (std::uint32_t r : roots) {
    stack.push_back({r, 0});
    while (!stack.empty()) {
      Item& top = stack.back();
      if (top.next_child < children[top.node].size()) {
        const std::uint32_t c = children[top.node][top.next_child++];
        stack.push_back({c, 0});
      } else {
        post.push_back(top.node);
        stack.pop_back();
      }
    }
  }
  MP_CHECK(post.size() == n);
  return post;
}

double Front::dense_flops() const {
  const double mf = static_cast<double>(m);
  const double nf = static_cast<double>(n());
  const double kf = static_cast<double>(std::min({k(), m, n()}));
  // Householder QR eliminating kf columns of an mf×nf front:
  // 4·k·m·n − 2·k²·(m+n) + (4/3)·k³ (reduces to 2n²(m−n/3) at k = n).
  const double f = 4.0 * kf * mf * nf - 2.0 * kf * kf * (mf + nf) + (4.0 / 3.0) * kf * kf * kf;
  return std::max(f, 0.0);
}

void SymbolicAnalysis::self_check(std::size_t n_cols) const {
  std::vector<bool> seen(n_cols, false);
  for (const Front& f : fronts) {
    for (std::uint32_t c : f.cols) {
      MP_CHECK(c < n_cols && !seen[c]);
      seen[c] = true;
    }
  }
  for (bool b : seen) MP_CHECK(b);
  for (std::size_t fi = 0; fi < fronts.size(); ++fi) {
    const Front& f = fronts[fi];
    if (f.parent != fi) {
      MP_CHECK(f.parent > fi && f.parent < fronts.size());
      const auto& pc = fronts[f.parent].children;
      MP_CHECK(std::find(pc.begin(), pc.end(), fi) != pc.end());
    }
    for (std::uint32_t c : f.children) MP_CHECK(c < fi);
    // Border columns are strictly greater than every pivot (post-order ids).
  }
}

SymbolicAnalysis analyze(const SparseMatrix& a, AnalysisOptions opts) {
  MP_CHECK(opts.max_front_cols >= 1);
  SymbolicAnalysis out;
  out.etree_parent = column_etree(a);
  out.post = postorder(out.etree_parent);
  const std::size_t n = a.cols;
  constexpr std::uint32_t kNone = 0xffffffffu;

  // Relabel columns by post-order rank; the etree is preserved under its own
  // post-order, and fronts then own consecutive column ranges.
  std::vector<std::uint32_t> rank(n);
  for (std::uint32_t i = 0; i < n; ++i) rank[out.post[i]] = i;
  std::vector<std::uint32_t> parent_r(n);  // parent in rank space
  std::vector<std::uint32_t> n_children(n, 0);
  for (std::uint32_t j = 0; j < n; ++j) {
    const std::uint32_t pj = out.etree_parent[j];
    parent_r[rank[j]] = (pj == j) ? rank[j] : rank[pj];
  }
  std::vector<std::vector<std::uint32_t>> etree_children(n);
  for (std::uint32_t j = 0; j < n; ++j) {
    if (parent_r[j] != j) {
      ++n_children[parent_r[j]];
      etree_children[parent_r[j]].push_back(j);
    }
  }

  // Row patterns in rank space, bucketed by (rank-space) leftmost column.
  const SparseMatrix at = a.transposed();  // rows of A as "columns"
  std::vector<std::vector<std::uint32_t>> rows_by_leftmost(n);
  std::vector<std::vector<std::uint32_t>> row_pattern(a.rows);
  for (std::size_t r = 0; r < a.rows; ++r) {
    const std::size_t b = at.col_ptr[r];
    const std::size_t e = at.col_ptr[r + 1];
    if (b == e) continue;
    auto& pat = row_pattern[r];
    pat.reserve(e - b);
    for (std::size_t k = b; k < e; ++k) pat.push_back(rank[at.row_idx[k]]);
    std::sort(pat.begin(), pat.end());
    rows_by_leftmost[pat.front()].push_back(static_cast<std::uint32_t>(r));
  }

  // Single post-order sweep. For each column (rank space == post-order):
  //   * exact column border = {x > j} of (assembled-row patterns union
  //     etree-children borders) — children borders are freed right after;
  //   * fill-aware supernode amalgamation into the single open front;
  //   * front row counts from assembled rows + closed children fronts'
  //     contribution blocks (registered against the parent *column*).
  std::vector<Front>& fronts = out.fronts;
  std::vector<std::uint32_t> front_of(n, kNone);
  std::vector<std::vector<std::uint32_t>> col_border(n);
  std::vector<std::size_t> col_border_size(n, 0);  // survives border clearing
  std::vector<std::size_t> col_rows(n, 0);
  std::vector<std::size_t> pending_cb(n, 0);              // per parent column
  std::vector<std::vector<std::uint32_t>> pending_children(n);
  std::vector<std::uint32_t> front_union;  // border union of the open front
  std::vector<std::uint32_t> merged;
  std::vector<std::uint32_t> tmp;

  auto merge_into = [&tmp](std::vector<std::uint32_t>& dst,
                           const std::vector<std::uint32_t>& src) {
    tmp.clear();
    std::set_union(dst.begin(), dst.end(), src.begin(), src.end(),
                   std::back_inserter(tmp));
    dst.swap(tmp);
  };

  auto close_front = [&]() {
    if (fronts.empty()) return;
    Front& f = fronts.back();
    const std::uint32_t last = f.cols.back();
    f.border.clear();
    for (std::uint32_t x : front_union)
      if (x > last) f.border.push_back(x);
    // Staircase-aware flops: a row participates only from the pivot at
    // which it enters the front (child CB rows enter with their parent
    // column, original rows with their leftmost pivot).
    double flops = 0.0;
    double rows_in = 0.0;
    const double nf = static_cast<double>(f.n());
    f.rows_at_pivot.reserve(f.cols.size());
    for (std::size_t i = 0; i < f.cols.size(); ++i) {
      const std::uint32_t c = f.cols[i];
      rows_in += static_cast<double>(col_rows[c] + pending_cb[c]);
      f.rows_at_pivot.push_back(static_cast<std::uint32_t>(rows_in));
      const double active = rows_in - static_cast<double>(i);
      if (active <= 0.0) continue;
      const double trailing = nf - static_cast<double>(i);
      // One Householder step: form reflector (~2·active) + apply to the
      // trailing columns (~4·active each).
      flops += 4.0 * active * trailing;
    }
    f.staircase_flops = std::min(flops, f.dense_flops());
    out.total_flops += f.flops();
    // Register the contribution block against the parent column.
    const std::uint32_t p = parent_r[last];
    if (p != last) {
      pending_cb[p] += f.cb_rows();
      pending_children[p].push_back(static_cast<std::uint32_t>(fronts.size() - 1));
    }
  };

  for (std::uint32_t j = 0; j < n; ++j) {
    // Exact border of column j.
    merged.clear();
    merged.push_back(j);
    for (std::uint32_t r : rows_by_leftmost[j]) {
      merge_into(merged, row_pattern[r]);
      ++col_rows[j];
    }
    for (std::uint32_t c : etree_children[j]) {
      merge_into(merged, col_border[c]);
      col_border[c].clear();
      col_border[c].shrink_to_fit();
    }
    auto& bj = col_border[j];
    bj.clear();
    for (std::uint32_t x : merged)
      if (x > j) bj.push_back(x);
    col_border_size[j] = bj.size();

    // Amalgamation decision (the chain child's border vector was just
    // consumed and freed above; its recorded size drives the fill check).
    bool extend = false;
    if (!fronts.empty()) {
      const std::uint32_t last = fronts.back().cols.back();
      extend = parent_r[last] == j && n_children[j] == 1 &&
               fronts.back().cols.size() < opts.max_front_cols &&
               col_border_size[last] <= bj.size() + 1 + opts.amalgamation_slack;
    }
    if (!extend) {
      close_front();
      fronts.emplace_back();
      front_union.clear();
    }
    Front& f = fronts.back();
    f.cols.push_back(j);
    front_of[j] = static_cast<std::uint32_t>(fronts.size() - 1);
    merge_into(front_union, bj);
    f.m += col_rows[j] + pending_cb[j];
    for (std::uint32_t cf : pending_children[j]) f.children.push_back(cf);
    pending_children[j].clear();
  }
  close_front();

  // Front tree parents (children were attached as fronts closed).
  for (std::size_t fi = 0; fi < fronts.size(); ++fi) {
    Front& f = fronts[fi];
    const std::uint32_t last = f.cols.back();
    const std::uint32_t p = parent_r[last];
    f.parent = (p == last) ? static_cast<std::uint32_t>(fi) : front_of[p];
  }
  out.self_check(n);
  return out;
}

}  // namespace mp::sqr
