#include "apps/sparseqr/generators.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace mp::sqr {

std::vector<MatrixSpec> paper_matrix_specs() {
  // rows/cols/nnz are the published values (Fig. 7). band_spread and
  // global_fraction are calibrated so our multifrontal analysis lands in
  // the same op-count regime (see bench_fig7_matrices for achieved values).
  // Calibrated achieved op counts (our analysis, tall orientation):
  //   234, 856, 1482, 3188, 5665, 16418, 33032, 12206, 249204, 347806 Gflop
  // — within ~10% of the published counts except GL7d24, whose extreme
  // aspect ratio caps the reachable count near 0.46× (documented in
  // EXPERIMENTS.md; its rank neighbours already overlap in the paper too).
  return {
      {"cat_ears_4_4", 19020, 44448, 132888, 236.0, 500.0, 0.020, 1.0},
      {"flower_7_4", 27693, 67593, 202218, 889.0, 820.0, 0.022, 1.0},
      {"e18", 24617, 38602, 156466, 1439.0, 1100.0, 0.028, 1.0},
      {"flower_8_4", 55081, 125361, 375266, 3072.0, 840.0, 0.019, 1.0},
      {"Rucci1", 1977885, 109900, 7791168, 5527.0, 100.0, 0.0004, 1.0},
      {"TF17", 38132, 48630, 586218, 15787.0, 1050.0, 0.026, 1.0},
      {"neos2", 132568, 134128, 685087, 31018.0, 2700.0, 0.017, 1.0},
      {"GL7d24", 21074, 105054, 593892, 26825.0, 4000.0, 0.15, 1.0},
      {"TF18", 95368, 123867, 1597545, 229042.0, 1450.0, 0.025, 1.0},
      {"mk13-b5", 135135, 270270, 810810, 352413.0, 9000.0, 0.06, 1.0},
  };
}

SparseMatrix generate(const MatrixSpec& spec, std::uint64_t seed) {
  MP_CHECK(spec.rows > 0 && spec.cols > 0 && spec.nnz >= spec.cols);
  Rng rng(seed ^ std::hash<std::string>{}(spec.name));

  // Per-column degrees: average nnz/cols, remainder spread over the first
  // columns, with one guaranteed "diagonal-ish" anchor entry per column.
  const std::size_t base_deg = spec.nnz / spec.cols;
  const std::size_t remainder = spec.nnz - base_deg * spec.cols;

  std::vector<std::pair<std::uint32_t, std::uint32_t>> coo;
  coo.reserve(spec.nnz + spec.cols / 4);

  const double row_per_col = spec.cols > 1
                                 ? static_cast<double>(spec.rows - 1) /
                                       static_cast<double>(spec.cols - 1)
                                 : 0.0;
  // Per column, draw until `deg` *distinct* rows come out of the same
  // band/global mixture — collisions must not change the distribution
  // (uniform top-ups would silently destroy banded structure and its fill
  // properties). If a narrow band cannot host the degree, it widens
  // progressively.
  std::vector<std::uint32_t> chosen;
  for (std::size_t j = 0; j < spec.cols; ++j) {
    const std::size_t deg = base_deg + (j < remainder ? 1 : 0);
    const double anchor = static_cast<double>(j) * row_per_col;
    chosen.clear();
    double spread = std::max(1.0, spec.band_spread);
    std::size_t attempts = 0;
    auto unique_add = [&](std::int64_t r) {
      r = std::clamp<std::int64_t>(r, 0, static_cast<std::int64_t>(spec.rows) - 1);
      const auto ur = static_cast<std::uint32_t>(r);
      if (std::find(chosen.begin(), chosen.end(), ur) != chosen.end()) return false;
      chosen.push_back(ur);
      return true;
    };
    (void)unique_add(static_cast<std::int64_t>(anchor));
    while (chosen.size() < deg) {
      std::int64_t r = 0;
      if (rng.next_double() < spec.global_fraction) {
        const double u = std::pow(rng.next_double(), spec.global_bias);
        r = static_cast<std::int64_t>(u * static_cast<double>(spec.rows - 1));
      } else {
        r = static_cast<std::int64_t>(anchor + rng.next_normal() * spread);
      }
      (void)unique_add(r);
      if (++attempts > 16 * deg) {  // band saturated: widen it
        spread *= 2.0;
        attempts = 0;
      }
    }
    for (std::uint32_t r : chosen)
      coo.emplace_back(r, static_cast<std::uint32_t>(j));
  }

  SparseMatrix m = from_coo(spec.rows, spec.cols, std::move(coo));
  m.self_check();
  MP_CHECK(m.nnz() == spec.nnz);
  return m;
}

}  // namespace mp::sqr
