// Compressed-sparse-column matrices (pattern only — multifrontal QR
// scheduling depends on structure, not values).
#pragma once

#include <cstdint>
#include <vector>

namespace mp::sqr {

struct SparseMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  /// CSC: col_ptr has cols+1 entries; row_idx[col_ptr[j]..col_ptr[j+1]) are
  /// the sorted, unique row indices of column j.
  std::vector<std::size_t> col_ptr;
  std::vector<std::uint32_t> row_idx;

  [[nodiscard]] std::size_t nnz() const { return row_idx.size(); }

  /// Verifies CSC invariants (sorted unique rows, bounds). Aborts on error.
  void self_check() const;

  /// Row-major pattern (CSR of the same matrix), for row-wise traversal.
  [[nodiscard]] SparseMatrix transposed() const;

  /// Leftmost nonzero column of every row (cols if a row is empty).
  [[nodiscard]] std::vector<std::uint32_t> leftmost_col_per_row() const;
};

/// QR factorization orientation: the multifrontal solver factorizes the
/// tall form (Aᵀ for underdetermined systems, as qr_mumps does); returns
/// `a` unchanged when rows ≥ cols, its transpose otherwise.
[[nodiscard]] SparseMatrix tall_orientation(const SparseMatrix& a);

/// Builds a CSC matrix from (row, col) pairs; sorts and dedupes.
[[nodiscard]] SparseMatrix from_coo(std::size_t rows, std::size_t cols,
                                    std::vector<std::pair<std::uint32_t, std::uint32_t>> coo);

}  // namespace mp::sqr
