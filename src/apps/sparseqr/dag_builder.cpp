#include "apps/sparseqr/dag_builder.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace mp::sqr {

SparseQrStats build_sparseqr(TaskGraph& graph, const SymbolicAnalysis& sym,
                             SparseQrDagOptions opts) {
  MP_CHECK(opts.panel_cols >= 1);
  SparseQrStats stats;
  stats.fronts = sym.fronts.size();

  // Assembly is memory-bound scatter work, CPU-only; panel factorization is
  // latency-bound (CPU-favoured); updates are compute-bound (GPU-favoured
  // when big) — the rate tables encode this through the codelet names.
  const CodeletId cl_init = graph.add_codelet("init_front", {ArchType::CPU});
  const CodeletId cl_panel = graph.add_codelet("geqrt", {ArchType::CPU, ArchType::GPU});
  const CodeletId cl_update = graph.add_codelet("tsmqr", {ArchType::CPU, ArchType::GPU});

  // Panel handles per front, sized by the staircase's peak active rows
  // (fronts are stored as trapezoids, not full m×n rectangles).
  std::vector<std::vector<DataId>> panels(sym.fronts.size());
  std::vector<std::size_t> first_border_panel(sym.fronts.size(), 0);

  for (std::size_t fi = 0; fi < sym.fronts.size(); ++fi) {
    const Front& f = sym.fronts[fi];
    const std::size_t nf = f.n();
    const std::size_t kf = std::max<std::size_t>(1, f.k());
    // Stored depth of column j: pivot columns hold their V reflector (the
    // staircase height at elimination); border columns hold the R/CB rows,
    // bounded by both the final staircase height and the triangular profile.
    auto depth = [&](std::size_t j) -> std::size_t {
      std::size_t active = 1;
      if (!f.rows_at_pivot.empty()) {
        const std::size_t i = std::min({j, kf - 1, f.rows_at_pivot.size() - 1});
        active = f.rows_at_pivot[i] > i ? f.rows_at_pivot[i] - i : 1;
      }
      if (j >= kf) active = std::min(active, j + 1);
      return std::min(active, opts.max_rows_per_handle);
    };
    const std::size_t npanels = (nf + opts.panel_cols - 1) / opts.panel_cols;
    panels[fi].reserve(npanels);
    for (std::size_t p = 0; p < npanels; ++p) {
      const std::size_t width = std::min(opts.panel_cols, nf - p * opts.panel_cols);
      std::size_t area = 0;
      for (std::size_t j = p * opts.panel_cols; j < p * opts.panel_cols + width; ++j)
        area += depth(j);
      panels[fi].push_back(graph.add_data(area * sizeof(double), nullptr,
                                          "F" + std::to_string(fi) + "p" +
                                              std::to_string(p)));
      ++stats.panels;
    }
    first_border_panel[fi] = f.k() / opts.panel_cols;  // panels holding the CB
  }

  for (std::size_t fi = 0; fi < sym.fronts.size(); ++fi) {
    const Front& f = sym.fronts[fi];
    const std::size_t nf = f.n();
    const std::size_t npanels = panels[fi].size();

    // Per-pivot active rows from the staircase profile.
    auto active_at = [&](std::size_t i) {
      if (f.rows_at_pivot.empty()) return 1.0;
      const std::size_t idx = std::min(i, f.rows_at_pivot.size() - 1);
      const double a = static_cast<double>(f.rows_at_pivot[idx]) - static_cast<double>(i);
      return std::max(1.0, a);
    };

    // ---- assembly: gather A rows and children contribution blocks --------
    {
      std::vector<Access> acc;
      for (DataId p : panels[fi]) acc.push_back(Access{p, AccessMode::Write});
      for (std::uint32_t ci : f.children) {
        // The child's trailing panels hold its contribution block.
        for (std::size_t p = first_border_panel[ci]; p < panels[ci].size(); ++p)
          acc.push_back(Access{panels[ci][p], AccessMode::Read});
        if (first_border_panel[ci] >= panels[ci].size() && !panels[ci].empty()) {
          // Child fully eliminated (no border): still order after the child.
          acc.push_back(Access{panels[ci].back(), AccessMode::Read});
        }
      }
      double touched = 0.0;  // entries scattered into the trapezoid
      for (std::size_t i = 0; i < f.k(); ++i) touched += active_at(i);
      SubmitOptions o;
      o.flops = std::max(1.0, touched);
      o.iparams = {static_cast<std::int64_t>(fi), 0, 0, 0};
      o.name = "init_front#" + std::to_string(fi);
      graph.submit(cl_init, std::span<const Access>(acc), o);
      ++stats.tasks;
    }

    // ---- 1D panel factorization over the pivot panels --------------------
    const std::size_t kf = std::min<std::size_t>({f.k(), f.m, nf});
    const std::size_t pivot_panels = (kf + opts.panel_cols - 1) / opts.panel_cols;
    for (std::size_t p = 0; p < pivot_panels; ++p) {
      const std::size_t i0 = p * opts.panel_cols;
      const std::size_t kp = std::min(opts.panel_cols, kf - i0);
      // Reflector formation + in-panel application, staircase-aware.
      double panel_flops = 0.0;
      for (std::size_t i = i0; i < i0 + kp; ++i)
        panel_flops += 4.0 * active_at(i) * static_cast<double>(kp);
      SubmitOptions po;
      po.flops = std::max(1.0, panel_flops);
      po.iparams = {static_cast<std::int64_t>(fi), static_cast<std::int64_t>(p), 0, 0};
      po.name = "panel#" + std::to_string(fi) + "." + std::to_string(p);
      graph.submit(cl_panel, {Access{panels[fi][p], AccessMode::ReadWrite}}, po);
      ++stats.tasks;
      for (std::size_t q = p + 1; q < npanels; ++q) {
        const double width_q = static_cast<double>(
            std::min(opts.panel_cols, nf - q * opts.panel_cols));
        double upd_flops = 0.0;
        for (std::size_t i = i0; i < i0 + kp; ++i)
          upd_flops += 4.0 * active_at(i) * width_q;
        SubmitOptions uo;
        uo.flops = std::max(1.0, upd_flops);
        uo.iparams = {static_cast<std::int64_t>(fi), static_cast<std::int64_t>(p),
                      static_cast<std::int64_t>(q), 0};
        uo.name = "update#" + std::to_string(fi);
        graph.submit(cl_update,
                     {Access{panels[fi][p], AccessMode::Read},
                      Access{panels[fi][q], AccessMode::ReadWrite}},
                     uo);
        ++stats.tasks;
      }
    }
  }
  stats.flops = graph.total_flops();
  return stats;
}

}  // namespace mp::sqr
