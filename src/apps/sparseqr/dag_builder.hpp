// Multifrontal sparse QR DAG builder (the paper's QR_MUMPS workload).
//
// Fronts (from the symbolic analysis) are partitioned into 1D block-column
// panels, following the front-partitioning strategy of Agullo et al. [29]:
// per front an assembly task, then a panel-QR task per pivot panel and an
// update task per (pivot panel, trailing panel) pair. Parent assembly reads
// the child's trailing panels (the contribution block), which wires the
// elimination-tree dependencies through the STF data accesses. Panel sizes
// vary with the (irregular) front sizes, producing the task-granularity mix
// that makes sparse QR hard to schedule. No user priorities, as in the
// paper's Fig. 8 setting.
#pragma once

#include "apps/sparseqr/symbolic.hpp"
#include "runtime/task_graph.hpp"

namespace mp::sqr {

struct SparseQrDagOptions {
  /// Block-column panel width within a front.
  std::size_t panel_cols = 128;
  /// Rows of a front are capped for handle sizing (very tall fronts stream
  /// their rows in practice; the cap keeps simulated buffer sizes sane).
  std::size_t max_rows_per_handle = 1u << 16;
};

struct SparseQrStats {
  std::size_t fronts = 0;
  std::size_t panels = 0;
  std::size_t tasks = 0;
  double flops = 0.0;
};

SparseQrStats build_sparseqr(TaskGraph& graph, const SymbolicAnalysis& sym,
                             SparseQrDagOptions opts = {});

}  // namespace mp::sqr
