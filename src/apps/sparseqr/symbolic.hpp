// Symbolic multifrontal QR analysis: column elimination tree, post-order,
// supernode amalgamation into fronts, and exact front structures (column
// patterns via bottom-up union of assembled-row patterns and child borders).
// This is the analysis phase of a qr_mumps-style solver; its fronts drive
// the irregular DAG of the paper's sparse experiments (Fig. 8).
#pragma once

#include <cstdint>
#include <vector>

#include "apps/sparseqr/sparse_matrix.hpp"

namespace mp::sqr {

/// Column elimination tree of A (the etree of AᵀA, computed directly from A
/// with the Gilbert–Ng–Peyton row-merge algorithm). parent[j] == j marks a
/// root.
[[nodiscard]] std::vector<std::uint32_t> column_etree(const SparseMatrix& a);

/// Post-order permutation of a forest given as a parent array.
[[nodiscard]] std::vector<std::uint32_t> postorder(const std::vector<std::uint32_t>& parent);

struct Front {
  /// Pivot columns eliminated by this front, in post-order rank space
  /// (consecutive integers; map back through SymbolicAnalysis::post).
  std::vector<std::uint32_t> cols;
  /// Border: structure columns beyond the pivots (ascending original ids).
  std::vector<std::uint32_t> border;
  /// Assembled row count: original A rows whose leftmost pivot is here plus
  /// children contribution rows.
  std::size_t m = 0;
  std::vector<std::uint32_t> children;  ///< front indices
  std::uint32_t parent = 0;             ///< front index; == own index for roots

  [[nodiscard]] std::size_t k() const { return cols.size(); }      ///< pivots
  [[nodiscard]] std::size_t n() const { return cols.size() + border.size(); }
  /// Contribution-block rows handed to the parent.
  [[nodiscard]] std::size_t cb_rows() const {
    const std::size_t mn = std::min(m, n());
    return mn > k() ? mn - k() : 0;
  }
  /// Elimination flops. The analysis fills `staircase_flops` with the exact
  /// staircase-aware count (rows only participate from their entry pivot
  /// on, as qr_mumps exploits); dense_flops() is the m×n upper bound.
  double staircase_flops = -1.0;
  [[nodiscard]] double flops() const {
    return staircase_flops >= 0.0 ? staircase_flops : dense_flops();
  }
  /// Rows having entered the front before eliminating pivot i (the
  /// staircase profile; filled by the analysis). Drives per-panel task
  /// sizes in the DAG builder.
  std::vector<std::uint32_t> rows_at_pivot;
  /// Peak simultaneously-active row count (≥ entered − eliminated).
  [[nodiscard]] std::size_t peak_active_rows() const {
    std::size_t peak = 1;
    for (std::size_t i = 0; i < rows_at_pivot.size(); ++i) {
      const std::size_t active =
          rows_at_pivot[i] > i ? rows_at_pivot[i] - i : 1;
      peak = std::max(peak, active);
    }
    return peak;
  }
  /// Dense QR flops for eliminating k pivots of an m×n front.
  [[nodiscard]] double dense_flops() const;
};

struct SymbolicAnalysis {
  std::vector<std::uint32_t> etree_parent;  ///< per column
  std::vector<std::uint32_t> post;          ///< post-order of columns
  std::vector<Front> fronts;                ///< in (front) post-order
  double total_flops = 0.0;

  /// Structural invariants (every column in exactly one front, children
  /// consistent, parents after children). Aborts on violation.
  void self_check(std::size_t n_cols) const;
};

struct AnalysisOptions {
  /// Maximum pivot columns per front when amalgamating etree chains. Real
  /// multifrontal codes eliminate thousands of pivots per front near the
  /// (dense-ish) root — small caps fragment the root region into chains of
  /// fronts shuttling enormous contribution blocks.
  std::size_t max_front_cols = 1024;
  /// Fill-awareness of the amalgamation: a column joins the open front only
  /// if the front's last border is at most `amalgamation_slack` entries
  /// larger than the column's own border (0 = fundamental supernodes only).
  std::size_t amalgamation_slack = 4;
};

[[nodiscard]] SymbolicAnalysis analyze(const SparseMatrix& a, AnalysisOptions opts = {});

}  // namespace mp::sqr
