// Synthetic sparse matrices standing in for the paper's SuiteSparse set
// (Fig. 7). Each generator is tuned so rows/cols/nnz match the published
// numbers exactly and the multifrontal-QR operation count lands in the same
// regime (achieved vs. target printed by bench_fig7_matrices).
#pragma once

#include <string>
#include <vector>

#include "apps/sparseqr/sparse_matrix.hpp"

namespace mp::sqr {

struct MatrixSpec {
  std::string name;
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t nnz = 0;
  /// Published multifrontal-QR op count (Gflop, METIS ordering) — the
  /// quantity Fig. 7 sorts by.
  double gflop_target = 0.0;
  /// Generator shape knobs: local band spread and global-entry fraction
  /// (larger values -> more fill -> more flops).
  double band_spread = 0.0;
  double global_fraction = 0.0;
  /// Exponent biasing global entries toward low row indices (u^bias);
  /// > 1 makes rows enter fronts earlier, raising the op count of very
  /// rectangular matrices. 1.0 = uniform.
  double global_bias = 1.0;
};

/// The ten matrices of the paper's Fig. 7, ordered by op count.
[[nodiscard]] std::vector<MatrixSpec> paper_matrix_specs();

/// Banded-plus-random sparse pattern with exactly spec.rows × spec.cols and
/// spec.nnz entries (deterministic given the seed).
[[nodiscard]] SparseMatrix generate(const MatrixSpec& spec, std::uint64_t seed = 7);

}  // namespace mp::sqr
