// Real dense tile kernels (column-major, lda = nb) used by the tiled
// potrf / getrf / geqrf algorithms — the kernel mix of the paper's
// Chameleon workloads. Unblocked reference-quality implementations:
// numerically correct, not tuned (tuning is irrelevant to scheduling).
#pragma once

#include <cstddef>

namespace mp::dense {

// --- Cholesky (lower) -------------------------------------------------------

/// A := chol(A) in the lower triangle. Aborts on a non-positive pivot.
void potrf(double* a, std::size_t nb);

/// B := B · L^{-T}  (right solve, L lower from potrf).
void trsm_rlt(const double* l, double* b, std::size_t nb);

/// C := C − A·Aᵀ, updating the lower triangle only (symmetric rank-nb).
void syrk_ln(const double* a, double* c, std::size_t nb);

/// C := C − A·Bᵀ.
void gemm_nt(const double* a, const double* b, double* c, std::size_t nb);

// --- LU without pivoting ----------------------------------------------------

/// A := L\U (unit lower L, upper U, in place). Aborts on a zero pivot.
void getrf_nopiv(double* a, std::size_t nb);

/// B := L^{-1}·B (left solve, unit lower L from getrf).
void trsm_llnu(const double* l, double* b, std::size_t nb);

/// B := B·U^{-1} (right solve, upper U from getrf).
void trsm_run(const double* u, double* b, std::size_t nb);

/// C := C − A·B.
void gemm_nn(const double* a, const double* b, double* c, std::size_t nb);

// --- Tiled QR (Householder, PLASMA-style kernel set) ------------------------

/// QR of one tile: R in the upper triangle, Householder vectors V below the
/// diagonal (unit diagonal implicit), scalar factors in tau[nb].
void geqrt(double* a, double* tau, std::size_t nb);

/// C := Qᵀ·C with Q from geqrt(V in `v` strictly below diag, tau).
void ormqr(const double* v, const double* tau, double* c, std::size_t nb);

/// QR of the stacked [R_top; B] where R_top is upper-triangular: updates the
/// upper triangle of `r_top` in place (its strictly-lower part — which holds
/// earlier geqrt V's in the tiled algorithm — is untouched), leaves the new
/// Householder vectors in `b`, factors in tau[nb].
void tsqrt(double* r_top, double* b, double* tau, std::size_t nb);

/// Applies the tsqrt reflectors to the stacked [C_top; C_bot]:
/// [C_top; C_bot] := Qᵀ·[C_top; C_bot], with V = [I; v_bot].
void tsmqr(double* c_top, double* c_bot, const double* v_bot, const double* tau,
           std::size_t nb);

// --- flop counts (drive both sim timing and GFlop/s accounting) -------------

[[nodiscard]] double flops_potrf(std::size_t nb);
[[nodiscard]] double flops_trsm(std::size_t nb);
[[nodiscard]] double flops_syrk(std::size_t nb);
[[nodiscard]] double flops_gemm(std::size_t nb);
[[nodiscard]] double flops_getrf(std::size_t nb);
[[nodiscard]] double flops_geqrt(std::size_t nb);
[[nodiscard]] double flops_ormqr(std::size_t nb);
[[nodiscard]] double flops_tsqrt(std::size_t nb);
[[nodiscard]] double flops_tsmqr(std::size_t nb);

}  // namespace mp::dense
