// TileMatrix: a T×T grid of nb×nb column-major tiles with one runtime data
// handle per tile — the storage layout of Chameleon/PLASMA workloads.
#pragma once

#include <cstddef>
#include <vector>

#include "common/ids.hpp"
#include "runtime/task_graph.hpp"

namespace mp::dense {

class TileMatrix {
 public:
  /// `allocate == false` builds a metadata-only matrix for simulation
  /// workloads (handles sized correctly, no storage).
  TileMatrix(std::size_t tiles, std::size_t nb, bool allocate);

  [[nodiscard]] std::size_t tiles() const { return t_; }
  [[nodiscard]] std::size_t nb() const { return nb_; }
  [[nodiscard]] std::size_t n() const { return t_ * nb_; }
  [[nodiscard]] bool allocated() const { return !storage_.empty(); }
  [[nodiscard]] std::size_t tile_bytes() const { return nb_ * nb_ * sizeof(double); }

  [[nodiscard]] double* tile(std::size_t i, std::size_t j);
  [[nodiscard]] const double* tile(std::size_t i, std::size_t j) const;

  /// Registers one handle per tile in the graph (must be called once).
  void register_handles(TaskGraph& graph);
  [[nodiscard]] DataId handle(std::size_t i, std::size_t j) const;

  // --- fills (require storage) ---------------------------------------------

  /// Random entries in [-1, 1).
  void fill_random(std::uint64_t seed);
  /// Symmetric positive definite: random symmetric + n·I on the diagonal.
  void fill_spd(std::uint64_t seed);
  /// Diagonally dominant (safe for LU without pivoting).
  void fill_diag_dominant(std::uint64_t seed);

  /// Copies into a full n×n column-major matrix.
  [[nodiscard]] std::vector<double> to_full() const;
  /// Loads from a full n×n column-major matrix.
  void from_full(const std::vector<double>& full);

 private:
  std::size_t t_;
  std::size_t nb_;
  std::vector<double> storage_;
  std::vector<DataId> handles_;
};

}  // namespace mp::dense
