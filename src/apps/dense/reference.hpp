// Full-matrix reference algorithms used to validate the tiled versions.
// All matrices are n×n column-major.
#pragma once

#include <cstddef>
#include <vector>

namespace mp::dense::ref {

/// In-place lower Cholesky.
void cholesky(std::vector<double>& a, std::size_t n);

/// In-place LU without pivoting (unit lower / upper).
void lu_nopiv(std::vector<double>& a, std::size_t n);

/// In-place Householder QR: R in the upper triangle, V below, tau out.
void qr(std::vector<double>& a, std::vector<double>& tau, std::size_t n);

/// C := A·B.
[[nodiscard]] std::vector<double> matmul(const std::vector<double>& a,
                                         const std::vector<double>& b, std::size_t n);

/// C := A·Bᵀ / AᵀB.
[[nodiscard]] std::vector<double> matmul_nt(const std::vector<double>& a,
                                            const std::vector<double>& b, std::size_t n);
[[nodiscard]] std::vector<double> matmul_tn(const std::vector<double>& a,
                                            const std::vector<double>& b, std::size_t n);

/// Frobenius norm of A and of A−B.
[[nodiscard]] double fro_norm(const std::vector<double>& a);
[[nodiscard]] double fro_diff(const std::vector<double>& a, const std::vector<double>& b);

/// Extracts L (unit or not) / U / R factors from packed storage.
[[nodiscard]] std::vector<double> lower(const std::vector<double>& a, std::size_t n,
                                        bool unit_diag);
[[nodiscard]] std::vector<double> upper(const std::vector<double>& a, std::size_t n);

}  // namespace mp::dense::ref
