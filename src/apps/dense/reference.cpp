#include "apps/dense/reference.hpp"

#include <cmath>

#include "common/check.hpp"

namespace mp::dense::ref {

void cholesky(std::vector<double>& a, std::size_t n) {
  MP_CHECK(a.size() == n * n);
  for (std::size_t k = 0; k < n; ++k) {
    MP_CHECK_MSG(a[k * n + k] > 0.0, "reference cholesky: not SPD");
    const double d = std::sqrt(a[k * n + k]);
    a[k * n + k] = d;
    for (std::size_t i = k + 1; i < n; ++i) a[k * n + i] /= d;
    for (std::size_t j = k + 1; j < n; ++j) {
      const double ljk = a[k * n + j];
      for (std::size_t i = j; i < n; ++i) a[j * n + i] -= a[k * n + i] * ljk;
    }
  }
}

void lu_nopiv(std::vector<double>& a, std::size_t n) {
  MP_CHECK(a.size() == n * n);
  for (std::size_t k = 0; k < n; ++k) {
    const double pivot = a[k * n + k];
    MP_CHECK_MSG(pivot != 0.0, "reference lu: zero pivot");
    for (std::size_t i = k + 1; i < n; ++i) a[k * n + i] /= pivot;
    for (std::size_t j = k + 1; j < n; ++j) {
      const double akj = a[j * n + k];
      for (std::size_t i = k + 1; i < n; ++i) a[j * n + i] -= a[k * n + i] * akj;
    }
  }
}

void qr(std::vector<double>& a, std::vector<double>& tau, std::size_t n) {
  MP_CHECK(a.size() == n * n);
  tau.assign(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    double xnorm2 = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) xnorm2 += a[k * n + i] * a[k * n + i];
    if (xnorm2 == 0.0) continue;
    const double alpha = a[k * n + k];
    const double beta = -std::copysign(std::sqrt(alpha * alpha + xnorm2), alpha);
    tau[k] = (beta - alpha) / beta;
    const double scale = 1.0 / (alpha - beta);
    for (std::size_t i = k + 1; i < n; ++i) a[k * n + i] *= scale;
    a[k * n + k] = beta;
    for (std::size_t j = k + 1; j < n; ++j) {
      double w = a[j * n + k];
      for (std::size_t i = k + 1; i < n; ++i) w += a[k * n + i] * a[j * n + i];
      w *= tau[k];
      a[j * n + k] -= w;
      for (std::size_t i = k + 1; i < n; ++i) a[j * n + i] -= a[k * n + i] * w;
    }
  }
}

std::vector<double> matmul(const std::vector<double>& a, const std::vector<double>& b,
                           std::size_t n) {
  std::vector<double> c(n * n, 0.0);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t k = 0; k < n; ++k) {
      const double bkj = b[j * n + k];
      for (std::size_t i = 0; i < n; ++i) c[j * n + i] += a[k * n + i] * bkj;
    }
  return c;
}

std::vector<double> matmul_nt(const std::vector<double>& a, const std::vector<double>& b,
                              std::size_t n) {
  std::vector<double> c(n * n, 0.0);
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t j = 0; j < n; ++j) {
      const double bjk = b[k * n + j];
      for (std::size_t i = 0; i < n; ++i) c[j * n + i] += a[k * n + i] * bjk;
    }
  return c;
}

std::vector<double> matmul_tn(const std::vector<double>& a, const std::vector<double>& b,
                              std::size_t n) {
  std::vector<double> c(n * n, 0.0);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (std::size_t k = 0; k < n; ++k) s += a[i * n + k] * b[j * n + k];
      c[j * n + i] = s;
    }
  return c;
}

double fro_norm(const std::vector<double>& a) {
  double s = 0.0;
  for (double v : a) s += v * v;
  return std::sqrt(s);
}

double fro_diff(const std::vector<double>& a, const std::vector<double>& b) {
  MP_CHECK(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

std::vector<double> lower(const std::vector<double>& a, std::size_t n, bool unit_diag) {
  std::vector<double> l(n * n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = j + 1; i < n; ++i) l[j * n + i] = a[j * n + i];
    l[j * n + j] = unit_diag ? 1.0 : a[j * n + j];
  }
  return l;
}

std::vector<double> upper(const std::vector<double>& a, std::size_t n) {
  std::vector<double> u(n * n, 0.0);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i <= j; ++i) u[j * n + i] = a[j * n + i];
  return u;
}

}  // namespace mp::dense::ref
