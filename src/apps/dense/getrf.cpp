#include "apps/dense/dense_builders.hpp"
#include "apps/dense/tile_kernels.hpp"
#include "common/check.hpp"

namespace mp::dense {

void build_getrf(TaskGraph& graph, TileMatrix& a, bool expert_priorities) {
  const std::size_t T = a.tiles();
  const std::size_t nb = a.nb();

  const CodeletId cl_getrf = graph.add_codelet(
      "getrf", {ArchType::CPU, ArchType::GPU},
      [nb](const Task&, std::span<void* const> buf) {
        getrf_nopiv(static_cast<double*>(buf[0]), nb);
      });
  // Row-panel solve with unit-lower L; column-panel solve with upper U.
  // Two distinct codelets sharing the "trsm" performance-model name.
  const CodeletId cl_trsm_l = graph.add_codelet(
      "trsm", {ArchType::CPU, ArchType::GPU},
      [nb](const Task&, std::span<void* const> buf) {
        trsm_llnu(static_cast<const double*>(buf[0]), static_cast<double*>(buf[1]), nb);
      });
  const CodeletId cl_trsm_u = graph.add_codelet(
      "trsm", {ArchType::CPU, ArchType::GPU},
      [nb](const Task&, std::span<void* const> buf) {
        trsm_run(static_cast<const double*>(buf[0]), static_cast<double*>(buf[1]), nb);
      });
  const CodeletId cl_gemm = graph.add_codelet(
      "gemm", {ArchType::CPU, ArchType::GPU},
      [nb](const Task&, std::span<void* const> buf) {
        gemm_nn(static_cast<const double*>(buf[0]), static_cast<const double*>(buf[1]),
                static_cast<double*>(buf[2]), nb);
      });

  auto name = [](const char* op, std::size_t i, std::size_t j, std::size_t k) {
    return std::string(op) + "(" + std::to_string(i) + "," + std::to_string(j) + "," +
           std::to_string(k) + ")";
  };

  for (std::size_t k = 0; k < T; ++k) {
    SubmitOptions fo;
    fo.flops = flops_getrf(nb);
    fo.iparams = {static_cast<std::int64_t>(k), 0, 0, 0};
    fo.name = name("getrf", k, k, k);
    graph.submit(cl_getrf, {Access{a.handle(k, k), AccessMode::ReadWrite}}, fo);

    for (std::size_t j = k + 1; j < T; ++j) {  // U row panel: A[k][j] := L⁻¹·A[k][j]
      SubmitOptions to;
      to.flops = flops_trsm(nb);
      to.iparams = {static_cast<std::int64_t>(k), static_cast<std::int64_t>(j), 0, 0};
      to.name = name("trsmL", k, j, k);
      graph.submit(cl_trsm_l,
                   {Access{a.handle(k, k), AccessMode::Read},
                    Access{a.handle(k, j), AccessMode::ReadWrite}},
                   to);
    }
    for (std::size_t i = k + 1; i < T; ++i) {  // L column panel: A[i][k] := A[i][k]·U⁻¹
      SubmitOptions to;
      to.flops = flops_trsm(nb);
      to.iparams = {static_cast<std::int64_t>(i), static_cast<std::int64_t>(k), 0, 0};
      to.name = name("trsmU", i, k, k);
      graph.submit(cl_trsm_u,
                   {Access{a.handle(k, k), AccessMode::Read},
                    Access{a.handle(i, k), AccessMode::ReadWrite}},
                   to);
    }
    for (std::size_t i = k + 1; i < T; ++i) {
      for (std::size_t j = k + 1; j < T; ++j) {
        SubmitOptions go;
        go.flops = flops_gemm(nb);
        go.iparams = {static_cast<std::int64_t>(i), static_cast<std::int64_t>(j),
                      static_cast<std::int64_t>(k), 0};
        go.name = name("gemm", i, j, k);
        graph.submit(cl_gemm,
                     {Access{a.handle(i, k), AccessMode::Read},
                      Access{a.handle(k, j), AccessMode::Read},
                      Access{a.handle(i, j), AccessMode::ReadWrite}},
                     go);
      }
    }
  }
  if (expert_priorities) assign_expert_priorities(graph);
}

}  // namespace mp::dense
