// Tiled dense factorization DAG builders (the paper's Chameleon workloads):
// Cholesky (potrf), LU without pivoting (getrf) and QR (geqrf).
//
// Each builder registers the codelets (with real CPU kernels when the
// matrix is allocated), submits the tasks in STF order, and — with
// `expert_priorities` — assigns flop-weighted critical-path priorities,
// playing the role of Chameleon's offline expert priorities used by Dmdas.
#pragma once

#include <memory>
#include <vector>

#include "apps/dense/tile_matrix.hpp"
#include "runtime/task_graph.hpp"

namespace mp::dense {

/// Auxiliary storage kept alive for the duration of a run (QR tau tiles).
struct DenseAux {
  std::vector<std::vector<double>> buffers;
};

/// Tiled Cholesky A = L·Lᵀ (lower). Matrix handles must be registered.
void build_potrf(TaskGraph& graph, TileMatrix& a, bool expert_priorities);

/// Tiled LU without pivoting A = L·U.
void build_getrf(TaskGraph& graph, TileMatrix& a, bool expert_priorities);

/// Tiled QR A = Q·R. Returns the tau workspace (must outlive execution when
/// running with real kernels).
[[nodiscard]] std::unique_ptr<DenseAux> build_geqrf(TaskGraph& graph, TileMatrix& a,
                                                    bool expert_priorities);

/// Flop-weighted critical-path priorities for every submitted task
/// (scaled upward ranks). Called by the builders; exposed for other apps.
void assign_expert_priorities(TaskGraph& graph);

/// Total algorithmic flops of each factorization on an n×n matrix (for
/// GFlop/s normalization, matching the paper's plots).
[[nodiscard]] double potrf_total_flops(std::size_t n);
[[nodiscard]] double getrf_total_flops(std::size_t n);
[[nodiscard]] double geqrf_total_flops(std::size_t n);

}  // namespace mp::dense
