#include "apps/dense/tile_kernels.hpp"

#include <cmath>
#include <vector>

#include "common/check.hpp"

namespace mp::dense {

namespace {
/// Column-major indexing with lda = nb.
[[nodiscard]] inline std::size_t at(std::size_t i, std::size_t j, std::size_t nb) {
  return j * nb + i;
}
}  // namespace

void potrf(double* a, std::size_t nb) {
  for (std::size_t k = 0; k < nb; ++k) {
    double pivot = a[at(k, k, nb)];
    MP_CHECK_MSG(pivot > 0.0, "potrf: matrix not positive definite");
    pivot = std::sqrt(pivot);
    a[at(k, k, nb)] = pivot;
    for (std::size_t i = k + 1; i < nb; ++i) a[at(i, k, nb)] /= pivot;
    for (std::size_t j = k + 1; j < nb; ++j) {
      const double ljk = a[at(j, k, nb)];
      for (std::size_t i = j; i < nb; ++i) a[at(i, j, nb)] -= a[at(i, k, nb)] * ljk;
    }
  }
}

void trsm_rlt(const double* l, double* b, std::size_t nb) {
  // B := B · L^{-T}: column j of the result uses columns 0..j of L.
  for (std::size_t j = 0; j < nb; ++j) {
    const double d = l[at(j, j, nb)];
    for (std::size_t i = 0; i < nb; ++i) b[at(i, j, nb)] /= d;
    for (std::size_t k = j + 1; k < nb; ++k) {
      const double lkj = l[at(k, j, nb)];
      for (std::size_t i = 0; i < nb; ++i) b[at(i, k, nb)] -= b[at(i, j, nb)] * lkj;
    }
  }
}

void syrk_ln(const double* a, double* c, std::size_t nb) {
  for (std::size_t k = 0; k < nb; ++k) {
    for (std::size_t j = 0; j < nb; ++j) {
      const double ajk = a[at(j, k, nb)];
      for (std::size_t i = j; i < nb; ++i) c[at(i, j, nb)] -= a[at(i, k, nb)] * ajk;
    }
  }
}

void gemm_nt(const double* a, const double* b, double* c, std::size_t nb) {
  for (std::size_t k = 0; k < nb; ++k) {
    for (std::size_t j = 0; j < nb; ++j) {
      const double bjk = b[at(j, k, nb)];
      for (std::size_t i = 0; i < nb; ++i) c[at(i, j, nb)] -= a[at(i, k, nb)] * bjk;
    }
  }
}

void getrf_nopiv(double* a, std::size_t nb) {
  for (std::size_t k = 0; k < nb; ++k) {
    const double pivot = a[at(k, k, nb)];
    MP_CHECK_MSG(pivot != 0.0, "getrf_nopiv: zero pivot");
    for (std::size_t i = k + 1; i < nb; ++i) a[at(i, k, nb)] /= pivot;
    for (std::size_t j = k + 1; j < nb; ++j) {
      const double akj = a[at(k, j, nb)];
      for (std::size_t i = k + 1; i < nb; ++i) a[at(i, j, nb)] -= a[at(i, k, nb)] * akj;
    }
  }
}

void trsm_llnu(const double* l, double* b, std::size_t nb) {
  // B := L^{-1}·B, unit lower L: forward substitution per column.
  for (std::size_t j = 0; j < nb; ++j) {
    for (std::size_t k = 0; k < nb; ++k) {
      const double bkj = b[at(k, j, nb)];
      for (std::size_t i = k + 1; i < nb; ++i) b[at(i, j, nb)] -= l[at(i, k, nb)] * bkj;
    }
  }
}

void trsm_run(const double* u, double* b, std::size_t nb) {
  // B := B·U^{-1}: column j of result depends on previous result columns.
  for (std::size_t j = 0; j < nb; ++j) {
    for (std::size_t k = 0; k < j; ++k) {
      const double ukj = u[at(k, j, nb)];
      for (std::size_t i = 0; i < nb; ++i) b[at(i, j, nb)] -= b[at(i, k, nb)] * ukj;
    }
    const double d = u[at(j, j, nb)];
    MP_CHECK_MSG(d != 0.0, "trsm_run: singular U");
    for (std::size_t i = 0; i < nb; ++i) b[at(i, j, nb)] /= d;
  }
}

void gemm_nn(const double* a, const double* b, double* c, std::size_t nb) {
  for (std::size_t j = 0; j < nb; ++j) {
    for (std::size_t k = 0; k < nb; ++k) {
      const double bkj = b[at(k, j, nb)];
      for (std::size_t i = 0; i < nb; ++i) c[at(i, j, nb)] -= a[at(i, k, nb)] * bkj;
    }
  }
}

namespace {
/// Householder generation for x = [alpha; tail] (tail length m−1): returns
/// tau and overwrites alpha with beta, tail with v (unit head implicit).
double house(double& alpha, double* tail, std::size_t m_minus_1) {
  double xnorm2 = 0.0;
  for (std::size_t i = 0; i < m_minus_1; ++i) xnorm2 += tail[i] * tail[i];
  if (xnorm2 == 0.0) return 0.0;  // already eliminated
  const double beta = -std::copysign(std::sqrt(alpha * alpha + xnorm2), alpha);
  const double tau = (beta - alpha) / beta;
  const double scale = 1.0 / (alpha - beta);
  for (std::size_t i = 0; i < m_minus_1; ++i) tail[i] *= scale;
  alpha = beta;
  return tau;
}
}  // namespace

void geqrt(double* a, double* tau, std::size_t nb) {
  for (std::size_t k = 0; k < nb; ++k) {
    tau[k] = house(a[at(k, k, nb)], &a[at(k + 1, k, nb)], nb - k - 1);
    if (tau[k] == 0.0) continue;
    // Apply (I − tau·v·vᵀ) to the trailing columns; v = [1; a(k+1:,k)].
    for (std::size_t j = k + 1; j < nb; ++j) {
      double w = a[at(k, j, nb)];
      for (std::size_t i = k + 1; i < nb; ++i) w += a[at(i, k, nb)] * a[at(i, j, nb)];
      w *= tau[k];
      a[at(k, j, nb)] -= w;
      for (std::size_t i = k + 1; i < nb; ++i) a[at(i, j, nb)] -= a[at(i, k, nb)] * w;
    }
  }
}

void ormqr(const double* v, const double* tau, double* c, std::size_t nb) {
  // C := Qᵀ·C = H_{nb−1}···H_0·C applied in order k = 0..nb−1.
  for (std::size_t k = 0; k < nb; ++k) {
    if (tau[k] == 0.0) continue;
    for (std::size_t j = 0; j < nb; ++j) {
      double w = c[at(k, j, nb)];
      for (std::size_t i = k + 1; i < nb; ++i) w += v[at(i, k, nb)] * c[at(i, j, nb)];
      w *= tau[k];
      c[at(k, j, nb)] -= w;
      for (std::size_t i = k + 1; i < nb; ++i) c[at(i, j, nb)] -= v[at(i, k, nb)] * w;
    }
  }
}

void tsqrt(double* r_top, double* b, double* tau, std::size_t nb) {
  // Stacked QR of [R; B] with R upper-triangular. The reflector of column k
  // is v = [e_k; b(:,k)]: rows k+1..nb−1 of the top block stay zero, so only
  // the diagonal entry of R and the whole of B participate.
  for (std::size_t k = 0; k < nb; ++k) {
    tau[k] = house(r_top[at(k, k, nb)], &b[at(0, k, nb)], nb);
    if (tau[k] == 0.0) continue;
    for (std::size_t j = k + 1; j < nb; ++j) {
      double w = r_top[at(k, j, nb)];
      for (std::size_t i = 0; i < nb; ++i) w += b[at(i, k, nb)] * b[at(i, j, nb)];
      w *= tau[k];
      r_top[at(k, j, nb)] -= w;
      for (std::size_t i = 0; i < nb; ++i) b[at(i, j, nb)] -= b[at(i, k, nb)] * w;
    }
  }
}

void tsmqr(double* c_top, double* c_bot, const double* v_bot, const double* tau,
           std::size_t nb) {
  for (std::size_t k = 0; k < nb; ++k) {
    if (tau[k] == 0.0) continue;
    for (std::size_t j = 0; j < nb; ++j) {
      double w = c_top[at(k, j, nb)];
      for (std::size_t i = 0; i < nb; ++i) w += v_bot[at(i, k, nb)] * c_bot[at(i, j, nb)];
      w *= tau[k];
      c_top[at(k, j, nb)] -= w;
      for (std::size_t i = 0; i < nb; ++i) c_bot[at(i, j, nb)] -= v_bot[at(i, k, nb)] * w;
    }
  }
}

namespace {
[[nodiscard]] double cb(std::size_t nb) {
  const double n = static_cast<double>(nb);
  return n * n * n;
}
}  // namespace

double flops_potrf(std::size_t nb) { return cb(nb) / 3.0; }
double flops_trsm(std::size_t nb) { return cb(nb); }
double flops_syrk(std::size_t nb) { return cb(nb); }
double flops_gemm(std::size_t nb) { return 2.0 * cb(nb); }
double flops_getrf(std::size_t nb) { return 2.0 * cb(nb) / 3.0; }
double flops_geqrt(std::size_t nb) { return 4.0 * cb(nb) / 3.0; }
double flops_ormqr(std::size_t nb) { return 2.0 * cb(nb); }
double flops_tsqrt(std::size_t nb) { return 2.0 * cb(nb); }
double flops_tsmqr(std::size_t nb) { return 4.0 * cb(nb); }

}  // namespace mp::dense
