#include "apps/dense/tile_matrix.hpp"

#include "common/check.hpp"
#include "common/rng.hpp"

namespace mp::dense {

TileMatrix::TileMatrix(std::size_t tiles, std::size_t nb, bool allocate)
    : t_(tiles), nb_(nb) {
  MP_CHECK(tiles > 0 && nb > 0);
  if (allocate) storage_.assign(t_ * t_ * nb_ * nb_, 0.0);
}

double* TileMatrix::tile(std::size_t i, std::size_t j) {
  MP_CHECK(allocated() && i < t_ && j < t_);
  return storage_.data() + (j * t_ + i) * nb_ * nb_;
}

const double* TileMatrix::tile(std::size_t i, std::size_t j) const {
  MP_CHECK(allocated() && i < t_ && j < t_);
  return storage_.data() + (j * t_ + i) * nb_ * nb_;
}

void TileMatrix::register_handles(TaskGraph& graph) {
  MP_CHECK_MSG(handles_.empty(), "handles already registered");
  handles_.reserve(t_ * t_);
  for (std::size_t j = 0; j < t_; ++j) {
    for (std::size_t i = 0; i < t_; ++i) {
      void* ptr = allocated() ? static_cast<void*>(tile(i, j)) : nullptr;
      handles_.push_back(graph.add_data(
          tile_bytes(), ptr, "A(" + std::to_string(i) + "," + std::to_string(j) + ")"));
    }
  }
}

DataId TileMatrix::handle(std::size_t i, std::size_t j) const {
  MP_CHECK(!handles_.empty() && i < t_ && j < t_);
  return handles_[j * t_ + i];
}

void TileMatrix::fill_random(std::uint64_t seed) {
  MP_CHECK(allocated());
  Rng rng(seed);
  for (double& v : storage_) v = rng.next_real(-1.0, 1.0);
}

void TileMatrix::fill_spd(std::uint64_t seed) {
  fill_random(seed);
  // Symmetrize and shift: A := (A + Aᵀ)/2 + n·I.
  const std::size_t n = this->n();
  std::vector<double> full = to_full();
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      const double s = 0.5 * (full[j * n + i] + full[i * n + j]);
      full[j * n + i] = s;
      full[i * n + j] = s;
    }
    full[j * n + j] += static_cast<double>(n);
  }
  from_full(full);
}

void TileMatrix::fill_diag_dominant(std::uint64_t seed) {
  fill_random(seed);
  const std::size_t n = this->n();
  std::vector<double> full = to_full();
  for (std::size_t j = 0; j < n; ++j) full[j * n + j] += static_cast<double>(n);
  from_full(full);
}

std::vector<double> TileMatrix::to_full() const {
  MP_CHECK(allocated());
  const std::size_t n = this->n();
  std::vector<double> full(n * n);
  for (std::size_t tj = 0; tj < t_; ++tj)
    for (std::size_t ti = 0; ti < t_; ++ti) {
      const double* src = tile(ti, tj);
      for (std::size_t j = 0; j < nb_; ++j)
        for (std::size_t i = 0; i < nb_; ++i)
          full[(tj * nb_ + j) * n + ti * nb_ + i] = src[j * nb_ + i];
    }
  return full;
}

void TileMatrix::from_full(const std::vector<double>& full) {
  MP_CHECK(allocated());
  const std::size_t n = this->n();
  MP_CHECK(full.size() == n * n);
  for (std::size_t tj = 0; tj < t_; ++tj)
    for (std::size_t ti = 0; ti < t_; ++ti) {
      double* dst = tile(ti, tj);
      for (std::size_t j = 0; j < nb_; ++j)
        for (std::size_t i = 0; i < nb_; ++i)
          dst[j * nb_ + i] = full[(tj * nb_ + j) * n + ti * nb_ + i];
    }
}

}  // namespace mp::dense
