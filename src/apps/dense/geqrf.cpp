#include "apps/dense/dense_builders.hpp"
#include "apps/dense/tile_kernels.hpp"
#include "common/check.hpp"

namespace mp::dense {

std::unique_ptr<DenseAux> build_geqrf(TaskGraph& graph, TileMatrix& a,
                                      bool expert_priorities) {
  const std::size_t T = a.tiles();
  const std::size_t nb = a.nb();
  auto aux = std::make_unique<DenseAux>();

  // One tau vector per (i,k) reflector block; allocated only when the matrix
  // carries real storage (simulation-only DAGs keep null user_ptrs).
  auto make_tau = [&]() -> void* {
    if (!a.allocated()) return nullptr;
    aux->buffers.emplace_back(nb, 0.0);
    return aux->buffers.back().data();
  };

  const CodeletId cl_geqrt = graph.add_codelet(
      "geqrt", {ArchType::CPU, ArchType::GPU},
      [nb](const Task&, std::span<void* const> buf) {
        geqrt(static_cast<double*>(buf[0]), static_cast<double*>(buf[1]), nb);
      });
  const CodeletId cl_ormqr = graph.add_codelet(
      "ormqr", {ArchType::CPU, ArchType::GPU},
      [nb](const Task&, std::span<void* const> buf) {
        ormqr(static_cast<const double*>(buf[0]), static_cast<const double*>(buf[1]),
              static_cast<double*>(buf[2]), nb);
      });
  const CodeletId cl_tsqrt = graph.add_codelet(
      "tsqrt", {ArchType::CPU, ArchType::GPU},
      [nb](const Task&, std::span<void* const> buf) {
        tsqrt(static_cast<double*>(buf[0]), static_cast<double*>(buf[1]),
              static_cast<double*>(buf[2]), nb);
      });
  const CodeletId cl_tsmqr = graph.add_codelet(
      "tsmqr", {ArchType::CPU, ArchType::GPU},
      [nb](const Task&, std::span<void* const> buf) {
        tsmqr(static_cast<double*>(buf[0]), static_cast<double*>(buf[1]),
              static_cast<const double*>(buf[2]), static_cast<const double*>(buf[3]), nb);
      });

  const std::size_t tau_bytes = nb * sizeof(double);
  auto name = [](const char* op, std::size_t i, std::size_t j, std::size_t k) {
    return std::string(op) + "(" + std::to_string(i) + "," + std::to_string(j) + "," +
           std::to_string(k) + ")";
  };

  for (std::size_t k = 0; k < T; ++k) {
    const DataId tau_kk = graph.add_data(tau_bytes, make_tau(), name("tau", k, k, k));
    SubmitOptions qo;
    qo.flops = flops_geqrt(nb);
    qo.iparams = {static_cast<std::int64_t>(k), 0, 0, 0};
    qo.name = name("geqrt", k, k, k);
    graph.submit(cl_geqrt,
                 {Access{a.handle(k, k), AccessMode::ReadWrite},
                  Access{tau_kk, AccessMode::Write}},
                 qo);

    for (std::size_t j = k + 1; j < T; ++j) {
      SubmitOptions oo;
      oo.flops = flops_ormqr(nb);
      oo.iparams = {static_cast<std::int64_t>(k), static_cast<std::int64_t>(j), 0, 0};
      oo.name = name("ormqr", k, j, k);
      graph.submit(cl_ormqr,
                   {Access{a.handle(k, k), AccessMode::Read},
                    Access{tau_kk, AccessMode::Read},
                    Access{a.handle(k, j), AccessMode::ReadWrite}},
                   oo);
    }

    for (std::size_t i = k + 1; i < T; ++i) {
      const DataId tau_ik = graph.add_data(tau_bytes, make_tau(), name("tau", i, k, k));
      SubmitOptions to;
      to.flops = flops_tsqrt(nb);
      to.iparams = {static_cast<std::int64_t>(i), static_cast<std::int64_t>(k), 0, 0};
      to.name = name("tsqrt", i, k, k);
      graph.submit(cl_tsqrt,
                   {Access{a.handle(k, k), AccessMode::ReadWrite},
                    Access{a.handle(i, k), AccessMode::ReadWrite},
                    Access{tau_ik, AccessMode::Write}},
                   to);
      for (std::size_t j = k + 1; j < T; ++j) {
        SubmitOptions mo;
        mo.flops = flops_tsmqr(nb);
        mo.iparams = {static_cast<std::int64_t>(i), static_cast<std::int64_t>(j),
                      static_cast<std::int64_t>(k), 0};
        mo.name = name("tsmqr", i, j, k);
        graph.submit(cl_tsmqr,
                     {Access{a.handle(k, j), AccessMode::ReadWrite},
                      Access{a.handle(i, j), AccessMode::ReadWrite},
                      Access{a.handle(i, k), AccessMode::Read},
                      Access{tau_ik, AccessMode::Read}},
                     mo);
      }
    }
  }
  if (expert_priorities) assign_expert_priorities(graph);
  return aux;
}

}  // namespace mp::dense
