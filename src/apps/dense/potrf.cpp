#include "apps/dense/dense_builders.hpp"
#include "apps/dense/tile_kernels.hpp"
#include "common/check.hpp"

namespace mp::dense {

void assign_expert_priorities(TaskGraph& graph) {
  const std::vector<double> rank = graph.upward_rank_flops();
  for (std::size_t i = 0; i < rank.size(); ++i) {
    // Scale flops ranks into a comfortable int64 range (1e3 flops units).
    graph.set_user_priority(TaskId{i}, static_cast<std::int64_t>(rank[i] / 1e3));
  }
}

double potrf_total_flops(std::size_t n) {
  const double d = static_cast<double>(n);
  return d * d * d / 3.0;
}

double getrf_total_flops(std::size_t n) {
  const double d = static_cast<double>(n);
  return 2.0 * d * d * d / 3.0;
}

double geqrf_total_flops(std::size_t n) {
  const double d = static_cast<double>(n);
  return 4.0 * d * d * d / 3.0;
}

void build_potrf(TaskGraph& graph, TileMatrix& a, bool expert_priorities) {
  const std::size_t T = a.tiles();
  const std::size_t nb = a.nb();

  const CodeletId cl_potrf = graph.add_codelet(
      "potrf", {ArchType::CPU, ArchType::GPU},
      [nb](const Task&, std::span<void* const> buf) {
        potrf(static_cast<double*>(buf[0]), nb);
      });
  const CodeletId cl_trsm = graph.add_codelet(
      "trsm", {ArchType::CPU, ArchType::GPU},
      [nb](const Task&, std::span<void* const> buf) {
        trsm_rlt(static_cast<const double*>(buf[0]), static_cast<double*>(buf[1]), nb);
      });
  const CodeletId cl_syrk = graph.add_codelet(
      "syrk", {ArchType::CPU, ArchType::GPU},
      [nb](const Task&, std::span<void* const> buf) {
        syrk_ln(static_cast<const double*>(buf[0]), static_cast<double*>(buf[1]), nb);
      });
  const CodeletId cl_gemm = graph.add_codelet(
      "gemm", {ArchType::CPU, ArchType::GPU},
      [nb](const Task&, std::span<void* const> buf) {
        gemm_nt(static_cast<const double*>(buf[0]), static_cast<const double*>(buf[1]),
                static_cast<double*>(buf[2]), nb);
      });

  auto name = [](const char* op, std::size_t i, std::size_t j, std::size_t k) {
    return std::string(op) + "(" + std::to_string(i) + "," + std::to_string(j) + "," +
           std::to_string(k) + ")";
  };

  for (std::size_t k = 0; k < T; ++k) {
    SubmitOptions po;
    po.flops = flops_potrf(nb);
    po.iparams = {static_cast<std::int64_t>(k), 0, 0, 0};
    po.name = name("potrf", k, k, k);
    graph.submit(cl_potrf, {Access{a.handle(k, k), AccessMode::ReadWrite}}, po);

    for (std::size_t i = k + 1; i < T; ++i) {
      SubmitOptions to;
      to.flops = flops_trsm(nb);
      to.iparams = {static_cast<std::int64_t>(i), static_cast<std::int64_t>(k), 0, 0};
      to.name = name("trsm", i, k, k);
      graph.submit(cl_trsm,
                   {Access{a.handle(k, k), AccessMode::Read},
                    Access{a.handle(i, k), AccessMode::ReadWrite}},
                   to);
    }
    for (std::size_t i = k + 1; i < T; ++i) {
      SubmitOptions so;
      so.flops = flops_syrk(nb);
      so.iparams = {static_cast<std::int64_t>(i), static_cast<std::int64_t>(k), 0, 0};
      so.name = name("syrk", i, i, k);
      graph.submit(cl_syrk,
                   {Access{a.handle(i, k), AccessMode::Read},
                    Access{a.handle(i, i), AccessMode::ReadWrite}},
                   so);
      for (std::size_t j = k + 1; j < i; ++j) {
        SubmitOptions go;
        go.flops = flops_gemm(nb);
        go.iparams = {static_cast<std::int64_t>(i), static_cast<std::int64_t>(j),
                      static_cast<std::int64_t>(k), 0};
        go.name = name("gemm", i, j, k);
        graph.submit(cl_gemm,
                     {Access{a.handle(i, k), AccessMode::Read},
                      Access{a.handle(j, k), AccessMode::Read},
                      Access{a.handle(i, j), AccessMode::ReadWrite}},
                     go);
      }
    }
  }
  if (expert_priorities) assign_expert_priorities(graph);
}

}  // namespace mp::dense
