// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (workload generators, execution
// noise, random scheduler) draw from Xoshiro256** seeded explicitly, so every
// experiment is reproducible bit-for-bit from its seed.
#pragma once

#include <cstdint>

namespace mp {

/// SplitMix64: used to expand a single user seed into generator state.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// Xoshiro256** by Blackman & Vigna — fast, high-quality, tiny state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  [[nodiscard]] std::uint64_t next_u64();

  /// Uniform in [0, 1).
  [[nodiscard]] double next_double();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi);

  /// Uniform real in [lo, hi).
  [[nodiscard]] double next_real(double lo, double hi);

  /// Standard normal via Marsaglia polar method.
  [[nodiscard]] double next_normal();

  /// Derive an independent stream (e.g. per-task noise from a global seed).
  [[nodiscard]] static Rng derive(std::uint64_t seed, std::uint64_t stream);

 private:
  std::uint64_t s_[4];
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace mp
