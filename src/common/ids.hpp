// Strongly-typed integer ids for the runtime's entities.
//
// Each id is a distinct type so that a TaskId cannot be passed where a
// WorkerId is expected; all are value types comparable and hashable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace mp {

/// Tagged integer id. Tag is an empty struct used only for type distinction.
template <typename Tag>
class Id {
 public:
  using underlying = std::uint32_t;
  static constexpr underlying kInvalid = std::numeric_limits<underlying>::max();

  constexpr Id() = default;
  constexpr explicit Id(underlying v) : value_(v) {}
  /// Convenience for loop indices.
  constexpr explicit Id(std::size_t v) : value_(static_cast<underlying>(v)) {}

  [[nodiscard]] constexpr underlying value() const { return value_; }
  [[nodiscard]] constexpr std::size_t index() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  [[nodiscard]] static constexpr Id invalid() { return Id{}; }

  friend constexpr bool operator==(Id a, Id b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Id a, Id b) { return a.value_ < b.value_; }

 private:
  underlying value_ = kInvalid;
};

struct TaskTag {};
struct DataTag {};
struct WorkerTag {};
struct MemNodeTag {};
struct CodeletTag {};

using TaskId = Id<TaskTag>;
using DataId = Id<DataTag>;
using WorkerId = Id<WorkerTag>;
using MemNodeId = Id<MemNodeTag>;
using CodeletId = Id<CodeletTag>;

/// Architecture types of processing units (the paper's set A).
enum class ArchType : std::uint8_t { CPU = 0, GPU = 1 };

/// Number of architecture types supported. Kept small and fixed so per-arch
/// tables can live in std::array on hot paths.
inline constexpr std::size_t kNumArchTypes = 2;

[[nodiscard]] constexpr std::size_t arch_index(ArchType a) {
  return static_cast<std::size_t>(a);
}

[[nodiscard]] constexpr const char* arch_name(ArchType a) {
  return a == ArchType::CPU ? "CPU" : "GPU";
}

}  // namespace mp

namespace std {
template <typename Tag>
struct hash<mp::Id<Tag>> {
  size_t operator()(mp::Id<Tag> id) const noexcept {
    return std::hash<typename mp::Id<Tag>::underlying>{}(id.value());
  }
};
}  // namespace std
