#include "common/rng.hpp"

#include <cmath>

#include "common/check.hpp"

namespace mp {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_in(std::uint64_t lo, std::uint64_t hi) {
  MP_CHECK(lo <= hi);
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next_u64();  // full range
  // Rejection-free (slightly biased for huge spans, irrelevant here).
  return lo + next_u64() % span;
}

double Rng::next_real(double lo, double hi) {
  MP_CHECK(lo <= hi);
  return lo + (hi - lo) * next_double();
}

double Rng::next_normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = next_real(-1.0, 1.0);
    v = next_real(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * mul;
  has_spare_normal_ = true;
  return u * mul;
}

Rng Rng::derive(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t sm = seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
  return Rng{splitmix64(sm)};
}

}  // namespace mp
