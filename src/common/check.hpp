// Lightweight invariant checking.
//
// MP_CHECK is always on (cheap, used at API boundaries); MP_ASSERT compiles
// out in NDEBUG builds (used on hot paths). Both print the failed expression
// and location, then abort — scheduling bugs must fail loudly, not corrupt
// a simulation silently.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace mp {

[[noreturn]] inline void check_fail(const char* expr, const char* file, int line,
                                    const char* msg) {
  std::fprintf(stderr, "MP_CHECK failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace mp

#define MP_CHECK(expr)                                              \
  do {                                                              \
    if (!(expr)) ::mp::check_fail(#expr, __FILE__, __LINE__, "");   \
  } while (0)

#define MP_CHECK_MSG(expr, msg)                                       \
  do {                                                                \
    if (!(expr)) ::mp::check_fail(#expr, __FILE__, __LINE__, (msg));  \
  } while (0)

#ifdef NDEBUG
#define MP_ASSERT(expr) ((void)0)
#else
#define MP_ASSERT(expr) MP_CHECK(expr)
#endif
