// Lightweight invariant checking.
//
// MP_CHECK is always on (cheap, used at API boundaries); MP_ASSERT compiles
// out in NDEBUG builds (used on hot paths). Both print the failed expression
// and location, then abort — scheduling bugs must fail loudly, not corrupt
// a simulation silently.
//
// Under MP_VERIFY, failures inside a managed thread of an active
// interleaving exploration are rerouted to mp::verify::check_fail_hook,
// which records the violation together with the full schedule trace and
// unwinds the exploration instead of killing the process — every MP_CHECK
// in the codebase doubles as an oracle for the explorer.
#pragma once

#include <cstdio>
#include <cstdlib>

#ifdef MP_VERIFY
namespace mp::verify {
[[noreturn]] void check_fail_hook(const char* expr, const char* file, int line,
                                  const char* msg);
}  // namespace mp::verify
#endif

namespace mp {

[[noreturn]] inline void check_fail(const char* expr, const char* file, int line,
                                    const char* msg) {
#ifdef MP_VERIFY
  ::mp::verify::check_fail_hook(expr, file, line, msg);
#else
  std::fprintf(stderr, "MP_CHECK failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg != nullptr ? msg : "");
  std::abort();
#endif
}

}  // namespace mp

#define MP_CHECK(expr)                                              \
  do {                                                              \
    if (!(expr)) ::mp::check_fail(#expr, __FILE__, __LINE__, "");   \
  } while (0)

#define MP_CHECK_MSG(expr, msg)                                       \
  do {                                                                \
    if (!(expr)) ::mp::check_fail(#expr, __FILE__, __LINE__, (msg));  \
  } while (0)

#ifdef NDEBUG
// sizeof keeps the expression type-checked (and its operands "used", so an
// assert-only local does not trip -Werror=unused-variable) without
// evaluating it at runtime.
#define MP_ASSERT(expr) ((void)sizeof(expr))
#else
#define MP_ASSERT(expr) MP_CHECK(expr)
#endif
