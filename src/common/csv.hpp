// Tiny CSV / table output helpers used by benches and trace export.
#pragma once

#include <string>
#include <vector>

namespace mp {

/// Accumulates rows of string cells and renders either CSV or an aligned
/// ASCII table (the format the figure benches print).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::string to_csv() const;
  [[nodiscard]] std::string to_ascii() const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

  /// Write CSV to a file; returns false on I/O failure.
  [[nodiscard]] bool write_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helpers for table cells.
[[nodiscard]] std::string fmt_double(double v, int precision = 3);
[[nodiscard]] std::string fmt_percent(double fraction, int precision = 1);

}  // namespace mp
