#include "common/csv.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace mp {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  MP_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  MP_CHECK_MSG(cells.size() == header_.size(), "row width must match header");
  rows_.push_back(std::move(cells));
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < header_.size(); ++i)
    os << (i ? "," : "") << csv_escape(header_[i]);
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i)
      os << (i ? "," : "") << csv_escape(row[i]);
    os << '\n';
  }
  return os.str();
}

std::string Table::to_ascii() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) width[i] = header_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());

  auto emit_row = [&](std::ostringstream& os, const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << ' ' << row[i] << std::string(width[i] - row[i].size(), ' ') << " |";
    }
    os << '\n';
  };

  std::ostringstream os;
  emit_row(os, header_);
  os << '|';
  for (std::size_t i = 0; i < header_.size(); ++i)
    os << std::string(width[i] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) emit_row(os, row);
  return os.str();
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_csv();
  return static_cast<bool>(f);
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, 100.0 * fraction);
  return buf;
}

}  // namespace mp
