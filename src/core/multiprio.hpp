// MultiPrio — the paper's scheduler (Sections III–V).
//
// One binary max-heap of ready tasks per memory node; tasks are duplicated
// into every heap whose processing units can execute them, keyed by
// (gain, NOD criticality). POP selects the most data-local task among the
// best `n` candidates within `ε` of the top score, then applies the
// pop_condition: a non-best worker only takes the task when the best
// architecture's accumulated remaining work exceeds the task's estimated
// time on this worker; otherwise the task is evicted from this node's heap
// (it always survives in the best architecture's heaps).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/gain.hpp"
#include "core/locality.hpp"
#include "core/nod.hpp"
#include "core/scored_heap.hpp"
#include "runtime/scheduler.hpp"

namespace mp {

class Counter;
class Gauge;

struct MultiPrioConfig {
  /// Locality window size (paper: n = 10).
  std::size_t locality_n = 10;
  /// Score-difference threshold for the locality window (paper: ε = 0.8).
  double epsilon = 0.8;
  /// Maximum POP attempts before giving up (Algorithm 2's MAX_TRIES).
  std::size_t max_tries = 8;
  /// Ablation switches (all ON reproduces the paper).
  bool use_eviction = true;   // Section V-D
  bool use_locality = true;   // Section V-C
  bool use_nod = true;        // Section V-B tiebreaker
  /// Divide best_remaining_work by the best arch's worker count in the
  /// pop_condition, i.e. compare the task's time on this worker against the
  /// expected *per-worker* backlog of the best architecture. The literal
  /// raw-sum reading of Algorithm 2 lets every slow worker divert work as
  /// soon as the global backlog exceeds one task (a 30-CPU node then starves
  /// its GPUs — see bench_ablation_multiprio); per-worker normalization is
  /// the behaviour consistent with the paper's results and is the default.
  bool normalize_brw_by_workers = true;
};

class MultiPrioScheduler final : public Scheduler {
 public:
  explicit MultiPrioScheduler(SchedContext ctx, MultiPrioConfig config = {});

  void push(TaskId t) override;                        // Algorithm 1
  [[nodiscard]] std::optional<TaskId> pop(WorkerId w) override;  // Algorithm 2

  /// Retry of a popped-but-unfinished task: clears the taken flag, then
  /// re-runs Algorithm 1 — the accounting must match a fresh push exactly.
  void repush(TaskId t) override;

  /// Fail-stop loss handling. When the dead worker was the last of its
  /// memory node, the node's heap is dropped and the entire pending set is
  /// re-pushed against the surviving platform: push-time best-arch verdicts,
  /// gain/NOD scores and best_remaining_work credits all have to be
  /// re-judged, or a task whose best architecture died could be evicted out
  /// of every heap and lost. Tasks with no live capable worker are returned.
  [[nodiscard]] std::vector<TaskId> notify_worker_removed(WorkerId w) override;

  [[nodiscard]] std::string name() const override { return "multiprio"; }
  [[nodiscard]] std::size_t pending_count() const override { return pending_; }
  [[nodiscard]] bool has_work_hint(WorkerId w) const override {
    return !heaps_[ctx_.platform->worker(w).node.index()].empty();
  }

  // --- introspection (tests / ablation benches) ---------------------------

  [[nodiscard]] std::size_t ready_tasks_count(MemNodeId m) const;
  [[nodiscard]] double best_remaining_work(MemNodeId m) const;
  [[nodiscard]] std::size_t eviction_total() const { return evictions_; }
  [[nodiscard]] std::size_t pop_condition_rejects() const { return pop_rejects_; }
  /// Is `t` currently pushed and not yet popped (invariant checks)?
  [[nodiscard]] bool is_pending(TaskId t) const { return pushed_.count(t) != 0; }
  [[nodiscard]] const GainTracker& gain_tracker() const { return gain_; }
  [[nodiscard]] const ScoredHeap& heap(MemNodeId m) const;

  /// Full structural-consistency audit of the scheduler state — the oracle
  /// the interleaving explorer evaluates at every quiescent point, and a
  /// post-run check for tests. Verifies, in O(pending × nodes):
  ///  - pending_count() == number of PushRecords, and no pending task is
  ///    flagged taken;
  ///  - every pending task sits in ≥ 1 heap, exactly the heaps its record
  ///    names, and its best_remaining_work credits were granted on a subset
  ///    of those nodes (the best heap never evicts);
  ///  - per-node ready counts equal the number of pending tasks holding an
  ///    entry there, and each heap's validate() passes;
  ///  - every heap entry is either pending there or a lazily-dropped stale
  ///    duplicate of a taken task;
  ///  - 0 ≤ best_remaining_work(m) ≤ Σ pending PUSH credits on m (debits
  ///    may legally over-subtract — diversions debit the taker's time and
  ///    the ledger clamps at zero — but never under-subtract).
  /// Returns false and describes the first failure in `*why` (if non-null).
  [[nodiscard]] bool check_invariants(std::string* why = nullptr) const;

 private:
  /// pop_condition (Section V-D): true when `a` is the best arch for `t`
  /// (as judged at PUSH), or the best arch's workers are busy enough that
  /// diverting `t` helps. `brw_out`, when non-null, receives the
  /// (normalized) best-arch remaining work the verdict compared against
  /// (0 on the best-arch fast path) — the POP_REJECT event payload.
  [[nodiscard]] bool pop_condition(TaskId t, ArchType a, double* brw_out = nullptr) const;

  /// A selected candidate with the decision payload the observer reports.
  struct Candidate {
    HeapEntry entry;
    double locality = 0.0;    ///< LS_SDH²(m, task); 0 when locality is off
    bool window_pick = false; ///< the locality window overrode the heap top
  };

  /// Locality selection (Section V-C): most local candidate among the top-n
  /// entries within ε of the best score; skips already-taken duplicates
  /// (they are removed lazily by the caller beforehand).
  [[nodiscard]] std::optional<Candidate> select_candidate(MemNodeId m);

  /// Drops entries whose task was already taken from another heap.
  void drop_taken(ScoredHeap& heap);

  void take(TaskId t, MemNodeId from_node, ArchType taker);

  MultiPrioConfig cfg_;
  std::vector<ScoredHeap> heaps_;                 // one per memory node
  std::vector<std::size_t> ready_count_;          // per node
  std::vector<double> brw_;                       // best_remaining_work per node
  std::vector<bool> taken_;                       // per task, grown on demand
  /// Push-time state per pending task: the arch judged fastest at PUSH (the
  /// pop_condition must use the same verdict — live δ estimates can drift
  /// during real execution, and a drifting "best" could evict a task from
  /// every heap and lose it) and the brw contributions to reverse at POP.
  struct PushRecord {
    ArchType best_arch = ArchType::CPU;
    std::vector<std::pair<MemNodeId, double>> brw_added;
    /// Nodes whose heaps currently hold this task: filled at PUSH, shrunk by
    /// evictions. take() uses it to retire the per-node ready counts of the
    /// lazy duplicates it leaves behind, so ready_tasks_count() always means
    /// "pending tasks with an entry on this node" (stale entries excluded).
    std::vector<MemNodeId> nodes;
  };
  std::unordered_map<TaskId, PushRecord> pushed_;
  GainTracker gain_;
  NodNormalizer nod_;
  std::size_t pending_ = 0;
  std::size_t evictions_ = 0;
  std::size_t pop_rejects_ = 0;

  // --- observability (all null without an attached observer/metrics) -------
  [[nodiscard]] double obs_time() const { return ctx_.now ? ctx_.now() : 0.0; }
  void sample_heap_depth(MemNodeId m, double time);
  Counter* m_stale_discards_ = nullptr;   ///< lazily dropped taken duplicates
  Counter* m_window_scans_ = nullptr;     ///< pops that ran the locality window
  Counter* m_window_hits_ = nullptr;      ///< ... where the window changed the pick
  std::vector<Gauge*> m_heap_depth_;      ///< per-node heap depth over time
};

}  // namespace mp
