// MultiPrio — the paper's scheduler (Sections III–V).
//
// One binary max-heap of ready tasks per memory node; tasks are duplicated
// into every heap whose processing units can execute them, keyed by
// (gain, NOD criticality). POP selects the most data-local task among the
// best `n` candidates within `ε` of the top score, then applies the
// pop_condition: a non-best worker only takes the task when the best
// architecture's accumulated remaining work exceeds the task's estimated
// time on this worker; otherwise the task is evicted from this node's heap
// (it always survives in the best architecture's heaps).
//
// Sharded locking (the default, cfg.sharded): the per-node heaps that the
// paper introduces for locality double as *lock shards*. Each memory node
// owns one mp::Mutex + mp::CondVar; a POP on node m touches only m's lock,
// a PUSH takes the (few) target-node locks in ascending-node order, and the
// cross-shard state — the per-task taken flag, the per-record live-node
// mask, ready counters and the best_remaining_work ledger — lives in
// RelaxedAtomics whose single commit point is the Pending→Taken CAS. With
// cfg.sharded = false every lock helper is a no-op and the caller must
// serialize all calls (the historical coarse contract); both modes run the
// byte-identical decision code.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/gain.hpp"
#include "core/locality.hpp"
#include "core/nod.hpp"
#include "core/scored_heap.hpp"
#include "runtime/scheduler.hpp"
#include "verify/sync.hpp"

namespace mp {

class Counter;
class Gauge;
class Histogram;

struct MultiPrioConfig {
  /// Locality window size (paper: n = 10).
  std::size_t locality_n = 10;
  /// Score-difference threshold for the locality window (paper: ε = 0.8).
  double epsilon = 0.8;
  /// Maximum POP attempts before giving up (Algorithm 2's MAX_TRIES).
  std::size_t max_tries = 8;
  /// Ablation switches (all ON reproduces the paper).
  bool use_eviction = true;   // Section V-D
  bool use_locality = true;   // Section V-C
  bool use_nod = true;        // Section V-B tiebreaker
  /// Divide best_remaining_work by the best arch's worker count in the
  /// pop_condition, i.e. compare the task's time on this worker against the
  /// expected *per-worker* backlog of the best architecture. The literal
  /// raw-sum reading of Algorithm 2 lets every slow worker divert work as
  /// soon as the global backlog exceeds one task (a 30-CPU node then starves
  /// its GPUs — see bench_ablation_multiprio); per-worker normalization is
  /// the behaviour consistent with the paper's results and is the default.
  bool normalize_brw_by_workers = true;
  /// Per-memory-node locking (SchedConcurrency::Internal). Off = the
  /// historical externally-serialized contract ("multiprio-coarse").
  bool sharded = true;
};

class MultiPrioScheduler final : public Scheduler {
 public:
  explicit MultiPrioScheduler(SchedContext ctx, MultiPrioConfig config = {});

  void push(TaskId t) override;                        // Algorithm 1
  void push_batch(const std::vector<TaskId>& ts) override;
  [[nodiscard]] std::optional<TaskId> pop(WorkerId w) override;  // Algorithm 2

  /// Retry of a popped-but-unfinished task: clears the taken flag, then
  /// re-runs Algorithm 1 — the accounting must match a fresh push exactly.
  void repush(TaskId t) override;

  /// Fail-stop loss handling. When the dead worker was the last of its
  /// memory node, the node's heap is dropped and the entire pending set is
  /// re-pushed against the surviving platform: push-time best-arch verdicts,
  /// gain/NOD scores and best_remaining_work credits all have to be
  /// re-judged, or a task whose best architecture died could be evicted out
  /// of every heap and lost. Tasks with no live capable worker are returned.
  [[nodiscard]] std::vector<TaskId> notify_worker_removed(WorkerId w) override;

  /// Tasks surrendered because a fail-stop raced the push: by the time the
  /// shard locks were taken no live worker could execute them (the engine's
  /// pre-push liveness screen ran before the death). They never became
  /// pending; the engine abandons them.
  [[nodiscard]] std::vector<TaskId> drain_unplaced() override;

  /// Lock-free per the Internal contract: maintain the per-node count of
  /// workers inside a kernel, the signal notify_one_waiter() uses to judge
  /// whether an awake worker can absorb new work promptly.
  void on_task_start(TaskId t, WorkerId w) override;
  void on_task_end(TaskId t, WorkerId w) override;

  [[nodiscard]] SchedConcurrency concurrency() const override {
    return cfg_.sharded ? SchedConcurrency::Internal
                        : SchedConcurrency::ExternalLock;
  }
  [[nodiscard]] std::uint64_t work_epoch(WorkerId w) const override;
  void wait_for_work(WorkerId w, std::uint64_t seen, double timeout_s,
                     const std::function<bool()>& cancel) override;
  void interrupt_waiters() override;

  [[nodiscard]] std::string name() const override {
    return cfg_.sharded ? "multiprio" : "multiprio-coarse";
  }
  [[nodiscard]] std::size_t pending_count() const override {
    return pending_.load();
  }
  /// NOT thread-safe against sharded pushes/pops (reads the heap without the
  /// shard lock); meant for single-threaded engines (SimEngine).
  [[nodiscard]] bool has_work_hint(WorkerId w) const override {
    return !shards_[ctx_.platform->worker(w).node.index()].heap.empty();
  }

  // --- introspection (tests / ablation benches) ---------------------------

  [[nodiscard]] std::size_t ready_tasks_count(MemNodeId m) const;
  [[nodiscard]] double best_remaining_work(MemNodeId m) const;
  [[nodiscard]] std::size_t eviction_total() const { return evictions_.load(); }
  [[nodiscard]] std::size_t pop_condition_rejects() const {
    return pop_rejects_.load();
  }
  /// Is `t` currently pushed and not yet popped (invariant checks)?
  [[nodiscard]] bool is_pending(TaskId t) const {
    return t.index() < states_.size() &&
           states_[t.index()].phase.load() == kPending;
  }
  [[nodiscard]] const GainTracker& gain_tracker() const { return gain_; }
  [[nodiscard]] const ScoredHeap& heap(MemNodeId m) const;

  /// Full structural-consistency audit of the scheduler state — the oracle
  /// the interleaving explorer evaluates at every quiescent point, and a
  /// post-run check for tests. Takes every shard lock in ascending order
  /// (no-op when coarse or probing), then verifies in O(pending × nodes):
  ///  - pending_count() == number of Pending tasks, none of them Taken;
  ///  - every pending task sits in ≥ 1 heap, exactly the heaps its record's
  ///    live-node mask names, and its best_remaining_work credits were
  ///    granted on live nodes only (the best heap never evicts);
  ///  - per-node ready counts equal the number of pending tasks holding an
  ///    entry there, and each heap's validate() passes;
  ///  - every heap entry is either pending there or a lazily-dropped stale
  ///    duplicate of a taken task;
  ///  - 0 ≤ best_remaining_work(m) ≤ Σ pending PUSH credits on m (debits
  ///    may legally over-subtract — diversions debit the taker's time and
  ///    the ledger clamps at zero — but never under-subtract).
  /// Returns false and describes the first failure in `*why` (if non-null).
  [[nodiscard]] bool check_invariants(std::string* why = nullptr) const;

#ifdef MP_VERIFY
  /// Quiescence gate for the executor's invariant probes: true when no
  /// managed thread is suspended inside a shard critical section, i.e. the
  /// sharded state is externally consistent and safe to audit.
  [[nodiscard]] bool verify_quiescent() const;
  /// The shard mutexes, so the executor can register a probe on each (their
  /// releases are exactly the moments sharded state becomes visible).
  [[nodiscard]] std::vector<const Mutex*> verify_shard_mutexes() const;
#endif

 private:
  // --- per-task lifecycle ---------------------------------------------------
  // phase is the single atomic commit point: a successful Pending→Taken CAS
  // *is* the take. The live-node mask retires heap-slot ownership bit by bit
  // (eviction clears one bit, take grabs the remainder wholesale); whoever
  // clears a bit owns that node's ready-count decrement, so the counts are
  // maintained exactly once even when evictors race a taker.
  static constexpr std::uint8_t kIdle = 0;     ///< never pushed / rebuilt away
  static constexpr std::uint8_t kPending = 1;  ///< pushed, not yet taken
  static constexpr std::uint8_t kTaken = 2;    ///< popped (or retired)

  /// Push-time state per task: the arch judged fastest at PUSH and the δ
  /// estimates cached then (the pop_condition must use the same verdicts —
  /// live δ estimates can drift during real execution, and a drifting
  /// "best" could evict a task from every heap and lose it), plus the brw
  /// contributions to reverse at POP. `nodes` / `brw_added` are immutable
  /// between pushes; `live_mask` (bit = node index) is the mutable view of
  /// which heaps still hold the task as *ready* work.
  struct PushRecord {
    ArchType best_arch = ArchType::CPU;
    std::array<double, kNumArchTypes> delta{};
    std::vector<std::pair<MemNodeId, double>> brw_added;
    std::vector<MemNodeId> nodes;  // ascending node order
  };
  struct TaskState {
    RelaxedAtomic<std::uint8_t> phase{kIdle};
    RelaxedAtomic<std::uint64_t> live_mask{0};
    PushRecord rec;
  };

  /// A memory node's lock shard: the heap it owns, its condvar for parked
  /// workers, and the push counter the wait protocol is keyed on.
  struct Shard {
    mutable Mutex order_mu;  // shard-lock(asc) — acquire only via the tagged helpers below
    CondVar cv;
    ScoredHeap heap;
    RelaxedAtomic<std::uint64_t> epoch{0};
    /// Workers parked on `cv` right now. Written under order_mu; a pusher
    /// reads it after bumping the epoch under the same lock, so a zero read
    /// proves no waiter predates the new work and the futex can be skipped
    /// (an active worker pops the task on its next loop instead).
    RelaxedAtomic<std::uint32_t> waiters{0};
    /// Workers of this node currently inside a kernel (on_task_start/end
    /// transitions, guarded by the per-worker in-kernel flag). A worker that
    /// is neither parked nor executing is scanning and absorbs new work
    /// without a futex; when none exists, notify_one_waiter wakes a waiter.
    RelaxedAtomic<std::uint32_t> executing{0};
  };

  // The ONLY ways scheduler code may acquire shard locks (enforced by
  // tools/lint.sh rule 3): one shard, or a set of shards in ascending node
  // order. Both are no-ops in coarse mode.
  void lock_shard(std::size_t mi) const;
  void unlock_shard(std::size_t mi) const;
  /// RAII over an ascending set of shard indices (sorted by the ctor).
  class AscendingShardLocks {
   public:
    AscendingShardLocks(const MultiPrioScheduler& s, std::vector<std::size_t> shards);
    ~AscendingShardLocks();
    AscendingShardLocks(const AscendingShardLocks&) = delete;
    AscendingShardLocks& operator=(const AscendingShardLocks&) = delete;

   private:
    const MultiPrioScheduler& s_;
    std::vector<std::size_t> shards_;
  };
  [[nodiscard]] std::vector<std::size_t> all_shard_indices() const;

  /// pop_condition (Section V-D): true when `a` is the best arch for `t`
  /// (as judged at PUSH), or the best arch's workers are busy enough that
  /// diverting `t` helps. `brw_out`, when non-null, receives the
  /// (normalized) best-arch remaining work the verdict compared against
  /// (0 on the best-arch fast path) — the POP_REJECT event payload.
  [[nodiscard]] bool pop_condition(TaskId t, ArchType a, double* brw_out = nullptr) const;

  /// A selected candidate with the decision payload the observer reports.
  struct Candidate {
    HeapEntry entry;
    double locality = 0.0;    ///< LS_SDH²(m, task); 0 when locality is off
    bool window_pick = false; ///< the locality window overrode the heap top
  };

  /// Locality selection (Section V-C): most local candidate among the top-n
  /// entries within ε of the best score; skips already-taken duplicates
  /// (they are removed lazily by the caller beforehand).
  [[nodiscard]] std::optional<Candidate> select_candidate(MemNodeId m);

  /// Drops entries whose task was already taken from another heap.
  void drop_taken(ScoredHeap& heap);

  /// Commit a pop: Pending→Taken CAS, retire ready counts and brw credits,
  /// remove the entry from `from_node`'s heap. Returns false when a racing
  /// taker won the CAS (sharded mode only) — the caller reselects.
  [[nodiscard]] bool try_take(TaskId t, MemNodeId from_node, ArchType taker);

  /// Algorithm 1 for one task; requires every target shard lock held (the
  /// public entry points take them). `t_now` is the precaptured event
  /// timestamp (one clock read per push/pop, outside any shard lock).
  /// Returns false when no live capable node remained by the time the locks
  /// were held (a racing fail-stop): the task goes to `unplaced_` instead of
  /// any heap and the caller must not advertise it to waiters.
  [[nodiscard]] bool push_locked(TaskId t, double t_now);
  /// Target shards of one task = live nodes whose arch can execute it.
  [[nodiscard]] std::vector<std::size_t> target_shards(TaskId t) const;

  [[nodiscard]] TaskState& state_of(TaskId t);
  /// Grows the per-task state table for STF graphs that keep submitting
  /// after construction (under all shard locks — reallocation vs pop reads).
  void ensure_task_capacity(std::size_t min_tasks);
  [[nodiscard]] static std::uint64_t node_bit(MemNodeId m) {
    return std::uint64_t{1} << m.index();
  }

  MultiPrioConfig cfg_;
  std::unique_ptr<Shard[]> shards_;               // one per memory node
  std::size_t num_shards_ = 0;
  std::vector<RelaxedAtomic<std::int64_t>> ready_count_;  // per node
  std::vector<RelaxedAtomic<double>> brw_;        // best_remaining_work per node
  std::vector<TaskState> states_;                 // per task, grown on demand
  /// Push-race casualties awaiting drain_unplaced(); push-side calls are
  /// serialized by the engine, so no lock of its own.
  std::vector<TaskId> unplaced_;
  /// Per-worker in-kernel flag: owned by the worker's own thread (start/end
  /// run on it), it makes the Shard::executing transitions exactly-once even
  /// when a failed attempt skips on_task_end before the next on_task_start.
  std::vector<RelaxedAtomic<std::uint8_t>> in_kernel_;
  GainTracker gain_;
  NodNormalizer nod_;
  RelaxedAtomic<std::size_t> pending_{0};
  RelaxedAtomic<std::size_t> evictions_{0};
  RelaxedAtomic<std::size_t> pop_rejects_{0};

  // --- observability (all null without an attached observer/metrics) -------
  [[nodiscard]] double obs_time() const { return ctx_.now ? ctx_.now() : 0.0; }
  void sample_heap_depth(MemNodeId m, double time);
  void notify_shard(std::size_t mi, std::size_t inserted);
  /// Single-wake notify for one pushed task: first eligible shard with a
  /// parked worker, ascending order. No-op in coarse mode.
  void notify_one_waiter(const std::vector<std::size_t>& eligible);
  Counter* m_stale_discards_ = nullptr;   ///< lazily dropped taken duplicates
  Counter* m_window_scans_ = nullptr;     ///< pops that ran the locality window
  Counter* m_window_hits_ = nullptr;      ///< ... where the window changed the pick
  Counter* m_wakeups_ = nullptr;          ///< targeted condvar notifies sent
  Histogram* m_lock_wait_ = nullptr;      ///< contended shard-lock wait time
  std::vector<Gauge*> m_heap_depth_;      ///< per-node heap depth over time
};

}  // namespace mp
