// Data-locality heuristic LS_SDH² (paper Section V-C, Eq. 3, after [20]).
//
//   LS_SDH²(m,t) = Σ_{d ∈ D^R_{t,m}} size(d)  +  Σ_{d ∈ D^W_{t,m}} size(d)²
//
// Sums the bytes of the task's data already valid on memory node m, counting
// written data quadratically (keeping a write local avoids both a fetch and
// a future invalidation/writeback).
#pragma once

#include "common/ids.hpp"
#include "runtime/scheduler.hpp"

namespace mp {

[[nodiscard]] double ls_sdh2(const SchedContext& ctx, MemNodeId m, TaskId t);

}  // namespace mp
