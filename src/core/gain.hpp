// The gain heuristic (paper Section V-A, Eq. 1).
//
//              ⎧ 1                                       |A| = 1
//  gain(t,a) = ⎨ ((δ(t,a₂nd) − δ(t,a)) + hd(a)) / 2·hd(a)   a fastest
//              ⎩ ((δ(t,a₁st) − δ(t,a)) + hd(a)) / 2·hd(a)   otherwise
//
// hd(a) is the highest execution-time difference recorded so far on arch a;
// it is updated with the current task's |difference| before use, which
// reproduces the paper's Table II example exactly (hd = 19 ms there).
#pragma once

#include <array>

#include "common/ids.hpp"
#include "runtime/scheduler.hpp"

namespace mp {

class GainTracker {
 public:
  /// Gain score of `t` on arch `a`, in [0, 1]. Updates hd(a) as a side
  /// effect ("recorded so far"). `a` must be enabled for `t`.
  [[nodiscard]] double gain(const SchedContext& ctx, TaskId t, ArchType a);

  /// Running maximum execution-time difference for `a` (0 until first task).
  [[nodiscard]] double hd(ArchType a) const { return hd_[arch_index(a)]; }

  void reset() { hd_.fill(0.0); }

 private:
  std::array<double, kNumArchTypes> hd_{};
};

}  // namespace mp
