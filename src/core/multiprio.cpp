#include "core/multiprio.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"
#include "obs/observer.hpp"
#include "verify/mutation.hpp"
#include "verify/sync.hpp"

namespace mp {

MultiPrioScheduler::MultiPrioScheduler(SchedContext ctx, MultiPrioConfig config)
    : Scheduler(std::move(ctx)), cfg_(config) {
  const std::size_t n_nodes = ctx_.platform->num_nodes();
  heaps_.resize(n_nodes);
  ready_count_.assign(n_nodes, 0);
  brw_.assign(n_nodes, 0.0);
  // Resolve instrument names once; the hot paths then pay one null test.
  if (MetricsRegistry* mx = ctx_.observer ? ctx_.observer->metrics() : nullptr) {
    m_stale_discards_ = &mx->counter("multiprio.stale_discards");
    m_window_scans_ = &mx->counter("multiprio.locality_window_scans");
    m_window_hits_ = &mx->counter("multiprio.locality_window_hits");
    m_heap_depth_.resize(n_nodes);
    for (std::size_t mi = 0; mi < n_nodes; ++mi)
      m_heap_depth_[mi] = &mx->gauge("multiprio.heap_depth.node" + std::to_string(mi));
  }
}

void MultiPrioScheduler::sample_heap_depth(MemNodeId m, double time) {
  if (m_heap_depth_.empty()) return;
  m_heap_depth_[m.index()]->sample(time, static_cast<double>(heaps_[m.index()].size()));
}

void MultiPrioScheduler::push(TaskId t) {
  verify_point("multiprio.push", this);
  if (taken_.size() <= t.index()) taken_.resize(t.index() + 1, false);
  MP_ASSERT(!taken_[t.index()]);

  const ArchType best = best_arch_for(ctx_, t);
  bool inserted_somewhere = false;
  PushRecord& rec = pushed_[t];
  rec.best_arch = best;
  auto& added = rec.brw_added;

  // Algorithm 1: insert into the heap of every memory node whose (live)
  // workers can execute the task, with the (gain, criticality) scores.
  for (std::size_t mi = 0; mi < ctx_.platform->num_nodes(); ++mi) {
    const MemNodeId m{mi};
    if (live_workers_of_node(ctx_, m) == 0) continue;
    const ArchType a = ctx_.platform->node_arch(m);
    if (!ctx_.graph->can_exec(t, a)) continue;
    MP_ASSERT(live_worker_count(ctx_, a) > 0);

    const double gain = gain_.gain(ctx_, t, a);
    const double prio = cfg_.use_nod ? nod_.normalized(ctx_, t, m) : 0.0;
    heaps_[mi].insert(t, gain, prio);
    ++ready_count_[mi];
    rec.nodes.push_back(m);
    inserted_somewhere = true;

    if (a == best) {  // normalized_speedup(t,a) == 1
      const double d = ctx_.perf->estimate(t, a);
      brw_[mi] += d;
      added.emplace_back(m, d);
    }

    if (ctx_.observer != nullptr) {
      SchedEvent e;
      e.time = obs_time();
      e.kind = SchedEventKind::Push;
      e.task = t;
      e.node = m;
      e.gain = gain;
      e.prio = prio;
      e.best_remaining_work = brw_[mi];
      e.heap_depth = static_cast<std::uint32_t>(heaps_[mi].size());
      ctx_.observer->record(e);
      sample_heap_depth(m, e.time);
    }
  }
  MP_CHECK_MSG(inserted_somewhere, "ready task has no executable memory node");
  ++pending_;
}

bool MultiPrioScheduler::pop_condition(TaskId t, ArchType a, double* brw_out) const {
  const auto it = pushed_.find(t);
  // Always-on: under the skipped-lock mutation a racing worker may have
  // taken `t` between candidate selection and this judgement.
  MP_CHECK_MSG(it != pushed_.end(), "pop_condition on a task with no push record");
  const ArchType best = it->second.best_arch;
  if (a == best) return true;
  double brw_best = 0.0;
  for (MemNodeId m : ctx_.platform->nodes_of_arch(best)) brw_best += brw_[m.index()];
  if (cfg_.normalize_brw_by_workers) {
    brw_best /= static_cast<double>(std::max<std::size_t>(1, live_worker_count(ctx_, best)));
  }
  if (brw_out != nullptr) *brw_out = brw_best;
  // The best workers hold more queued best-affinity work than it would cost
  // this slower worker to run the task: diverting it keeps the DAG moving.
  return brw_best > ctx_.perf->estimate(t, a);
}

void MultiPrioScheduler::drop_taken(ScoredHeap& heap) {
  while (auto top = heap.top()) {
    if (!taken_[top->task.index()]) return;
    heap.pop_top();
    if (m_stale_discards_ != nullptr) m_stale_discards_->inc();
  }
}

std::optional<MultiPrioScheduler::Candidate> MultiPrioScheduler::select_candidate(
    MemNodeId m) {
  ScoredHeap& heap = heaps_[m.index()];
  drop_taken(heap);
  if (heap.empty()) return std::nullopt;
  const HeapEntry top = *heap.top();
  if (!cfg_.use_locality) return Candidate{top, 0.0, false};

  // Most-local task among the first n entries whose gain score is within ε
  // of the top task's score. Taken duplicates inside the window are skipped
  // (the top itself is known live after drop_taken).
  HeapEntry best_entry = top;
  double best_local = -1.0;
  std::size_t seen = 0;
  heap.for_top([&](const HeapEntry& e) {
    if (e.gain < top.gain - cfg_.epsilon) return false;
    if (seen >= cfg_.locality_n) return false;
    ++seen;
    if (taken_[e.task.index()]) return true;
    const double local = ls_sdh2(ctx_, m, e.task);
    if (local > best_local) {
      best_local = local;
      best_entry = e;
    }
    return true;
  });
  return Candidate{best_entry, std::max(0.0, best_local),
                   best_entry.task != top.task};
}

void MultiPrioScheduler::take(TaskId t, MemNodeId from_node, ArchType taker) {
  verify_point("multiprio.take", this);
  taken_[t.index()] = true;
  // Always-on (not MP_ASSERT): under the skipped-lock mutation a racing
  // worker can have taken `t` while this one sat at the yield point above;
  // proceeding on the end iterator would be UB before any probe could fire.
  auto it = pushed_.find(t);
  MP_CHECK_MSG(it != pushed_.end(), "take of a task with no push record");
  // The entry on from_node leaves now; duplicates on the record's other
  // nodes stay in their heaps as lazy stale entries (drop_taken sweeps
  // them), but they stop being *ready* work right here — retire the whole
  // record's ready counts in one go.
  for (MemNodeId m : it->second.nodes) {
    MP_ASSERT(ready_count_[m.index()] > 0);
    --ready_count_[m.index()];
  }
  // Algorithm 2 debits best_remaining_work by δ(t, w_a) — the *taking*
  // worker's time. For a best-arch pop this reverses the PUSH credit; for a
  // diversion it debits more, throttling cascades of slow-worker steals.
  // Seeded mutation SkipBrwDecrement leaves the ledger uncorrected — the
  // explorer's brw upper-bound invariant must flag it (constant-false
  // outside MP_VERIFY builds).
  const bool diverted = taker != it->second.best_arch;
  const double debit = diverted ? ctx_.perf->estimate(t, taker) : 0.0;
  if (!verify::mutation_active(verify::Mutation::SkipBrwDecrement)) {
    for (const auto& [m, credited] : it->second.brw_added) {
      brw_[m.index()] -= diverted ? std::max(debit, credited) : credited;
      if (brw_[m.index()] < 0.0) brw_[m.index()] = 0.0;
    }
  }
  pushed_.erase(it);
  MP_ASSERT(pending_ > 0);
  --pending_;
  // Last: ScoredHeap::remove has a yield point, so no iterator or reference
  // into pushed_/heaps_ may be live across it (the mutated runs interleave
  // here). A racing taker having swept the stale entry trips remove's own
  // always-on presence check — which is the oracle doing its job.
  heaps_[from_node.index()].remove(t);
}

std::optional<TaskId> MultiPrioScheduler::pop(WorkerId w) {
  verify_point("multiprio.pop", this);
  const Worker& worker = ctx_.platform->worker(w);
  const MemNodeId m = worker.node;
  const ArchType a = worker.arch;

  for (std::size_t tries = 0; tries <= cfg_.max_tries; ++tries) {
    const std::optional<Candidate> cand = select_candidate(m);
    if (!cand) return std::nullopt;
    const TaskId t = cand->entry.task;
    verify_point("multiprio.pop.candidate", this);
    double brw_judged = 0.0;
    if (!cfg_.use_eviction || pop_condition(t, a, &brw_judged)) {
      take(t, m, a);
      if (ctx_.observer != nullptr) {
        if (cfg_.use_locality && m_window_scans_ != nullptr) {
          m_window_scans_->inc();
          if (cand->window_pick) m_window_hits_->inc();
        }
        SchedEvent e;
        e.time = obs_time();
        e.kind = SchedEventKind::Pop;
        e.task = t;
        e.worker = w;
        e.node = m;
        e.gain = cand->entry.gain;
        e.prio = cand->entry.prio;
        e.locality = cand->locality;
        e.best_remaining_work = brw_[m.index()];
        e.heap_depth = static_cast<std::uint32_t>(heaps_[m.index()].size());
        e.attempt = static_cast<std::uint32_t>(tries);
        ctx_.observer->record(e);
        sample_heap_depth(m, e.time);
      }
      return t;
    }
    // Eviction mechanism: remove the task from this node's heap only; its
    // duplicates in the best architecture's heaps keep it schedulable (the
    // pop_condition is always true there, so the best heap never evicts).
    auto rec_it = pushed_.find(t);
    MP_CHECK_MSG(rec_it != pushed_.end(), "evicting a task with no push record");
    MP_ASSERT(a != rec_it->second.best_arch);
    ++pop_rejects_;
    ++evictions_;
    auto& rec_nodes = rec_it->second.nodes;
    const auto node_it = std::find(rec_nodes.begin(), rec_nodes.end(), m);
    MP_CHECK_MSG(node_it != rec_nodes.end(),
                 "evicting an entry this node does not hold");
    rec_nodes.erase(node_it);
    MP_ASSERT(ready_count_[m.index()] > 0);
    --ready_count_[m.index()];
    // Heap removal last: ScoredHeap::remove yields, so rec_it/rec_nodes must
    // not be live across it (see take()).
    heaps_[m.index()].remove(t);
    if (ctx_.observer != nullptr) {
      SchedEvent e;
      e.time = obs_time();
      e.kind = SchedEventKind::PopReject;
      e.task = t;
      e.worker = w;
      e.node = m;
      e.gain = cand->entry.gain;
      e.prio = cand->entry.prio;
      e.locality = cand->locality;
      e.best_remaining_work = brw_judged;  // the backlog the verdict read
      e.heap_depth = static_cast<std::uint32_t>(heaps_[m.index()].size());
      e.attempt = static_cast<std::uint32_t>(tries);
      ctx_.observer->record(e);
      e.kind = SchedEventKind::Evict;  // same payload, heap-removal view
      ctx_.observer->record(e);
      sample_heap_depth(m, e.time);
    }
  }
  return std::nullopt;
}

void MultiPrioScheduler::repush(TaskId t) {
  verify_point("multiprio.repush", this);
  MP_CHECK_MSG(t.index() < taken_.size() && taken_[t.index()],
               "repush of a task that was never popped");
  // take() removed the task only from the heap it was popped from; lazy
  // duplicates may still sit in other heaps. Flush them so push() starts
  // from a clean slate, as on first push. Their ready counts were already
  // retired when the task was taken — stale entries are not ready work.
  for (std::size_t mi = 0; mi < heaps_.size(); ++mi)
    if (heaps_[mi].contains(t)) heaps_[mi].remove(t);
  taken_[t.index()] = false;
  push(t);
}

std::vector<TaskId> MultiPrioScheduler::notify_worker_removed(WorkerId w) {
  verify_point("multiprio.notify_worker_removed", this);
  MP_CHECK_MSG(w.index() < ctx_.platform->num_workers(),
               "worker-removed notification for an unknown worker");
  const MemNodeId dead = ctx_.platform->worker(w).node;
  // Stream loss: the node still has live workers, heaps and ledgers stand
  // (the pop_condition already normalizes by the live worker count).
  if (live_workers_of_node(ctx_, dead) > 0) return {};

  std::vector<TaskId> survivors;
  std::vector<TaskId> orphans;
  for (const auto& [t, rec] : pushed_)
    (task_has_live_worker(ctx_, t) ? survivors : orphans).push_back(t);
  // pushed_ iteration order is unspecified; sort so the rebuilt heaps (and
  // the heap-sequence tiebreaks inside them) are deterministic.
  std::sort(survivors.begin(), survivors.end());
  std::sort(orphans.begin(), orphans.end());

  for (ScoredHeap& h : heaps_) h.clear();
  ready_count_.assign(ready_count_.size(), 0);
  brw_.assign(brw_.size(), 0.0);
  pushed_.clear();
  pending_ = 0;
  // The normalization trackers restart so scores reflect the shrunken
  // platform rather than contrasts measured against dead architectures.
  gain_.reset();
  nod_.reset();
  for (TaskId t : survivors) push(t);
  return orphans;
}

std::size_t MultiPrioScheduler::ready_tasks_count(MemNodeId m) const {
  MP_CHECK(m.index() < ready_count_.size());
  return ready_count_[m.index()];
}

double MultiPrioScheduler::best_remaining_work(MemNodeId m) const {
  MP_CHECK(m.index() < brw_.size());
  return brw_[m.index()];
}

const ScoredHeap& MultiPrioScheduler::heap(MemNodeId m) const {
  MP_CHECK(m.index() < heaps_.size());
  return heaps_[m.index()];
}

bool MultiPrioScheduler::check_invariants(std::string* why) const {
  auto fail = [why](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  const std::size_t n_nodes = heaps_.size();

  if (pending_ != pushed_.size())
    return fail("pending_count " + std::to_string(pending_) + " != " +
                std::to_string(pushed_.size()) + " push records");

  std::vector<std::size_t> expect_ready(n_nodes, 0);
  std::vector<double> credit_sum(n_nodes, 0.0);
  for (const auto& [t, rec] : pushed_) {
    const std::string tag = "task " + std::to_string(t.value());
    if (t.index() < taken_.size() && taken_[t.index()])
      return fail(tag + " is pending but flagged taken");
    if (rec.nodes.empty())
      return fail(tag + " is pending but sits in no heap");
    for (MemNodeId m : rec.nodes) {
      if (m.index() >= n_nodes) return fail(tag + " records an unknown node");
      if (!heaps_[m.index()].contains(t))
        return fail(tag + " records node " + std::to_string(m.value()) +
                    " but that heap lacks it");
      ++expect_ready[m.index()];
    }
    for (const auto& [m, credited] : rec.brw_added) {
      if (std::find(rec.nodes.begin(), rec.nodes.end(), m) == rec.nodes.end())
        return fail(tag + " holds a best-arch credit on node " +
                    std::to_string(m.value()) +
                    " it no longer occupies (best heap must never evict)");
      credit_sum[m.index()] += credited;
    }
  }

  for (std::size_t mi = 0; mi < n_nodes; ++mi) {
    const std::string node = "node " + std::to_string(mi);
    if (!heaps_[mi].validate()) return fail(node + " heap corrupt");
    if (ready_count_[mi] != expect_ready[mi])
      return fail(node + " ready_count " + std::to_string(ready_count_[mi]) +
                  " != " + std::to_string(expect_ready[mi]) +
                  " pending entries");
    bool entry_ok = true;
    TaskId bad{};
    heaps_[mi].for_top([&](const HeapEntry& e) {
      const bool stale =
          e.task.index() < taken_.size() && taken_[e.task.index()];
      const auto it = pushed_.find(e.task);
      const bool live =
          it != pushed_.end() &&
          std::find(it->second.nodes.begin(), it->second.nodes.end(),
                    MemNodeId{mi}) != it->second.nodes.end();
      if (stale == live) {  // exactly one must hold
        entry_ok = false;
        bad = e.task;
        return false;
      }
      return true;
    });
    if (!entry_ok)
      return fail(node + " heap entry for task " + std::to_string(bad.value()) +
                  " is neither a pending entry nor a stale taken duplicate");
    // Debits may legally exceed credits (diversion debits the taker's time,
    // the ledger clamps at zero) but never fall short: the ledger can only
    // sit at or below the credits still outstanding.
    const double tol = 1e-9 * (1.0 + credit_sum[mi]);
    if (!(brw_[mi] >= 0.0) || !(brw_[mi] <= credit_sum[mi] + tol)) {
      std::ostringstream os;
      os << node << " best_remaining_work " << brw_[mi]
         << " outside [0, " << credit_sum[mi] << "] pending-credit bound";
      return fail(os.str());
    }
  }
  return true;
}

}  // namespace mp
