#include "core/multiprio.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

#include "common/check.hpp"
#include "obs/observer.hpp"
#include "verify/mutation.hpp"
#include "verify/sync.hpp"

namespace mp {

MultiPrioScheduler::MultiPrioScheduler(SchedContext ctx, MultiPrioConfig config)
    : Scheduler(std::move(ctx)), cfg_(config) {
  const std::size_t n_nodes = ctx_.platform->num_nodes();
  MP_CHECK_MSG(n_nodes <= 64,
               "PushRecord::live_mask is a uint64 bitmask (max 64 memory nodes)");
  num_shards_ = n_nodes;
  shards_ = std::make_unique<Shard[]>(n_nodes);
  ready_count_ = std::vector<RelaxedAtomic<std::int64_t>>(n_nodes);
  brw_ = std::vector<RelaxedAtomic<double>>(n_nodes);
  // Task table sized for the graph as submitted so far; STF graphs that
  // keep growing go through ensure_task_capacity(), which reallocates only
  // under every shard lock (pops dereference entries under theirs).
  states_ = std::vector<TaskState>(ctx_.graph->num_tasks());
  in_kernel_ = std::vector<RelaxedAtomic<std::uint8_t>>(ctx_.platform->num_workers());
  // Resolve instrument names once; the hot paths then pay one null test.
  if (MetricsRegistry* mx = ctx_.observer ? ctx_.observer->metrics() : nullptr) {
    m_stale_discards_ = &mx->counter("multiprio.stale_discards");
    m_window_scans_ = &mx->counter("multiprio.locality_window_scans");
    m_window_hits_ = &mx->counter("multiprio.locality_window_hits");
    m_wakeups_ = &mx->counter("sched.wakeups");
    m_lock_wait_ = &mx->histogram("sched.lock_wait_s");
    m_heap_depth_.resize(n_nodes);
    for (std::size_t mi = 0; mi < n_nodes; ++mi)
      m_heap_depth_[mi] = &mx->gauge("multiprio.heap_depth.node" + std::to_string(mi));
  }
}

// --- shard-lock discipline ---------------------------------------------------
// tools/lint.sh rule 3: every mention of a shard mutex carries the
// `shard-lock(asc)` tag, and multi-shard acquisition happens only through
// AscendingShardLocks, which sorts its set — so src/core/ can never take two
// node locks out of ascending order. Both helpers are no-ops in coarse mode.

void MultiPrioScheduler::lock_shard(std::size_t mi) const {
  if (!cfg_.sharded) return;
  Mutex& mu = shards_[mi].order_mu;  // shard-lock(asc)
  if (m_lock_wait_ == nullptr) {
    mu.lock();
    return;
  }
  // Contention-visible path: an uncontended acquire records a zero so the
  // histogram's count doubles as an acquisition counter.
  if (mu.try_lock()) {
    m_lock_wait_->observe(0.0);
    return;
  }
  const double t0 = sync_now_seconds();
  mu.lock();
  m_lock_wait_->observe(std::max(0.0, sync_now_seconds() - t0));
}

void MultiPrioScheduler::unlock_shard(std::size_t mi) const {
  if (!cfg_.sharded) return;
  shards_[mi].order_mu.unlock();  // shard-lock(asc)
}

MultiPrioScheduler::AscendingShardLocks::AscendingShardLocks(
    const MultiPrioScheduler& s, std::vector<std::size_t> shards)
    : s_(s), shards_(std::move(shards)) {
  std::sort(shards_.begin(), shards_.end());
  shards_.erase(std::unique(shards_.begin(), shards_.end()), shards_.end());
  for (std::size_t mi : shards_) s_.lock_shard(mi);
}

MultiPrioScheduler::AscendingShardLocks::~AscendingShardLocks() {
  for (auto it = shards_.rbegin(); it != shards_.rend(); ++it)
    s_.unlock_shard(*it);
}

std::vector<std::size_t> MultiPrioScheduler::all_shard_indices() const {
  std::vector<std::size_t> all(num_shards_);
  for (std::size_t mi = 0; mi < num_shards_; ++mi) all[mi] = mi;
  return all;
}

MultiPrioScheduler::TaskState& MultiPrioScheduler::state_of(TaskId t) {
  MP_CHECK_MSG(t.index() < states_.size(),
               "task id outside the graph the scheduler was built for");
  return states_[t.index()];
}

void MultiPrioScheduler::ensure_task_capacity(std::size_t min_tasks) {
  if (min_tasks <= states_.size()) return;
  // STF graphs keep growing after scheduler construction, so the state
  // table must too. Growing reallocates it, which would race with pops
  // dereferencing their shard's entries — growth therefore happens under
  // every shard lock (the locks those reads hold) and geometrically, so the
  // full-quiescence round stays amortized-rare. Callers are push-side and
  // already serialized against each other.
  AscendingShardLocks locks(*this, all_shard_indices());
  states_.resize(std::max(min_tasks, states_.size() * 2));
}

void MultiPrioScheduler::sample_heap_depth(MemNodeId m, double time) {
  if (m_heap_depth_.empty()) return;
  m_heap_depth_[m.index()]->sample(
      time, static_cast<double>(shards_[m.index()].heap.size()));
}

void MultiPrioScheduler::notify_shard(std::size_t mi, std::size_t inserted) {
  if (!cfg_.sharded || inserted == 0) return;
  // Waiter-gated targeted wakeup: only the node that received work is
  // notified, and only when a worker is actually parked there. Safe against
  // lost wakeups: waiters is written under the shard lock and the epoch was
  // bumped under that lock before this read, so a worker missing from the
  // count either saw the new epoch (and will not park) or has yet to run its
  // failed pop. A zero read means every worker of this node is active and
  // will pop the task on its next loop — no futex needed.
  if (shards_[mi].waiters.load() == 0) return;
  if (inserted == 1) {
    shards_[mi].cv.notify_one();
  } else {
    shards_[mi].cv.notify_all();
  }
  if (m_wakeups_ != nullptr) m_wakeups_->inc();
}

void MultiPrioScheduler::notify_one_waiter(const std::vector<std::size_t>& eligible) {
  if (!cfg_.sharded) return;
  // A newly-pushed task is a single unit of work duplicated across shards:
  // wake one waiter on the first eligible shard with no worker free to
  // absorb it, and stop. A worker that is neither parked nor inside a
  // kernel is scanning — it pops the duplicate on its next loop, and a
  // woken sibling would just lose the race and re-park (measured: one
  // wasted futex round trip per completion). Workers executing a kernel do
  // NOT count as absorbers: a node whose awake workers are all busy in long
  // kernels would otherwise leave its parked siblings asleep on runnable
  // work for a full stall timeout. A waiter that loses a race re-parks
  // against the bumped epoch, so no wakeup is ever lost; a diversion that
  // becomes attractive later with no push to advertise it is still bounded
  // by the engine's stall timeout.
  for (std::size_t mi : eligible) {
    const std::uint32_t parked = shards_[mi].waiters.load();
    if (parked == 0) continue;
    const std::size_t live = live_workers_of_node(ctx_, MemNodeId{mi});
    const std::uint32_t executing = shards_[mi].executing.load();
    if (live > parked + executing) continue;  // someone is scanning
    shards_[mi].cv.notify_one();
    if (m_wakeups_ != nullptr) m_wakeups_->inc();
    return;
  }
}

std::vector<std::size_t> MultiPrioScheduler::target_shards(TaskId t) const {
  std::vector<std::size_t> targets;
  for (std::size_t mi = 0; mi < num_shards_; ++mi) {
    const MemNodeId m{mi};
    if (live_workers_of_node(ctx_, m) == 0) continue;
    if (!ctx_.graph->can_exec(t, ctx_.platform->node_arch(m))) continue;
    targets.push_back(mi);
  }
  return targets;  // ascending by construction
}

bool MultiPrioScheduler::push_locked(TaskId t, double t_now) {
  TaskState& st = state_of(t);
  MP_CHECK_MSG(st.phase.load() != kPending, "push of an already-pending task");
  MP_ASSERT(st.phase.load() != kTaken);  // repush resets to Idle first

  // Placeability first, before any live-platform judgement (best_arch_for
  // requires a live enabled arch): if no live capable node remained by the
  // time the shard locks were held, a fail-stop raced the engine's pre-push
  // liveness screen (the caller's target set can only shrink — liveness
  // never comes back). A task that no platform arch could EVER run is still
  // a config error; a task that merely lost its last live worker is
  // surrendered for the engine to abandon via drain_unplaced().
  const std::vector<std::size_t> targets = target_shards(t);
  if (targets.empty()) {
    bool executable_anywhere = false;
    for (std::size_t mi = 0; mi < num_shards_; ++mi)
      if (ctx_.graph->can_exec(t, ctx_.platform->node_arch(MemNodeId{mi})))
        executable_anywhere = true;
    MP_CHECK_MSG(executable_anywhere, "ready task has no executable memory node");
    st.live_mask.store(0);
    unplaced_.push_back(t);
    return false;
  }

  const ArchType best = best_arch_for(ctx_, t);
  PushRecord& rec = st.rec;
  rec.best_arch = best;
  rec.nodes.clear();
  rec.brw_added.clear();
  // Cache the push-time δ(t,a) verdicts: the pop_condition and the take
  // debit must judge against the same estimates PUSH did (live estimates
  // drift as the history model re-trains), and reading them from the record
  // keeps the POP path off the HistoryModel entirely — pops run under only
  // their own shard lock, pushes are serialized by the engine.
  for (std::size_t ai = 0; ai < kNumArchTypes; ++ai) {
    const auto a = static_cast<ArchType>(ai);
    rec.delta[ai] =
        ctx_.graph->can_exec(t, a) && live_worker_count(ctx_, a) > 0
            ? ctx_.perf->estimate(t, a)
            : 0.0;
  }

  // Algorithm 1: insert into the heap of every memory node whose (live)
  // workers can execute the task, with the (gain, criticality) scores.
  std::uint64_t mask = 0;
  for (std::size_t mi : targets) {
    const MemNodeId m{mi};
    const ArchType a = ctx_.platform->node_arch(m);
    MP_ASSERT(live_worker_count(ctx_, a) > 0);

    const double gain = gain_.gain(ctx_, t, a);
    const double prio = cfg_.use_nod ? nod_.normalized(ctx_, t, m) : 0.0;
    Shard& sh = shards_[mi];
    sh.heap.insert(t, gain, prio);
    ready_count_[mi].fetch_add(1);
    rec.nodes.push_back(m);
    mask |= node_bit(m);
    sh.epoch.fetch_add(1);  // wait_for_work predicate sees the insert

    if (a == best) {  // normalized_speedup(t,a) == 1
      const double d = rec.delta[arch_index(a)];
      brw_[mi].add(d);
      rec.brw_added.emplace_back(m, d);
    }

    if (ctx_.observer != nullptr) {
      SchedEvent e;
      e.time = t_now;
      e.kind = SchedEventKind::Push;
      e.task = t;
      e.node = m;
      e.gain = gain;
      e.prio = prio;
      e.best_remaining_work = brw_[mi].load();
      e.heap_depth = static_cast<std::uint32_t>(sh.heap.size());
      ctx_.observer->record(e);
      sample_heap_depth(m, e.time);
    }
  }
  MP_CHECK_MSG(mask != 0, "non-empty target set produced an empty live mask");
  st.live_mask.store(mask);
  st.phase.store(kPending);
  pending_.fetch_add(1);
  return true;
}

void MultiPrioScheduler::push(TaskId t) {
  verify_point("multiprio.push", this);
  ensure_task_capacity(t.index() + 1);
  MP_CHECK_MSG(t.index() < states_.size(), "push: task beyond the state table");
  const double t_now = ctx_.observer != nullptr ? obs_time() : 0.0;
  const std::vector<std::size_t> targets = target_shards(t);
  std::vector<std::size_t> eligible;
  {
    AscendingShardLocks locks(*this, targets);
    if (!push_locked(t, t_now)) return;  // surrendered to drain_unplaced()
    // Eligibility is judged while the record is stable (under the locks): a
    // parked worker is only worth waking if its arch could pop `t` right
    // now — pop_condition is exactly that judgement, and waking a worker it
    // would refuse is a futex round trip for a guaranteed failed pop.
    for (std::size_t mi : targets)
      if (pop_condition(t, ctx_.platform->node_arch(MemNodeId{mi}), nullptr))
        eligible.push_back(mi);
  }
  notify_one_waiter(eligible);
}

void MultiPrioScheduler::push_batch(const std::vector<TaskId>& ts) {
  if (ts.empty()) return;
  verify_point("multiprio.push_batch", this);
  MP_CHECK(num_shards_ > 0);
  const double t_now = ctx_.observer != nullptr ? obs_time() : 0.0;
  // One grouped acquisition: the union of every task's target shards, taken
  // once in ascending order, then every insert — a completion that releases
  // k tasks costs one lock round instead of k.
  std::size_t max_index = 0;
  for (TaskId t : ts) max_index = std::max(max_index, t.index());
  ensure_task_capacity(max_index + 1);
  std::vector<std::size_t> union_targets;
  for (TaskId t : ts)
    for (std::size_t mi : target_shards(t)) union_targets.push_back(mi);
  std::vector<std::vector<std::size_t>> eligible(ts.size());
  {
    AscendingShardLocks locks(*this, union_targets);
    std::vector<bool> placed(ts.size());
    for (std::size_t i = 0; i < ts.size(); ++i) placed[i] = push_locked(ts[i], t_now);
    // Same wake-eligibility judgement as push(), per task in the batch,
    // after the whole batch is in (late pushes raise the brw ledger and can
    // make earlier tasks diversion-eligible). Surrendered tasks never wake.
    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (!placed[i]) continue;
      for (std::size_t mi : target_shards(ts[i]))
        if (pop_condition(ts[i], ctx_.platform->node_arch(MemNodeId{mi}), nullptr))
          eligible[i].push_back(mi);
    }
  }
  // One wakeup per task, not per duplicate: each task is one unit of work,
  // so waking every eligible shard buys k-1 guaranteed failed pops.
  for (const std::vector<std::size_t>& shards : eligible) notify_one_waiter(shards);
}

bool MultiPrioScheduler::pop_condition(TaskId t, ArchType a, double* brw_out) const {
  MP_CHECK(t.index() < states_.size());
  const TaskState& st = states_[t.index()];
  // Always-on: under a skipped-lock mutation a racing rebuild can have
  // retired `t` between candidate selection and this judgement.
  MP_CHECK_MSG(st.phase.load() != kIdle, "pop_condition on a task with no push record");
  const ArchType best = st.rec.best_arch;
  if (a == best) return true;
  double brw_best = 0.0;
  for (MemNodeId m : ctx_.platform->nodes_of_arch(best))
    brw_best += brw_[m.index()].load();
  if (cfg_.normalize_brw_by_workers) {
    brw_best /= static_cast<double>(std::max<std::size_t>(1, live_worker_count(ctx_, best)));
  }
  if (brw_out != nullptr) *brw_out = brw_best;
  // The best workers hold more queued best-affinity work than it would cost
  // this slower worker to run the task: diverting it keeps the DAG moving.
  return brw_best > st.rec.delta[arch_index(a)];
}

void MultiPrioScheduler::drop_taken(ScoredHeap& heap) {
  while (auto top = heap.top()) {
    if (states_[top->task.index()].phase.load() != kTaken) return;
    heap.pop_top();
    if (m_stale_discards_ != nullptr) m_stale_discards_->inc();
  }
}

std::optional<MultiPrioScheduler::Candidate> MultiPrioScheduler::select_candidate(
    MemNodeId m) {
  ScoredHeap& heap = shards_[m.index()].heap;
  drop_taken(heap);
  if (heap.empty()) return std::nullopt;
  const HeapEntry top = *heap.top();
  if (!cfg_.use_locality) return Candidate{top, 0.0, false};

  // Most-local task among the first n entries whose gain score is within ε
  // of the top task's score. Taken duplicates inside the window are skipped
  // (the top itself is known live after drop_taken).
  HeapEntry best_entry = top;
  double best_local = -1.0;
  std::size_t seen = 0;
  heap.for_top([&](const HeapEntry& e) {
    if (e.gain < top.gain - cfg_.epsilon) return false;
    if (seen >= cfg_.locality_n) return false;
    ++seen;
    if (states_[e.task.index()].phase.load() == kTaken) return true;
    const double local = ls_sdh2(ctx_, m, e.task);
    if (local > best_local) {
      best_local = local;
      best_entry = e;
    }
    return true;
  });
  return Candidate{best_entry, std::max(0.0, best_local),
                   best_entry.task != top.task};
}

bool MultiPrioScheduler::try_take(TaskId t, MemNodeId from_node, ArchType taker) {
  verify_point("multiprio.take", this);
  TaskState& st = state_of(t);
  // The single atomic commit point of a pop: whoever flips Pending→Taken
  // owns the task; every other accounting step below is made exactly-once
  // by the live-mask bits.
  std::uint8_t expect = kPending;
  if (!st.phase.compare_exchange(expect, kTaken)) {
    // Always-on: only a racing *taker* may win the commit; any other phase
    // here means a rebuild ran concurrently with this pop (skipped lock).
    MP_CHECK_MSG(expect == kTaken, "take lost its commit race to a non-take");
    return false;  // candidate went stale under us; the caller reselects
  }
  const PushRecord& rec = st.rec;
  // Grab every still-live duplicate slot wholesale; racing evictors that
  // already cleared their bit have retired their own node's ready count.
  const std::uint64_t mask = st.live_mask.exchange(0);
  for (MemNodeId m : rec.nodes) {
    if ((mask & node_bit(m)) == 0) continue;
    const std::int64_t prev = ready_count_[m.index()].fetch_sub(1);
    MP_CHECK_MSG(prev > 0, "per-node ready count underflow on take");
  }
  // Algorithm 2 debits best_remaining_work by δ(t, w_a) — the *taking*
  // worker's time (as judged at PUSH). For a best-arch pop this reverses the
  // PUSH credit; for a diversion it debits more, throttling cascades of
  // slow-worker steals. Seeded mutation SkipBrwDecrement leaves the ledger
  // uncorrected — the explorer's brw upper-bound invariant must flag it
  // (constant-false outside MP_VERIFY builds).
  const bool diverted = taker != rec.best_arch;
  const double debit = diverted ? rec.delta[arch_index(taker)] : 0.0;
  if (!verify::mutation_active(verify::Mutation::SkipBrwDecrement)) {
    for (const auto& [m, credited] : rec.brw_added)
      brw_[m.index()].sub_clamped(diverted ? std::max(debit, credited) : credited);
  }
  const std::size_t prev_pending = pending_.fetch_sub(1);
  MP_CHECK_MSG(prev_pending > 0, "pending count underflow on take");
  // Last: remove the popped entry from this node's heap. Under correct
  // locking we hold from_node's shard lock and the entry is present; under
  // a skipped-lock mutation a racing sweeper may have removed it first —
  // ScoredHeap::remove's own always-on presence check is the oracle then.
  shards_[from_node.index()].heap.remove(t);
  return true;
}

std::optional<TaskId> MultiPrioScheduler::pop(WorkerId w) {
  verify_point("multiprio.pop", this);
  MP_CHECK(w.index() < ctx_.platform->num_workers());
  const Worker& worker = ctx_.platform->worker(w);
  const MemNodeId m = worker.node;
  const ArchType a = worker.arch;
  // One clock read per pop, before the shard lock: observer timestamps must
  // not lengthen the critical section.
  const double t_now = ctx_.observer != nullptr ? obs_time() : 0.0;

  // Seeded mutation SkipNodeLock: run the whole POP path without this
  // node's shard lock, so same-node workers (and a locked PUSH) interleave
  // inside candidate selection / eviction / take. Constant-false outside
  // MP_VERIFY builds.
  const bool skip_lock = verify::mutation_active(verify::Mutation::SkipNodeLock);
  if (!skip_lock) lock_shard(m.index());
  std::optional<TaskId> out;
  for (std::size_t tries = 0; tries <= cfg_.max_tries; ++tries) {
    const std::optional<Candidate> cand = select_candidate(m);
    if (!cand) break;
    const TaskId t = cand->entry.task;
    verify_point("multiprio.pop.candidate", this);
    double brw_judged = 0.0;
    if (!cfg_.use_eviction || pop_condition(t, a, &brw_judged)) {
      if (!try_take(t, m, a)) continue;  // lost the commit race; reselect
      if (ctx_.observer != nullptr) {
        if (cfg_.use_locality && m_window_scans_ != nullptr) {
          m_window_scans_->inc();
          if (cand->window_pick) m_window_hits_->inc();
        }
        SchedEvent e;
        e.time = t_now;
        e.kind = SchedEventKind::Pop;
        e.task = t;
        e.worker = w;
        e.node = m;
        e.gain = cand->entry.gain;
        e.prio = cand->entry.prio;
        e.locality = cand->locality;
        e.best_remaining_work = brw_[m.index()].load();
        e.heap_depth = static_cast<std::uint32_t>(shards_[m.index()].heap.size());
        e.attempt = static_cast<std::uint32_t>(tries);
        ctx_.observer->record(e);
        sample_heap_depth(m, e.time);
      }
      out = t;
      break;
    }
    // Eviction mechanism: remove the task from this node's heap only; its
    // duplicates in the best architecture's heaps keep it schedulable (the
    // pop_condition is always true there, so the best heap never evicts).
    TaskState& st = state_of(t);
    MP_ASSERT(a != st.rec.best_arch);
    const std::uint64_t bit = node_bit(m);
    const std::uint64_t prev = st.live_mask.fetch_and(~bit);
    if ((prev & bit) == 0) {
      // A take on another shard retired this slot between the verdict and
      // the bit-clear: the entry is a stale duplicate now, not an eviction.
      shards_[m.index()].heap.remove(t);
      if (m_stale_discards_ != nullptr) m_stale_discards_->inc();
      continue;
    }
    const std::int64_t prev_rc = ready_count_[m.index()].fetch_sub(1);
    MP_CHECK_MSG(prev_rc > 0, "per-node ready count underflow on evict");
    pop_rejects_.fetch_add(1);
    evictions_.fetch_add(1);
    // Heap removal before the events so heap_depth reports the post-evict
    // depth, as the coarse protocol always did.
    shards_[m.index()].heap.remove(t);
    if (ctx_.observer != nullptr) {
      SchedEvent e;
      e.time = t_now;
      e.kind = SchedEventKind::PopReject;
      e.task = t;
      e.worker = w;
      e.node = m;
      e.gain = cand->entry.gain;
      e.prio = cand->entry.prio;
      e.locality = cand->locality;
      e.best_remaining_work = brw_judged;  // the backlog the verdict read
      e.heap_depth = static_cast<std::uint32_t>(shards_[m.index()].heap.size());
      e.attempt = static_cast<std::uint32_t>(tries);
      ctx_.observer->record(e);
      e.kind = SchedEventKind::Evict;  // same payload, heap-removal view
      ctx_.observer->record(e);
      sample_heap_depth(m, e.time);
    }
  }
  if (!skip_lock) unlock_shard(m.index());
  return out;
}

void MultiPrioScheduler::repush(TaskId t) {
  verify_point("multiprio.repush", this);
  MP_CHECK_MSG(t.index() < states_.size() &&
                   states_[t.index()].phase.load() == kTaken,
               "repush of a task that was never popped");
  const double t_now = ctx_.observer != nullptr ? obs_time() : 0.0;
  const std::vector<std::size_t> targets = target_shards(t);
  bool placed = false;
  {
    // All shards, not just the new targets: take() removed the task only
    // from the heap it was popped from, so lazy stale duplicates may sit in
    // any heap. Flush them so push starts from a clean slate, as on first
    // push. Their ready counts were already retired when the task was taken
    // — stale entries are not ready work.
    AscendingShardLocks locks(*this, all_shard_indices());
    for (std::size_t mi = 0; mi < num_shards_; ++mi)
      if (shards_[mi].heap.contains(t)) shards_[mi].heap.remove(t);
    states_[t.index()].phase.store(kIdle);
    states_[t.index()].live_mask.store(0);
    placed = push_locked(t, t_now);
  }
  if (!placed) return;  // surrendered to drain_unplaced()
  for (std::size_t mi : targets) notify_shard(mi, 1);
}

std::vector<TaskId> MultiPrioScheduler::notify_worker_removed(WorkerId w) {
  verify_point("multiprio.notify_worker_removed", this);
  MP_CHECK_MSG(w.index() < ctx_.platform->num_workers(),
               "worker-removed notification for an unknown worker");
  const MemNodeId dead = ctx_.platform->worker(w).node;
  // The dead worker's in-kernel flag never gets an on_task_end (its task is
  // drained and repushed by the engine); retire its executing slot so the
  // wake heuristic doesn't count a ghost absorber forever.
  if (in_kernel_[w.index()].exchange(0) == 1) shards_[dead.index()].executing.fetch_sub(1);
  // Stream loss: the node still has live workers, heaps and ledgers stand
  // (the pop_condition already normalizes by the live worker count).
  if (live_workers_of_node(ctx_, dead) > 0) return {};

  const double t_now = ctx_.observer != nullptr ? obs_time() : 0.0;
  std::vector<TaskId> orphans;
  std::vector<std::size_t> inserted(num_shards_, 0);
  {
    AscendingShardLocks locks(*this, all_shard_indices());
    std::vector<TaskId> survivors;
    // Index order — deterministic rebuild (heap-sequence tiebreaks included).
    for (std::size_t i = 0; i < states_.size(); ++i) {
      if (states_[i].phase.load() != kPending) continue;
      const TaskId t{i};
      (task_has_live_worker(ctx_, t) ? survivors : orphans).push_back(t);
    }

    for (std::size_t mi = 0; mi < num_shards_; ++mi) {
      shards_[mi].heap.clear();
      ready_count_[mi].store(0);
      brw_[mi].store(0.0);
    }
    for (TaskId t : survivors) {
      states_[t.index()].phase.store(kIdle);
      states_[t.index()].live_mask.store(0);
    }
    for (TaskId t : orphans) {
      states_[t.index()].phase.store(kIdle);
      states_[t.index()].live_mask.store(0);
    }
    pending_.store(0);
    // The normalization trackers restart so scores reflect the shrunken
    // platform rather than contrasts measured against dead architectures.
    gain_.reset();
    nod_.reset();
    for (TaskId t : survivors) {
      for (std::size_t mi : target_shards(t)) ++inserted[mi];
      if (!push_locked(t, t_now)) {
        // A second fail-stop raced this rebuild and took the task's last
        // capable worker: it is an orphan of this removal after all.
        unplaced_.pop_back();
        orphans.push_back(t);
      }
    }
    std::sort(orphans.begin(), orphans.end());  // deterministic surrender order
  }
  for (std::size_t mi = 0; mi < num_shards_; ++mi)
    notify_shard(mi, inserted[mi]);
  return orphans;
}

std::vector<TaskId> MultiPrioScheduler::drain_unplaced() {
  MP_CHECK_MSG(num_shards_ > 0, "drain_unplaced on an unconfigured scheduler");
  std::vector<TaskId> out;
  out.swap(unplaced_);
  return out;
}

void MultiPrioScheduler::on_task_start(TaskId /*t*/, WorkerId w) {
  MP_CHECK_MSG(w.index() < in_kernel_.size(), "task start for an unknown worker");
  // The flag makes the counter transition exactly-once: after a failed
  // attempt the engine skips on_task_end, so the flag may still be set here
  // (the worker counted as executing while it retried — a safe over-count
  // that only errs toward waking a parked sibling).
  if (in_kernel_[w.index()].exchange(1) == 0)
    shards_[ctx_.platform->worker(w).node.index()].executing.fetch_add(1);
}

void MultiPrioScheduler::on_task_end(TaskId /*t*/, WorkerId w) {
  MP_CHECK_MSG(w.index() < in_kernel_.size(), "task end for an unknown worker");
  if (in_kernel_[w.index()].exchange(0) == 1)
    shards_[ctx_.platform->worker(w).node.index()].executing.fetch_sub(1);
}

std::uint64_t MultiPrioScheduler::work_epoch(WorkerId w) const {
  return shards_[ctx_.platform->worker(w).node.index()].epoch.load();
}

void MultiPrioScheduler::wait_for_work(WorkerId w, std::uint64_t seen,
                                       double timeout_s,
                                       const std::function<bool()>& cancel) {
  MP_CHECK(w.index() < ctx_.platform->num_workers());
  if (!cfg_.sharded) return;
  Shard& sh = shards_[ctx_.platform->worker(w).node.index()];
  std::unique_lock<Mutex> lk(sh.order_mu);  // shard-lock(asc)
  // Lost-wakeup-free: `seen` was read before the caller's failed pop, the
  // epoch is bumped under this lock by every insert, and the predicate is
  // re-evaluated under the lock. The timeout is the engine's anti-hang
  // bound; spurious returns just cost one retried pop. The waiter count
  // bracketing the wait (under the lock) is what notify_shard's futex gate
  // reads.
  sh.waiters.fetch_add(1);
  (void)sh.cv.wait_for(lk, std::chrono::duration<double>(timeout_s), [&] {
    return cancel() || sh.epoch.load() != seen;
  });
  sh.waiters.fetch_sub(1);
}

void MultiPrioScheduler::interrupt_waiters() {
  MP_CHECK(num_shards_ > 0);
  if (!cfg_.sharded) return;
  for (std::size_t mi = 0; mi < num_shards_; ++mi) shards_[mi].cv.notify_all();
  if (m_wakeups_ != nullptr) m_wakeups_->inc();
}

std::size_t MultiPrioScheduler::ready_tasks_count(MemNodeId m) const {
  MP_CHECK(m.index() < ready_count_.size());
  return static_cast<std::size_t>(std::max<std::int64_t>(0, ready_count_[m.index()].load()));
}

double MultiPrioScheduler::best_remaining_work(MemNodeId m) const {
  MP_CHECK(m.index() < brw_.size());
  return brw_[m.index()].load();
}

const ScoredHeap& MultiPrioScheduler::heap(MemNodeId m) const {
  MP_CHECK(m.index() < num_shards_);
  return shards_[m.index()].heap;
}

#ifdef MP_VERIFY
bool MultiPrioScheduler::verify_quiescent() const {
  for (std::size_t mi = 0; mi < num_shards_; ++mi)
    if (verify::mutex_is_held(shards_[mi].order_mu)) return false;  // shard-lock(asc)
  return true;
}

std::vector<const Mutex*> MultiPrioScheduler::verify_shard_mutexes() const {
  std::vector<const Mutex*> out;
  if (!cfg_.sharded) return out;
  out.reserve(num_shards_);
  for (std::size_t mi = 0; mi < num_shards_; ++mi)
    out.push_back(&shards_[mi].order_mu);  // shard-lock(asc)
  return out;
}
#endif

bool MultiPrioScheduler::check_invariants(std::string* why) const {
  auto fail = [why](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  // Quiescent audit: take every shard lock in ascending order (no-op in
  // coarse mode; uncontended passthrough locks inside an explorer probe,
  // which only runs once verify_quiescent() said nobody holds a shard).
  AscendingShardLocks locks(*this, all_shard_indices());
  const std::size_t n_nodes = num_shards_;

  std::size_t n_pending = 0;
  std::vector<std::int64_t> expect_ready(n_nodes, 0);
  std::vector<double> credit_sum(n_nodes, 0.0);
  for (std::size_t i = 0; i < states_.size(); ++i) {
    const TaskState& st = states_[i];
    if (st.phase.load() != kPending) continue;
    ++n_pending;
    const std::string tag = "task " + std::to_string(i);
    const std::uint64_t mask = st.live_mask.load();
    if (mask == 0) return fail(tag + " is pending but sits in no heap");
    std::uint64_t nodes_mask = 0;
    for (MemNodeId m : st.rec.nodes) {
      if (m.index() >= n_nodes) return fail(tag + " records an unknown node");
      nodes_mask |= node_bit(m);
      if ((mask & node_bit(m)) == 0) continue;  // evicted slot, retired
      if (!shards_[m.index()].heap.contains(TaskId{i}))
        return fail(tag + " records node " + std::to_string(m.value()) +
                    " but that heap lacks it");
      ++expect_ready[m.index()];
    }
    if ((mask & ~nodes_mask) != 0)
      return fail(tag + " live mask names a node outside its push set");
    for (const auto& [m, credited] : st.rec.brw_added) {
      if ((mask & node_bit(m)) == 0)
        return fail(tag + " holds a best-arch credit on node " +
                    std::to_string(m.value()) +
                    " it no longer occupies (best heap must never evict)");
      credit_sum[m.index()] += credited;
    }
  }
  if (pending_.load() != n_pending)
    return fail("pending_count " + std::to_string(pending_.load()) + " != " +
                std::to_string(n_pending) + " tasks in Pending phase");

  for (std::size_t mi = 0; mi < n_nodes; ++mi) {
    const std::string node = "node " + std::to_string(mi);
    const ScoredHeap& h = shards_[mi].heap;
    if (!h.validate()) return fail(node + " heap corrupt");
    if (ready_count_[mi].load() != expect_ready[mi])
      return fail(node + " ready_count " +
                  std::to_string(ready_count_[mi].load()) + " != " +
                  std::to_string(expect_ready[mi]) + " pending entries");
    bool entry_ok = true;
    TaskId bad{};
    h.for_top([&](const HeapEntry& e) {
      const TaskState& st = states_[e.task.index()];
      const std::uint8_t phase = st.phase.load();
      const bool stale = phase == kTaken;
      const bool live = phase == kPending &&
                        (st.live_mask.load() & node_bit(MemNodeId{mi})) != 0;
      if (stale == live) {  // exactly one must hold
        entry_ok = false;
        bad = e.task;
        return false;
      }
      return true;
    });
    if (!entry_ok)
      return fail(node + " heap entry for task " + std::to_string(bad.value()) +
                  " is neither a pending entry nor a stale taken duplicate");
    // Debits may legally exceed credits (diversion debits the taker's time,
    // the ledger clamps at zero) but never fall short: the ledger can only
    // sit at or below the credits still outstanding.
    const double tol = 1e-9 * (1.0 + credit_sum[mi]);
    const double ledger = brw_[mi].load();
    if (!(ledger >= 0.0) || !(ledger <= credit_sum[mi] + tol)) {
      std::ostringstream os;
      os << node << " best_remaining_work " << ledger
         << " outside [0, " << credit_sum[mi] << "] pending-credit bound";
      return fail(os.str());
    }
  }
  return true;
}

}  // namespace mp
