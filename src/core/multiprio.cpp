#include "core/multiprio.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "obs/observer.hpp"

namespace mp {

MultiPrioScheduler::MultiPrioScheduler(SchedContext ctx, MultiPrioConfig config)
    : Scheduler(std::move(ctx)), cfg_(config) {
  const std::size_t n_nodes = ctx_.platform->num_nodes();
  heaps_.resize(n_nodes);
  ready_count_.assign(n_nodes, 0);
  brw_.assign(n_nodes, 0.0);
  // Resolve instrument names once; the hot paths then pay one null test.
  if (MetricsRegistry* mx = ctx_.observer ? ctx_.observer->metrics() : nullptr) {
    m_stale_discards_ = &mx->counter("multiprio.stale_discards");
    m_window_scans_ = &mx->counter("multiprio.locality_window_scans");
    m_window_hits_ = &mx->counter("multiprio.locality_window_hits");
    m_heap_depth_.resize(n_nodes);
    for (std::size_t mi = 0; mi < n_nodes; ++mi)
      m_heap_depth_[mi] = &mx->gauge("multiprio.heap_depth.node" + std::to_string(mi));
  }
}

void MultiPrioScheduler::sample_heap_depth(MemNodeId m, double time) {
  if (m_heap_depth_.empty()) return;
  m_heap_depth_[m.index()]->sample(time, static_cast<double>(heaps_[m.index()].size()));
}

void MultiPrioScheduler::push(TaskId t) {
  if (taken_.size() <= t.index()) taken_.resize(t.index() + 1, false);
  MP_ASSERT(!taken_[t.index()]);

  const ArchType best = best_arch_for(ctx_, t);
  bool inserted_somewhere = false;
  PushRecord& rec = pushed_[t];
  rec.best_arch = best;
  auto& added = rec.brw_added;

  // Algorithm 1: insert into the heap of every memory node whose (live)
  // workers can execute the task, with the (gain, criticality) scores.
  for (std::size_t mi = 0; mi < ctx_.platform->num_nodes(); ++mi) {
    const MemNodeId m{mi};
    if (live_workers_of_node(ctx_, m) == 0) continue;
    const ArchType a = ctx_.platform->node_arch(m);
    if (!ctx_.graph->can_exec(t, a)) continue;
    MP_ASSERT(live_worker_count(ctx_, a) > 0);

    const double gain = gain_.gain(ctx_, t, a);
    const double prio = cfg_.use_nod ? nod_.normalized(ctx_, t, m) : 0.0;
    heaps_[mi].insert(t, gain, prio);
    ++ready_count_[mi];
    inserted_somewhere = true;

    if (a == best) {  // normalized_speedup(t,a) == 1
      const double d = ctx_.perf->estimate(t, a);
      brw_[mi] += d;
      added.emplace_back(m, d);
    }

    if (ctx_.observer != nullptr) {
      SchedEvent e;
      e.time = obs_time();
      e.kind = SchedEventKind::Push;
      e.task = t;
      e.node = m;
      e.gain = gain;
      e.prio = prio;
      e.best_remaining_work = brw_[mi];
      e.heap_depth = static_cast<std::uint32_t>(heaps_[mi].size());
      ctx_.observer->record(e);
      sample_heap_depth(m, e.time);
    }
  }
  MP_CHECK_MSG(inserted_somewhere, "ready task has no executable memory node");
  ++pending_;
}

bool MultiPrioScheduler::pop_condition(TaskId t, ArchType a, double* brw_out) const {
  const auto it = pushed_.find(t);
  MP_ASSERT(it != pushed_.end());
  const ArchType best = it->second.best_arch;
  if (a == best) return true;
  double brw_best = 0.0;
  for (MemNodeId m : ctx_.platform->nodes_of_arch(best)) brw_best += brw_[m.index()];
  if (cfg_.normalize_brw_by_workers) {
    brw_best /= static_cast<double>(std::max<std::size_t>(1, live_worker_count(ctx_, best)));
  }
  if (brw_out != nullptr) *brw_out = brw_best;
  // The best workers hold more queued best-affinity work than it would cost
  // this slower worker to run the task: diverting it keeps the DAG moving.
  return brw_best > ctx_.perf->estimate(t, a);
}

void MultiPrioScheduler::drop_taken(ScoredHeap& heap) {
  while (auto top = heap.top()) {
    if (!taken_[top->task.index()]) return;
    heap.pop_top();
    if (m_stale_discards_ != nullptr) m_stale_discards_->inc();
  }
}

std::optional<MultiPrioScheduler::Candidate> MultiPrioScheduler::select_candidate(
    MemNodeId m) {
  ScoredHeap& heap = heaps_[m.index()];
  drop_taken(heap);
  if (heap.empty()) return std::nullopt;
  const HeapEntry top = *heap.top();
  if (!cfg_.use_locality) return Candidate{top, 0.0, false};

  // Most-local task among the first n entries whose gain score is within ε
  // of the top task's score. Taken duplicates inside the window are skipped
  // (the top itself is known live after drop_taken).
  HeapEntry best_entry = top;
  double best_local = -1.0;
  std::size_t seen = 0;
  heap.for_top([&](const HeapEntry& e) {
    if (e.gain < top.gain - cfg_.epsilon) return false;
    if (seen >= cfg_.locality_n) return false;
    ++seen;
    if (taken_[e.task.index()]) return true;
    const double local = ls_sdh2(ctx_, m, e.task);
    if (local > best_local) {
      best_local = local;
      best_entry = e;
    }
    return true;
  });
  return Candidate{best_entry, std::max(0.0, best_local),
                   best_entry.task != top.task};
}

void MultiPrioScheduler::take(TaskId t, MemNodeId from_node, ArchType taker) {
  taken_[t.index()] = true;
  heaps_[from_node.index()].remove(t);
  MP_ASSERT(ready_count_[from_node.index()] > 0);
  --ready_count_[from_node.index()];
  // Algorithm 2 debits best_remaining_work by δ(t, w_a) — the *taking*
  // worker's time. For a best-arch pop this reverses the PUSH credit; for a
  // diversion it debits more, throttling cascades of slow-worker steals.
  auto it = pushed_.find(t);
  MP_ASSERT(it != pushed_.end());
  const bool diverted = taker != it->second.best_arch;
  const double debit = diverted ? ctx_.perf->estimate(t, taker) : 0.0;
  for (const auto& [m, credited] : it->second.brw_added) {
    brw_[m.index()] -= diverted ? std::max(debit, credited) : credited;
    if (brw_[m.index()] < 0.0) brw_[m.index()] = 0.0;
  }
  pushed_.erase(it);
  MP_ASSERT(pending_ > 0);
  --pending_;
}

std::optional<TaskId> MultiPrioScheduler::pop(WorkerId w) {
  const Worker& worker = ctx_.platform->worker(w);
  const MemNodeId m = worker.node;
  const ArchType a = worker.arch;

  for (std::size_t tries = 0; tries <= cfg_.max_tries; ++tries) {
    const std::optional<Candidate> cand = select_candidate(m);
    if (!cand) return std::nullopt;
    const TaskId t = cand->entry.task;
    double brw_judged = 0.0;
    if (!cfg_.use_eviction || pop_condition(t, a, &brw_judged)) {
      take(t, m, a);
      if (ctx_.observer != nullptr) {
        if (cfg_.use_locality && m_window_scans_ != nullptr) {
          m_window_scans_->inc();
          if (cand->window_pick) m_window_hits_->inc();
        }
        SchedEvent e;
        e.time = obs_time();
        e.kind = SchedEventKind::Pop;
        e.task = t;
        e.worker = w;
        e.node = m;
        e.gain = cand->entry.gain;
        e.prio = cand->entry.prio;
        e.locality = cand->locality;
        e.best_remaining_work = brw_[m.index()];
        e.heap_depth = static_cast<std::uint32_t>(heaps_[m.index()].size());
        e.attempt = static_cast<std::uint32_t>(tries);
        ctx_.observer->record(e);
        sample_heap_depth(m, e.time);
      }
      return t;
    }
    // Eviction mechanism: remove the task from this node's heap only; its
    // duplicates in the best architecture's heaps keep it schedulable (the
    // pop_condition is always true there, so the best heap never evicts).
    MP_ASSERT(a != pushed_.find(t)->second.best_arch);
    ++pop_rejects_;
    ++evictions_;
    heaps_[m.index()].remove(t);
    MP_ASSERT(ready_count_[m.index()] > 0);
    --ready_count_[m.index()];
    if (ctx_.observer != nullptr) {
      SchedEvent e;
      e.time = obs_time();
      e.kind = SchedEventKind::PopReject;
      e.task = t;
      e.worker = w;
      e.node = m;
      e.gain = cand->entry.gain;
      e.prio = cand->entry.prio;
      e.locality = cand->locality;
      e.best_remaining_work = brw_judged;  // the backlog the verdict read
      e.heap_depth = static_cast<std::uint32_t>(heaps_[m.index()].size());
      e.attempt = static_cast<std::uint32_t>(tries);
      ctx_.observer->record(e);
      e.kind = SchedEventKind::Evict;  // same payload, heap-removal view
      ctx_.observer->record(e);
      sample_heap_depth(m, e.time);
    }
  }
  return std::nullopt;
}

void MultiPrioScheduler::repush(TaskId t) {
  MP_CHECK_MSG(t.index() < taken_.size() && taken_[t.index()],
               "repush of a task that was never popped");
  // take() removed the task only from the heap it was popped from; lazy
  // duplicates may still sit in other heaps. Flush them (with their
  // ready-count) so push() starts from a clean slate, as on first push.
  for (std::size_t mi = 0; mi < heaps_.size(); ++mi) {
    if (heaps_[mi].contains(t)) {
      heaps_[mi].remove(t);
      MP_ASSERT(ready_count_[mi] > 0);
      --ready_count_[mi];
    }
  }
  taken_[t.index()] = false;
  push(t);
}

std::vector<TaskId> MultiPrioScheduler::notify_worker_removed(WorkerId w) {
  const MemNodeId dead = ctx_.platform->worker(w).node;
  // Stream loss: the node still has live workers, heaps and ledgers stand
  // (the pop_condition already normalizes by the live worker count).
  if (live_workers_of_node(ctx_, dead) > 0) return {};

  std::vector<TaskId> survivors;
  std::vector<TaskId> orphans;
  for (const auto& [t, rec] : pushed_)
    (task_has_live_worker(ctx_, t) ? survivors : orphans).push_back(t);
  // pushed_ iteration order is unspecified; sort so the rebuilt heaps (and
  // the heap-sequence tiebreaks inside them) are deterministic.
  std::sort(survivors.begin(), survivors.end());
  std::sort(orphans.begin(), orphans.end());

  for (ScoredHeap& h : heaps_) h.clear();
  ready_count_.assign(ready_count_.size(), 0);
  brw_.assign(brw_.size(), 0.0);
  pushed_.clear();
  pending_ = 0;
  // The normalization trackers restart so scores reflect the shrunken
  // platform rather than contrasts measured against dead architectures.
  gain_.reset();
  nod_.reset();
  for (TaskId t : survivors) push(t);
  return orphans;
}

std::size_t MultiPrioScheduler::ready_tasks_count(MemNodeId m) const {
  MP_CHECK(m.index() < ready_count_.size());
  return ready_count_[m.index()];
}

double MultiPrioScheduler::best_remaining_work(MemNodeId m) const {
  MP_CHECK(m.index() < brw_.size());
  return brw_[m.index()];
}

const ScoredHeap& MultiPrioScheduler::heap(MemNodeId m) const {
  MP_CHECK(m.index() < heaps_.size());
  return heaps_[m.index()];
}

}  // namespace mp
