#include "core/gain.hpp"

#include <cmath>

#include "common/check.hpp"

namespace mp {

double GainTracker::gain(const SchedContext& ctx, TaskId t, ArchType a) {
  const std::vector<ArchType> archs = enabled_archs(ctx, t);
  MP_CHECK_MSG(!archs.empty(), "gain of a task no architecture can execute");
  if (archs.size() == 1) return 1.0;  // only one arch can run the task

  const ArchType first = best_arch_for(ctx, t);
  const double delta_a = ctx.perf->estimate(t, a);
  double diff = 0.0;
  if (a == first) {
    const std::optional<ArchType> second = second_arch_for(ctx, t);
    MP_ASSERT(second.has_value());
    diff = ctx.perf->estimate(t, *second) - delta_a;  // ≥ 0
  } else {
    diff = ctx.perf->estimate(t, first) - delta_a;  // ≤ 0
  }

  double& hd = hd_[arch_index(a)];
  hd = std::max(hd, std::abs(diff));
  if (hd == 0.0) return 0.5;  // no contrast recorded yet: neutral score
  return (diff + hd) / (2.0 * hd);
}

}  // namespace mp
