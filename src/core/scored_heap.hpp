// ScoredHeap: the per-memory-node priority queue of MultiPrio.
//
// A binary max-heap whose entries carry the two scores of the paper: the
// gain (affinity) score is the primary key, the criticality (NOD) score
// breaks ties, and insertion order breaks remaining ties (FIFO among equal
// tasks). Supports removal of arbitrary tasks (the eviction mechanism) via
// an index map, and non-destructive traversal of the best entries (the
// locality window of Section V-C).
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"

namespace mp {

struct HeapEntry {
  TaskId task;
  double gain = 0.0;  // primary key  (score_gain, Section V-A)
  double prio = 0.0;  // tiebreaker   (score_criticality, Section V-B)
  std::uint64_t seq = 0;

  /// Max-heap "greater priority" ordering.
  [[nodiscard]] bool before(const HeapEntry& o) const {
    if (gain != o.gain) return gain > o.gain;
    if (prio != o.prio) return prio > o.prio;
    return seq < o.seq;
  }
};

class ScoredHeap {
 public:
  /// Inserts a task; a task may appear at most once per heap.
  void insert(TaskId t, double gain, double prio);

  [[nodiscard]] bool contains(TaskId t) const { return pos_.count(t) != 0; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Highest-priority entry, if any.
  [[nodiscard]] std::optional<HeapEntry> top() const;

  /// Removes the top entry. Requires non-empty.
  void pop_top();

  /// Removes an arbitrary task (the eviction mechanism). Requires presence.
  void remove(TaskId t);

  /// Drops every entry (used when a memory node leaves the platform). The
  /// insertion counter survives so FIFO tiebreaks stay globally consistent.
  void clear() {
    entries_.clear();
    pos_.clear();
  }

  /// Visits entries in exact non-increasing priority order, without mutating
  /// the heap, until `fn` returns false or the heap is exhausted.
  /// fn: bool(const HeapEntry&).
  template <typename F>
  void for_top(F&& fn) const {
    if (entries_.empty()) return;
    // Aux max-heap of indices into entries_, seeded with the root; popping
    // index i exposes children 2i+1 / 2i+2 — yields exact sorted order.
    std::vector<std::size_t> aux;
    aux.push_back(0);
    auto less = [this](std::size_t a, std::size_t b) {
      return entries_[b].before(entries_[a]);  // max-heap via std::push_heap
    };
    while (!aux.empty()) {
      std::pop_heap(aux.begin(), aux.end(), less);
      const std::size_t i = aux.back();
      aux.pop_back();
      if (!fn(entries_[i])) return;
      for (std::size_t c : {2 * i + 1, 2 * i + 2}) {
        if (c < entries_.size()) {
          aux.push_back(c);
          std::push_heap(aux.begin(), aux.end(), less);
        }
      }
    }
  }

  /// Verifies the heap property and index-map consistency (tests only).
  [[nodiscard]] bool validate() const;

 private:
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void place(std::size_t i, HeapEntry e);

  std::vector<HeapEntry> entries_;
  std::unordered_map<TaskId, std::size_t> pos_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace mp
