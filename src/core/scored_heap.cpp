#include "core/scored_heap.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "verify/sync.hpp"

namespace mp {

void ScoredHeap::insert(TaskId t, double gain, double prio) {
  verify_point("scored_heap.insert", this);
  MP_CHECK_MSG(!contains(t), "task already in this heap");
  entries_.push_back(HeapEntry{t, gain, prio, next_seq_++});
  pos_[t] = entries_.size() - 1;
  sift_up(entries_.size() - 1);
}

std::optional<HeapEntry> ScoredHeap::top() const {
  if (entries_.empty()) return std::nullopt;
  return entries_.front();
}

void ScoredHeap::pop_top() {
  MP_CHECK(!entries_.empty());
  remove(entries_.front().task);
}

void ScoredHeap::remove(TaskId t) {
  verify_point("scored_heap.remove", this);
  auto it = pos_.find(t);
  MP_CHECK_MSG(it != pos_.end(), "removing a task not in the heap");
  const std::size_t i = it->second;
  pos_.erase(it);
  const std::size_t last = entries_.size() - 1;
  if (i != last) {
    HeapEntry moved = entries_[last];
    const TaskId moved_task = moved.task;
    entries_.pop_back();
    place(i, std::move(moved));
    // The moved entry may need to go either direction; sift_up leaves every
    // displaced ancestor dominating its new subtree, so following with a
    // sift_down at the entry's final position is always safe.
    sift_up(i);
    sift_down(pos_[moved_task]);
  } else {
    entries_.pop_back();
  }
}

void ScoredHeap::place(std::size_t i, HeapEntry e) {
  pos_[e.task] = i;
  entries_[i] = std::move(e);
}

void ScoredHeap::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!entries_[i].before(entries_[parent])) break;
    std::swap(entries_[i], entries_[parent]);
    pos_[entries_[i].task] = i;
    pos_[entries_[parent].task] = parent;
    i = parent;
  }
}

void ScoredHeap::sift_down(std::size_t i) {
  const std::size_t n = entries_.size();
  while (true) {
    std::size_t best = i;
    for (std::size_t c : {2 * i + 1, 2 * i + 2})
      if (c < n && entries_[c].before(entries_[best])) best = c;
    if (best == i) return;
    std::swap(entries_[i], entries_[best]);
    pos_[entries_[i].task] = i;
    pos_[entries_[best].task] = best;
    i = best;
  }
}

bool ScoredHeap::validate() const {
  if (pos_.size() != entries_.size()) return false;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    auto it = pos_.find(entries_[i].task);
    if (it == pos_.end() || it->second != i) return false;
    for (std::size_t c : {2 * i + 1, 2 * i + 2})
      if (c < entries_.size() && entries_[c].before(entries_[i])) return false;
  }
  return true;
}

}  // namespace mp
