// Criticality heuristic: Normalized Out-Degree (paper Section V-B, Eq. 2,
// after Lin et al. [23]).
//
//   NOD(t) = Σ_{s ∈ λ+(t, P_m)}  1 / |λ−(s, P_m)|
//
// Successors and predecessor counts are restricted to tasks executable on
// the architecture of memory node m. A task releasing many lightly-guarded
// successors scores high: finishing it unlocks the most parallelism.
#pragma once

#include "common/ids.hpp"
#include "runtime/scheduler.hpp"

namespace mp {

/// Raw NOD value of `t` for memory node `m`.
[[nodiscard]] double nod_score(const SchedContext& ctx, TaskId t, MemNodeId m);

/// Maintains the running maximum used to normalize NOD into [0, 1]
/// ("all values are normalized between 0 and 1").
class NodNormalizer {
 public:
  /// Normalized criticality score; updates the running max as a side effect.
  [[nodiscard]] double normalized(const SchedContext& ctx, TaskId t, MemNodeId m);

  [[nodiscard]] double max_seen() const { return max_seen_; }
  void reset() { max_seen_ = 0.0; }

 private:
  double max_seen_ = 0.0;
};

}  // namespace mp
