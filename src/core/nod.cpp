#include "core/nod.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace mp {

double nod_score(const SchedContext& ctx, TaskId t, MemNodeId m) {
  const ArchType a = ctx.platform->node_arch(m);
  double nod = 0.0;
  for (TaskId s : ctx.graph->successors(t)) {
    if (!ctx.graph->can_exec(s, a)) continue;
    std::size_t preds_on_arch = 0;
    for (TaskId p : ctx.graph->predecessors(s))
      if (ctx.graph->can_exec(p, a)) ++preds_on_arch;
    // When no predecessor targets this arch (yet the successor does), fall
    // back to the unrestricted in-degree so the term stays well-defined.
    const std::size_t denom = preds_on_arch > 0 ? preds_on_arch
                                                : std::max<std::size_t>(1, ctx.graph->in_degree(s));
    nod += 1.0 / static_cast<double>(denom);
  }
  return nod;
}

double NodNormalizer::normalized(const SchedContext& ctx, TaskId t, MemNodeId m) {
  MP_CHECK_MSG(m.index() < ctx.platform->num_nodes(),
               "nod score for an unknown memory node");
  const double nod = nod_score(ctx, t, m);
  max_seen_ = std::max(max_seen_, nod);
  return max_seen_ > 0.0 ? nod / max_seen_ : 0.0;
}

}  // namespace mp
