#include "core/locality.hpp"

namespace mp {

double ls_sdh2(const SchedContext& ctx, MemNodeId m, TaskId t) {
  double score = 0.0;
  for (const Access& acc : ctx.graph->task(t).accesses) {
    if (!ctx.memory->is_valid_on(acc.data, m)) continue;
    const auto size = static_cast<double>(ctx.graph->handles().get(acc.data).bytes);
    if (mode_writes(acc.mode)) {
      score += size * size;
    } else {
      score += size;
    }
  }
  return score;
}

}  // namespace mp
